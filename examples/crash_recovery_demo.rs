//! The paper's Fig. 1, live: one crash schedule, two algorithms, two
//! verdicts — then the same crash at the *disk* level, recovered by the
//! write-ahead log.
//!
//! Part 1: the writer crashes in the middle of `W(v2)` after the value
//! reached a single replica; after recovery it starts `W(v3)`. Two reads
//! during `W(v3)` observe `v1` then `v2` under the transient algorithm —
//! the "overlapping write" the paper's Fig. 1 depicts — which
//! **transient atomicity permits and persistent atomicity forbids**. The
//! persistent algorithm on the same schedule never exposes `v2` at all
//! (the crash beat its pre-log, so recovery has nothing to finish).
//!
//! Part 2: a node's stable storage is now `WalStorage` (the segmented
//! group-commit log). We write records, crash mid-append — a torn tail
//! at the end of the newest segment — and reopen: replay keeps exactly
//! the durable prefix, truncates the torn bytes, and reports what it
//! did.
//!
//! ```text
//! cargo run --example crash_recovery_demo
//! ```

use bytes::Bytes;
use rmem_bench::scenarios;
use rmem_consistency::{check_persistent, check_transient};
use rmem_core::{Persistent, Transient};
use rmem_sim::{ClusterConfig, Simulation};
use rmem_storage::{StableStorage, WalStorage};
use rmem_types::AutomatonFactory;
use std::sync::Arc;

fn main() {
    for factory in [
        Transient::factory() as Arc<dyn AutomatonFactory>,
        Persistent::factory() as Arc<dyn AutomatonFactory>,
    ] {
        let name = factory.algorithm();
        println!("=== {} register on the Fig. 1 schedule ===", name);
        let mut sim =
            Simulation::new(ClusterConfig::new(3), factory, 7).with_schedule(scenarios::fig1());
        let report = sim.run();
        for op in report.trace.operations() {
            println!("  {}", rmem_examples::describe_op(op));
        }
        println!(
            "{}",
            rmem_sim::render::render_timeline(&report.trace, 3, 90)
        );
        let history = report.trace.to_history();
        let persistent = check_persistent(&history)
            .map(|_| ())
            .map_err(|e| e.to_string());
        let transient = check_transient(&history)
            .map(|_| ())
            .map_err(|e| e.to_string());
        println!("  persistent atomicity: {}", verdict(&persistent));
        println!("  transient atomicity:  {}", verdict(&transient));
        println!();
    }
    println!("The transient run shows the overlapping write of Fig. 1 (left): after the");
    println!("writer's crash, a read still returns v1 and a later read returns v2 while");
    println!("W(v3) is in progress. Transient atomicity places W(v2)'s missing reply just");
    println!("before W(v3)'s reply (a weak completion); persistent atomicity cannot.");
    println!();
    wal_recovery_demo();
}

/// Part 2: the same crash story one layer down — a torn append in the
/// write-ahead log, truncated (never trusted) on recovery.
fn wal_recovery_demo() {
    println!("=== WAL crash recovery (torn tail) ===");
    let dir = std::env::temp_dir().join(format!("rmem-crashdemo-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A process logs the algorithm's slots; the last append is torn by a
    // crash (simulated by cutting bytes off the newest segment — the
    // only way a torn write can exist, since `store` fsyncs).
    {
        let mut wal = WalStorage::open(&dir).expect("open WAL");
        wal.store("writing", Bytes::from_static(b"ts=3 v2"))
            .expect("store");
        wal.store("written", Bytes::from_static(b"ts=2 v1"))
            .expect("store");
        wal.store("written", Bytes::from_static(b"ts=3 v2"))
            .expect("store");
        println!(
            "  before crash: {} records across {} segment(s), {} bytes",
            3,
            wal.segment_ids().len(),
            wal.log_bytes()
        );
    }
    let seg = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "wal"))
        .expect("segment file");
    let len = std::fs::metadata(&seg).expect("metadata").len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .expect("open segment");
    f.set_len(len - 5).expect("tear the tail");
    drop(f);
    println!("  crash: the last append is torn (5 bytes short)");

    let wal = WalStorage::open(&dir).expect("reopen WAL");
    let r = wal.recovery_summary();
    println!(
        "  recovery: {} segment(s) replayed, {} record(s) scanned, {} slot(s) kept, \
         {} torn tail byte(s) truncated",
        r.segments_replayed, r.records_scanned, r.records_kept, r.tail_bytes_truncated
    );
    println!(
        "  written = {:?} (the torn ts=3 adoption is gone — it was never",
        wal.retrieve("written")
            .expect("retrieve")
            .map(|b| String::from_utf8_lossy(&b).into_owned())
    );
    println!("  acknowledged: ack-after-durable means nobody was told it was stable)");
    let _ = std::fs::remove_dir_all(&dir);
}

fn verdict(r: &Result<(), String>) -> String {
    match r {
        Ok(()) => "SATISFIED".to_string(),
        Err(e) => format!("VIOLATED ({e})"),
    }
}
