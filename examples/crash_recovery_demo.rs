//! The paper's Fig. 1, live: one crash schedule, two algorithms, two
//! verdicts.
//!
//! The writer crashes in the middle of `W(v2)` after the value reached a
//! single replica; after recovery it starts `W(v3)`. Two reads during
//! `W(v3)` observe `v1` then `v2` under the transient algorithm — the
//! "overlapping write" the paper's Fig. 1 depicts — which **transient
//! atomicity permits and persistent atomicity forbids**. The persistent
//! algorithm on the same schedule never exposes `v2` at all (the crash
//! beat its pre-log, so recovery has nothing to finish).
//!
//! ```text
//! cargo run --example crash_recovery_demo
//! ```

use rmem_bench::scenarios;
use rmem_consistency::{check_persistent, check_transient};
use rmem_core::{Persistent, Transient};
use rmem_sim::{ClusterConfig, Simulation};
use rmem_types::AutomatonFactory;
use std::sync::Arc;

fn main() {
    for factory in [
        Transient::factory() as Arc<dyn AutomatonFactory>,
        Persistent::factory() as Arc<dyn AutomatonFactory>,
    ] {
        let name = factory.algorithm();
        println!("=== {} register on the Fig. 1 schedule ===", name);
        let mut sim =
            Simulation::new(ClusterConfig::new(3), factory, 7).with_schedule(scenarios::fig1());
        let report = sim.run();
        for op in report.trace.operations() {
            println!("  {}", rmem_examples::describe_op(op));
        }
        println!(
            "{}",
            rmem_sim::render::render_timeline(&report.trace, 3, 90)
        );
        let history = report.trace.to_history();
        let persistent = check_persistent(&history)
            .map(|_| ())
            .map_err(|e| e.to_string());
        let transient = check_transient(&history)
            .map(|_| ())
            .map_err(|e| e.to_string());
        println!("  persistent atomicity: {}", verdict(&persistent));
        println!("  transient atomicity:  {}", verdict(&transient));
        println!();
    }
    println!("The transient run shows the overlapping write of Fig. 1 (left): after the");
    println!("writer's crash, a read still returns v1 and a later read returns v2 while");
    println!("W(v3) is in progress. Transient atomicity places W(v2)'s missing reply just");
    println!("before W(v3)'s reply (a weak completion); persistent atomicity cannot.");
}

fn verdict(r: &Result<(), String>) -> String {
    match r {
        Ok(()) => "SATISFIED".to_string(),
        Err(e) => format!("VIOLATED ({e})"),
    }
}
