//! A sharded key-value store on a real 3-node cluster: puts and gets
//! through `KvClient`, one node killed and recovered mid-traffic, and the
//! recorded history certified atomic **per key** at the end.
//!
//! ```text
//! cargo run --example kv_store
//! ```

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use rmem_consistency::{Criterion, History};
use rmem_core::{Persistent, SharedMemory};
use rmem_kv::history::certify_per_key;
use rmem_kv::{codec, KeyMap, KvClient, ShardRouter};
use rmem_net::LocalCluster;
use rmem_types::{Op, OpResult, ProcessId};

/// Records one client operation into the shared history around the
/// blocking call: invocation on entry, reply on return. Coarse (lock
/// order approximates real-time order) but sound — it can only make
/// intervals look longer, never shorter, so a pass is a real pass.
struct Recorder {
    history: Arc<Mutex<History>>,
    pid: ProcessId,
}

impl Recorder {
    fn put(&self, kv: &KvClient, router: &ShardRouter, key: &str, value: &[u8]) {
        let reg = router.register_for(key);
        let op = {
            let mut h = self.history.lock().unwrap();
            h.invoke(
                self.pid,
                Op::WriteAt(
                    reg,
                    codec::encode_entry(key, &Bytes::copy_from_slice(value), 0),
                ),
            )
        };
        kv.put(key, value.to_vec()).expect("put");
        self.history.lock().unwrap().reply(op, OpResult::Written);
    }

    fn get(&self, kv: &KvClient, router: &ShardRouter, key: &str) -> Option<Bytes> {
        let reg = router.register_for(key);
        let op = self
            .history
            .lock()
            .unwrap()
            .invoke(self.pid, Op::ReadAt(reg));
        let value = kv.get(key).expect("get");
        let payload = match &value {
            Some(v) => codec::encode_entry(key, v, 0),
            None => rmem_types::Value::bottom(),
        };
        self.history
            .lock()
            .unwrap()
            .reply(op, OpResult::ReadValue(payload));
        value
    }
}

fn main() {
    println!("kv_store: a sharded store surviving a crash, certified per key\n");

    let mut cluster =
        LocalCluster::channel(3, SharedMemory::factory(Persistent::flavor())).expect("cluster");
    let router = ShardRouter::new(8);
    let keys = router.covering_keys("item:");
    let key_map = KeyMap::new(&router, keys.iter().map(String::as_str));
    let history = Arc::new(Mutex::new(History::new()));

    // Phase 1: two "users" write and read concurrently through different
    // nodes.
    {
        let kv = KvClient::new(cluster.clients(), router).expect("client");
        std::thread::scope(|scope| {
            for (user, chunk) in keys.chunks(4).enumerate() {
                let kv = kv.clone();
                let recorder = Recorder {
                    history: history.clone(),
                    pid: ProcessId(user as u16),
                };
                scope.spawn(move || {
                    for (i, key) in chunk.iter().enumerate() {
                        recorder.put(&kv, &router, key, format!("v{user}.{i}").as_bytes());
                        let got = recorder.get(&kv, &router, key);
                        assert!(got.is_some(), "own write must be visible");
                    }
                });
            }
        });
        println!(
            "phase 1  2 concurrent users wrote and read {} keys",
            keys.len()
        );
    }

    // Phase 2: kill p2 mid-run; the store keeps serving on {p0, p1}.
    cluster.kill(ProcessId(2));
    history.lock().unwrap().crash(ProcessId(2));
    println!("phase 2  p2 killed — volatile state gone, logs intact");
    {
        let kv = KvClient::new(cluster.clients(), router).expect("client");
        let recorder = Recorder {
            history: history.clone(),
            pid: ProcessId(0),
        };
        for key in &keys[..4] {
            recorder.put(&kv, &router, key, b"updated-while-degraded");
        }
        println!("phase 3  4 keys overwritten with p2 down");
    }

    // Phase 3: recover p2 and read everything through it (its client
    // handle is last in the clients() list — route a fresh client).
    cluster.restart(ProcessId(2)).expect("restart");
    history.lock().unwrap().recover(ProcessId(2));
    {
        let kv = KvClient::new(cluster.clients(), router).expect("client");
        let recorder = Recorder {
            history: history.clone(),
            pid: ProcessId(1),
        };
        let mut hits = 0;
        for key in &keys {
            if recorder.get(&kv, &router, key).is_some() {
                hits += 1;
            }
        }
        assert_eq!(
            hits,
            keys.len(),
            "every key must still be present after recovery"
        );
        println!("phase 4  p2 recovered; all {} keys readable", keys.len());
    }
    cluster.shutdown();

    // Certification: the recorded history, sliced per key, must satisfy
    // persistent atomicity — reads never go back in time, even across the
    // crash.
    let h = history.lock().unwrap().clone();
    let cert = certify_per_key(&h, &key_map, Criterion::Persistent)
        .expect("the run must be atomic per key");
    println!(
        "\n✓ certified: {} keys persistent-atomic across {} events (incl. crash + recovery)",
        cert.per_key.len(),
        h.len(),
    );
}
