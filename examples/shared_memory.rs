//! Shared *memory*, not just one register: a small replicated key→slot
//! store built on the multi-register layer, surviving a total power
//! failure on real threads.
//!
//! Each named key is mapped to a register id; every register runs its own
//! independent instance of the paper's persistent-atomic emulation
//! (per-register quorums, timestamps, logs), and by the locality of
//! linearizability the whole memory is persistent-atomic.
//!
//! ```text
//! cargo run --example shared_memory
//! ```

use rmem_core::{Persistent, SharedMemory};
use rmem_net::LocalCluster;
use rmem_types::{ProcessId, RegisterId, Value};

/// A tiny fixed directory: key → register id. (A production system would
/// hash keys into a register space.)
const KEYS: &[(&str, RegisterId)] = &[
    ("leader", RegisterId(0)),
    ("epoch", RegisterId(1)),
    ("quota", RegisterId(2)),
];

fn reg_of(key: &str) -> RegisterId {
    KEYS.iter()
        .find(|(k, _)| *k == key)
        .map(|(_, r)| *r)
        .expect("known key")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cluster = LocalCluster::channel(3, SharedMemory::factory(Persistent::flavor()))?;
    println!("3-node shared memory (persistent-atomic per register)");

    // Different processes write different slots concurrently-ish.
    cluster
        .client(ProcessId(0))
        .write_at(reg_of("leader"), Value::from("node-0"))?;
    cluster
        .client(ProcessId(1))
        .write_at(reg_of("epoch"), Value::from_u32(1))?;
    cluster
        .client(ProcessId(2))
        .write_at(reg_of("quota"), Value::from_u32(1000))?;

    for (key, reg) in KEYS {
        let v = cluster.client(ProcessId(0)).read_at(*reg)?;
        println!("  {key} = {v}");
    }

    // Bump the epoch through another node, then a full blackout.
    cluster
        .client(ProcessId(2))
        .write_at(reg_of("epoch"), Value::from_u32(2))?;
    println!("total power failure…");
    for pid in ProcessId::all(3) {
        cluster.kill(pid);
    }
    for pid in ProcessId::all(3) {
        cluster.restart(pid)?;
    }

    println!("after recovery:");
    let mut all_good = true;
    for (key, reg) in KEYS {
        let v = cluster.client(ProcessId(1)).read_at(*reg)?;
        println!("  {key} = {v}");
        all_good &= !v.is_bottom();
    }
    assert!(all_good, "every slot must survive the blackout");
    assert_eq!(
        cluster
            .client(ProcessId(1))
            .read_at(reg_of("epoch"))?
            .as_u32(),
        Some(2),
        "the last epoch bump must be the one that survives"
    );
    cluster.shutdown();
    println!("all slots recovered from the per-register stable logs.");
    Ok(())
}
