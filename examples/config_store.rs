//! A replicated configuration store on real threads.
//!
//! The motivating workload of shared-memory emulations: a small piece of
//! critical state (here: a serialized configuration blob) that must stay
//! readable and consistent while individual nodes crash and recover. The
//! cluster runs the transient-atomic register — the paper's recommendation
//! when logging is expensive and a writer crashing mid-update is rare —
//! over in-memory transports with crash-surviving storage.
//!
//! ```text
//! cargo run --example config_store
//! ```

use rmem_core::Transient;
use rmem_net::LocalCluster;
use rmem_types::{ProcessId, Value};

fn config_blob(generation: u32, replicas: u32) -> Value {
    Value::from(format!("generation={generation} replicas={replicas} feature_x=on").as_str())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cluster = LocalCluster::channel(5, Transient::factory())?;
    println!("5-node config store up (transient-atomic register)");

    // The operator publishes generation 1 through node 0.
    cluster.client(ProcessId(0)).write(config_blob(1, 5))?;
    println!("published: {}", cluster.client(ProcessId(3)).read()?);

    // Two nodes go down — a minority; the store keeps serving.
    cluster.kill(ProcessId(0));
    cluster.kill(ProcessId(4));
    println!("nodes p0 and p4 killed; store still serves:");
    println!("  read via p2: {}", cluster.client(ProcessId(2)).read()?);

    // A new generation is published while they are down.
    cluster.client(ProcessId(1)).write(config_blob(2, 5))?;
    println!("published generation 2 via p1");

    // The crashed nodes come back, recover from their stable storage, and
    // immediately serve the *current* configuration.
    cluster.restart(ProcessId(0))?;
    cluster.restart(ProcessId(4))?;
    let v = cluster.client(ProcessId(0)).read()?;
    println!("recovered p0 reads: {v}");
    assert_eq!(
        v,
        config_blob(2, 5),
        "recovered node must see the latest configuration"
    );

    // Even a full-cluster power failure keeps the configuration: every
    // node crashes, every node recovers.
    for pid in ProcessId::all(5) {
        cluster.kill(pid);
    }
    println!("full-cluster power failure…");
    for pid in ProcessId::all(5) {
        cluster.restart(pid)?;
    }
    let v = cluster.client(ProcessId(3)).read()?;
    println!("after total restart, p3 reads: {v}");
    assert_eq!(v, config_blob(2, 5));

    cluster.shutdown();
    println!("done: the configuration survived minority crashes, updates during");
    println!("degraded operation, and a total power failure.");
    Ok(())
}
