//! The paper's §V-A testbed, scaled to one machine: processes exchanging
//! UDP datagrams and logging synchronously to disk (`fsync` per store),
//! with a crash/restart in the middle.
//!
//! ```text
//! cargo run --example real_cluster
//! ```

use rmem_core::Persistent;
use rmem_net::LocalCluster;
use rmem_types::{ProcessId, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("rmem-real-cluster-{}", std::process::id()));
    println!(
        "3-node persistent-atomic cluster over loopback UDP; logs under {}",
        dir.display()
    );

    let mut cluster = LocalCluster::udp(3, Persistent::factory(), &dir)?;

    // Timed writes, like the paper's measurement loop.
    let client = cluster.client(ProcessId(0));
    let start = std::time::Instant::now();
    let rounds = 20u32;
    for i in 0..rounds {
        client.write(Value::from_u32(i))?;
    }
    let mean = start.elapsed().as_micros() as f64 / f64::from(rounds);
    println!(
        "{rounds} writes done, mean latency {mean:.0}µs (2 UDP round-trips + 2 causal fsync logs)"
    );

    let v = cluster.client(ProcessId(1)).read()?;
    println!("read via p1: {}", v.as_u32().expect("u32 payload"));

    // Crash p0 (its files stay), write elsewhere, restart, read back.
    cluster.kill(ProcessId(0));
    println!("p0 killed (log files survive on disk)");
    cluster.client(ProcessId(2)).write(Value::from_u32(4242))?;
    cluster.restart(ProcessId(0))?;
    let v = cluster.client(ProcessId(0)).read()?;
    println!(
        "p0 restarted from its fsync'd logs and reads: {}",
        v.as_u32().unwrap()
    );
    assert_eq!(v.as_u32(), Some(4242));

    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!("done");
    Ok(())
}
