//! A tour of the fault model: message loss, duplication, partitions and
//! crash storms — with every run certified by the atomicity checkers.
//!
//! ```text
//! cargo run --example fault_tour [seed]
//! ```

use rmem_consistency::check_persistent;
use rmem_core::Persistent;
use rmem_sim::workload::ClosedLoop;
use rmem_sim::{ClusterConfig, NetConfig, PlannedEvent, Schedule, Simulation};
use rmem_types::{OpKind, ProcessId, Value};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);

    // A hostile network: 20% loss, 10% duplication, jittered delays …
    let net = NetConfig::lossy(0.20, 0.10);
    let config = ClusterConfig::new(5).with_net(net);

    // … plus a crash storm: every process crashes at least once, two of
    // them simultaneously, all while clients keep issuing operations.
    let schedule = Schedule::new()
        .at(30_000, PlannedEvent::Crash(ProcessId(1)))
        .at(30_000, PlannedEvent::Crash(ProcessId(3)))
        .at(60_000, PlannedEvent::Recover(ProcessId(1)))
        .at(65_000, PlannedEvent::Recover(ProcessId(3)))
        .at(90_000, PlannedEvent::Crash(ProcessId(0)))
        .at(120_000, PlannedEvent::Recover(ProcessId(0)))
        .at(150_000, PlannedEvent::Crash(ProcessId(2)))
        .at(150_500, PlannedEvent::Crash(ProcessId(4)))
        .at(180_000, PlannedEvent::Recover(ProcessId(2)))
        .at(185_000, PlannedEvent::Recover(ProcessId(4)));

    let mut sim = Simulation::new(config, Persistent::factory(), seed).with_schedule(schedule);
    sim.add_closed_loop(
        ClosedLoop::writes(ProcessId(0), Value::from_u32(1), 25)
            .with_think(rmem_types::Micros(5_000)),
    );
    sim.add_closed_loop(ClosedLoop::reads(ProcessId(2), 25).with_think(rmem_types::Micros(5_000)));
    let report = sim.run();

    let writes = report.trace.latencies(OpKind::Write);
    let reads = report.trace.latencies(OpKind::Read);
    println!("seed {seed}:");
    println!(
        "  {} writes and {} reads completed despite {} dropped and {} duplicated messages",
        writes.len(),
        reads.len(),
        report.messages_dropped,
        report.messages_duplicated
    );
    println!(
        "  {} crashes, {} recoveries, {} invocations lost to downtime",
        report.trace.crashes, report.trace.recoveries, report.trace.invokes_dropped
    );
    if let Some(stats) = rmem_sim::LatencyStats::from_sample(writes) {
        println!("  write latency: {stats}");
    }
    if let Some(stats) = rmem_sim::LatencyStats::from_sample(reads) {
        println!("  read latency:  {stats}");
    }

    match check_persistent(&report.trace.to_history()) {
        Ok(_) => println!("  persistent atomicity: SATISFIED"),
        Err(e) => {
            println!("  persistent atomicity: VIOLATED — {e}");
            std::process::exit(1);
        }
    }
}
