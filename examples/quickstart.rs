//! Quickstart: a persistent-atomic register emulated by three simulated
//! processes, exercised through writes, reads and a crash — then certified
//! by the atomicity checker.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rmem_consistency::check_persistent;
use rmem_core::Persistent;
use rmem_sim::{ClusterConfig, PlannedEvent, Schedule, Simulation};
use rmem_types::{Op, ProcessId, Value};

fn main() {
    // Three processes, the paper's LAN/disk constants (δ=100µs, λ=200µs).
    let config = ClusterConfig::new(3);

    // A scripted run: p0 writes, p1 reads, p0 crashes mid-write and
    // recovers, p2 reads what the recovery finished.
    let schedule = Schedule::new()
        .at(
            1_000,
            PlannedEvent::Invoke(ProcessId(0), Op::Write(Value::from("hello"))),
        )
        .at(10_000, PlannedEvent::Invoke(ProcessId(1), Op::Read))
        .at(
            20_000,
            PlannedEvent::Invoke(ProcessId(0), Op::Write(Value::from("world"))),
        )
        .at(20_500, PlannedEvent::Crash(ProcessId(0))) // mid-write, after its pre-log
        .at(25_000, PlannedEvent::Recover(ProcessId(0)))
        .at(35_000, PlannedEvent::Invoke(ProcessId(2), Op::Read));

    let mut sim = Simulation::new(config, Persistent::factory(), 42).with_schedule(schedule);
    let report = sim.run();

    println!("operations:");
    for op in report.trace.operations() {
        println!("  {}", rmem_examples::describe_op(op));
    }
    println!();
    println!(
        "messages sent/delivered: {}/{}   stores applied: {}   crashes: {}",
        report.trace.messages_sent,
        report.trace.messages_delivered,
        report.trace.stores_applied,
        report.trace.crashes,
    );

    // The punchline: the recorded history satisfies persistent atomicity.
    let history = report.trace.to_history();
    match check_persistent(&history) {
        Ok(verdict) => println!(
            "persistent atomicity: SATISFIED (witness linearization of {} ops)",
            verdict.witness.len()
        ),
        Err(violation) => println!("persistent atomicity: VIOLATED — {violation}"),
    }
}
