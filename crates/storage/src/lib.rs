//! Stable-storage substrate for the crash-recovery emulations.
//!
//! The paper's model (§II) gives every process a *volatile* and a *stable*
//! storage; `store` writes a record durably and `retrieve` reads it back
//! after a crash. This crate provides:
//!
//! * the [`StableStorage`] trait mirroring those two primitives;
//! * [`MemStorage`] — an in-memory implementation the deterministic
//!   simulator holds *outside* the process automaton, so it survives
//!   simulated crashes exactly like a disk survives a machine reboot;
//! * [`FileStorage`] — a real directory-backed implementation that
//!   `fsync`s every store (the paper writes its log files synchronously,
//!   §V-A, precisely because buffered writes would void even transient
//!   atomicity);
//! * [`WalStorage`] — a segmented, append-only write-ahead log with
//!   **group commit**: appends are cheap ([`StableStorage::begin_store`]),
//!   one [`flush`](StableStorage::flush) makes every outstanding append
//!   durable at once, and recovery replays the log (CRC-guarded, torn
//!   tails truncated) to rebuild the latest record per slot. The §V-A
//!   invariant is preserved in its real form — *ack after durable*, not
//!   *fsync per store* — because nothing is acknowledged before the fsync
//!   covering it returns;
//! * [`IntentJournal`] — a tiny reusable journal of begun-but-unresolved
//!   client writes (durable before the first datagram leaves), the
//!   storage half of detectable client recovery (`rmem_kv`'s
//!   `KvClient::resolve`);
//! * typed [`records`] for the three log slots of the paper's pseudocode
//!   (`writing`, `written`, `recovered`) and their binary encoding;
//! * instrumentation wrappers: [`CountingStorage`] (stores, bytes,
//!   fsync-level commit accounting — the raw ingredient of
//!   log-complexity and group-commit measurements) and [`FaultyStorage`]
//!   (failure injection and slow-disk delays for robustness tests).
//!
//! # Example
//!
//! ```
//! use rmem_storage::{records, MemStorage, StableStorage};
//! use rmem_types::{ProcessId, Timestamp, Value};
//!
//! let mut disk = MemStorage::new();
//! let rec = records::WrittenRecord {
//!     ts: Timestamp::new(3, ProcessId(1)),
//!     value: Value::from_u32(42),
//! };
//! disk.store(records::KEY_WRITTEN, rec.encode())?;
//!
//! // ... the process crashes; on recovery it retrieves the record:
//! let bytes = disk.retrieve(records::KEY_WRITTEN)?.expect("stored");
//! assert_eq!(records::WrittenRecord::decode(&bytes)?.value.as_u32(), Some(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counting;
pub mod error;
pub mod faulty;
pub mod file;
pub mod intent;
pub mod memory;
pub mod records;
pub mod wal;

pub use counting::{CountingStorage, StoreCounters};
pub use error::StorageError;
pub use faulty::{FaultPlan, FaultyStorage};
pub use file::FileStorage;
pub use intent::{Intent, IntentJournal, IntentState};
pub use memory::MemStorage;
pub use wal::{RecoverySummary, WalOptions, WalStorage};

use bytes::Bytes;

/// A handle correlating one [`StableStorage::begin_store`] with the flush
/// that makes it durable.
///
/// Tickets are ordered: a [`flush`](StableStorage::flush) covers every
/// ticket issued before it, so durability is a monotone frontier and
/// [`poll_durable`](StableStorage::poll_durable) is a simple comparison.
/// Synchronous backends (everything but [`WalStorage`]) are durable the
/// moment `begin_store` returns, so their tickets are born durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StoreTicket(pub u64);

/// The stable-storage primitives of the crash-recovery model (§II):
/// `store` persists a record durably under a named slot, `retrieve` reads
/// the most recent record in a slot.
///
/// Slots are overwritten in place, matching the pseudocode where e.g. a
/// second `store(writing, …)` replaces the first. Implementations must
/// guarantee that once `store` returns `Ok`, the record survives a crash
/// of the process (for [`FileStorage`] that means the data is `fsync`ed;
/// for [`MemStorage`] it means the map lives outside the simulated
/// process).
pub trait StableStorage: Send {
    /// Durably stores `bytes` under `key`, replacing any previous record.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError`] if the record could not be made durable;
    /// in that case the previous record in the slot must still be intact.
    fn store(&mut self, key: &str, bytes: Bytes) -> Result<(), StorageError>;

    /// Retrieves the most recently stored record under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError`] on I/O failure. A missing slot is `Ok(None)`,
    /// not an error — every slot is empty before its first store.
    fn retrieve(&self, key: &str) -> Result<Option<Bytes>, StorageError>;

    /// Lists the currently occupied slots (order unspecified). Used by
    /// recovery snapshots and debugging tools.
    fn keys(&self) -> Vec<String>;

    /// Begins a store without waiting for durability: the record is
    /// staged (appended, buffered) and becomes durable at the next
    /// [`flush`](StableStorage::flush). Returns a ticket the caller can
    /// poll.
    ///
    /// The default implementation delegates to the blocking
    /// [`store`](StableStorage::store) — synchronous backends are durable
    /// on return, so the ticket is immediately
    /// [`poll_durable`](StableStorage::poll_durable). [`WalStorage`]
    /// overrides this with a real append-now/fsync-later split, which is
    /// what makes group commit possible: many `begin_store`s, one flush.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError`] if the record could not be staged; the
    /// previous record in the slot must still be intact.
    fn begin_store(&mut self, key: &str, bytes: Bytes) -> Result<StoreTicket, StorageError> {
        self.store(key, bytes)?;
        Ok(StoreTicket(0))
    }

    /// Makes every record staged by
    /// [`begin_store`](StableStorage::begin_store) durable (the group
    /// commit: one fsync covers all of them). No-op for synchronous
    /// backends.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError`] if durability could not be achieved; in
    /// that case **none** of the outstanding records may be acknowledged
    /// (the crash-recovery model's answer is to crash the process).
    fn flush(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    /// Whether the store behind `ticket` has been covered by a flush.
    /// Synchronous backends always answer `true`.
    fn poll_durable(&self, _ticket: StoreTicket) -> bool {
        true
    }

    /// How many physical fsyncs one commit (a blocking `store`, or a
    /// `flush`) costs on this backend: 0 for memory-backed storage, 2 for
    /// [`FileStorage`] (file + directory), 1 for [`WalStorage`]'s segment
    /// fsync. Instrumentation ([`CountingStorage`]) multiplies commits by
    /// this to report fsync counts.
    fn fsyncs_per_commit(&self) -> u64 {
        1
    }
}

impl StableStorage for Box<dyn StableStorage> {
    fn store(&mut self, key: &str, bytes: Bytes) -> Result<(), StorageError> {
        (**self).store(key, bytes)
    }

    fn retrieve(&self, key: &str) -> Result<Option<Bytes>, StorageError> {
        (**self).retrieve(key)
    }

    fn keys(&self) -> Vec<String> {
        (**self).keys()
    }

    fn begin_store(&mut self, key: &str, bytes: Bytes) -> Result<StoreTicket, StorageError> {
        (**self).begin_store(key, bytes)
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        (**self).flush()
    }

    fn poll_durable(&self, ticket: StoreTicket) -> bool {
        (**self).poll_durable(ticket)
    }

    fn fsyncs_per_commit(&self) -> u64 {
        (**self).fsyncs_per_commit()
    }
}

/// Adapter exposing any [`StableStorage`] as the read-only
/// [`rmem_types::StableSnapshot`] view handed to recovering automata.
pub struct SnapshotView<'a, S: StableStorage + ?Sized>(&'a S);

impl<'a, S: StableStorage + ?Sized> SnapshotView<'a, S> {
    /// Wraps a storage reference.
    pub fn new(storage: &'a S) -> Self {
        SnapshotView(storage)
    }
}

impl<S: StableStorage + ?Sized> rmem_types::StableSnapshot for SnapshotView<'_, S> {
    fn get(&self, key: &str) -> Option<Bytes> {
        self.0.retrieve(key).ok().flatten()
    }

    fn keys(&self) -> Vec<String> {
        self.0.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_types::StableSnapshot;

    #[test]
    fn snapshot_view_reads_through() {
        let mut mem = MemStorage::new();
        mem.store("written", Bytes::from_static(b"x")).unwrap();
        let view = SnapshotView::new(&mem);
        assert_eq!(view.get("written"), Some(Bytes::from_static(b"x")));
        assert_eq!(view.get("missing"), None);
    }
}
