//! The client-side **intent journal**: a tiny [`WalStorage`]-backed log
//! of begun-but-unresolved writes, the durable half of detectable client
//! recovery.
//!
//! A client that may crash mid-write journals each write's *intent* —
//! its [`OpTag`], key and value — **before the first datagram leaves**,
//! and tombstones it once the write is acknowledged. After a crash the
//! journal's [`pending`](IntentJournal::pending) set is exactly the set
//! of ops whose outcome is ambiguous; the store layer (`rmem_kv`'s
//! `KvClient::resolve`) re-reads quorum state to settle each one.
//!
//! # Lifecycle
//!
//! ```text
//! Prepared ──(first datagram about to leave)──► Sent ──(ack)──► tombstone
//!     │                                           │
//!     └──(resolve: fence, nothing ever left)──► Aborted
//!                                                 └─(resolve)─► Landed
//! ```
//!
//! * [`IntentState::Prepared`] — journaled, **nothing sent yet**. A
//!   resolver may fence the op here (a durable
//!   [`transition`](IntentJournal::transition) to `Aborted`): the owning
//!   client checks the state under the journal lock before sending, so an
//!   aborted op provably never reaches the wire.
//! * [`IntentState::Sent`] — the first datagram may have left; only a
//!   quorum read can settle the outcome.
//! * Terminal states: a **tombstone** (empty record — the ack path) and
//!   the explicit [`IntentState::Landed`]/[`IntentState::Aborted`]
//!   verdicts written by a resolver, kept durable so repeated resolves
//!   of one op always agree.
//!
//! Sequence numbers are allocated from the journal
//! ([`next_seq`](IntentJournal::next_seq)) and never restart — slots are
//! never deleted, only overwritten — so a recovered client cannot reuse
//! a crashed op's identity for a new write.

use std::collections::BTreeMap;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rmem_types::{DecodeError, OpTag};

use crate::{StableStorage, StorageError, WalStorage};

/// Where one journaled write stands in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntentState {
    /// Journaled durably; no datagram has left yet.
    Prepared,
    /// The first datagram may have left; the outcome is ambiguous until
    /// resolved against quorum state.
    Sent,
    /// Resolved: the write is durably applied (observed, acked, or
    /// completed by the resolver's re-issue under the same tag).
    Landed,
    /// Resolved: the write provably never left the client and is fenced —
    /// it may never be issued.
    Aborted,
}

impl IntentState {
    fn to_byte(self) -> u8 {
        match self {
            IntentState::Prepared => 1,
            IntentState::Sent => 2,
            IntentState::Landed => 3,
            IntentState::Aborted => 4,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(IntentState::Prepared),
            2 => Some(IntentState::Sent),
            3 => Some(IntentState::Landed),
            4 => Some(IntentState::Aborted),
            _ => None,
        }
    }

    /// Whether the op still awaits a verdict (shows up in
    /// [`IntentJournal::pending`]).
    pub fn is_pending(self) -> bool {
        matches!(self, IntentState::Prepared | IntentState::Sent)
    }
}

/// One journaled write intent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Intent {
    /// The logical write's client-assigned identity.
    pub tag: OpTag,
    /// The store key being written.
    pub key: String,
    /// The value being written.
    pub value: Bytes,
    /// Lifecycle position.
    pub state: IntentState,
}

/// A tiny durable log of begun-but-unresolved write intents (see the
/// [module docs](self)).
///
/// Backed by any [`StableStorage`]; production clients use
/// [`WalStorage`] ([`IntentJournal::open`]) so a whole recovery journal
/// costs one log directory and group-committed appends.
pub struct IntentJournal {
    storage: Box<dyn StableStorage>,
    /// In-memory mirror of every live (non-tombstoned) slot.
    index: BTreeMap<OpTag, Intent>,
    /// Highest sequence number ever journaled (per this journal's
    /// client), including tombstoned ops.
    max_seq: Option<u64>,
}

fn slot_name(tag: OpTag) -> String {
    format!("op-{:04x}-{:016x}", tag.client, tag.seq)
}

fn parse_slot(slot: &str) -> Option<OpTag> {
    let rest = slot.strip_prefix("op-")?;
    let (client, seq) = rest.split_once('-')?;
    Some(OpTag {
        client: u16::from_str_radix(client, 16).ok()?,
        seq: u64::from_str_radix(seq, 16).ok()?,
    })
}

fn encode_record(intent: &Intent) -> Bytes {
    let mut buf = BytesMut::with_capacity(3 + intent.key.len() + intent.value.len());
    buf.put_u8(intent.state.to_byte());
    buf.put_u16(intent.key.len() as u16);
    buf.put_slice(intent.key.as_bytes());
    buf.put_slice(&intent.value);
    buf.freeze()
}

fn decode_record(tag: OpTag, slot: &str, bytes: &Bytes) -> Result<Intent, StorageError> {
    let corrupt = |context: &'static str| StorageError::Corrupt {
        key: slot.to_string(),
        source: DecodeError::UnexpectedEof { context },
    };
    let mut buf: &[u8] = bytes.as_ref();
    if buf.remaining() < 3 {
        return Err(corrupt("intent header"));
    }
    let state = IntentState::from_byte(buf.get_u8()).ok_or_else(|| StorageError::Corrupt {
        key: slot.to_string(),
        source: DecodeError::BadTag {
            context: "intent state",
            tag: bytes[0],
        },
    })?;
    let key_len = buf.get_u16() as usize;
    if buf.remaining() < key_len {
        return Err(corrupt("intent key"));
    }
    let key = String::from_utf8(buf.copy_to_bytes(key_len).to_vec())
        .map_err(|_| corrupt("intent key utf-8"))?;
    Ok(Intent {
        tag,
        key,
        value: Bytes::copy_from_slice(buf.chunk()),
        state,
    })
}

impl IntentJournal {
    /// Opens (or creates) a [`WalStorage`]-backed journal in `dir`,
    /// replaying any surviving intents.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError`] if the log cannot be opened/replayed or
    /// holds a corrupt intent record.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        Self::with_storage(Box::new(WalStorage::open(dir)?))
    }

    /// Wraps an existing storage (tests use [`crate::MemStorage`]),
    /// replaying any intents it already holds.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError`] if a surviving record is corrupt.
    pub fn with_storage(storage: Box<dyn StableStorage>) -> Result<Self, StorageError> {
        let mut journal = IntentJournal {
            storage,
            index: BTreeMap::new(),
            max_seq: None,
        };
        for slot in journal.storage.keys() {
            let Some(tag) = parse_slot(&slot) else {
                continue; // foreign slot sharing the storage
            };
            journal.max_seq = Some(journal.max_seq.map_or(tag.seq, |m| m.max(tag.seq)));
            let bytes = journal.storage.retrieve(&slot)?.unwrap_or_default();
            if bytes.is_empty() {
                continue; // tombstone: acknowledged and forgotten
            }
            let intent = decode_record(tag, &slot, &bytes)?;
            journal.index.insert(tag, intent);
        }
        Ok(journal)
    }

    /// The next unused sequence number for this journal's client —
    /// monotone across crashes, because slots are never deleted.
    pub fn next_seq(&self) -> u64 {
        self.max_seq.map_or(0, |m| m + 1)
    }

    /// Durably journals a new intent. Returns once the record is on
    /// stable storage — the caller may release its first datagram only
    /// after this returns (for [`IntentState::Sent`]) .
    ///
    /// # Errors
    ///
    /// Returns [`StorageError`] if the record could not be made durable;
    /// the op must then not be issued.
    pub fn begin(&mut self, intent: Intent) -> Result<(), StorageError> {
        self.storage
            .store(&slot_name(intent.tag), encode_record(&intent))?;
        self.max_seq = Some(
            self.max_seq
                .map_or(intent.tag.seq, |m| m.max(intent.tag.seq)),
        );
        self.index.insert(intent.tag, intent);
        Ok(())
    }

    /// Durably moves an intent to a new lifecycle state. Used for
    /// `Prepared → Sent` (before the first datagram) and for the
    /// resolver's `Landed`/`Aborted` verdicts (so repeated resolves
    /// agree even across a resolver crash).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError`] on unknown tags or storage failure.
    pub fn transition(&mut self, tag: OpTag, state: IntentState) -> Result<(), StorageError> {
        let slot = slot_name(tag);
        let mut intent = self
            .index
            .get(&tag)
            .cloned()
            .ok_or_else(|| StorageError::Corrupt {
                key: slot.clone(),
                source: DecodeError::UnexpectedEof {
                    context: "unknown intent tag",
                },
            })?;
        intent.state = state;
        self.storage.store(&slot, encode_record(&intent))?;
        self.index.insert(tag, intent);
        Ok(())
    }

    /// Tombstones an acknowledged op (the happy path's last step). Lazy:
    /// staged with [`StableStorage::begin_store`], made durable by a
    /// later group commit — losing the tombstone to a crash only means
    /// resolve re-confirms a landed op.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError`] if staging fails.
    pub fn acknowledge(&mut self, tag: OpTag) -> Result<(), StorageError> {
        self.storage.begin_store(&slot_name(tag), Bytes::new())?;
        self.index.remove(&tag);
        Ok(())
    }

    /// The current lifecycle state of `tag`: `None` for tags this
    /// journal never issued or has tombstoned (both mean "acknowledged
    /// or unknown — nothing to recover").
    pub fn state(&self, tag: OpTag) -> Option<IntentState> {
        self.index.get(&tag).map(|i| i.state)
    }

    /// Looks up a live intent.
    pub fn get(&self, tag: OpTag) -> Option<&Intent> {
        self.index.get(&tag)
    }

    /// Every op still awaiting a verdict (`Prepared` or `Sent`), in tag
    /// order — the recovery work list.
    pub fn pending(&self) -> Vec<Intent> {
        self.index
            .values()
            .filter(|i| i.state.is_pending())
            .cloned()
            .collect()
    }

    /// Forces any staged tombstones to disk (a group commit).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError`] if the flush fails.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.storage.flush()
    }
}

impl std::fmt::Debug for IntentJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntentJournal")
            .field("live", &self.index.len())
            .field("next_seq", &self.next_seq())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStorage;

    fn mem_journal() -> IntentJournal {
        IntentJournal::with_storage(Box::new(MemStorage::new())).unwrap()
    }

    fn intent(seq: u64, state: IntentState) -> Intent {
        Intent {
            tag: OpTag::new(7, seq),
            key: format!("k{seq}"),
            value: Bytes::from(vec![seq as u8; 3]),
            state,
        }
    }

    #[test]
    fn lifecycle_and_pending_set() {
        let mut j = mem_journal();
        assert_eq!(j.next_seq(), 0);
        j.begin(intent(0, IntentState::Prepared)).unwrap();
        assert_eq!(j.next_seq(), 1);
        assert_eq!(j.state(OpTag::new(7, 0)), Some(IntentState::Prepared));
        j.transition(OpTag::new(7, 0), IntentState::Sent).unwrap();
        assert_eq!(j.pending().len(), 1);
        j.acknowledge(OpTag::new(7, 0)).unwrap();
        assert_eq!(j.state(OpTag::new(7, 0)), None);
        assert!(j.pending().is_empty());
        // Tombstoned slots still pin the sequence floor.
        assert_eq!(j.next_seq(), 1);
    }

    #[test]
    fn verdicts_are_remembered_but_not_pending() {
        let mut j = mem_journal();
        j.begin(intent(0, IntentState::Prepared)).unwrap();
        j.begin(intent(1, IntentState::Sent)).unwrap();
        j.transition(OpTag::new(7, 0), IntentState::Aborted)
            .unwrap();
        j.transition(OpTag::new(7, 1), IntentState::Landed).unwrap();
        assert!(j.pending().is_empty());
        assert_eq!(j.state(OpTag::new(7, 0)), Some(IntentState::Aborted));
        assert_eq!(j.state(OpTag::new(7, 1)), Some(IntentState::Landed));
    }

    #[test]
    fn unknown_tag_transition_errors() {
        let mut j = mem_journal();
        assert!(j.transition(OpTag::new(1, 1), IntentState::Sent).is_err());
    }

    #[test]
    fn wal_journal_survives_reopen_with_pending_intents() {
        let dir = std::env::temp_dir().join(format!("rmem-intent-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut j = IntentJournal::open(&dir).unwrap();
            j.begin(Intent {
                tag: OpTag::new(3, 0),
                key: "alpha".into(),
                value: Bytes::from_static(b"v0"),
                state: IntentState::Sent,
            })
            .unwrap();
            j.begin(Intent {
                tag: OpTag::new(3, 1),
                key: "beta".into(),
                value: Bytes::from_static(b"v1"),
                state: IntentState::Prepared,
            })
            .unwrap();
            j.acknowledge(OpTag::new(3, 0)).unwrap();
            // Crash without syncing the tombstone: losing it is legal —
            // resolve just re-confirms a landed op. Here we sync so the
            // reopen sees exactly one pending intent.
            j.sync().unwrap();
        }
        let j = IntentJournal::open(&dir).unwrap();
        assert_eq!(j.next_seq(), 2, "tombstones still pin the floor");
        let pending = j.pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].key, "beta");
        assert_eq!(pending[0].state, IntentState::Prepared);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_slots_are_ignored() {
        let mut mem = MemStorage::new();
        mem.store("written", Bytes::from_static(b"x")).unwrap();
        let j = IntentJournal::with_storage(Box::new(mem)).unwrap();
        assert_eq!(j.next_seq(), 0);
        assert!(j.pending().is_empty());
    }

    #[test]
    fn corrupt_record_is_reported() {
        let mut mem = MemStorage::new();
        mem.store(&slot_name(OpTag::new(1, 0)), Bytes::from_static(b"\x09"))
            .unwrap();
        assert!(IntentJournal::with_storage(Box::new(mem)).is_err());
    }
}
