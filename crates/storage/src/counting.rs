//! Store-count instrumentation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use crate::{StableStorage, StorageError};

/// Shared counters collected by a [`CountingStorage`].
///
/// The counters are atomics behind an [`Arc`], so a harness keeps a handle
/// while the storage itself is owned by the runtime. These raw counts (how
/// many stores, how many bytes) complement the *causal-log* accounting done
/// by the simulator trace: raw counts say how much logging happened, the
/// trace says how much of it was on an operation's critical path.
#[derive(Debug, Default)]
pub struct StoreCounters {
    stores: AtomicU64,
    bytes: AtomicU64,
    retrieves: AtomicU64,
}

impl StoreCounters {
    /// Creates zeroed counters.
    pub fn new() -> Arc<Self> {
        Arc::new(StoreCounters::default())
    }

    /// Number of successful `store` calls.
    pub fn stores(&self) -> u64 {
        self.stores.load(Ordering::Relaxed)
    }

    /// Total bytes across successful `store` calls.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Number of `retrieve` calls.
    pub fn retrieves(&self) -> u64 {
        self.retrieves.load(Ordering::Relaxed)
    }

    /// Resets all counters to zero (e.g. between benchmark phases).
    pub fn reset(&self) {
        self.stores.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.retrieves.store(0, Ordering::Relaxed);
    }
}

/// A [`StableStorage`] decorator that counts traffic into shared
/// [`StoreCounters`].
#[derive(Debug)]
pub struct CountingStorage<S> {
    inner: S,
    counters: Arc<StoreCounters>,
}

impl<S: StableStorage> CountingStorage<S> {
    /// Wraps `inner`, reporting into `counters`.
    pub fn new(inner: S, counters: Arc<StoreCounters>) -> Self {
        CountingStorage { inner, counters }
    }

    /// The shared counters.
    pub fn counters(&self) -> &Arc<StoreCounters> {
        &self.counters
    }

    /// Unwraps the inner storage.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: StableStorage> StableStorage for CountingStorage<S> {
    fn store(&mut self, key: &str, bytes: Bytes) -> Result<(), StorageError> {
        let len = bytes.len() as u64;
        self.inner.store(key, bytes)?;
        self.counters.stores.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes.fetch_add(len, Ordering::Relaxed);
        Ok(())
    }

    fn retrieve(&self, key: &str) -> Result<Option<Bytes>, StorageError> {
        self.counters.retrieves.fetch_add(1, Ordering::Relaxed);
        self.inner.retrieve(key)
    }

    fn keys(&self) -> Vec<String> {
        self.inner.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStorage;

    #[test]
    fn counts_stores_bytes_and_retrieves() {
        let counters = StoreCounters::new();
        let mut s = CountingStorage::new(MemStorage::new(), counters.clone());
        s.store("a", Bytes::from_static(b"12345")).unwrap();
        s.store("b", Bytes::from_static(b"123")).unwrap();
        let _ = s.retrieve("a").unwrap();
        let _ = s.retrieve("missing").unwrap();
        assert_eq!(counters.stores(), 2);
        assert_eq!(counters.bytes(), 8);
        assert_eq!(counters.retrieves(), 2);
    }

    #[test]
    fn failed_store_is_not_counted() {
        use crate::{FaultPlan, FaultyStorage};
        let counters = StoreCounters::new();
        let inner = FaultyStorage::new(MemStorage::new(), FaultPlan::fail_every(1));
        let mut s = CountingStorage::new(inner, counters.clone());
        assert!(s.store("a", Bytes::from_static(b"x")).is_err());
        assert_eq!(counters.stores(), 0);
        assert_eq!(counters.bytes(), 0);
    }

    #[test]
    fn reset_zeroes_counters() {
        let counters = StoreCounters::new();
        let mut s = CountingStorage::new(MemStorage::new(), counters.clone());
        s.store("a", Bytes::from_static(b"x")).unwrap();
        counters.reset();
        assert_eq!(counters.stores(), 0);
        assert_eq!(counters.bytes(), 0);
        assert_eq!(counters.retrieves(), 0);
    }

    #[test]
    fn passthrough_keys_and_into_inner() {
        let counters = StoreCounters::new();
        let mut s = CountingStorage::new(MemStorage::new(), counters);
        s.store("k", Bytes::new()).unwrap();
        assert_eq!(s.keys(), vec!["k".to_string()]);
        let inner = s.into_inner();
        assert_eq!(inner.keys(), vec!["k".to_string()]);
    }
}
