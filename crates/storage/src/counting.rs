//! Store-count instrumentation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use crate::{StableStorage, StorageError, StoreTicket};

/// Shared counters collected by a [`CountingStorage`].
///
/// The counters are atomics behind an [`Arc`], so a harness keeps a handle
/// while the storage itself is owned by the runtime. These raw counts (how
/// many stores, how many bytes) complement the *causal-log* accounting done
/// by the simulator trace: raw counts say how much logging happened, the
/// trace says how much of it was on an operation's critical path.
///
/// The **commit**-level counters measure group commit: a commit is one
/// durability point (a blocking `store`, or a `flush` with staged
/// records), `fsyncs` weights commits by the backend's physical cost
/// ([`StableStorage::fsyncs_per_commit`]), and
/// [`mean_group_size`](StoreCounters::mean_group_size) says how many
/// stores each commit amortized.
#[derive(Debug, Default)]
pub struct StoreCounters {
    stores: AtomicU64,
    bytes: AtomicU64,
    retrieves: AtomicU64,
    commits: AtomicU64,
    fsyncs: AtomicU64,
}

impl StoreCounters {
    /// Creates zeroed counters.
    pub fn new() -> Arc<Self> {
        Arc::new(StoreCounters::default())
    }

    /// Number of successful `store` calls (blocking and
    /// `begin_store`-staged alike).
    pub fn stores(&self) -> u64 {
        self.stores.load(Ordering::Relaxed)
    }

    /// Total bytes across successful `store` calls.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Number of `retrieve` calls.
    pub fn retrieves(&self) -> u64 {
        self.retrieves.load(Ordering::Relaxed)
    }

    /// Number of commits: durability points that covered at least one
    /// store (each blocking `store` is its own commit of group size 1).
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Physical fsyncs those commits cost
    /// (commits × the backend's [`StableStorage::fsyncs_per_commit`]).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Mean stores per commit — the group-commit amortization factor
    /// (1.0 = no coalescing; 0.0 before any commit).
    pub fn mean_group_size(&self) -> f64 {
        let commits = self.commits();
        if commits == 0 {
            return 0.0;
        }
        self.stores() as f64 / commits as f64
    }

    /// Mean bytes made durable per commit (0.0 before any commit).
    pub fn bytes_per_commit(&self) -> f64 {
        let commits = self.commits();
        if commits == 0 {
            return 0.0;
        }
        self.bytes() as f64 / commits as f64
    }

    /// Resets all counters to zero (e.g. between benchmark phases).
    pub fn reset(&self) {
        self.stores.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.retrieves.store(0, Ordering::Relaxed);
        self.commits.store(0, Ordering::Relaxed);
        self.fsyncs.store(0, Ordering::Relaxed);
    }
}

/// A [`StableStorage`] decorator that counts traffic into shared
/// [`StoreCounters`].
#[derive(Debug)]
pub struct CountingStorage<S> {
    inner: S,
    counters: Arc<StoreCounters>,
    /// Stores staged (begin_store, not yet durable) since the last flush;
    /// a flush that covers any becomes one commit.
    staged: u64,
}

impl<S: StableStorage> CountingStorage<S> {
    /// Wraps `inner`, reporting into `counters`.
    pub fn new(inner: S, counters: Arc<StoreCounters>) -> Self {
        CountingStorage {
            inner,
            counters,
            staged: 0,
        }
    }

    /// The shared counters.
    pub fn counters(&self) -> &Arc<StoreCounters> {
        &self.counters
    }

    /// Unwraps the inner storage.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: StableStorage> StableStorage for CountingStorage<S> {
    fn store(&mut self, key: &str, bytes: Bytes) -> Result<(), StorageError> {
        let len = bytes.len() as u64;
        self.inner.store(key, bytes)?;
        self.counters.stores.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes.fetch_add(len, Ordering::Relaxed);
        self.counters.commits.fetch_add(1, Ordering::Relaxed);
        self.counters
            .fsyncs
            .fetch_add(self.inner.fsyncs_per_commit(), Ordering::Relaxed);
        Ok(())
    }

    fn retrieve(&self, key: &str) -> Result<Option<Bytes>, StorageError> {
        self.counters.retrieves.fetch_add(1, Ordering::Relaxed);
        self.inner.retrieve(key)
    }

    fn keys(&self) -> Vec<String> {
        self.inner.keys()
    }

    fn begin_store(&mut self, key: &str, bytes: Bytes) -> Result<StoreTicket, StorageError> {
        let len = bytes.len() as u64;
        let ticket = self.inner.begin_store(key, bytes)?;
        self.counters.stores.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes.fetch_add(len, Ordering::Relaxed);
        self.staged += 1;
        // A synchronous inner (default begin_store = store) is already
        // durable: that staging *was* a commit of group size 1.
        if self.inner.poll_durable(ticket) {
            self.staged -= 1;
            self.counters.commits.fetch_add(1, Ordering::Relaxed);
            self.counters
                .fsyncs
                .fetch_add(self.inner.fsyncs_per_commit(), Ordering::Relaxed);
        }
        Ok(ticket)
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        self.inner.flush()?;
        if self.staged > 0 {
            self.staged = 0;
            self.counters.commits.fetch_add(1, Ordering::Relaxed);
            self.counters
                .fsyncs
                .fetch_add(self.inner.fsyncs_per_commit(), Ordering::Relaxed);
        }
        Ok(())
    }

    fn poll_durable(&self, ticket: StoreTicket) -> bool {
        self.inner.poll_durable(ticket)
    }

    fn fsyncs_per_commit(&self) -> u64 {
        self.inner.fsyncs_per_commit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStorage;

    #[test]
    fn counts_stores_bytes_and_retrieves() {
        let counters = StoreCounters::new();
        let mut s = CountingStorage::new(MemStorage::new(), counters.clone());
        s.store("a", Bytes::from_static(b"12345")).unwrap();
        s.store("b", Bytes::from_static(b"123")).unwrap();
        let _ = s.retrieve("a").unwrap();
        let _ = s.retrieve("missing").unwrap();
        assert_eq!(counters.stores(), 2);
        assert_eq!(counters.bytes(), 8);
        assert_eq!(counters.retrieves(), 2);
    }

    #[test]
    fn failed_store_is_not_counted() {
        use crate::{FaultPlan, FaultyStorage};
        let counters = StoreCounters::new();
        let inner = FaultyStorage::new(MemStorage::new(), FaultPlan::fail_every(1));
        let mut s = CountingStorage::new(inner, counters.clone());
        assert!(s.store("a", Bytes::from_static(b"x")).is_err());
        assert_eq!(counters.stores(), 0);
        assert_eq!(counters.bytes(), 0);
    }

    #[test]
    fn reset_zeroes_counters() {
        let counters = StoreCounters::new();
        let mut s = CountingStorage::new(MemStorage::new(), counters.clone());
        s.store("a", Bytes::from_static(b"x")).unwrap();
        counters.reset();
        assert_eq!(counters.stores(), 0);
        assert_eq!(counters.bytes(), 0);
        assert_eq!(counters.retrieves(), 0);
    }

    #[test]
    fn group_commit_accounting_over_a_wal() {
        let dir = std::env::temp_dir().join(format!(
            "rmem-counting-wal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let counters = StoreCounters::new();
        let mut s = CountingStorage::new(crate::WalStorage::open(&dir).unwrap(), counters.clone());
        // Group of 3 → one commit, one fsync.
        let t1 = s.begin_store("a", Bytes::from_static(b"11")).unwrap();
        s.begin_store("b", Bytes::from_static(b"22")).unwrap();
        s.begin_store("c", Bytes::from_static(b"33")).unwrap();
        assert_eq!(counters.commits(), 0, "nothing durable before the flush");
        assert!(!s.poll_durable(t1));
        s.flush().unwrap();
        assert!(s.poll_durable(t1));
        assert_eq!(counters.stores(), 3);
        assert_eq!(counters.commits(), 1);
        assert_eq!(counters.fsyncs(), 1);
        assert!((counters.mean_group_size() - 3.0).abs() < f64::EPSILON);
        assert!((counters.bytes_per_commit() - 6.0).abs() < f64::EPSILON);
        // An empty flush is not a commit.
        s.flush().unwrap();
        assert_eq!(counters.commits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn synchronous_begin_store_counts_as_its_own_commit() {
        let counters = StoreCounters::new();
        let mut s = CountingStorage::new(MemStorage::new(), counters.clone());
        s.begin_store("a", Bytes::from_static(b"x")).unwrap();
        s.begin_store("b", Bytes::from_static(b"y")).unwrap();
        assert_eq!(counters.commits(), 2, "sync backends commit per store");
        assert_eq!(counters.fsyncs(), 0, "memory costs no physical fsync");
        assert!((counters.mean_group_size() - 1.0).abs() < f64::EPSILON);
        s.flush().unwrap();
        assert_eq!(counters.commits(), 2, "an idle flush adds nothing");
    }

    #[test]
    fn passthrough_keys_and_into_inner() {
        let counters = StoreCounters::new();
        let mut s = CountingStorage::new(MemStorage::new(), counters);
        s.store("k", Bytes::new()).unwrap();
        assert_eq!(s.keys(), vec!["k".to_string()]);
        let inner = s.into_inner();
        assert_eq!(inner.keys(), vec!["k".to_string()]);
    }
}
