//! A segmented, append-only write-ahead log with group commit.
//!
//! The paper's implementation note (§V-A) writes its log files
//! synchronously because buffered writes would void even transient
//! atomicity. The invariant that actually matters, though, is
//! **ack-after-durable**, not *fsync-per-store*: nothing may be
//! acknowledged before the write covering it is on disk, but *several*
//! writes may share one fsync. [`WalStorage`] exploits exactly that gap:
//!
//! * [`begin_store`](crate::StableStorage::begin_store) appends a
//!   CRC-guarded `(key, bytes)` record to the active segment — a cheap
//!   sequential write, no fsync;
//! * [`flush`](crate::StableStorage::flush) fsyncs the segment once,
//!   making **every** outstanding append durable — the group commit;
//! * the blocking [`store`](crate::StableStorage::store) is simply
//!   `begin_store` + `flush`, so the synchronous contract still holds for
//!   callers that want it.
//!
//! On open the log is replayed in segment order to rebuild the latest
//! record per slot. Every record's CRC is verified; a torn tail (short
//! header, short payload, or CRC mismatch in the newest segment) is
//! **truncated, never trusted**. For a genuine torn write — the only
//! corruption a crash can produce, since appends are sequential — the
//! truncation covers exactly the records whose fsync never returned,
//! which by ack-after-durable were never acknowledged to anyone. The
//! policy is truncate-from-first-bad-record: against *media* corruption
//! of an interior record of the newest segment it also drops the valid
//! records behind the damage (resynchronizing past a record whose
//! length fields are untrustworthy cannot be done soundly), while a bad
//! record in any *older* segment is reported as an error, never
//! guessed around. When the live set shrinks to a small fraction
//! of the log, [`flush`](crate::StableStorage::flush) compacts: the
//! latest records are rewritten into a fresh checkpoint segment and the
//! old segments are deleted (checkpoint first, durably, so a crash
//! between the two steps only leaves redundant history behind).
//!
//! # On-disk format
//!
//! Segments are files named `seg-<16 hex digits>.wal`, replayed in
//! numeric order. Each holds a sequence of records:
//!
//! ```text
//! [crc32 u32 BE][key_len u16 BE][val_len u32 BE][key bytes][val bytes]
//! ```
//!
//! The CRC (IEEE 802.3 polynomial) covers everything after it — both
//! length fields, the key and the value — so a torn length field is as
//! detectable as a torn payload.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::{StableStorage, StorageError, StoreTicket};

/// Fixed bytes per record before the key: crc32 + key_len + val_len.
const RECORD_HEADER: usize = 4 + 2 + 4;

/// Segment file prefix/suffix: `seg-<16 hex>.wal`.
const SEG_PREFIX: &str = "seg-";
const SEG_SUFFIX: &str = ".wal";

/// Tuning knobs for [`WalStorage`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Roll to a fresh segment once the active one exceeds this many
    /// bytes (checked at flush, so a group never straddles a roll).
    pub segment_bytes: u64,
    /// Compact when `live_bytes * compact_factor < total_bytes`, i.e.
    /// when the latest-record-per-slot set is less than
    /// `1/compact_factor` of the log.
    pub compact_factor: u64,
    /// Never compact a log smaller than this (compaction costs fsyncs;
    /// tiny logs replay instantly anyway).
    pub compact_min_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 4 * 1024 * 1024,
            compact_factor: 4,
            compact_min_bytes: 256 * 1024,
        }
    }
}

/// What replay found when the log was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Segments replayed (including an empty active segment).
    pub segments_replayed: usize,
    /// Records that passed their CRC and were applied.
    pub records_scanned: u64,
    /// Distinct slots live after replay (latest record per slot).
    pub records_kept: usize,
    /// Bytes cut off the newest segment because the tail was torn
    /// (short or CRC-mismatched).
    pub tail_bytes_truncated: u64,
}

/// A segmented write-ahead log implementing [`StableStorage`] with a real
/// append-now/fsync-later split (see the module docs).
#[derive(Debug)]
pub struct WalStorage {
    dir: PathBuf,
    opts: WalOptions,
    /// Latest record per slot. Reads are served from here; the log is
    /// only read at open.
    index: BTreeMap<String, Bytes>,
    /// Encoded size of the index's records (what a checkpoint would
    /// occupy).
    live_bytes: u64,
    /// Bytes across all segments.
    total_bytes: u64,
    /// Segment ids on disk, ascending; the last one is active.
    segments: Vec<u64>,
    active: fs::File,
    active_len: u64,
    /// Ticket of the most recent `begin_store`.
    last_lsn: u64,
    /// Highest ticket covered by a returned fsync.
    durable_lsn: u64,
    recovery: RecoverySummary,
}

impl WalStorage {
    /// Opens (creating if necessary) a log directory and replays it.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError`] on I/O failure, or
    /// [`StorageError::Corrupt`]-style I/O errors if a non-tail record
    /// fails its CRC (corruption *inside* the durable prefix is not a
    /// torn write and is never silently dropped).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        Self::open_with(dir, WalOptions::default())
    }

    /// [`open`](WalStorage::open) with explicit tuning knobs.
    ///
    /// # Errors
    ///
    /// As [`open`](WalStorage::open).
    pub fn open_with(dir: impl AsRef<Path>, opts: WalOptions) -> Result<Self, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| StorageError::io(dir.display().to_string(), e))?;
        let io = |e| StorageError::io(dir.display().to_string(), e);

        let mut segments = list_segments(&dir).map_err(io)?;
        let mut index = BTreeMap::new();
        let mut recovery = RecoverySummary::default();
        let mut total_bytes = 0u64;
        let last = segments.len().checked_sub(1);
        for (i, &seg) in segments.iter().enumerate() {
            let path = segment_path(&dir, seg);
            let data = fs::read(&path).map_err(io)?;
            let (consumed, scanned) =
                replay_segment(&data, &mut index, Some(i) == last).map_err(|offset| {
                    StorageError::io(
                        path.display().to_string(),
                        std::io::Error::other(format!(
                            "CRC mismatch at byte {offset} of a non-tail segment: the durable \
                             prefix is corrupt, refusing to guess"
                        )),
                    )
                })?;
            recovery.records_scanned += scanned;
            if consumed < data.len() as u64 {
                // Torn tail of the newest segment: cut it off durably so
                // the next append starts on a clean boundary.
                recovery.tail_bytes_truncated = data.len() as u64 - consumed;
                let f = fs::OpenOptions::new().write(true).open(&path).map_err(io)?;
                f.set_len(consumed).map_err(io)?;
                f.sync_data().map_err(io)?;
            }
            total_bytes += consumed;
            recovery.segments_replayed += 1;
        }
        if segments.is_empty() {
            create_segment(&dir, 0).map_err(io)?;
            segments.push(0);
            recovery.segments_replayed = 1;
        }
        recovery.records_kept = index.len();
        let active_id = *segments.last().expect("at least one segment");
        let active = fs::OpenOptions::new()
            .append(true)
            .open(segment_path(&dir, active_id))
            .map_err(io)?;
        let active_len = active.metadata().map_err(io)?.len();
        let live_bytes = index.iter().map(|(k, v)| encoded_len(k, v)).sum();
        Ok(WalStorage {
            dir,
            opts,
            index,
            live_bytes,
            total_bytes,
            segments,
            active,
            active_len,
            last_lsn: 0,
            durable_lsn: 0,
            recovery,
        })
    }

    /// What replay found when this log was opened.
    pub fn recovery_summary(&self) -> RecoverySummary {
        self.recovery
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Segment ids currently on disk, ascending.
    pub fn segment_ids(&self) -> &[u64] {
        &self.segments
    }

    /// Bytes across all segments (the replay cost of the next open).
    pub fn log_bytes(&self) -> u64 {
        self.total_bytes
    }

    fn io_err(&self, e: std::io::Error) -> StorageError {
        StorageError::io(self.dir.display().to_string(), e)
    }

    /// Rolls to a fresh active segment (durably: the new file and its
    /// directory entry are fsynced before any record lands in it).
    fn roll(&mut self) -> Result<(), StorageError> {
        let next = self.segments.last().expect("segments nonempty") + 1;
        self.active = create_segment(&self.dir, next).map_err(|e| self.io_err(e))?;
        self.segments.push(next);
        self.active_len = 0;
        Ok(())
    }

    /// Rewrites the live set into a checkpoint segment and deletes the
    /// history. Called under flush once the live set is a small fraction
    /// of the log. Crash-safe ordering: the checkpoint is fully durable
    /// (data + directory entry) before anything is deleted, and replay
    /// order means a crash in between only costs redundant bytes.
    fn compact(&mut self) -> Result<(), StorageError> {
        let ckpt_id = self.segments.last().expect("segments nonempty") + 1;
        let mut ckpt = create_segment(&self.dir, ckpt_id).map_err(|e| self.io_err(e))?;
        let mut written = 0u64;
        for (key, value) in &self.index {
            let rec = encode_record(key, value);
            ckpt.write_all(&rec).map_err(|e| self.io_err(e))?;
            written += rec.len() as u64;
        }
        ckpt.sync_data().map_err(|e| self.io_err(e))?;
        sync_dir(&self.dir).map_err(|e| self.io_err(e))?;
        for &old in &self.segments {
            fs::remove_file(segment_path(&self.dir, old)).map_err(|e| self.io_err(e))?;
        }
        sync_dir(&self.dir).map_err(|e| self.io_err(e))?;
        self.segments = vec![ckpt_id];
        self.total_bytes = written;
        self.active = ckpt;
        self.active_len = written;
        Ok(())
    }
}

impl StableStorage for WalStorage {
    fn store(&mut self, key: &str, bytes: Bytes) -> Result<(), StorageError> {
        self.begin_store(key, bytes)?;
        self.flush()
    }

    fn retrieve(&self, key: &str) -> Result<Option<Bytes>, StorageError> {
        Ok(self.index.get(key).cloned())
    }

    fn keys(&self) -> Vec<String> {
        self.index.keys().cloned().collect()
    }

    fn begin_store(&mut self, key: &str, bytes: Bytes) -> Result<StoreTicket, StorageError> {
        let rec = encode_record(key, &bytes);
        self.active
            .write_all(&rec)
            .map_err(|e| StorageError::io(key, e))?;
        self.active_len += rec.len() as u64;
        self.total_bytes += rec.len() as u64;
        if let Some(old) = self.index.insert(key.to_string(), bytes) {
            self.live_bytes -= encoded_len(key, &old);
        }
        self.live_bytes += rec.len() as u64;
        self.last_lsn += 1;
        Ok(StoreTicket(self.last_lsn))
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        if self.durable_lsn == self.last_lsn {
            return Ok(());
        }
        self.active.sync_data().map_err(|e| self.io_err(e))?;
        self.durable_lsn = self.last_lsn;
        // Maintenance after the commit point, so the group's latency is
        // one fsync and the occasional roll/compact rides behind it.
        if self.total_bytes > self.opts.compact_min_bytes
            && self.live_bytes.saturating_mul(self.opts.compact_factor) < self.total_bytes
        {
            self.compact()?;
        } else if self.active_len > self.opts.segment_bytes {
            self.roll()?;
        }
        Ok(())
    }

    fn poll_durable(&self, ticket: StoreTicket) -> bool {
        ticket.0 <= self.durable_lsn
    }

    fn fsyncs_per_commit(&self) -> u64 {
        1
    }
}

// -- Encoding ------------------------------------------------------------

fn encoded_len(key: &str, value: &Bytes) -> u64 {
    (RECORD_HEADER + key.len() + value.len()) as u64
}

fn encode_record(key: &str, value: &Bytes) -> Vec<u8> {
    let key = key.as_bytes();
    assert!(key.len() <= u16::MAX as usize, "slot name too long");
    assert!(value.len() <= u32::MAX as usize, "record too large");
    let mut out = Vec::with_capacity(RECORD_HEADER + key.len() + value.len());
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    out.extend_from_slice(&(key.len() as u16).to_be_bytes());
    out.extend_from_slice(&(value.len() as u32).to_be_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    let crc = crc32(&out[4..]);
    out[..4].copy_from_slice(&crc.to_be_bytes());
    out
}

/// Replays one segment's bytes into `index`. Returns `(bytes consumed,
/// records applied)`. A short or CRC-mismatched record is tolerated (and
/// everything after it ignored) only when `is_last` — a torn tail can
/// only exist at the end of the newest segment; anywhere else it is
/// corruption of the durable prefix and the error carries the offset.
fn replay_segment(
    data: &[u8],
    index: &mut BTreeMap<String, Bytes>,
    is_last: bool,
) -> Result<(u64, u64), u64> {
    let mut off = 0usize;
    let mut applied = 0u64;
    // Short header at the end of the data: torn tail candidate.
    while let Some(header) = data.get(off..off + RECORD_HEADER) {
        let crc = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes"));
        let key_len = u16::from_be_bytes(header[4..6].try_into().expect("2 bytes")) as usize;
        let val_len = u32::from_be_bytes(header[6..10].try_into().expect("4 bytes")) as usize;
        let body_end = off + RECORD_HEADER + key_len + val_len;
        let Some(covered) = data.get(off + 4..body_end) else {
            break; // short payload: torn tail candidate
        };
        if crc32(covered) != crc {
            break; // CRC mismatch: torn tail candidate
        }
        let key = match std::str::from_utf8(&covered[6..6 + key_len]) {
            Ok(k) => k.to_string(),
            Err(_) => break, // CRC passed but the key is not UTF-8: treat as torn
        };
        index.insert(key, Bytes::copy_from_slice(&covered[6 + key_len..]));
        applied += 1;
        off = body_end;
        if off == data.len() {
            return Ok((off as u64, applied));
        }
    }
    if is_last {
        Ok((off as u64, applied))
    } else {
        Err(off as u64)
    }
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("{SEG_PREFIX}{id:016x}{SEG_SUFFIX}"))
}

fn list_segments(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut ids = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(hex) = name
            .strip_prefix(SEG_PREFIX)
            .and_then(|s| s.strip_suffix(SEG_SUFFIX))
        {
            if let Ok(id) = u64::from_str_radix(hex, 16) {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

/// Creates a fresh segment durably: the empty file is fsynced, then the
/// directory, so the segment's existence survives a crash before its
/// first group lands.
fn create_segment(dir: &Path, id: u64) -> std::io::Result<fs::File> {
    let f = fs::OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(segment_path(dir, id))?;
    f.sync_all()?;
    sync_dir(dir)?;
    Ok(f)
}

fn sync_dir(dir: &Path) -> std::io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

// -- CRC-32 (IEEE 802.3), table-driven ----------------------------------

fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rmem-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn store_retrieve_roundtrip_and_reopen() {
        let dir = tmpdir("roundtrip");
        {
            let mut w = WalStorage::open(&dir).unwrap();
            assert_eq!(w.retrieve("written").unwrap(), None);
            w.store("written", Bytes::from_static(b"hello")).unwrap();
            w.store("writing", Bytes::from_static(b"w0")).unwrap();
            w.store("written", Bytes::from_static(b"world")).unwrap();
            assert_eq!(
                w.retrieve("written").unwrap(),
                Some(Bytes::from_static(b"world"))
            );
            assert_eq!(w.keys(), vec!["writing".to_string(), "written".to_string()]);
        }
        let w = WalStorage::open(&dir).unwrap();
        let r = w.recovery_summary();
        assert_eq!(
            w.retrieve("written").unwrap(),
            Some(Bytes::from_static(b"world"))
        );
        assert_eq!(
            w.retrieve("writing").unwrap(),
            Some(Bytes::from_static(b"w0"))
        );
        assert_eq!(r.records_scanned, 3);
        assert_eq!(r.records_kept, 2);
        assert_eq!(r.tail_bytes_truncated, 0);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn group_commit_tickets_become_durable_at_flush() {
        let dir = tmpdir("group");
        let mut w = WalStorage::open(&dir).unwrap();
        let t1 = w.begin_store("a", Bytes::from_static(b"1")).unwrap();
        let t2 = w.begin_store("b", Bytes::from_static(b"2")).unwrap();
        assert!(!w.poll_durable(t1), "no fsync has covered t1 yet");
        assert!(!w.poll_durable(t2));
        w.flush().unwrap();
        assert!(w.poll_durable(t1), "one flush covers the whole group");
        assert!(w.poll_durable(t2));
        // A ticket issued after the flush is not durable until the next.
        let t3 = w.begin_store("c", Bytes::from_static(b"3")).unwrap();
        assert!(!w.poll_durable(t3));
        assert!(w.poll_durable(t2));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmpdir("torn");
        let full_state;
        {
            let mut w = WalStorage::open(&dir).unwrap();
            w.store("a", Bytes::from_static(b"first")).unwrap();
            w.store("b", Bytes::from_static(b"second")).unwrap();
            full_state = w.log_bytes();
        }
        // Tear the last record: cut three bytes off the segment.
        let seg = segment_path(&dir, 0);
        let len = fs::metadata(&seg).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let w = WalStorage::open(&dir).unwrap();
        let r = w.recovery_summary();
        assert_eq!(w.retrieve("a").unwrap(), Some(Bytes::from_static(b"first")));
        assert_eq!(w.retrieve("b").unwrap(), None, "the torn record is gone");
        assert_eq!(r.records_kept, 1);
        assert!(r.tail_bytes_truncated > 0);
        assert!(w.log_bytes() < full_state);
        // The truncation is durable: a third open sees a clean log.
        drop(w);
        let w = WalStorage::open(&dir).unwrap();
        assert_eq!(w.recovery_summary().tail_bytes_truncated, 0);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn crc_corruption_in_the_tail_truncates_there() {
        let dir = tmpdir("crc");
        {
            let mut w = WalStorage::open(&dir).unwrap();
            w.store("a", Bytes::from_static(b"keep")).unwrap();
            w.store("b", Bytes::from_static(b"lose")).unwrap();
        }
        let seg = segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        // Flip a payload byte of the second record.
        let first_len = RECORD_HEADER + 1 + 4;
        let target = first_len + RECORD_HEADER + 1;
        data[target] ^= 0xFF;
        fs::write(&seg, &data).unwrap();

        let w = WalStorage::open(&dir).unwrap();
        assert_eq!(w.retrieve("a").unwrap(), Some(Bytes::from_static(b"keep")));
        assert_eq!(w.retrieve("b").unwrap(), None);
        assert_eq!(w.recovery_summary().records_kept, 1);
        assert!(w.recovery_summary().tail_bytes_truncated > 0);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corruption_in_a_non_tail_segment_is_an_error_not_a_guess() {
        let dir = tmpdir("deepcorrupt");
        {
            let mut w = WalStorage::open_with(
                &dir,
                WalOptions {
                    segment_bytes: 32, // force a roll almost immediately
                    compact_factor: 1, // live*1 < total is never true: no compaction
                    compact_min_bytes: u64::MAX,
                },
            )
            .unwrap();
            w.store("a", Bytes::from(vec![1u8; 40])).unwrap();
            w.store("b", Bytes::from(vec![2u8; 40])).unwrap();
            assert!(w.segment_ids().len() >= 2, "the log must have rolled");
        }
        // Corrupt the FIRST segment (not the newest): replay must refuse.
        let seg = segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        fs::write(&seg, &data).unwrap();
        let err = WalStorage::open(&dir).unwrap_err();
        assert!(
            err.to_string().contains("non-tail"),
            "unexpected error: {err}"
        );
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn segments_roll_at_the_size_threshold() {
        let dir = tmpdir("roll");
        let mut w = WalStorage::open_with(
            &dir,
            WalOptions {
                segment_bytes: 64,
                compact_factor: 1,
                compact_min_bytes: u64::MAX,
            },
        )
        .unwrap();
        for i in 0..8u8 {
            w.store(&format!("k{i}"), Bytes::from(vec![i; 40])).unwrap();
        }
        assert!(w.segment_ids().len() > 1, "the log must roll");
        drop(w);
        let w = WalStorage::open(&dir).unwrap();
        assert_eq!(w.recovery_summary().records_kept, 8);
        for i in 0..8u8 {
            assert_eq!(
                w.retrieve(&format!("k{i}")).unwrap(),
                Some(Bytes::from(vec![i; 40]))
            );
        }
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn compaction_shrinks_the_log_and_preserves_the_live_set() {
        let dir = tmpdir("compact");
        let mut w = WalStorage::open_with(
            &dir,
            WalOptions {
                segment_bytes: u64::MAX,
                compact_factor: 4,
                compact_min_bytes: 1024,
            },
        )
        .unwrap();
        // Overwrite two slots many times: the live set stays 2 records
        // while the log grows, until compaction kicks in.
        for round in 0..200u32 {
            w.store("x", Bytes::from(round.to_be_bytes().to_vec()))
                .unwrap();
            w.store("y", Bytes::from((round + 1).to_be_bytes().to_vec()))
                .unwrap();
        }
        assert!(
            w.log_bytes() < 1024,
            "compaction must have run (log is {} bytes)",
            w.log_bytes()
        );
        assert_eq!(
            w.retrieve("x").unwrap(),
            Some(Bytes::from(199u32.to_be_bytes().to_vec()))
        );
        drop(w);
        let w = WalStorage::open(&dir).unwrap();
        assert_eq!(w.recovery_summary().records_kept, 2);
        assert_eq!(
            w.retrieve("y").unwrap(),
            Some(Bytes::from(200u32.to_be_bytes().to_vec()))
        );
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn blocking_store_is_durable_on_return() {
        let dir = tmpdir("blocking");
        let mut w = WalStorage::open(&dir).unwrap();
        w.store("slot", Bytes::from_static(b"v")).unwrap();
        // `store` = begin + flush: the implicit ticket is covered.
        assert!(w.poll_durable(StoreTicket(1)));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn empty_value_and_weird_keys_roundtrip() {
        let dir = tmpdir("edge");
        {
            let mut w = WalStorage::open(&dir).unwrap();
            w.store("", Bytes::new()).unwrap();
            w.store("a/b c%", Bytes::from_static(b"x")).unwrap();
        }
        let w = WalStorage::open(&dir).unwrap();
        assert_eq!(w.retrieve("").unwrap(), Some(Bytes::new()));
        assert_eq!(
            w.retrieve("a/b c%").unwrap(),
            Some(Bytes::from_static(b"x"))
        );
        fs::remove_dir_all(dir).unwrap();
    }
}
