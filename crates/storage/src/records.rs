//! The typed stable-storage records of the paper's pseudocode.
//!
//! Three slots exist across the two algorithms:
//!
//! | slot | written by | meaning |
//! |---|---|---|
//! | `writing` | persistent writer, Fig. 4 line 12 | the tag/value about to be propagated, so a recovering writer can finish the write |
//! | `written` | every replica, Fig. 4 line 24 | the replica's current adopted tag/value |
//! | `recovered` | transient recovery, Fig. 5 line 21 | how many times this process has recovered (folded into new sequence numbers, Fig. 5 line 11) |
//!
//! Records use the same binary primitives as the wire codec, prefixed with
//! a version byte so the on-disk format can evolve.

use bytes::{Bytes, BytesMut};

use rmem_types::codec;
use rmem_types::{DecodeError, Timestamp, Value};

/// Slot name for [`WritingRecord`].
pub const KEY_WRITING: &str = "writing";
/// Slot name for [`WrittenRecord`].
pub const KEY_WRITTEN: &str = "written";
/// Slot name for [`RecoveredRecord`].
pub const KEY_RECOVERED: &str = "recovered";

const RECORD_VERSION: u8 = 1;

fn check_version(buf: &mut &[u8], context: &'static str) -> Result<(), DecodeError> {
    let v = codec::get_u8(buf, context)?;
    if v != RECORD_VERSION {
        return Err(DecodeError::BadTag { context, tag: v });
    }
    Ok(())
}

fn finish(buf: &[u8]) -> Result<(), DecodeError> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(DecodeError::TrailingBytes {
            remaining: buf.len(),
        })
    }
}

/// `store(writing, sn, v)` — the persistent writer's pre-propagation log
/// (Fig. 4 line 12). The tag's pid component is the writer itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritingRecord {
    /// The tag the writer chose for this write.
    pub ts: Timestamp,
    /// The value being written.
    pub value: Value,
}

impl WritingRecord {
    /// Encodes the record for storage.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.value.len());
        codec::put_u8(&mut buf, RECORD_VERSION);
        codec::put_timestamp(&mut buf, self.ts);
        codec::put_value(&mut buf, &self.value);
        buf.freeze()
    }

    /// Decodes a record previously produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, version mismatch or trailing
    /// bytes.
    pub fn decode(mut bytes: &[u8]) -> Result<Self, DecodeError> {
        const CTX: &str = "WritingRecord";
        check_version(&mut bytes, CTX)?;
        let ts = codec::get_timestamp(&mut bytes, CTX)?;
        let value = codec::get_value(&mut bytes, CTX)?;
        finish(bytes)?;
        Ok(WritingRecord { ts, value })
    }
}

/// `store(written, sn, pid, v)` — a replica's adopted tag/value (Fig. 4
/// line 24; also written by `Initialize`, line 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrittenRecord {
    /// The adopted tag (`[sn, pid]` in the pseudocode).
    pub ts: Timestamp,
    /// The adopted value.
    pub value: Value,
}

impl WrittenRecord {
    /// The record `Initialize` writes before any write is seen (Fig. 4
    /// line 4): tag `[0, me]`… the paper stores `(0, i, ⊥)`.
    pub fn initial(me: rmem_types::ProcessId) -> Self {
        WrittenRecord {
            ts: Timestamp::new(0, me),
            value: Value::bottom(),
        }
    }

    /// Encodes the record for storage.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.value.len());
        codec::put_u8(&mut buf, RECORD_VERSION);
        codec::put_timestamp(&mut buf, self.ts);
        codec::put_value(&mut buf, &self.value);
        buf.freeze()
    }

    /// Decodes a record previously produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, version mismatch or trailing
    /// bytes.
    pub fn decode(mut bytes: &[u8]) -> Result<Self, DecodeError> {
        const CTX: &str = "WrittenRecord";
        check_version(&mut bytes, CTX)?;
        let ts = codec::get_timestamp(&mut bytes, CTX)?;
        let value = codec::get_value(&mut bytes, CTX)?;
        finish(bytes)?;
        Ok(WrittenRecord { ts, value })
    }
}

/// `store(recovered, rec)` — the transient algorithm's stable recovery
/// counter (Fig. 5 lines 3 and 19–21).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredRecord {
    /// Number of recoveries this process has completed.
    pub count: u64,
}

impl RecoveredRecord {
    /// Encodes the record for storage.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(9);
        codec::put_u8(&mut buf, RECORD_VERSION);
        codec::put_u64(&mut buf, self.count);
        buf.freeze()
    }

    /// Decodes a record previously produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, version mismatch or trailing
    /// bytes.
    pub fn decode(mut bytes: &[u8]) -> Result<Self, DecodeError> {
        const CTX: &str = "RecoveredRecord";
        check_version(&mut bytes, CTX)?;
        let count = codec::get_u64(&mut bytes, CTX)?;
        finish(bytes)?;
        Ok(RecoveredRecord { count })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_types::ProcessId;

    #[test]
    fn writing_record_roundtrips() {
        let rec = WritingRecord {
            ts: Timestamp::new(9, ProcessId(2)),
            value: Value::from_u32(1234),
        };
        assert_eq!(WritingRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn written_record_roundtrips_including_bottom() {
        let rec = WrittenRecord::initial(ProcessId(3));
        let back = WrittenRecord::decode(&rec.encode()).unwrap();
        assert_eq!(back, rec);
        assert!(back.value.is_bottom());
        assert_eq!(back.ts, Timestamp::new(0, ProcessId(3)));
    }

    #[test]
    fn recovered_record_roundtrips() {
        let rec = RecoveredRecord { count: 17 };
        assert_eq!(RecoveredRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn truncated_records_fail_cleanly() {
        let rec = WritingRecord {
            ts: Timestamp::new(1, ProcessId(0)),
            value: Value::from("data"),
        };
        let bytes = rec.encode();
        for cut in 0..bytes.len() {
            assert!(WritingRecord::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let rec = RecoveredRecord { count: 1 };
        let mut bytes = rec.encode().to_vec();
        bytes[0] = 99;
        assert!(matches!(
            RecoveredRecord::decode(&bytes),
            Err(DecodeError::BadTag { tag: 99, .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = RecoveredRecord { count: 1 }.encode().to_vec();
        bytes.push(7);
        assert!(matches!(
            RecoveredRecord::decode(&bytes),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn slot_names_match_pseudocode() {
        assert_eq!(KEY_WRITING, "writing");
        assert_eq!(KEY_WRITTEN, "written");
        assert_eq!(KEY_RECOVERED, "recovered");
    }
}
