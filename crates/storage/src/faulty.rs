//! Fault-injecting storage decorator for robustness tests.

use std::time::Duration;

use bytes::Bytes;

use crate::{StableStorage, StorageError, StoreTicket};

/// Deterministic schedule of injected store failures.
///
/// The plan is consulted on every `store`; when it says "fail", the store
/// returns [`StorageError::Injected`] and the underlying storage is left
/// untouched (matching the [`StableStorage`] contract that a failed store
/// preserves the previous record).
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Never inject (pass-through).
    None,
    /// Fail every `n`-th store, 1-indexed: `fail_every(3)` fails stores
    /// 3, 6, 9, …
    EveryNth {
        /// The period.
        n: u64,
        /// Stores seen so far.
        seen: u64,
    },
    /// Fail the stores whose 1-indexed positions are listed (sorted).
    AtPositions {
        /// Sorted positions to fail.
        positions: Vec<u64>,
        /// Stores seen so far.
        seen: u64,
    },
    /// Fail every store to the given slot.
    OnKey(
        /// The slot name to fail.
        String,
    ),
}

impl FaultPlan {
    /// Plan failing every `n`-th store.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn fail_every(n: u64) -> Self {
        assert!(n > 0, "period must be positive");
        FaultPlan::EveryNth { n, seen: 0 }
    }

    /// Plan failing the stores at the given 1-indexed positions.
    pub fn fail_at(mut positions: Vec<u64>) -> Self {
        positions.sort_unstable();
        FaultPlan::AtPositions { positions, seen: 0 }
    }

    /// Plan failing every store to `key`.
    pub fn fail_key(key: impl Into<String>) -> Self {
        FaultPlan::OnKey(key.into())
    }

    fn should_fail(&mut self, key: &str) -> bool {
        match self {
            FaultPlan::None => false,
            FaultPlan::EveryNth { n, seen } => {
                *seen += 1;
                *seen % *n == 0
            }
            FaultPlan::AtPositions { positions, seen } => {
                *seen += 1;
                positions.binary_search(seen).is_ok()
            }
            FaultPlan::OnKey(k) => k == key,
        }
    }
}

/// A [`StableStorage`] decorator that injects failures per a [`FaultPlan`]
/// and, optionally, a fixed **commit delay** — a slow disk whose every
/// durability point (blocking store or flush) stalls for the configured
/// duration. The delay is what the runner's no-stall tests lean on: with
/// the durability pipeline off the event loop, a 100 ms commit on one
/// node must not delay operations on other registers.
#[derive(Debug)]
pub struct FaultyStorage<S> {
    inner: S,
    plan: FaultPlan,
    injected: u64,
    delay: Option<Duration>,
    /// Records staged (begin_store, not yet durable) since the last
    /// flush: a flush is only a durability point — and only stalls —
    /// when it covers at least one of these.
    staged: u64,
}

impl<S: StableStorage> FaultyStorage<S> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultyStorage {
            inner,
            plan,
            injected: 0,
            delay: None,
            staged: 0,
        }
    }

    /// Adds a fixed delay to every commit (blocking `store` and `flush`),
    /// emulating a slow disk.
    #[must_use]
    pub fn with_commit_delay(mut self, delay: Duration) -> Self {
        self.delay = Some(delay);
        self
    }

    /// How many failures have been injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Unwraps the inner storage.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn stall(&self) {
        if let Some(d) = self.delay {
            std::thread::sleep(d);
        }
    }
}

impl<S: StableStorage> StableStorage for FaultyStorage<S> {
    fn store(&mut self, key: &str, bytes: Bytes) -> Result<(), StorageError> {
        if self.plan.should_fail(key) {
            self.injected += 1;
            return Err(StorageError::Injected {
                key: key.to_string(),
            });
        }
        self.stall();
        self.inner.store(key, bytes)
    }

    fn retrieve(&self, key: &str) -> Result<Option<Bytes>, StorageError> {
        self.inner.retrieve(key)
    }

    fn keys(&self) -> Vec<String> {
        self.inner.keys()
    }

    fn begin_store(&mut self, key: &str, bytes: Bytes) -> Result<StoreTicket, StorageError> {
        if self.plan.should_fail(key) {
            self.injected += 1;
            return Err(StorageError::Injected {
                key: key.to_string(),
            });
        }
        let ticket = self.inner.begin_store(key, bytes)?;
        // The commit delay belongs to the durability point: a synchronous
        // inner (ticket durable on return) commits here, an async inner
        // stages now and commits at the covering flush.
        if self.inner.poll_durable(ticket) {
            self.stall();
        } else {
            self.staged += 1;
        }
        Ok(ticket)
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        // Only a covering flush is a commit: an empty flush (or one whose
        // records already committed at begin_store) costs nothing.
        if self.staged > 0 {
            self.staged = 0;
            self.stall();
        }
        self.inner.flush()
    }

    fn poll_durable(&self, ticket: StoreTicket) -> bool {
        self.inner.poll_durable(ticket)
    }

    fn fsyncs_per_commit(&self) -> u64 {
        self.inner.fsyncs_per_commit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStorage;

    #[test]
    fn every_nth_fails_periodically() {
        let mut s = FaultyStorage::new(MemStorage::new(), FaultPlan::fail_every(3));
        let results: Vec<bool> = (0..6)
            .map(|i| s.store("k", Bytes::from(vec![i as u8])).is_ok())
            .collect();
        assert_eq!(results, vec![true, true, false, true, true, false]);
        assert_eq!(s.injected(), 2);
    }

    #[test]
    fn failed_store_preserves_previous_record() {
        let mut s = FaultyStorage::new(MemStorage::new(), FaultPlan::fail_at(vec![2]));
        s.store("slot", Bytes::from_static(b"old")).unwrap();
        assert!(s.store("slot", Bytes::from_static(b"new")).is_err());
        assert_eq!(
            s.retrieve("slot").unwrap(),
            Some(Bytes::from_static(b"old"))
        );
    }

    #[test]
    fn on_key_targets_only_that_slot() {
        let mut s = FaultyStorage::new(MemStorage::new(), FaultPlan::fail_key("writing"));
        assert!(s.store("writing", Bytes::new()).is_err());
        assert!(s.store("written", Bytes::new()).is_ok());
        assert!(s.store("writing", Bytes::new()).is_err());
        assert_eq!(s.injected(), 2);
    }

    #[test]
    fn none_plan_is_transparent() {
        let mut s = FaultyStorage::new(MemStorage::new(), FaultPlan::None);
        for i in 0..10u8 {
            s.store("k", Bytes::from(vec![i])).unwrap();
        }
        assert_eq!(s.injected(), 0);
        assert_eq!(s.retrieve("k").unwrap(), Some(Bytes::from(vec![9u8])));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = FaultPlan::fail_every(0);
    }

    #[test]
    fn commit_delay_stalls_stores_and_flushes() {
        let delay = std::time::Duration::from_millis(30);
        let mut s = FaultyStorage::new(MemStorage::new(), FaultPlan::None).with_commit_delay(delay);
        let t0 = std::time::Instant::now();
        s.store("k", Bytes::from_static(b"v")).unwrap();
        assert!(t0.elapsed() >= delay, "blocking store must stall");
        let t1 = std::time::Instant::now();
        let _ = s.begin_store("k", Bytes::from_static(b"w")).unwrap();
        assert!(
            t1.elapsed() >= delay,
            "a synchronous inner commits at begin_store"
        );
        // The delay is charged per durability point, not per call: after
        // a synchronous begin_store already committed, the covering
        // flush is empty and must not stall again.
        let t2 = std::time::Instant::now();
        s.flush().unwrap();
        assert!(
            t2.elapsed() < delay / 2,
            "an empty flush must not be charged a commit delay"
        );
    }

    #[test]
    fn commit_delay_charges_async_staging_at_the_flush() {
        let dir = std::env::temp_dir().join(format!(
            "rmem-faulty-wal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let delay = std::time::Duration::from_millis(30);
        let mut s = FaultyStorage::new(crate::WalStorage::open(&dir).unwrap(), FaultPlan::None)
            .with_commit_delay(delay);
        let t0 = std::time::Instant::now();
        let _ = s.begin_store("a", Bytes::from_static(b"1")).unwrap();
        let _ = s.begin_store("b", Bytes::from_static(b"2")).unwrap();
        assert!(
            t0.elapsed() < delay / 2,
            "staging on an async inner must not stall"
        );
        let t1 = std::time::Instant::now();
        s.flush().unwrap();
        assert!(t1.elapsed() >= delay, "the covering flush is the commit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_applies_to_begin_store_too() {
        let mut s = FaultyStorage::new(MemStorage::new(), FaultPlan::fail_every(2));
        assert!(s.begin_store("k", Bytes::new()).is_ok());
        assert!(s.begin_store("k", Bytes::new()).is_err());
        assert_eq!(s.injected(), 1);
    }
}
