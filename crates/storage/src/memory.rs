//! In-memory stable storage for simulated processes.

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::{StableStorage, StorageError};

/// An in-memory [`StableStorage`].
///
/// The deterministic simulator owns one `MemStorage` per simulated process
/// and holds it *outside* the process automaton: crashing a process
/// destroys the automaton (volatile state) while the `MemStorage` persists,
/// which is exactly the durability boundary of the crash-recovery model.
///
/// `BTreeMap` rather than `HashMap` keeps [`keys`](StableStorage::keys)
/// deterministic, which the reproducible-simulation guarantee relies on.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    slots: BTreeMap<String, Bytes>,
    /// Total number of successful stores ever performed (diagnostics).
    stores: u64,
}

impl MemStorage {
    /// Creates empty storage.
    pub fn new() -> Self {
        MemStorage::default()
    }

    /// Number of successful stores performed over the storage's lifetime.
    pub fn store_count(&self) -> u64 {
        self.stores
    }

    /// Removes every record — models replacing the disk, *not* a crash
    /// (crashes preserve stable storage).
    pub fn wipe(&mut self) {
        self.slots.clear();
    }
}

impl StableStorage for MemStorage {
    fn store(&mut self, key: &str, bytes: Bytes) -> Result<(), StorageError> {
        self.slots.insert(key.to_string(), bytes);
        self.stores += 1;
        Ok(())
    }

    fn retrieve(&self, key: &str) -> Result<Option<Bytes>, StorageError> {
        Ok(self.slots.get(key).cloned())
    }

    fn keys(&self) -> Vec<String> {
        self.slots.keys().cloned().collect()
    }

    /// Memory needs no physical fsync.
    fn fsyncs_per_commit(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_retrieve() {
        let mut s = MemStorage::new();
        assert_eq!(s.retrieve("a").unwrap(), None);
        s.store("a", Bytes::from_static(b"1")).unwrap();
        assert_eq!(s.retrieve("a").unwrap(), Some(Bytes::from_static(b"1")));
    }

    #[test]
    fn store_overwrites_slot() {
        let mut s = MemStorage::new();
        s.store("writing", Bytes::from_static(b"old")).unwrap();
        s.store("writing", Bytes::from_static(b"new")).unwrap();
        assert_eq!(
            s.retrieve("writing").unwrap(),
            Some(Bytes::from_static(b"new"))
        );
        assert_eq!(s.store_count(), 2);
    }

    #[test]
    fn keys_are_sorted_and_deduplicated() {
        let mut s = MemStorage::new();
        s.store("written", Bytes::new()).unwrap();
        s.store("recovered", Bytes::new()).unwrap();
        s.store("written", Bytes::new()).unwrap();
        assert_eq!(
            s.keys(),
            vec!["recovered".to_string(), "written".to_string()]
        );
    }

    #[test]
    fn wipe_clears_slots() {
        let mut s = MemStorage::new();
        s.store("a", Bytes::new()).unwrap();
        s.wipe();
        assert_eq!(s.retrieve("a").unwrap(), None);
        assert!(s.keys().is_empty());
    }

    #[test]
    fn clone_is_a_disk_image() {
        let mut s = MemStorage::new();
        s.store("a", Bytes::from_static(b"v")).unwrap();
        let snapshot = s.clone();
        s.store("a", Bytes::from_static(b"w")).unwrap();
        assert_eq!(
            snapshot.retrieve("a").unwrap(),
            Some(Bytes::from_static(b"v"))
        );
    }
}
