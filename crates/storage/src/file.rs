//! Directory-backed stable storage with synchronous durability.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::{StableStorage, StorageError};

/// A [`StableStorage`] backed by one file per slot inside a directory.
///
/// Every store writes the record to a temporary file, `fsync`s it, and
/// atomically renames it over the slot file, then `fsync`s the directory.
/// This matches the paper's implementation note (§V-A): log files are
/// "written to disk synchronously so that the operating system writes the
/// data to disk immediately instead of buffering several writes together
/// (which would violate even transient atomicity)". The rename makes a
/// store atomic with respect to crashes: a slot always holds either the
/// old record or the new one, never a torn write.
///
/// Slot names are sanitised to a fixed alphabet, so keys cannot escape the
/// directory.
#[derive(Debug)]
pub struct FileStorage {
    dir: PathBuf,
}

impl FileStorage {
    /// Opens (creating if necessary) the storage directory.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError`] if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| StorageError::io(dir.display().to_string(), e))?;
        Ok(FileStorage { dir })
    }

    /// The directory holding the slot files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn slot_path(&self, key: &str) -> PathBuf {
        // Restrict slot names to a safe alphabet; anything else is escaped
        // byte-by-byte so distinct keys stay distinct.
        let mut name = String::with_capacity(key.len() + 5);
        for b in key.bytes() {
            match b {
                b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'-' => name.push(b as char),
                other => name.push_str(&format!("%{other:02x}")),
            }
        }
        name.push_str(".slot");
        self.dir.join(name)
    }

    fn sync_dir(&self) -> std::io::Result<()> {
        // Durability of the rename itself requires fsyncing the directory
        // on POSIX systems.
        let dirf = fs::File::open(&self.dir)?;
        dirf.sync_all()
    }
}

impl StableStorage for FileStorage {
    fn store(&mut self, key: &str, bytes: Bytes) -> Result<(), StorageError> {
        let final_path = self.slot_path(key);
        let tmp_path = final_path.with_extension("tmp");
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
            fs::rename(&tmp_path, &final_path)?;
            self.sync_dir()
        };
        write().map_err(|e| StorageError::io(key, e))
    }

    fn retrieve(&self, key: &str) -> Result<Option<Bytes>, StorageError> {
        match fs::read(self.slot_path(key)) {
            Ok(data) => Ok(Some(Bytes::from(data))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StorageError::io(key, e)),
        }
    }

    /// A slot store costs two physical fsyncs: the record file and the
    /// directory holding the rename.
    fn fsyncs_per_commit(&self) -> u64 {
        2
    }

    fn keys(&self) -> Vec<String> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut keys: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let stem = name.strip_suffix(".slot")?;
                // Reverse the escaping.
                let mut out = String::new();
                let mut chars = stem.chars();
                while let Some(c) = chars.next() {
                    if c == '%' {
                        let hi = chars.next()?;
                        let lo = chars.next()?;
                        let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16).ok()?;
                        out.push(byte as char);
                    } else {
                        out.push(c);
                    }
                }
                Some(out)
            })
            .collect();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rmem-filestorage-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_retrieve_roundtrips() {
        let dir = tmpdir("roundtrip");
        let mut s = FileStorage::open(&dir).unwrap();
        assert_eq!(s.retrieve("written").unwrap(), None);
        s.store("written", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(
            s.retrieve("written").unwrap(),
            Some(Bytes::from_static(b"hello"))
        );
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn records_survive_reopen() {
        let dir = tmpdir("reopen");
        {
            let mut s = FileStorage::open(&dir).unwrap();
            s.store("writing", Bytes::from_static(b"persist-me"))
                .unwrap();
        }
        // Simulates the process crashing and a new incarnation reopening
        // the same directory.
        let s = FileStorage::open(&dir).unwrap();
        assert_eq!(
            s.retrieve("writing").unwrap(),
            Some(Bytes::from_static(b"persist-me"))
        );
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn overwrite_replaces_slot() {
        let dir = tmpdir("overwrite");
        let mut s = FileStorage::open(&dir).unwrap();
        s.store("rec", Bytes::from_static(b"1")).unwrap();
        s.store("rec", Bytes::from_static(b"2")).unwrap();
        assert_eq!(s.retrieve("rec").unwrap(), Some(Bytes::from_static(b"2")));
        assert_eq!(s.keys(), vec!["rec".to_string()]);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn weird_keys_are_escaped_and_listed() {
        let dir = tmpdir("escape");
        let mut s = FileStorage::open(&dir).unwrap();
        s.store("a/b c", Bytes::from_static(b"x")).unwrap();
        s.store("a_b-c9", Bytes::from_static(b"y")).unwrap();
        assert_eq!(s.retrieve("a/b c").unwrap(), Some(Bytes::from_static(b"x")));
        let keys = s.keys();
        assert!(keys.contains(&"a/b c".to_string()), "keys = {keys:?}");
        assert!(keys.contains(&"a_b-c9".to_string()));
        // The escaped file must live inside the directory.
        for entry in fs::read_dir(&dir).unwrap() {
            assert!(entry.unwrap().path().starts_with(&dir));
        }
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let dir = tmpdir("collide");
        let mut s = FileStorage::open(&dir).unwrap();
        s.store("a%2fb", Bytes::from_static(b"literal-percent"))
            .unwrap();
        s.store("a/b", Bytes::from_static(b"slash")).unwrap();
        assert_eq!(
            s.retrieve("a%2fb").unwrap(),
            Some(Bytes::from_static(b"literal-percent"))
        );
        assert_eq!(
            s.retrieve("a/b").unwrap(),
            Some(Bytes::from_static(b"slash"))
        );
        fs::remove_dir_all(dir).unwrap();
    }
}
