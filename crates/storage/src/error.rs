//! Storage failure type.

use std::sync::Arc;

use rmem_types::DecodeError;

/// A stable-storage operation failed.
#[derive(Debug, Clone)]
pub enum StorageError {
    /// An underlying I/O operation failed.
    Io {
        /// The slot being accessed.
        key: String,
        /// The operating-system error (shared so the error stays `Clone`).
        source: Arc<std::io::Error>,
    },
    /// A record was present but failed to decode — stable storage was
    /// corrupted outside the process's control.
    Corrupt {
        /// The slot being accessed.
        key: String,
        /// The decode failure.
        source: DecodeError,
    },
    /// A deliberately injected fault (testing only; see
    /// [`FaultyStorage`](crate::FaultyStorage)).
    Injected {
        /// The slot being accessed.
        key: String,
    },
}

impl StorageError {
    /// Convenience constructor for I/O failures.
    pub fn io(key: impl Into<String>, source: std::io::Error) -> Self {
        StorageError::Io {
            key: key.into(),
            source: Arc::new(source),
        }
    }

    /// The slot the failing operation addressed.
    pub fn key(&self) -> &str {
        match self {
            StorageError::Io { key, .. }
            | StorageError::Corrupt { key, .. }
            | StorageError::Injected { key } => key,
        }
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io { key, source } => {
                write!(f, "stable storage i/o failure on slot {key:?}: {source}")
            }
            StorageError::Corrupt { key, source } => {
                write!(f, "corrupt record in slot {key:?}: {source}")
            }
            StorageError::Injected { key } => {
                write!(f, "injected fault on slot {key:?}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source.as_ref()),
            StorageError::Corrupt { source, .. } => Some(source),
            StorageError::Injected { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_accessor_and_display() {
        let e = StorageError::io("writing", std::io::Error::other("disk on fire"));
        assert_eq!(e.key(), "writing");
        assert!(e.to_string().contains("disk on fire"));

        let e = StorageError::Injected {
            key: "written".into(),
        };
        assert_eq!(e.key(), "written");
        assert!(e.to_string().contains("injected"));
    }

    #[test]
    fn error_is_send_sync_clone() {
        fn check<E: std::error::Error + Send + Sync + Clone + 'static>(_: &E) {}
        check(&StorageError::Injected { key: "k".into() });
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e = StorageError::io("k", std::io::Error::other("inner"));
        assert!(e.source().is_some());
        let e2 = StorageError::Injected { key: "k".into() };
        assert!(e2.source().is_none());
    }
}
