//! Property tests for the stable-storage substrate: arbitrary keys and
//! payloads roundtrip through both backends, records survive
//! encode/decode, and the slot-overwrite semantics hold under random
//! operation sequences.

use proptest::prelude::*;
use rmem_storage::records::{RecoveredRecord, WritingRecord, WrittenRecord};
use rmem_storage::{FileStorage, MemStorage, StableStorage};
use rmem_types::{ProcessId, Timestamp, Value};

fn arb_key() -> impl Strategy<Value = String> {
    // Keys exercise the FileStorage escaping: alphanumerics plus awkward
    // bytes.
    proptest::string::string_regex("[a-zA-Z0-9_@/ .%-]{1,24}").unwrap()
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..512)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A random sequence of stores over random keys: both backends end in
    /// the same state (last store per key wins), and reopening the file
    /// backend preserves it.
    #[test]
    fn backends_agree_and_files_survive_reopen(
        ops in proptest::collection::vec((arb_key(), arb_payload()), 1..20)
    ) {
        let dir = std::env::temp_dir().join(format!(
            "rmem-props-{}-{}",
            std::process::id(),
            rand_suffix(&ops),
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut mem = MemStorage::new();
        {
            let mut file = FileStorage::open(&dir).unwrap();
            for (key, payload) in &ops {
                let bytes = bytes::Bytes::from(payload.clone());
                mem.store(key, bytes.clone()).unwrap();
                file.store(key, bytes).unwrap();
            }
        }
        // Reopen: every key the memory backend knows must match.
        let file = FileStorage::open(&dir).unwrap();
        for key in mem.keys() {
            prop_assert_eq!(
                file.retrieve(&key).unwrap(),
                mem.retrieve(&key).unwrap(),
                "key {:?}", key
            );
        }
        prop_assert_eq!(file.keys().len(), mem.keys().len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Every record type roundtrips for arbitrary contents.
    #[test]
    fn records_roundtrip(
        seq in any::<u64>(),
        pid in 0u16..64,
        payload in arb_payload(),
        count in any::<u64>(),
        bottom in any::<bool>(),
    ) {
        let ts = Timestamp::new(seq, ProcessId(pid));
        let value = if bottom { Value::bottom() } else { Value::new(payload) };

        let w = WritingRecord { ts, value: value.clone() };
        prop_assert_eq!(WritingRecord::decode(&w.encode()).unwrap(), w);

        let a = WrittenRecord { ts, value };
        prop_assert_eq!(WrittenRecord::decode(&a.encode()).unwrap(), a);

        let rec = RecoveredRecord { count };
        prop_assert_eq!(RecoveredRecord::decode(&rec.encode()).unwrap(), rec);
    }

    /// Decoding arbitrary bytes never panics for any record type.
    #[test]
    fn record_decoding_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = WritingRecord::decode(&bytes);
        let _ = WrittenRecord::decode(&bytes);
        let _ = RecoveredRecord::decode(&bytes);
    }
}

/// Deterministic per-input suffix so concurrent proptest cases do not
/// share a directory.
fn rand_suffix(ops: &[(String, Vec<u8>)]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    ops.hash(&mut h);
    h.finish()
}
