//! Crash-recovery fault suite for the WAL: seeded torn-tail,
//! partial-append and CRC-corruption injection, then reopen and assert
//! replay recovers **exactly the pre-crash durable prefix** — never a
//! torn record, never less than what a returned fsync covered.
//!
//! Each seed builds a log from a random store sequence while a model
//! (`BTreeMap`) tracks the state after every *record*. The crash is then
//! injected at the file level — the only level at which torn writes
//! exist — by cutting or corrupting the newest segment at a chosen
//! record boundary or mid-record. The oracle: reopening must yield the
//! model state of the longest clean record prefix, and the reported
//! `tail_bytes_truncated` must account for every byte dropped.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmem_storage::{StableStorage, WalOptions, WalStorage};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rmem-walrec-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One record as the generator wrote it: its slot, value, and the byte
/// range it occupies in the (single) segment.
struct WrittenRecord {
    key: String,
    value: Vec<u8>,
    start: u64,
    end: u64,
}

/// Builds a single-segment log of `n` random stores (grouped randomly
/// into commits via `begin_store`/`flush`) and returns the records in
/// append order. The log ends flushed, so every record is durable — the
/// injected fault below is what "loses" a suffix.
fn build_log(dir: &PathBuf, rng: &mut StdRng, n: usize) -> Vec<WrittenRecord> {
    let mut wal = WalStorage::open_with(
        dir,
        WalOptions {
            segment_bytes: u64::MAX, // keep one segment: the fault targets its tail
            compact_factor: 1,
            compact_min_bytes: u64::MAX,
        },
    )
    .expect("open");
    let mut records = Vec::new();
    let mut offset = wal.log_bytes();
    for i in 0..n {
        let key = format!("slot-{}", rng.gen_range(0..6u8));
        let len = rng.gen_range(0..48usize);
        let mut value: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        value.extend_from_slice(&(i as u32).to_be_bytes()); // make every record distinct
        wal.begin_store(&key, Bytes::from(value.clone()))
            .expect("begin_store");
        let end = wal.log_bytes();
        records.push(WrittenRecord {
            key,
            value,
            start: offset,
            end,
        });
        offset = end;
        if rng.gen_bool(0.3) {
            wal.flush().expect("flush");
        }
    }
    wal.flush().expect("final flush");
    records
}

/// The model state after replaying records `[0, upto)`.
fn model_state(records: &[WrittenRecord], upto: usize) -> BTreeMap<String, Vec<u8>> {
    let mut state = BTreeMap::new();
    for r in &records[..upto] {
        state.insert(r.key.clone(), r.value.clone());
    }
    state
}

fn observed_state(wal: &WalStorage) -> BTreeMap<String, Vec<u8>> {
    wal.keys()
        .into_iter()
        .map(|k| {
            let v = wal.retrieve(&k).expect("retrieve").expect("listed key");
            (k, v.to_vec())
        })
        .collect()
}

fn the_segment(dir: &PathBuf) -> PathBuf {
    let mut segs: Vec<_> = fs::read_dir(dir)
        .expect("read_dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .collect();
    segs.sort();
    assert_eq!(segs.len(), 1, "the generator keeps a single segment");
    segs.pop().expect("one segment")
}

enum Fault {
    /// Truncate mid-record: the classic torn append.
    TornTail,
    /// Append garbage after the last record: a partial append whose
    /// header never finished.
    PartialAppend,
    /// Flip a byte inside a record: CRC corruption.
    CrcCorruption,
}

fn run_seed(seed: u64, fault: &Fault) {
    let dir = tmpdir(&format!("seed{seed}"));
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(5..25usize);
    let records = build_log(&dir, &mut rng, n);
    let seg = the_segment(&dir);
    let seg_len = fs::metadata(&seg).expect("metadata").len();
    assert_eq!(seg_len, records.last().expect("records").end);

    // Choose the victim record and inject the fault.
    let victim = rng.gen_range(0..records.len());
    let (expected_prefix, expected_cut_from) = match fault {
        Fault::TornTail => {
            let r = &records[victim];
            // Cut somewhere strictly inside the record.
            let cut = rng.gen_range(r.start..r.end);
            let f = fs::OpenOptions::new().write(true).open(&seg).expect("open");
            f.set_len(cut).expect("truncate");
            f.sync_data().expect("sync");
            (victim, r.start)
        }
        Fault::PartialAppend => {
            // Garbage after a clean prefix: drop the suffix, then append
            // random bytes that parse as no valid record.
            let r = &records[victim];
            let f = fs::OpenOptions::new().write(true).open(&seg).expect("open");
            f.set_len(r.start).expect("truncate");
            drop(f);
            let garbage: Vec<u8> = (0..rng.gen_range(1..16usize)).map(|_| rng.gen()).collect();
            let mut data = fs::read(&seg).expect("read");
            data.extend_from_slice(&garbage);
            fs::write(&seg, &data).expect("write");
            (victim, r.start)
        }
        Fault::CrcCorruption => {
            let r = &records[victim];
            let mut data = fs::read(&seg).expect("read");
            let at = rng.gen_range(r.start..r.end) as usize;
            data[at] ^= 1 << rng.gen_range(0..8u8);
            fs::write(&seg, &data).expect("write");
            (victim, r.start)
        }
    };

    let wal = WalStorage::open(&dir).unwrap_or_else(|e| panic!("seed {seed}: reopen failed: {e}"));
    let summary = wal.recovery_summary();
    let expected = model_state(&records, expected_prefix);
    assert_eq!(
        observed_state(&wal),
        expected,
        "seed {seed}: replay must recover exactly the clean prefix \
         (records 0..{expected_prefix} of {n})"
    );
    assert_eq!(
        summary.records_scanned, expected_prefix as u64,
        "seed {seed}: scanned-record accounting"
    );
    let reopened_len = fs::metadata(the_segment(&dir)).expect("metadata").len();
    assert_eq!(
        reopened_len, expected_cut_from,
        "seed {seed}: the truncation must land on the last clean record boundary"
    );
    assert!(
        summary.tail_bytes_truncated > 0 || reopened_len == expected_cut_from,
        "seed {seed}: dropped bytes must be reported"
    );

    // The recovered log is writable and a further clean reopen is exact.
    let mut wal = wal;
    wal.store("post-crash", Bytes::from_static(b"alive"))
        .expect("store after recovery");
    drop(wal);
    let wal = WalStorage::open(&dir).expect("second reopen");
    assert_eq!(
        wal.retrieve("post-crash").expect("retrieve"),
        Some(Bytes::from_static(b"alive"))
    );
    assert_eq!(wal.recovery_summary().tail_bytes_truncated, 0);
    let _ = fs::remove_dir_all(&dir);
}

/// The acceptance sweep: ≥12 seeds, each exercising all three fault
/// shapes on its own generated log.
#[test]
fn torn_tail_recovery_sweep() {
    for seed in 0..14u64 {
        run_seed(seed * 3, &Fault::TornTail);
        run_seed(seed * 3 + 1, &Fault::PartialAppend);
        run_seed(seed * 3 + 2, &Fault::CrcCorruption);
    }
}

/// A crash *during* compaction must leave a replayable log: the
/// checkpoint is durable before history is deleted, so either order of
/// survivors replays to the same live set.
#[test]
fn checkpoint_plus_stale_history_replays_to_the_checkpoint() {
    let dir = tmpdir("ckpt-race");
    {
        let mut wal = WalStorage::open_with(
            &dir,
            WalOptions {
                segment_bytes: u64::MAX,
                compact_factor: 4,
                compact_min_bytes: 512,
            },
        )
        .expect("open");
        for round in 0..100u32 {
            wal.store("hot", Bytes::from(round.to_be_bytes().to_vec()))
                .expect("store");
        }
        assert!(wal.log_bytes() < 512, "compaction must have run");
    }
    // Simulate the crash window: resurrect a stale pre-checkpoint segment
    // with an *older* record for the hot slot. Replay order (segment ids
    // ascending) must still end on the checkpoint's value.
    let seg0 = dir.join("seg-0000000000000000.wal");
    assert!(!seg0.exists(), "compaction deleted the original segment");
    {
        let mut stale = WalStorage::open_with(tmpdir("ckpt-race-stale"), WalOptions::default())
            .expect("stale open");
        stale
            .store("hot", Bytes::from(7u32.to_be_bytes().to_vec()))
            .expect("store");
        fs::copy(stale.dir().join("seg-0000000000000000.wal"), &seg0)
            .expect("copy stale segment in");
        let stale_dir = stale.dir().to_path_buf();
        drop(stale);
        let _ = fs::remove_dir_all(stale_dir);
    }
    let wal = WalStorage::open(&dir).expect("reopen with stale history");
    assert_eq!(
        wal.retrieve("hot").expect("retrieve"),
        Some(Bytes::from(99u32.to_be_bytes().to_vec())),
        "the checkpoint (higher segment id) must win over stale history"
    );
    let _ = fs::remove_dir_all(&dir);
}
