//! Shared helpers for the cross-crate integration tests in the
//! repository-root `tests/` directory.

#![forbid(unsafe_code)]

use std::sync::Arc;

use rmem_consistency::History;
use rmem_sim::{ClusterConfig, Schedule, SimReport, Simulation};
use rmem_types::AutomatonFactory;

/// Runs `factory`'s algorithm on a default `n`-process cluster under
/// `schedule` with the given seed and returns the report.
pub fn run_scheduled(
    n: usize,
    factory: Arc<dyn AutomatonFactory>,
    schedule: Schedule,
    seed: u64,
) -> SimReport {
    Simulation::new(ClusterConfig::new(n), factory, seed)
        .with_schedule(schedule)
        .run()
}

/// Runs and returns just the recorded history.
pub fn history_of(
    n: usize,
    factory: Arc<dyn AutomatonFactory>,
    schedule: Schedule,
    seed: u64,
) -> History {
    run_scheduled(n, factory, schedule, seed).trace.to_history()
}

/// Read values (as `u32`s, `None` for ⊥) of completed reads, in
/// invocation order.
pub fn read_values(report: &SimReport) -> Vec<Option<u32>> {
    report
        .trace
        .operations()
        .iter()
        .filter(|o| o.kind == rmem_types::OpKind::Read && o.is_completed())
        .map(|o| o.result.as_ref().unwrap().read_value().unwrap().as_u32())
        .collect()
}
