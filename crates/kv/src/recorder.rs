//! Recording real-runtime store traffic as a checkable [`History`].
//!
//! The simulator records histories natively; real-thread runs
//! (`rmem-net`) do not. An [`OpRecorder`] closes that gap for the store
//! layer: attach one to a [`KvClient`](crate::KvClient) and every register
//! operation the client performs — data traffic, shard-map reads, barrier
//! polls, migration copies and seals — is recorded as an
//! invocation/reply pair, ready for the per-key certifiers (including the
//! cross-epoch [`certify_per_key_epochs`](crate::certify_per_key_epochs),
//! for which the migrator's own operations are part of the story).
//!
//! Each recording client must be its own history *process* (the model
//! keeps processes sequential per register): [`OpRecorder::assign_pid`]
//! hands out distinct ids, and
//! [`KvClient::recorded_clone`](crate::KvClient::recorded_clone) wraps
//! that for per-thread clones.
//!
//! An operation that fails **ambiguously** (a timeout after failover — it
//! may or may not have taken effect) is recorded the way the paper's
//! model describes exactly that situation: the invocation stays pending
//! and the process records a crash/recovery pair, so the checkers apply
//! their crash completion rules instead of refusing the history as
//! malformed.

use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::{Arc, Mutex};

use rmem_consistency::History;
use rmem_types::{Op, OpId, OpResult, ProcessId};

/// A shared, thread-safe history recorder (clones record into the same
/// history).
#[derive(Clone, Default)]
pub struct OpRecorder {
    history: Arc<Mutex<History>>,
    next_pid: Arc<AtomicU16>,
}

impl std::fmt::Debug for OpRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpRecorder")
            .field("pids", &self.next_pid.load(Ordering::Relaxed))
            .finish()
    }
}

impl OpRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        OpRecorder::default()
    }

    /// Reserves the next history process id for one recording client.
    pub fn assign_pid(&self) -> ProcessId {
        ProcessId(self.next_pid.fetch_add(1, Ordering::Relaxed))
    }

    /// A snapshot of everything recorded so far.
    pub fn history(&self) -> History {
        self.history.lock().expect("recorder lock").clone()
    }

    pub(crate) fn invoke(&self, pid: ProcessId, op: Op) -> OpId {
        self.history.lock().expect("recorder lock").invoke(pid, op)
    }

    pub(crate) fn reply(&self, op: OpId, result: OpResult) {
        self.history
            .lock()
            .expect("recorder lock")
            .reply(op, result);
    }

    /// Records the ambiguous-failure idiom: the operation stays pending
    /// and the process crashes and recovers, which is precisely the
    /// crash-recovery model's description of "the caller cannot know
    /// whether the operation took effect".
    pub(crate) fn abandon(&self, pid: ProcessId) {
        let mut h = self.history.lock().expect("recorder lock");
        h.crash(pid);
        h.recover(pid);
    }
}
