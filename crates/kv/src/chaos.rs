//! The **combined chaos matrix** over a real-threaded cluster: seeded
//! schedules mixing node kill/recover windows, torn-WAL-tail recoveries,
//! live shard-split chains and client crashes at every write phase — with
//! every surviving history certified and every crashed client's ops
//! resolved to a definite verdict.
//!
//! The plan comes from [`rmem_sim::matrix`] (pure data, majority-safe by
//! construction); this module lowers it onto a
//! [`LocalCluster`] — node windows become
//! [`FaultEvent::Kill`]/[`FaultEvent::Restart`] pairs with a
//! [`FaultEvent::TearTail`] in the middle of torn windows, client crashes
//! become [`FaultEvent::ClientCrash`] signals that flip per-client flags
//! the crasher threads watch. Meanwhile a grower drives the shard-split
//! chain (e.g. 4 → 8 → 16) live under the traffic.
//!
//! [`run_chaos`] is the whole experiment: preload → traffic + faults +
//! splits → client recovery ([`KvClient::resolve_all`] over each reopened
//! intent journal) → certification
//! ([`certify_per_key_epoch_path`], which includes the
//! duplicate-application check). On a certification failure it returns
//! the flight-recorder dumps and the stitched causal trace as evidence.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmem_consistency::Criterion;
use rmem_core::{Persistent, SharedMemory};
use rmem_net::{FaultEvent, FaultSchedule, LocalCluster};
use rmem_sim::{ChaosPlan, MatrixSpec, WritePhase};
use rmem_storage::IntentJournal;
use rmem_types::{Micros, OpTag};

use crate::client::{KvClient, KvError};
use crate::exactly_once::{CrashPoint, Resolution};
use crate::history::certify_per_key_epoch_path;
use crate::recorder::OpRecorder;
use crate::router::ShardRouter;

/// Configuration of one chaos-matrix run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the fault plan and all traffic randomness.
    pub seed: u64,
    /// Cluster size (the matrix targets 50+).
    pub nodes: usize,
    /// Every `wal_every`-th node persists to a real write-ahead log (the
    /// torn-tail targets); the rest use in-memory crash-surviving disks.
    pub wal_every: usize,
    /// The live split chain, e.g. `[4, 8, 16]`: the run starts at the
    /// first count and grows through the rest under traffic.
    pub shard_path: Vec<u16>,
    /// Steady exactly-once writer threads.
    pub writers: u16,
    /// Minimum puts per steady writer (they keep writing until the fault
    /// schedule has drained, so traffic spans the whole horizon).
    pub ops_per_writer: usize,
    /// Crash-injected exactly-once clients; crasher `i` dies at write
    /// phase `i mod 3` (pre-send / mid-round / post-quorum).
    pub crashers: u16,
    /// Node kill/recover windows in the plan.
    pub windows: usize,
    /// Max nodes down at once (must leave a majority up).
    pub max_concurrent_down: usize,
    /// Fraction of windows whose recovery is from a torn WAL tail.
    pub torn_fraction: f64,
    /// Wall-clock length of the fault schedule.
    pub horizon: Duration,
    /// Scratch directory for WAL disks and intent journals (a per-seed
    /// subdirectory is created and cleaned).
    pub scratch: PathBuf,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            nodes: 50,
            wal_every: 5,
            shard_path: vec![4, 8, 16],
            writers: 3,
            ops_per_writer: 15,
            crashers: 3,
            windows: 4,
            max_concurrent_down: 3,
            torn_fraction: 0.5,
            horizon: Duration::from_millis(700),
            scratch: std::env::temp_dir().join(format!("rmem-chaos-{}", std::process::id())),
        }
    }
}

/// What one chaos run did and proved.
#[derive(Debug)]
pub struct ChaosReport {
    /// The run's seed.
    pub seed: u64,
    /// Store operations that completed normally.
    pub completed: u64,
    /// Operations that failed ambiguously (node died under them) — their
    /// intents were later resolved to definite verdicts.
    pub ambiguous: u64,
    /// Fault events actually applied by the schedule.
    pub faults_applied: usize,
    /// Torn-tail injections that actually hit a killed WAL node.
    pub torn_tails: usize,
    /// Every verdict from the recovery sweeps: `(client id, tag,
    /// resolution)`, covering both the crash-injected clients and any
    /// steady writer that finished with ambiguous ops in its journal.
    pub verdicts: Vec<(u16, OpTag, Resolution)>,
    /// Keys certified by the cross-epoch checker.
    pub certified_keys: usize,
    /// Failed node attempts that made operations retry (see
    /// `kv.retries`).
    pub retries: u64,
}

/// A chaos run that failed its oracle, with the postmortem evidence.
#[derive(Debug)]
pub struct ChaosFailure {
    /// The failing seed (rerun it to reproduce).
    pub seed: u64,
    /// What failed (certification verdict or recovery error).
    pub message: String,
    /// Flight-recorder dumps and the stitched causal trace.
    pub dumps: String,
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chaos seed {}: {}", self.seed, self.message)
    }
}

impl std::error::Error for ChaosFailure {}

/// Tag namespace offset separating crasher clients from steady writers.
const CRASHER_BASE: u16 = 1_000;

fn lower_phase(phase: WritePhase) -> CrashPoint {
    match phase {
        WritePhase::PreSend => CrashPoint::PreSend,
        WritePhase::MidRound => CrashPoint::MidRound,
        WritePhase::PostQuorum => CrashPoint::PostQuorum,
    }
}

/// Runs one seeded chaos-matrix experiment (see the [module
/// docs](self)).
///
/// # Errors
///
/// Returns [`ChaosFailure`] — with flight-recorder and stitched-trace
/// dumps attached — if the surviving history fails cross-epoch
/// certification (including the exactly-once duplicate check) or a
/// crashed client's op cannot be resolved to a definite verdict.
///
/// # Panics
///
/// Panics on harness-level failures that are bugs in the experiment
/// itself (cluster setup, preload, a split that cannot commit, a write
/// barrier deadlock).
#[allow(clippy::too_many_lines)]
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, Box<ChaosFailure>> {
    assert!(cfg.shard_path.len() >= 2, "the matrix grows at least once");
    let scratch = cfg.scratch.join(format!("s{}", cfg.seed));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("creating the chaos scratch directory");

    let mut cluster = LocalCluster::channel_mixed(
        cfg.nodes,
        SharedMemory::factory(Persistent::flavor()),
        scratch.join("disks"),
        cfg.wal_every,
    )
    .expect("assembling the chaos cluster");
    let recorder = OpRecorder::new();
    let first_shards = cfg.shard_path[0];
    let base = KvClient::new(cluster.clients(), ShardRouter::new(first_shards))
        .expect("building the base client")
        .with_op_timeout(Duration::from_millis(300))
        .with_health_cooldown(Duration::from_secs(2))
        .with_barrier_polls(4_096)
        .with_recorder(recorder.clone());

    // One key per first-epoch shard: linear hashing keeps them injective
    // under every count on the path, so per-register certificates read as
    // per-key ones across the whole chain.
    let keys = ShardRouter::new(first_shards).covering_keys("chaos-");
    for (i, key) in keys.iter().enumerate() {
        base.put(key, vec![0, i as u8]).expect("preload");
    }

    let plan = ChaosPlan::generate(&MatrixSpec {
        seed: cfg.seed,
        processes: cfg.nodes,
        windows: cfg.windows,
        max_concurrent_down: cfg.max_concurrent_down,
        torn_fraction: cfg.torn_fraction,
        client_crashes: cfg.crashers as usize,
        clients: cfg.crashers.max(1),
        horizon: Micros(u64::try_from(cfg.horizon.as_micros()).expect("horizon fits u64")),
    });
    let mut schedule = FaultSchedule::new();
    for w in &plan.windows {
        let start = Duration::from_micros(w.start.0);
        let down = Duration::from_micros(w.down_for.0);
        schedule = schedule
            .at(start, FaultEvent::Kill(w.pid))
            .at(start + down, FaultEvent::Restart(w.pid));
        if w.torn_tail {
            // Mid-outage, so the kill already happened and the restart
            // recovers from the torn log.
            schedule = schedule.at(start + down / 2, FaultEvent::TearTail(w.pid));
        }
    }
    for c in &plan.client_crashes {
        schedule = schedule.at(
            Duration::from_micros(c.at.0),
            FaultEvent::ClientCrash(u64::from(c.client)),
        );
    }

    let completed = AtomicU64::new(0);
    let ambiguous = AtomicU64::new(0);
    let faults_done = AtomicBool::new(false);
    let crash_flags: Vec<Arc<AtomicBool>> = (0..cfg.crashers)
        .map(|_| Arc::new(AtomicBool::new(false)))
        .collect();
    // (crasher id, injected crash point, the orphaned op's tag if the
    // injection reached that point).
    let crashed_ops: Mutex<Vec<(u16, CrashPoint, Option<OpTag>)>> = Mutex::new(Vec::new());
    let mut applied = Vec::new();

    std::thread::scope(|scope| {
        // Steady exactly-once writers: keep traffic flowing for the whole
        // fault horizon, at least `ops_per_writer` puts each.
        for w in 0..cfg.writers {
            let id = w + 1;
            let client = base
                .recorded_clone()
                .with_exactly_once(id, open_journal(&scratch, id));
            let keys = &keys;
            let completed = &completed;
            let ambiguous = &ambiguous;
            let faults_done = &faults_done;
            let mut rng = StdRng::seed_from_u64(cfg.seed * 131 + u64::from(id));
            scope.spawn(move || {
                let mut counter = 0u64;
                while counter < cfg.ops_per_writer as u64 || !faults_done.load(Ordering::Relaxed) {
                    counter += 1;
                    let key = &keys[rng.gen_range(0..keys.len())];
                    let value = (u64::from(id) << 32 | counter).to_be_bytes().to_vec();
                    match client.put(key, value) {
                        Ok(()) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(KvError::Barrier { key, shard }) => {
                            panic!("write barrier deadlocked on {key:?} (shard {shard})")
                        }
                        Err(_) => {
                            ambiguous.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(Duration::from_micros(rng.gen_range(200..1_500)));
                }
            });
        }
        // Crash-injected clients: normal exactly-once traffic until their
        // planned crash signal (or the schedule drains), then die at
        // their write phase, leaving the journal and an orphaned op
        // behind. The injection always happens, so every phase is covered
        // regardless of signal timing.
        for c in 0..cfg.crashers {
            let id = CRASHER_BASE + c;
            let client = base
                .recorded_clone()
                .with_exactly_once(id, open_journal(&scratch, id));
            let point = lower_phase(WritePhase::ALL[c as usize % WritePhase::ALL.len()]);
            let flag = crash_flags[c as usize].clone();
            let keys = &keys;
            let completed = &completed;
            let ambiguous = &ambiguous;
            let faults_done = &faults_done;
            let crashed_ops = &crashed_ops;
            let mut rng = StdRng::seed_from_u64(cfg.seed * 733 + u64::from(id));
            scope.spawn(move || {
                let mut counter = 0u64;
                while !flag.load(Ordering::Relaxed) && !faults_done.load(Ordering::Relaxed) {
                    counter += 1;
                    let key = &keys[rng.gen_range(0..keys.len())];
                    let value = (u64::from(id) << 32 | counter).to_be_bytes().to_vec();
                    match client.put(key, value) {
                        Ok(()) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            ambiguous.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(Duration::from_micros(rng.gen_range(200..1_500)));
                }
                let key = &keys[rng.gen_range(0..keys.len())];
                let value = (u64::from(id) << 32 | 0xDEAD).to_be_bytes().to_vec();
                // An Err here (a node died under the post-quorum issue)
                // still leaves the journaled intent for recovery; only
                // the tag-specific assertion is skipped.
                let tag = client.crashed_put(key, value, point).ok();
                crashed_ops.lock().unwrap().push((id, point, tag));
            });
        }
        // The grower: drive the split chain live, spread over the
        // horizon.
        let grower = base.recorded_clone();
        let path = &cfg.shard_path;
        let horizon = cfg.horizon;
        scope.spawn(move || {
            let steps = path.len() - 1;
            for (i, &target) in path[1..].iter().enumerate() {
                std::thread::sleep(horizon * (i as u32 + 1) / (steps as u32 + 1));
                let report = grower.grow(target).expect("the live split must commit");
                assert_eq!(report.to_shards, target);
            }
        });
        // The adversary: node windows, torn tails and client-crash
        // signals on the clock.
        let cluster = &mut cluster;
        let flags = &crash_flags;
        let faults_done = &faults_done;
        let applied = &mut applied;
        scope.spawn(move || {
            *applied = schedule
                .run_with(cluster, |c| {
                    flags[usize::try_from(c).expect("client ids are small")]
                        .store(true, Ordering::Relaxed);
                })
                .expect("the fault schedule must apply cleanly");
            faults_done.store(true, Ordering::Relaxed);
        });
    });

    // The split chain committed despite everything.
    let map = base.shard_map();
    assert!(!map.is_migrating(), "the last split must have committed");
    assert_eq!(map.shards, *cfg.shard_path.last().unwrap());

    let fail = |message: String| {
        Box::new(ChaosFailure {
            seed: cfg.seed,
            message,
            dumps: format!(
                "{}\n{}",
                cluster.dump_flight_recorders(40),
                cluster.dump_stitched(Vec::new(), 5)
            ),
        })
    };

    // Client recovery: reopen every journal — crashed clients and steady
    // writers alike — with a fresh client under the same tag namespace,
    // and sweep every pending intent to a definite verdict.
    let crashed_ops = crashed_ops.into_inner().unwrap();
    let mut verdicts = Vec::new();
    let all_ids = (1..=cfg.writers).chain(crashed_ops.iter().map(|(id, _, _)| *id));
    for id in all_ids {
        let recovered = base
            .recorded_clone()
            .with_exactly_once(id, open_journal(&scratch, id));
        match recovered.resolve_all() {
            Ok(resolved) => {
                verdicts.extend(resolved.into_iter().map(|(tag, r)| (id, tag, r)));
            }
            Err(e) => return Err(fail(format!("client {id} recovery failed: {e}"))),
        }
        if !recovered.pending_intents().is_empty() {
            return Err(fail(format!("client {id} still has unresolved intents")));
        }
    }
    // The phase-specific guarantees: an op that never left its client
    // resolves NotLanded and stays fenced; an op acked at a quorum
    // resolves Landed.
    for (id, point, tag) in &crashed_ops {
        let Some(tag) = tag else { continue };
        let verdict = verdicts
            .iter()
            .find(|(vid, vtag, _)| vid == id && vtag == tag)
            .map(|(_, _, r)| *r);
        match point {
            CrashPoint::PreSend => {
                if verdict != Some(Resolution::NotLanded) {
                    return Err(fail(format!(
                        "pre-send crash of client {id} resolved {verdict:?}, not NotLanded"
                    )));
                }
                let owner = base
                    .recorded_clone()
                    .with_exactly_once(*id, open_journal(&scratch, *id));
                if !matches!(owner.send_put(*tag), Err(KvError::Fenced { .. })) {
                    return Err(fail(format!(
                        "client {id}'s resolved-NotLanded op {tag} was not fenced"
                    )));
                }
            }
            CrashPoint::MidRound | CrashPoint::PostQuorum => {
                if verdict != Some(Resolution::Landed { tag: *tag }) {
                    return Err(fail(format!(
                        "{point:?} crash of client {id} resolved {verdict:?}, not Landed"
                    )));
                }
            }
        }
    }

    // The correctness oracle: cross-epoch per-key certification over the
    // whole split chain, including the exactly-once duplicate check.
    let history = recorder.history();
    let cert = match certify_per_key_epoch_path(
        &history,
        keys.iter().map(String::as_str),
        &cfg.shard_path,
        Criterion::Persistent,
    ) {
        Ok(cert) => cert,
        Err(e) => return Err(fail(format!("certification failed: {e}"))),
    };

    // Post-run sanity: every key still serves and accepts new writes.
    for key in &keys {
        base.put(key, b"final".to_vec()).expect("post-run put");
        assert_eq!(
            base.get(key).expect("post-run get").as_deref(),
            Some(b"final".as_ref())
        );
    }
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);

    let stats = base.stats();
    Ok(ChaosReport {
        seed: cfg.seed,
        completed: completed.load(Ordering::Relaxed),
        ambiguous: ambiguous.load(Ordering::Relaxed),
        faults_applied: applied.len(),
        torn_tails: applied
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::TearTail(_)))
            .count(),
        verdicts,
        certified_keys: cert.per_key.len(),
        retries: stats.retries,
    })
}

fn open_journal(scratch: &std::path::Path, id: u16) -> IntentJournal {
    IntentJournal::open(scratch.join(format!("journal/c{id}")))
        .expect("opening a client's intent journal")
}
