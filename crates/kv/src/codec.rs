//! Register-payload encoding for store entries.
//!
//! A shard register holds the latest entry written to it. The payload
//! embeds the *key* next to the value —
//! `[key length: u16 BE][key bytes][epoch: u8][value bytes]` — because
//! hashing is lossy: when two keys collide onto one shard, the tag is what
//! lets a `get` distinguish "my value" from "someone else's value parked in
//! my cell" and report the latter as absent instead of serving foreign
//! bytes.
//!
//! # Epoch stamps
//!
//! Every payload carries a one-byte **epoch stamp** (the low byte of the
//! shard-map epoch it was written under, see [`crate::epoch`]). Stamps are
//! *signals*, not authority: a reader that finds its key missing under an
//! unexpected stamp refreshes its shard map from the config register and
//! re-routes, instead of wrongly reporting absence after a live shard
//! split moved the key. The authoritative epoch always lives in the map
//! register; the stamp only tells a stale client *that* it should go look.
//!
//! # Bundles
//!
//! The batching layer (`rmem-batch`) coalesces the puts of a multi-key
//! operation that land on one shard into a **single register write**. When
//! those puts carry more than one distinct key, the payload is a *bundle*:
//!
//! ```text
//! [0xFFFF][epoch: u8][count: u16][ (key length: u16, key, value length: u32, value) × count ]
//! ```
//!
//! A bundle never straddles epochs — it has exactly one stamp, and the
//! batching engine flushes its queues whenever the epoch moves.
//!
//! # Seals
//!
//! A live shard split ends each source register's old life with a **seal**:
//! either a bundle of the entries that *stay* (re-stamped with the new
//! epoch), or — when nothing stays — the two-byte seal marker
//!
//! ```text
//! [0xFFFE][epoch: u8]
//! ```
//!
//! which says "this register was migrated into `epoch`; whatever you were
//! looking for lives at the new epoch's routing". Writers barriered on a
//! splitting shard wait for the seal; readers treat it as "key absent here,
//! re-route".
//!
//! # Op-id frames
//!
//! An exactly-once write (see `KvClient::resolve`) prefixes its payload —
//! entry or bundle alike — with a 12-byte **op-id frame**:
//!
//! ```text
//! [0xFFFC][client: u16][seq: u64][inner payload]
//! ```
//!
//! The frame carries the client-assigned [`OpTag`] identifying the
//! *logical* write, so a recovering client can re-read a register and
//! decide whether its crashed operation landed, and certification can
//! collapse duplicate applications (a retry re-issued under the same tag)
//! into one logical write. Every decoder sees through the frame
//! transparently; **untagged legacy payloads decode unchanged**.
//!
//! The markers `0xFFFF` (bundle), `0xFFFE` (seal), `0xFFFD` (shard map,
//! see [`crate::epoch`]) and `0xFFFC` (op-id frame) cannot open a single
//! entry — keys are capped at [`MAX_KEY_LEN`] = 65 531 bytes — so all
//! payload forms are self-describing.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rmem_types::{OpTag, Value};

/// Longest accepted key, in bytes: below every reserved length-prefix
/// marker (bundle, seal, shard map, op-id frame).
pub const MAX_KEY_LEN: usize = u16::MAX as usize - 4;

/// Length-prefix marker opening a bundle payload.
const BUNDLE_MARKER: u16 = u16::MAX;

/// Length-prefix marker opening a migration seal.
const SEAL_MARKER: u16 = u16::MAX - 1;

/// Length-prefix marker opening a shard-map record (encoded by
/// [`crate::epoch::ShardMap`]; named here so the payload forms stay
/// disjoint by construction).
pub(crate) const MAP_MARKER: u16 = u16::MAX - 2;

/// Length-prefix marker opening an [op-id frame](self#op-id-frames).
const OPID_MARKER: u16 = u16::MAX - 3;

/// Most entries one bundle can carry (the `u16` count field).
pub const MAX_BUNDLE_ENTRIES: usize = u16::MAX as usize;

/// Encoded bytes the optional [op-id frame](self#op-id-frames) costs
/// (marker + client + seq).
pub const OP_TAG_OVERHEAD: usize = 12;

/// Encoded bytes a single entry costs beyond its key and value bytes in
/// the worst case: the key length prefix + the epoch stamp + the
/// [op-id frame](self#op-id-frames) every exactly-once write carries.
/// Untagged legacy entries cost [`OP_TAG_OVERHEAD`] less. Pinned by a
/// test against [`encode_entry_tagged`].
pub const ENTRY_OVERHEAD: usize = 3 + OP_TAG_OVERHEAD;

/// Encoded bytes a bundle costs beyond its entries in the worst case
/// (marker + epoch stamp + count + the optional
/// [op-id frame](self#op-id-frames)).
///
/// Exposed with [`BUNDLE_ENTRY_OVERHEAD`] so batching layers can size
/// payloads against a transport frame budget without re-deriving the
/// wire format; pinned by a test against [`encode_entries`].
pub const BUNDLE_OVERHEAD: usize = 5 + OP_TAG_OVERHEAD;

/// Encoded bytes each bundle entry costs beyond its key and value bytes
/// (key length prefix + value length prefix).
pub const BUNDLE_ENTRY_OVERHEAD: usize = 6;

/// Encodes a store entry into a register payload, stamped with the
/// writing epoch's low byte.
///
/// # Panics
///
/// Panics if `key` exceeds [`MAX_KEY_LEN`].
pub fn encode_entry(key: &str, value: &Bytes, epoch: u8) -> Value {
    let mut buf = BytesMut::with_capacity(3 + key.len() + value.len());
    encode_entry_into(&mut buf, key, value, epoch);
    Value::new(buf.freeze().to_vec())
}

/// As [`encode_entry`], but appends the wire form into a caller-owned
/// buffer instead of allocating — the pipelined client's zero-copy
/// submission path builds entries directly in its reusable per-slot
/// scratch this way.
///
/// # Panics
///
/// Panics if `key` exceeds [`MAX_KEY_LEN`].
pub fn encode_entry_into(buf: &mut BytesMut, key: &str, value: &Bytes, epoch: u8) {
    assert!(
        key.len() <= MAX_KEY_LEN,
        "key longer than {MAX_KEY_LEN} bytes"
    );
    buf.put_u16(key.len() as u16);
    buf.put_slice(key.as_bytes());
    buf.put_u8(epoch);
    buf.put_slice(value);
}

/// Encodes a store entry carrying the writer's [op-id
/// frame](self#op-id-frames): the entry of [`encode_entry`] prefixed with
/// `tag`. Decoders see through the frame; [`payload_op_tag`] recovers it.
///
/// # Panics
///
/// Panics if `key` exceeds [`MAX_KEY_LEN`].
pub fn encode_entry_tagged(key: &str, value: &Bytes, epoch: u8, tag: OpTag) -> Value {
    tag_payload(tag, &encode_entry(key, value, epoch))
}

/// Prefixes an encoded entry or bundle payload with an [op-id
/// frame](self#op-id-frames) naming the logical write `tag`.
///
/// # Panics
///
/// Panics on ⊥ (there is no write to tag) and on a payload that already
/// carries a frame (one logical write has exactly one identity).
pub fn tag_payload(tag: OpTag, inner: &Value) -> Value {
    assert!(!inner.is_bottom(), "cannot tag ⊥ — there is no write");
    assert!(
        payload_op_tag(inner).is_none(),
        "payload already carries an op-id frame"
    );
    let inner_bytes = inner.bytes();
    let mut buf = BytesMut::with_capacity(OP_TAG_OVERHEAD + inner_bytes.len());
    buf.put_u16(OPID_MARKER);
    buf.put_u16(tag.client);
    buf.put_u64(tag.seq);
    buf.put_slice(inner_bytes);
    Value::new(buf.freeze().to_vec())
}

/// The [`OpTag`] a payload's [op-id frame](self#op-id-frames) carries:
/// `Some` for tagged entries and bundles, `None` for untagged legacy
/// payloads, ⊥, seals, shard-map records and malformed payloads.
pub fn payload_op_tag(payload: &Value) -> Option<OpTag> {
    if payload.is_bottom() {
        return None;
    }
    let buf: &[u8] = payload.bytes().as_ref();
    if buf.len() < OP_TAG_OVERHEAD || u16::from_be_bytes([buf[0], buf[1]]) != OPID_MARKER {
        return None;
    }
    Some(OpTag {
        client: u16::from_be_bytes([buf[2], buf[3]]),
        seq: u64::from_be_bytes(buf[4..12].try_into().ok()?),
    })
}

/// Skips a payload's [op-id frame](self#op-id-frames) if present,
/// returning the inner entry/bundle bytes; untagged payloads pass
/// through unchanged.
fn strip_op_frame(buf: &[u8]) -> &[u8] {
    if buf.len() >= OP_TAG_OVERHEAD && u16::from_be_bytes([buf[0], buf[1]]) == OPID_MARKER {
        &buf[OP_TAG_OVERHEAD..]
    } else {
        buf
    }
}

/// Decodes a register payload into `(key, value)`, seeing through an
/// [op-id frame](self#op-id-frames) if one is present.
///
/// Returns `None` for ⊥ (the register was never written), for
/// malformed payloads (a register written through a non-KV client), for
/// [seals](self#seals) and for [bundles](self#bundles) (use
/// [`decode_entries`]).
pub fn decode_entry(payload: &Value) -> Option<(String, Bytes)> {
    if payload.is_bottom() {
        return None;
    }
    let mut buf: &[u8] = strip_op_frame(payload.bytes().as_ref());
    if buf.remaining() < 2 {
        return None;
    }
    let key_len = buf.get_u16();
    if key_len > MAX_KEY_LEN as u16 {
        return None;
    }
    let key_len = key_len as usize;
    if buf.remaining() < key_len + 1 {
        return None;
    }
    let key_bytes = buf.copy_to_bytes(key_len);
    let key = String::from_utf8(key_bytes.to_vec()).ok()?;
    let _epoch = buf.get_u8();
    Some((key, Bytes::copy_from_slice(buf.chunk())))
}

/// The epoch stamp a payload carries: `Some` for entries, bundles and
/// seals (tagged or not), `None` for ⊥, shard-map records and malformed
/// payloads.
pub fn payload_epoch(payload: &Value) -> Option<u8> {
    if payload.is_bottom() {
        return None;
    }
    let buf: &[u8] = strip_op_frame(payload.bytes().as_ref());
    if buf.len() < 2 {
        return None;
    }
    let marker = u16::from_be_bytes([buf[0], buf[1]]);
    match marker {
        BUNDLE_MARKER | SEAL_MARKER => buf.get(2).copied(),
        MAP_MARKER => None,
        key_len => {
            let key_len = key_len as usize;
            if key_len > MAX_KEY_LEN {
                return None;
            }
            buf.get(2 + key_len).copied()
        }
    }
}

/// Encodes a migration seal: "this register's old-epoch content was
/// migrated into `epoch`, and nothing stays here". The payload carries
/// the one-byte stamp (uniform with entries and bundles) *and* the full
/// `u64` epoch — the migration driver's resume check needs exactness
/// that a wrapping byte cannot give (epochs 0 and 256 share a stamp).
pub fn encode_seal(epoch: u64) -> Value {
    let mut buf = BytesMut::with_capacity(11);
    buf.put_u16(SEAL_MARKER);
    buf.put_u8(epoch as u8);
    buf.put_u64(epoch);
    Value::new(buf.freeze().to_vec())
}

/// Whether a payload is a migration [seal](self#seals) marker.
pub fn is_seal(payload: &Value) -> bool {
    if payload.is_bottom() {
        return false;
    }
    let buf: &[u8] = strip_op_frame(payload.bytes().as_ref());
    buf.len() == 11 && u16::from_be_bytes([buf[0], buf[1]]) == SEAL_MARKER
}

/// The full epoch a [seal](self#seals) marker names (`None` for
/// anything that is not a seal).
pub fn seal_epoch(payload: &Value) -> Option<u64> {
    if !is_seal(payload) {
        return None;
    }
    let bytes: &[u8] = strip_op_frame(payload.bytes().as_ref());
    Some(u64::from_be_bytes(bytes[3..11].try_into().ok()?))
}

/// Encodes a batch of entries into one register payload: a single entry
/// for one key, a [bundle](self#bundles) for several, all under one epoch
/// stamp. Keys must be distinct — the batching layer coalesces same-key
/// puts (last wins) before encoding.
///
/// # Panics
///
/// Panics on an empty batch, a batch over [`MAX_BUNDLE_ENTRIES`], a
/// duplicate key, or a key over [`MAX_KEY_LEN`].
pub fn encode_entries(entries: &[(&str, Bytes)], epoch: u8) -> Value {
    assert!(!entries.is_empty(), "a batch holds at least one entry");
    assert!(
        entries.len() <= MAX_BUNDLE_ENTRIES,
        "a bundle holds at most {MAX_BUNDLE_ENTRIES} entries"
    );
    if let [(key, value)] = entries {
        return encode_entry(key, value, epoch);
    }
    let mut seen = std::collections::BTreeSet::new();
    let mut size = BUNDLE_OVERHEAD;
    for (key, value) in entries {
        assert!(
            key.len() <= MAX_KEY_LEN,
            "key longer than {MAX_KEY_LEN} bytes"
        );
        assert!(seen.insert(*key), "duplicate key {key:?} in a bundle");
        size += BUNDLE_ENTRY_OVERHEAD + key.len() + value.len();
    }
    let mut buf = BytesMut::with_capacity(size);
    buf.put_u16(BUNDLE_MARKER);
    buf.put_u8(epoch);
    buf.put_u16(entries.len() as u16);
    for (key, value) in entries {
        buf.put_u16(key.len() as u16);
        buf.put_slice(key.as_bytes());
        buf.put_u32(value.len() as u32);
        buf.put_slice(value);
    }
    Value::new(buf.freeze().to_vec())
}

/// Decodes a register payload into its entries — one for a single entry,
/// several for a [bundle](self#bundles) — seeing through an [op-id
/// frame](self#op-id-frames) if one is present. `None` for ⊥, seals,
/// shard-map records and malformed payloads.
pub fn decode_entries(payload: &Value) -> Option<Vec<(String, Bytes)>> {
    if payload.is_bottom() {
        return None;
    }
    let mut buf: &[u8] = strip_op_frame(payload.bytes().as_ref());
    if buf.remaining() < 2 {
        return None;
    }
    let marker = u16::from_be_bytes([buf[0], buf[1]]);
    if marker == SEAL_MARKER || marker == MAP_MARKER {
        return None;
    }
    if marker != BUNDLE_MARKER {
        return decode_entry(payload).map(|e| vec![e]);
    }
    buf.advance(2);
    if buf.remaining() < 3 {
        return None;
    }
    let _epoch = buf.get_u8();
    let count = buf.get_u16() as usize;
    if count == 0 {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 2 {
            return None;
        }
        let key_len = buf.get_u16() as usize;
        if key_len > MAX_KEY_LEN || buf.remaining() < key_len {
            return None;
        }
        let key = String::from_utf8(buf.copy_to_bytes(key_len).to_vec()).ok()?;
        if buf.remaining() < 4 {
            return None;
        }
        let value_len = buf.get_u32() as usize;
        if buf.remaining() < value_len {
            return None;
        }
        entries.push((key, buf.copy_to_bytes(value_len)));
    }
    if buf.has_remaining() {
        return None; // trailing garbage
    }
    Some(entries)
}

/// Decodes a payload and keeps the value only if an entry belongs to
/// `key` (collision-aware `get`; serves singles and bundles alike, and
/// treats seals as absence).
pub fn value_for_key(payload: &Value, key: &str) -> Option<Bytes> {
    decode_entries(payload)?
        .into_iter()
        .find(|(stored, _)| stored == key)
        .map(|(_, value)| value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = encode_entry("user:7", &Bytes::from(b"payload".to_vec()), 3);
        let (key, value) = decode_entry(&v).unwrap();
        assert_eq!(key, "user:7");
        assert_eq!(value.as_ref(), b"payload");
        assert_eq!(payload_epoch(&v), Some(3));
    }

    #[test]
    fn empty_value_roundtrips() {
        let v = encode_entry("k", &Bytes::new(), 0);
        let (key, value) = decode_entry(&v).unwrap();
        assert_eq!(key, "k");
        assert!(value.is_empty());
        assert_eq!(payload_epoch(&v), Some(0));
    }

    #[test]
    fn bottom_and_garbage_decode_to_none() {
        assert_eq!(decode_entry(&Value::bottom()), None);
        assert_eq!(decode_entry(&Value::new(vec![0xff])), None);
        // Declared key length exceeds the payload.
        assert_eq!(decode_entry(&Value::new(vec![0x00, 0x09, b'a'])), None);
        // Entry with the key but no epoch byte.
        assert_eq!(decode_entry(&Value::new(vec![0x00, 0x01, b'a'])), None);
        assert_eq!(payload_epoch(&Value::bottom()), None);
        assert_eq!(payload_epoch(&Value::new(vec![0xff])), None);
    }

    #[test]
    fn value_for_key_filters_collisions() {
        let payload = encode_entry("mine", &Bytes::from(b"1".to_vec()), 0);
        assert!(value_for_key(&payload, "mine").is_some());
        assert!(value_for_key(&payload, "theirs").is_none());
        assert!(value_for_key(&Value::bottom(), "mine").is_none());
    }

    #[test]
    fn seal_is_recognized_and_serves_nothing() {
        let seal = encode_seal(7);
        assert!(is_seal(&seal));
        assert_eq!(payload_epoch(&seal), Some(7));
        assert_eq!(seal_epoch(&seal), Some(7));
        assert_eq!(decode_entry(&seal), None);
        assert_eq!(decode_entries(&seal), None);
        assert_eq!(value_for_key(&seal, "any"), None);
        // Entries and bundles are not seals.
        assert!(!is_seal(&encode_entry("k", &Bytes::new(), 7)));
        assert!(!is_seal(&Value::bottom()));
        assert_eq!(seal_epoch(&encode_entry("k", &Bytes::new(), 7)), None);
        // The stamp wraps; the full epoch does not.
        let wrapped = encode_seal(256);
        assert_eq!(payload_epoch(&wrapped), Some(0));
        assert_eq!(seal_epoch(&wrapped), Some(256));
    }

    #[test]
    fn bundle_roundtrips_and_serves_every_key() {
        let entries: Vec<(&str, Bytes)> = vec![
            ("a", Bytes::from(b"1".to_vec())),
            ("b", Bytes::from(b"22".to_vec())),
            ("c", Bytes::new()),
        ];
        let payload = encode_entries(&entries, 2);
        assert_eq!(payload_epoch(&payload), Some(2));
        let decoded = decode_entries(&payload).unwrap();
        assert_eq!(decoded.len(), 3);
        for (key, value) in &entries {
            assert_eq!(value_for_key(&payload, key).as_ref(), Some(value));
        }
        assert_eq!(value_for_key(&payload, "absent"), None);
        // A bundle is not a single entry.
        assert_eq!(decode_entry(&payload), None);
    }

    #[test]
    fn single_entry_batch_encodes_as_plain_entry() {
        let payload = encode_entries(&[("solo", Bytes::from(b"v".to_vec()))], 1);
        assert_eq!(
            decode_entry(&payload).unwrap(),
            ("solo".to_string(), Bytes::from(b"v".to_vec()))
        );
        assert_eq!(
            decode_entries(&payload).unwrap(),
            vec![("solo".to_string(), Bytes::from(b"v".to_vec()))]
        );
        assert_eq!(payload_epoch(&payload), Some(1));
    }

    #[test]
    fn malformed_bundles_decode_to_none() {
        // Marker with no epoch/count.
        assert_eq!(decode_entries(&Value::new(vec![0xff, 0xff])), None);
        assert_eq!(decode_entries(&Value::new(vec![0xff, 0xff, 0])), None);
        // Count of zero.
        assert_eq!(decode_entries(&Value::new(vec![0xff, 0xff, 0, 0, 0])), None);
        // Truncated entry.
        assert_eq!(
            decode_entries(&Value::new(vec![0xff, 0xff, 0, 0, 1, 0, 5, b'a'])),
            None
        );
        // Trailing garbage after a valid bundle.
        let mut bytes = encode_entries(
            &[
                ("a", Bytes::from(b"1".to_vec())),
                ("b", Bytes::from(b"2".to_vec())),
            ],
            0,
        )
        .bytes()
        .to_vec();
        bytes.push(0);
        assert_eq!(decode_entries(&Value::new(bytes)), None);
        assert_eq!(decode_entries(&Value::bottom()), None);
    }

    #[test]
    fn bundle_overhead_constants_are_exact() {
        let entries: Vec<(&str, Bytes)> = vec![
            ("k1", Bytes::from(b"abc".to_vec())),
            ("key2", Bytes::new()),
            ("k3", Bytes::from(vec![0u8; 100])),
        ];
        let entry_bytes: usize = entries
            .iter()
            .map(|(k, v)| BUNDLE_ENTRY_OVERHEAD + k.len() + v.len())
            .sum();
        // The constants describe the worst case: a payload carrying the
        // op-id frame. Untagged legacy payloads cost OP_TAG_OVERHEAD less.
        let bundle = encode_entries(&entries, 0);
        assert_eq!(
            bundle.bytes().len(),
            BUNDLE_OVERHEAD - OP_TAG_OVERHEAD + entry_bytes
        );
        assert_eq!(
            tag_payload(OpTag::new(3, 9), &bundle).bytes().len(),
            BUNDLE_OVERHEAD + entry_bytes
        );
        let single = encode_entry("key", &Bytes::from(b"val".to_vec()), 0);
        assert_eq!(
            single.bytes().len(),
            ENTRY_OVERHEAD - OP_TAG_OVERHEAD + 3 + 3
        );
        let tagged = encode_entry_tagged("key", &Bytes::from(b"val".to_vec()), 0, OpTag::new(1, 2));
        assert_eq!(tagged.bytes().len(), ENTRY_OVERHEAD + 3 + 3);
    }

    #[test]
    fn tagged_entries_roundtrip_and_decode_transparently() {
        let tag = OpTag::new(7, 0x0123_4567_89ab_cdef);
        let tagged = encode_entry_tagged("user:7", &Bytes::from(b"payload".to_vec()), 3, tag);
        // The frame is recoverable…
        assert_eq!(payload_op_tag(&tagged), Some(tag));
        // …and every decoder sees through it.
        let (key, value) = decode_entry(&tagged).unwrap();
        assert_eq!(key, "user:7");
        assert_eq!(value.as_ref(), b"payload");
        assert_eq!(payload_epoch(&tagged), Some(3));
        assert_eq!(
            value_for_key(&tagged, "user:7"),
            Some(Bytes::from(b"payload".to_vec()))
        );
        assert_eq!(value_for_key(&tagged, "other"), None);
        assert!(!is_seal(&tagged));
        // Untagged legacy payloads carry no tag and decode unchanged.
        let legacy = encode_entry("user:7", &Bytes::from(b"payload".to_vec()), 3);
        assert_eq!(payload_op_tag(&legacy), None);
        assert_eq!(decode_entry(&legacy).unwrap().0, "user:7");
    }

    #[test]
    fn tagged_bundles_and_seals_decode_transparently() {
        let tag = OpTag::new(2, 5);
        let bundle = encode_entries(
            &[
                ("a", Bytes::from(b"1".to_vec())),
                ("b", Bytes::from(b"2".to_vec())),
            ],
            4,
        );
        let tagged = tag_payload(tag, &bundle);
        assert_eq!(payload_op_tag(&tagged), Some(tag));
        assert_eq!(decode_entries(&tagged).unwrap().len(), 2);
        assert_eq!(payload_epoch(&tagged), Some(4));
        assert_eq!(
            value_for_key(&tagged, "b"),
            Some(Bytes::from(b"2".to_vec()))
        );
        // A tagged seal is still a seal (never produced by the store, but
        // the decoders stay uniform).
        let sealed = tag_payload(tag, &encode_seal(9));
        assert!(is_seal(&sealed));
        assert_eq!(seal_epoch(&sealed), Some(9));
        assert_eq!(payload_epoch(&sealed), Some(9));
    }

    #[test]
    fn malformed_op_frames_decode_to_none() {
        // A bare marker with no tag body is not an entry (key_len 0xFFFC
        // exceeds MAX_KEY_LEN) and not a valid frame.
        assert_eq!(decode_entry(&Value::new(vec![0xff, 0xfc])), None);
        assert_eq!(payload_op_tag(&Value::new(vec![0xff, 0xfc])), None);
        // A truncated frame (marker + partial tag).
        assert_eq!(
            decode_entries(&Value::new(vec![0xff, 0xfc, 0, 1, 2, 3])),
            None
        );
        // A frame wrapping nothing decodes to no entry.
        let empty_frame = {
            let mut b = vec![0xff, 0xfc];
            b.extend_from_slice(&[0u8; 10]);
            Value::new(b)
        };
        assert_eq!(payload_op_tag(&empty_frame), Some(OpTag::new(0, 0)));
        assert_eq!(decode_entry(&empty_frame), None);
        assert_eq!(payload_epoch(&empty_frame), None);
        assert_eq!(payload_op_tag(&Value::bottom()), None);
    }

    #[test]
    #[should_panic(expected = "already carries an op-id frame")]
    fn double_tagging_panics() {
        let tag = OpTag::new(1, 1);
        let once = encode_entry_tagged("k", &Bytes::new(), 0, tag);
        let _ = tag_payload(tag, &once);
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn duplicate_bundle_keys_panic() {
        let _ = encode_entries(
            &[
                ("same", Bytes::from(b"1".to_vec())),
                ("same", Bytes::from(b"2".to_vec())),
            ],
            0,
        );
    }

    #[test]
    fn unicode_keys_roundtrip() {
        let v = encode_entry("ключ-🔑", &Bytes::from(vec![1, 2]), 255);
        let (key, _) = decode_entry(&v).unwrap();
        assert_eq!(key, "ключ-🔑");
        assert_eq!(payload_epoch(&v), Some(255));
    }
}
