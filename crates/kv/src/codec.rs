//! Register-payload encoding for store entries.
//!
//! A shard register holds the latest entry written to it. The payload
//! embeds the *key* next to the value —
//! `[key length: u16 BE][key bytes][value bytes]` — because hashing is
//! lossy: when two keys collide onto one shard, the tag is what lets a
//! `get` distinguish "my value" from "someone else's value parked in my
//! cell" and report the latter as absent instead of serving foreign bytes.
//!
//! # Bundles
//!
//! The batching layer (`rmem-batch`) coalesces the puts of a multi-key
//! operation that land on one shard into a **single register write**. When
//! those puts carry more than one distinct key, the payload is a *bundle*:
//!
//! ```text
//! [0xFFFF][count: u16][ (key length: u16, key, value length: u32, value) × count ]
//! ```
//!
//! The `0xFFFF` marker cannot open a single entry (keys are capped at
//! [`MAX_KEY_LEN`] = 65 534 bytes), so the two forms are self-describing.
//! A bundle is still *one* register value — it replaces the cell's whole
//! content, exactly as a single entry displaces a colliding tenant — and
//! [`value_for_key`] serves `get`s from either form transparently.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rmem_types::Value;

/// Longest accepted key, in bytes: one less than the `u16` range so the
/// all-ones length prefix can mark a [bundle](self#bundles).
pub const MAX_KEY_LEN: usize = u16::MAX as usize - 1;

/// Length-prefix marker opening a bundle payload.
const BUNDLE_MARKER: u16 = u16::MAX;

/// Most entries one bundle can carry (the `u16` count field).
pub const MAX_BUNDLE_ENTRIES: usize = u16::MAX as usize;

/// Encoded bytes a single entry costs beyond its key and value bytes
/// (the key length prefix). Pinned by a test against [`encode_entry`].
pub const ENTRY_OVERHEAD: usize = 2;

/// Encoded bytes a bundle costs beyond its entries (marker + count).
///
/// Exposed with [`BUNDLE_ENTRY_OVERHEAD`] so batching layers can size
/// payloads against a transport frame budget without re-deriving the
/// wire format; pinned by a test against [`encode_entries`].
pub const BUNDLE_OVERHEAD: usize = 4;

/// Encoded bytes each bundle entry costs beyond its key and value bytes
/// (key length prefix + value length prefix).
pub const BUNDLE_ENTRY_OVERHEAD: usize = 6;

/// Encodes a store entry into a register payload.
///
/// # Panics
///
/// Panics if `key` exceeds [`MAX_KEY_LEN`].
pub fn encode_entry(key: &str, value: &Bytes) -> Value {
    assert!(
        key.len() <= MAX_KEY_LEN,
        "key longer than {MAX_KEY_LEN} bytes"
    );
    let mut buf = BytesMut::with_capacity(ENTRY_OVERHEAD + key.len() + value.len());
    buf.put_u16(key.len() as u16);
    buf.put_slice(key.as_bytes());
    buf.put_slice(value);
    Value::new(buf.freeze().to_vec())
}

/// Decodes a register payload into `(key, value)`.
///
/// Returns `None` for ⊥ (the register was never written), for
/// malformed payloads (a register written through a non-KV client), and
/// for [bundles](self#bundles) (use [`decode_entries`]).
pub fn decode_entry(payload: &Value) -> Option<(String, Bytes)> {
    if payload.is_bottom() {
        return None;
    }
    let mut buf: &[u8] = payload.bytes().as_ref();
    if buf.remaining() < 2 {
        return None;
    }
    let key_len = buf.get_u16();
    if key_len == BUNDLE_MARKER {
        return None;
    }
    let key_len = key_len as usize;
    if buf.remaining() < key_len {
        return None;
    }
    let key_bytes = buf.copy_to_bytes(key_len);
    let key = String::from_utf8(key_bytes.to_vec()).ok()?;
    Some((key, Bytes::copy_from_slice(buf.chunk())))
}

/// Encodes a batch of entries into one register payload: a single entry
/// for one key, a [bundle](self#bundles) for several. Keys must be
/// distinct — the batching layer coalesces same-key puts (last wins)
/// before encoding.
///
/// # Panics
///
/// Panics on an empty batch, a batch over [`MAX_BUNDLE_ENTRIES`], a
/// duplicate key, or a key over [`MAX_KEY_LEN`].
pub fn encode_entries(entries: &[(&str, Bytes)]) -> Value {
    assert!(!entries.is_empty(), "a batch holds at least one entry");
    assert!(
        entries.len() <= MAX_BUNDLE_ENTRIES,
        "a bundle holds at most {MAX_BUNDLE_ENTRIES} entries"
    );
    if let [(key, value)] = entries {
        return encode_entry(key, value);
    }
    let mut seen = std::collections::BTreeSet::new();
    let mut size = BUNDLE_OVERHEAD;
    for (key, value) in entries {
        assert!(
            key.len() <= MAX_KEY_LEN,
            "key longer than {MAX_KEY_LEN} bytes"
        );
        assert!(seen.insert(*key), "duplicate key {key:?} in a bundle");
        size += BUNDLE_ENTRY_OVERHEAD + key.len() + value.len();
    }
    let mut buf = BytesMut::with_capacity(size);
    buf.put_u16(BUNDLE_MARKER);
    buf.put_u16(entries.len() as u16);
    for (key, value) in entries {
        buf.put_u16(key.len() as u16);
        buf.put_slice(key.as_bytes());
        buf.put_u32(value.len() as u32);
        buf.put_slice(value);
    }
    Value::new(buf.freeze().to_vec())
}

/// Decodes a register payload into its entries — one for a single entry,
/// several for a [bundle](self#bundles). `None` for ⊥ and malformed
/// payloads.
pub fn decode_entries(payload: &Value) -> Option<Vec<(String, Bytes)>> {
    if payload.is_bottom() {
        return None;
    }
    let mut buf: &[u8] = payload.bytes().as_ref();
    if buf.remaining() < 2 {
        return None;
    }
    let marker = u16::from_be_bytes([buf[0], buf[1]]);
    if marker != BUNDLE_MARKER {
        return decode_entry(payload).map(|e| vec![e]);
    }
    buf.advance(2);
    if buf.remaining() < 2 {
        return None;
    }
    let count = buf.get_u16() as usize;
    if count == 0 {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 2 {
            return None;
        }
        let key_len = buf.get_u16() as usize;
        if key_len > MAX_KEY_LEN || buf.remaining() < key_len {
            return None;
        }
        let key = String::from_utf8(buf.copy_to_bytes(key_len).to_vec()).ok()?;
        if buf.remaining() < 4 {
            return None;
        }
        let value_len = buf.get_u32() as usize;
        if buf.remaining() < value_len {
            return None;
        }
        entries.push((key, buf.copy_to_bytes(value_len)));
    }
    if buf.has_remaining() {
        return None; // trailing garbage
    }
    Some(entries)
}

/// Decodes a payload and keeps the value only if an entry belongs to
/// `key` (collision-aware `get`; serves singles and bundles alike).
pub fn value_for_key(payload: &Value, key: &str) -> Option<Bytes> {
    decode_entries(payload)?
        .into_iter()
        .find(|(stored, _)| stored == key)
        .map(|(_, value)| value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = encode_entry("user:7", &Bytes::from(b"payload".to_vec()));
        let (key, value) = decode_entry(&v).unwrap();
        assert_eq!(key, "user:7");
        assert_eq!(value.as_ref(), b"payload");
    }

    #[test]
    fn empty_value_roundtrips() {
        let v = encode_entry("k", &Bytes::new());
        let (key, value) = decode_entry(&v).unwrap();
        assert_eq!(key, "k");
        assert!(value.is_empty());
    }

    #[test]
    fn bottom_and_garbage_decode_to_none() {
        assert_eq!(decode_entry(&Value::bottom()), None);
        assert_eq!(decode_entry(&Value::new(vec![0xff])), None);
        // Declared key length exceeds the payload.
        assert_eq!(decode_entry(&Value::new(vec![0x00, 0x09, b'a'])), None);
    }

    #[test]
    fn value_for_key_filters_collisions() {
        let payload = encode_entry("mine", &Bytes::from(b"1".to_vec()));
        assert!(value_for_key(&payload, "mine").is_some());
        assert!(value_for_key(&payload, "theirs").is_none());
        assert!(value_for_key(&Value::bottom(), "mine").is_none());
    }

    #[test]
    fn bundle_roundtrips_and_serves_every_key() {
        let entries: Vec<(&str, Bytes)> = vec![
            ("a", Bytes::from(b"1".to_vec())),
            ("b", Bytes::from(b"22".to_vec())),
            ("c", Bytes::new()),
        ];
        let payload = encode_entries(&entries);
        let decoded = decode_entries(&payload).unwrap();
        assert_eq!(decoded.len(), 3);
        for (key, value) in &entries {
            assert_eq!(value_for_key(&payload, key).as_ref(), Some(value));
        }
        assert_eq!(value_for_key(&payload, "absent"), None);
        // A bundle is not a single entry.
        assert_eq!(decode_entry(&payload), None);
    }

    #[test]
    fn single_entry_batch_encodes_as_plain_entry() {
        let payload = encode_entries(&[("solo", Bytes::from(b"v".to_vec()))]);
        assert_eq!(
            decode_entry(&payload).unwrap(),
            ("solo".to_string(), Bytes::from(b"v".to_vec()))
        );
        assert_eq!(
            decode_entries(&payload).unwrap(),
            vec![("solo".to_string(), Bytes::from(b"v".to_vec()))]
        );
    }

    #[test]
    fn malformed_bundles_decode_to_none() {
        // Marker with no count.
        assert_eq!(decode_entries(&Value::new(vec![0xff, 0xff])), None);
        // Count of zero.
        assert_eq!(decode_entries(&Value::new(vec![0xff, 0xff, 0, 0])), None);
        // Truncated entry.
        assert_eq!(
            decode_entries(&Value::new(vec![0xff, 0xff, 0, 1, 0, 5, b'a'])),
            None
        );
        // Trailing garbage after a valid bundle.
        let mut bytes = encode_entries(&[
            ("a", Bytes::from(b"1".to_vec())),
            ("b", Bytes::from(b"2".to_vec())),
        ])
        .bytes()
        .to_vec();
        bytes.push(0);
        assert_eq!(decode_entries(&Value::new(bytes)), None);
        assert_eq!(decode_entries(&Value::bottom()), None);
    }

    #[test]
    fn bundle_overhead_constants_are_exact() {
        let entries: Vec<(&str, Bytes)> = vec![
            ("k1", Bytes::from(b"abc".to_vec())),
            ("key2", Bytes::new()),
            ("k3", Bytes::from(vec![0u8; 100])),
        ];
        let expected: usize = BUNDLE_OVERHEAD
            + entries
                .iter()
                .map(|(k, v)| BUNDLE_ENTRY_OVERHEAD + k.len() + v.len())
                .sum::<usize>();
        assert_eq!(encode_entries(&entries).bytes().len(), expected);
        let single = encode_entry("key", &Bytes::from(b"val".to_vec()));
        assert_eq!(single.bytes().len(), ENTRY_OVERHEAD + 3 + 3);
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn duplicate_bundle_keys_panic() {
        let _ = encode_entries(&[
            ("same", Bytes::from(b"1".to_vec())),
            ("same", Bytes::from(b"2".to_vec())),
        ]);
    }

    #[test]
    fn unicode_keys_roundtrip() {
        let v = encode_entry("ключ-🔑", &Bytes::from(vec![1, 2]));
        let (key, _) = decode_entry(&v).unwrap();
        assert_eq!(key, "ключ-🔑");
    }
}
