//! Register-payload encoding for store entries.
//!
//! A shard register holds the latest entry written to it. The payload
//! embeds the *key* next to the value —
//! `[key length: u16 BE][key bytes][value bytes]` — because hashing is
//! lossy: when two keys collide onto one shard, the tag is what lets a
//! `get` distinguish "my value" from "someone else's value parked in my
//! cell" and report the latter as absent instead of serving foreign bytes.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rmem_types::Value;

/// Longest accepted key, in bytes (fits the `u16` length prefix).
pub const MAX_KEY_LEN: usize = u16::MAX as usize;

/// Encodes a store entry into a register payload.
///
/// # Panics
///
/// Panics if `key` exceeds [`MAX_KEY_LEN`].
pub fn encode_entry(key: &str, value: &Bytes) -> Value {
    assert!(
        key.len() <= MAX_KEY_LEN,
        "key longer than {MAX_KEY_LEN} bytes"
    );
    let mut buf = BytesMut::with_capacity(2 + key.len() + value.len());
    buf.put_u16(key.len() as u16);
    buf.put_slice(key.as_bytes());
    buf.put_slice(value);
    Value::new(buf.freeze().to_vec())
}

/// Decodes a register payload into `(key, value)`.
///
/// Returns `None` for ⊥ (the register was never written) and for
/// malformed payloads (a register written through a non-KV client).
pub fn decode_entry(payload: &Value) -> Option<(String, Bytes)> {
    if payload.is_bottom() {
        return None;
    }
    let mut buf: &[u8] = payload.bytes().as_ref();
    if buf.remaining() < 2 {
        return None;
    }
    let key_len = buf.get_u16() as usize;
    if buf.remaining() < key_len {
        return None;
    }
    let key_bytes = buf.copy_to_bytes(key_len);
    let key = String::from_utf8(key_bytes.to_vec()).ok()?;
    Some((key, Bytes::copy_from_slice(buf.chunk())))
}

/// Decodes a payload and keeps the value only if the entry belongs to
/// `key` (collision-aware `get`).
pub fn value_for_key(payload: &Value, key: &str) -> Option<Bytes> {
    match decode_entry(payload) {
        Some((stored, value)) if stored == key => Some(value),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = encode_entry("user:7", &Bytes::from(b"payload".to_vec()));
        let (key, value) = decode_entry(&v).unwrap();
        assert_eq!(key, "user:7");
        assert_eq!(value.as_ref(), b"payload");
    }

    #[test]
    fn empty_value_roundtrips() {
        let v = encode_entry("k", &Bytes::new());
        let (key, value) = decode_entry(&v).unwrap();
        assert_eq!(key, "k");
        assert!(value.is_empty());
    }

    #[test]
    fn bottom_and_garbage_decode_to_none() {
        assert_eq!(decode_entry(&Value::bottom()), None);
        assert_eq!(decode_entry(&Value::new(vec![0xff])), None);
        // Declared key length exceeds the payload.
        assert_eq!(decode_entry(&Value::new(vec![0x00, 0x09, b'a'])), None);
    }

    #[test]
    fn value_for_key_filters_collisions() {
        let payload = encode_entry("mine", &Bytes::from(b"1".to_vec()));
        assert!(value_for_key(&payload, "mine").is_some());
        assert!(value_for_key(&payload, "theirs").is_none());
        assert!(value_for_key(&Value::bottom(), "mine").is_none());
    }

    #[test]
    fn unicode_keys_roundtrip() {
        let v = encode_entry("ключ-🔑", &Bytes::from(vec![1, 2]));
        let (key, _) = decode_entry(&v).unwrap();
        assert_eq!(key, "ключ-🔑");
    }
}
