//! Epoch-stamped shard maps, stored **in the store itself**.
//!
//! The paper's crash-recovery registers exist to keep a small piece of
//! critical state consistent while nodes fail — exactly what a shard map
//! is. This module therefore bootstraps the store's own coordination from
//! the primitive it serves: the authoritative epoch → shard-count map
//! lives in a reserved **config register** (register 0, read and written
//! through the ordinary atomic-register client, à la
//! `examples/config_store.rs`), and every data shard `i` lives at register
//! `i + 1`.
//!
//! # The map
//!
//! A [`ShardMap`] is `{ epoch, shards, prev_shards }`:
//!
//! * **committed** (`prev_shards == shards`) — epoch `e` routes every key
//!   with [`shard_at`](crate::router::shard_at) over `shards`;
//! * **migrating** (`prev_shards < shards`) — the split to epoch `e` has
//!   been *published* but not *committed*: keys still route by
//!   `prev_shards` until their source shard is sealed (see the protocol
//!   in [`crate::client::KvClient::grow`]).
//!
//! Because the map register is (transient-)atomic and survives crashes,
//! clients can never durably disagree about the current epoch: whoever
//! reads the register last sees the latest published map, and the
//! one-byte epoch stamps on data payloads ([`crate::codec`]) tell stale
//! clients *when* to come back and read it.

use bytes::{Buf, BufMut, BytesMut};
use rmem_types::{RegisterId, Value};

use crate::codec::MAP_MARKER;
use crate::router::{shard_at, split_sources, stable_hash};

/// The reserved register holding the [`ShardMap`] — the store's own
/// configuration, kept in the store.
pub const CONFIG_REGISTER: RegisterId = RegisterId(0);

/// The register hosting data shard `shard` (offset past the config
/// register).
///
/// # Panics
///
/// Panics if `shard` is `u16::MAX` (the register id space is `u16`).
pub fn data_register(shard: u16) -> RegisterId {
    assert!(shard < u16::MAX, "shard index exhausts the register space");
    RegisterId(shard + 1)
}

/// Version byte of the encoded map record, for forward evolution.
const MAP_VERSION: u8 = 1;

/// The epoch-stamped shard map of a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    /// The epoch this map belongs to (monotone across the store's life).
    pub epoch: u64,
    /// Shard count of this epoch.
    pub shards: u16,
    /// Shard count of the previous epoch; equal to [`shards`](Self::shards)
    /// once the epoch is committed, smaller while a split is migrating.
    pub prev_shards: u16,
}

impl ShardMap {
    /// The map a store starts with before any split was ever published:
    /// epoch 0, committed, at the bootstrap shard count.
    pub fn genesis(shards: u16) -> Self {
        assert!(shards > 0, "a shard map needs at least one shard");
        ShardMap {
            epoch: 0,
            shards,
            prev_shards: shards,
        }
    }

    /// The migrating map publishing a split of `self` to `new_shards`
    /// (epoch bumped, previous count remembered).
    ///
    /// # Panics
    ///
    /// Panics if `self` is still migrating or `new_shards` does not grow
    /// the table.
    pub fn split_to(&self, new_shards: u16) -> Self {
        assert!(!self.is_migrating(), "commit the current split first");
        assert!(new_shards > self.shards, "shard tables only grow");
        ShardMap {
            epoch: self.epoch + 1,
            shards: new_shards,
            prev_shards: self.shards,
        }
    }

    /// The committed form of a migrating map.
    pub fn committed(&self) -> Self {
        ShardMap {
            epoch: self.epoch,
            shards: self.shards,
            prev_shards: self.shards,
        }
    }

    /// Whether a split is published but not yet committed.
    pub fn is_migrating(&self) -> bool {
        self.prev_shards != self.shards
    }

    /// The one-byte stamp entries written under this map carry (the
    /// epoch's low byte — a staleness *signal*, not the authority; see
    /// [`crate::codec`]).
    pub fn stamp(&self) -> u8 {
        self.epoch as u8
    }

    /// The shard of `key` under this epoch's count.
    pub fn shard_of(&self, key: &str) -> u16 {
        shard_at(stable_hash(key), self.shards)
    }

    /// The shard of `key` under the *previous* epoch's count (where its
    /// value lives until the source shard is sealed).
    pub fn old_shard_of(&self, key: &str) -> u16 {
        shard_at(stable_hash(key), self.prev_shards)
    }

    /// The data register of `key` under this epoch.
    pub fn register_for(&self, key: &str) -> RegisterId {
        data_register(self.shard_of(key))
    }

    /// The data register of `key` under the previous epoch.
    pub fn old_register_for(&self, key: &str) -> RegisterId {
        data_register(self.old_shard_of(key))
    }

    /// The previous-epoch shards whose keys may move in this split (empty
    /// for a committed map).
    pub fn split_sources(&self) -> std::collections::BTreeSet<u16> {
        if self.is_migrating() {
            split_sources(self.prev_shards, self.shards)
        } else {
            std::collections::BTreeSet::new()
        }
    }

    /// Whether previous-epoch shard `shard` is a split source of this
    /// migration (always `false` on a committed map).
    pub fn is_split_source(&self, shard: u16) -> bool {
        self.is_migrating() && self.split_sources().contains(&shard)
    }

    /// Whether `payload` proves that previous-epoch shard `source` has
    /// been sealed into **this** map's epoch — the authority check of
    /// the migration sites (barrier release, reader forwarding, resume
    /// detection).
    ///
    /// Seal markers carry the full epoch and compare exactly. Stayer
    /// seals (and post-seal stayer rewrites) are entry payloads: their
    /// one-byte stamp must match *and* every carried key must belong to
    /// `source` under the new routing — an old payload at a wrapped
    /// stamp (epochs 0 and 256 share a byte) still contains a moved
    /// tenant and is correctly rejected.
    pub fn seals_source(&self, payload: &Value, source: u16) -> bool {
        if let Some(epoch) = crate::codec::seal_epoch(payload) {
            return epoch == self.epoch;
        }
        if crate::codec::payload_epoch(payload) != Some(self.stamp()) {
            return false;
        }
        crate::codec::decode_entries(payload)
            .is_some_and(|entries| entries.iter().all(|(key, _)| self.shard_of(key) == source))
    }

    /// Encodes the map into the config-register payload:
    /// `[0xFFFD][version][epoch u64][shards u16][prev u16]`.
    pub fn encode(&self) -> Value {
        let mut buf = BytesMut::with_capacity(15);
        buf.put_u16(MAP_MARKER);
        buf.put_u8(MAP_VERSION);
        buf.put_u64(self.epoch);
        buf.put_u16(self.shards);
        buf.put_u16(self.prev_shards);
        Value::new(buf.freeze().to_vec())
    }

    /// Decodes a config-register payload. `None` for ⊥ (no map ever
    /// published — callers fall back to their bootstrap genesis map) and
    /// for payloads that are not a map record.
    pub fn decode(payload: &Value) -> Option<Self> {
        if payload.is_bottom() {
            return None;
        }
        let mut buf: &[u8] = payload.bytes().as_ref();
        if buf.remaining() != 15 {
            return None;
        }
        if buf.get_u16() != MAP_MARKER || buf.get_u8() != MAP_VERSION {
            return None;
        }
        let epoch = buf.get_u64();
        let shards = buf.get_u16();
        let prev_shards = buf.get_u16();
        if shards == 0 || prev_shards == 0 || prev_shards > shards {
            return None;
        }
        Some(ShardMap {
            epoch,
            shards,
            prev_shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_is_committed_and_routes() {
        let map = ShardMap::genesis(8);
        assert!(!map.is_migrating());
        assert_eq!(map.epoch, 0);
        assert_eq!(map.stamp(), 0);
        assert!(map.split_sources().is_empty());
        let reg = map.register_for("user:42");
        assert!(reg.0 >= 1 && reg.0 <= 8, "data registers skip register 0");
        assert_ne!(reg, CONFIG_REGISTER);
        assert_eq!(map.register_for("user:42"), map.old_register_for("user:42"));
    }

    #[test]
    fn split_publishes_and_commits() {
        let map = ShardMap::genesis(4);
        let migrating = map.split_to(8);
        assert!(migrating.is_migrating());
        assert_eq!(migrating.epoch, 1);
        assert_eq!(migrating.prev_shards, 4);
        assert_eq!(
            migrating.split_sources().into_iter().collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        let committed = migrating.committed();
        assert!(!committed.is_migrating());
        assert_eq!(committed.epoch, 1);
        assert_eq!(committed.shards, 8);
    }

    #[test]
    #[should_panic(expected = "only grow")]
    fn shrinking_split_panics() {
        let _ = ShardMap::genesis(8).split_to(4);
    }

    #[test]
    fn map_record_roundtrips_and_rejects_foreign_payloads() {
        for map in [
            ShardMap::genesis(1),
            ShardMap::genesis(4).split_to(9),
            ShardMap {
                epoch: 300,
                shards: 512,
                prev_shards: 512,
            },
        ] {
            assert_eq!(ShardMap::decode(&map.encode()), Some(map));
        }
        assert_eq!(ShardMap::decode(&Value::bottom()), None);
        assert_eq!(ShardMap::decode(&Value::from_u32(7)), None);
        assert_eq!(
            ShardMap::decode(&crate::codec::encode_entry("k", &bytes::Bytes::new(), 0)),
            None
        );
        assert_eq!(ShardMap::decode(&crate::codec::encode_seal(3)), None);
        // A shrunk or zeroed record is corrupt, not a map.
        let mut bad = ShardMap::genesis(4).split_to(8);
        bad.prev_shards = 9;
        assert_eq!(ShardMap::decode(&bad.encode()), None);
    }

    #[test]
    fn stamps_wrap_at_a_byte() {
        let map = ShardMap {
            epoch: 257,
            shards: 4,
            prev_shards: 4,
        };
        assert_eq!(map.stamp(), 1);
    }

    #[test]
    fn seal_authority_is_exact_across_stamp_wraparound() {
        use crate::codec;
        // Epoch 256 wraps to stamp 0 — the same byte as genesis entries.
        let map = ShardMap {
            epoch: 256,
            shards: 8,
            prev_shards: 4,
        };
        let source = *map.split_sources().iter().next().unwrap();
        // A seal marker carries the full epoch: only this epoch's counts.
        assert!(map.seals_source(&codec::encode_seal(256), source));
        assert!(!map.seals_source(&codec::encode_seal(0), source));
        // An old epoch-0 entry shares the stamp byte, but if it carries a
        // tenant that *moves* in this split, it cannot be a stayer seal.
        let keys = crate::ShardRouter::new(4).covering_keys("w-");
        let mover = keys
            .iter()
            .find(|k| map.old_shard_of(k) != map.shard_of(k))
            .expect("a 4→8 split moves some covering key");
        let old_entry = codec::encode_entry(mover, &bytes::Bytes::from_static(b"v"), 0);
        assert!(
            !map.seals_source(&old_entry, map.old_shard_of(mover)),
            "a wrapped-stamp relic must not pass for a seal"
        );
        // A genuine stayer rewrite (stamped, stays under the new routing)
        // does count as sealed.
        let stayer = keys
            .iter()
            .find(|k| map.old_shard_of(k) == map.shard_of(k))
            .expect("a 4→8 split keeps some covering key");
        let rewrite = codec::encode_entry(stayer, &bytes::Bytes::from_static(b"v"), 0);
        assert!(map.seals_source(&rewrite, map.shard_of(stayer)));
        assert!(!map.seals_source(&Value::bottom(), source));
    }

    #[test]
    fn old_routing_uses_previous_count() {
        let map = ShardMap::genesis(4).split_to(8);
        let router_old = crate::ShardRouter::new(4);
        let router_new = crate::ShardRouter::new(8);
        for i in 0..64 {
            let key = format!("k{i}");
            assert_eq!(map.old_shard_of(&key), router_old.shard_of(&key));
            assert_eq!(map.shard_of(&key), router_new.shard_of(&key));
        }
    }
}
