//! `rmem-kv`: a sharded key-value store over the crash-recovery register
//! emulations.
//!
//! The register algorithms (Guerraoui & Levy, ICDCS 2004 — see
//! `rmem-core`) emulate an addressable shared memory whose registers stay
//! atomic through crashes and recoveries. This crate turns that memory
//! into a *store*:
//!
//! * [`ShardRouter`] — a pure, stable hash mapping string keys onto
//!   registers (`hash(key) % shards`); no shard map is ever exchanged,
//!   the function is the map ([`router`]).
//! * [`codec`] — register payloads tag values with their key, so shard
//!   collisions degrade to explicit misses instead of serving foreign
//!   bytes.
//! * [`KvClient`] — `get`/`put`/`multi_get`/`multi_put` over a real
//!   cluster (`rmem-net`), pipelining independent per-shard operations
//!   across nodes concurrently ([`client`]).
//! * [`workload`] — simulated closed-loop store clients with uniform or
//!   Zipf key popularity and scripted crash/recovery, for `rmem-sim`.
//! * [`history`] — per-**key** atomicity certification: decode a run's
//!   register-level history, check each register's restriction
//!   (linearizability locality), and name every verdict with its key.
//!
//! Every store guarantee is inherited, not re-proved: a key's operations
//! are exactly its register's operations, so the paper's per-register
//! criteria (persistent/transient atomicity) lift to per-key criteria
//! word for word — which [`history::certify_per_key`] checks on real
//! traces.
//!
//! # Example: a simulated, certified store run
//!
//! ```
//! use rmem_consistency::Criterion;
//! use rmem_core::{Persistent, SharedMemory};
//! use rmem_kv::workload::{generate, KvWorkloadSpec};
//! use rmem_kv::history::certify_per_key;
//! use rmem_sim::{ClusterConfig, Simulation};
//!
//! let run = generate(&KvWorkloadSpec { ops_per_client: 6, ..KvWorkloadSpec::default() });
//! let mut sim = Simulation::new(
//!     ClusterConfig::new(3),
//!     SharedMemory::factory(Persistent::flavor()),
//!     7,
//! ).with_schedule(run.schedule.clone());
//! for lp in &run.loops {
//!     sim.add_closed_loop(lp.clone());
//! }
//! let report = sim.run();
//! let cert = certify_per_key(&report.trace.to_history(), &run.key_map, Criterion::Persistent)
//!     .expect("the persistent store must be atomic per key");
//! assert!(!cert.per_key.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod health;
pub mod history;
pub mod router;
pub mod workload;

pub use client::{HealthStats, KvClient, KvError, KvOpStats};
pub use health::{HealthMemory, NodeGate};
pub use history::{certify_per_key, CertifyError, KeyMap, KeyViolation, KvCertificate};
pub use router::ShardRouter;
