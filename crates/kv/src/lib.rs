//! `rmem-kv`: a sharded key-value store over the crash-recovery register
//! emulations.
//!
//! The register algorithms (Guerraoui & Levy, ICDCS 2004 — see
//! `rmem-core`) emulate an addressable shared memory whose registers stay
//! atomic through crashes and recoveries. This crate turns that memory
//! into a *store*:
//!
//! * [`ShardRouter`] — a pure, stable hash mapping string keys onto
//!   shards with linear-hashing addressing (= `hash % shards` for
//!   power-of-two counts), whose splits provably move only the
//!   split-source shards' keys ([`router`]).
//! * [`epoch`] — the epoch-stamped shard map, stored **in the store
//!   itself** (register 0 as a config register); [`KvClient::grow`]
//!   runs live shard splits under a write barrier, certified across
//!   epochs by [`certify_per_key_epochs`].
//! * [`codec`] — register payloads tag values with their key and a
//!   one-byte epoch stamp, so shard collisions degrade to explicit
//!   misses and stale clients learn when to re-read the shard map.
//! * [`KvClient`] — `get`/`put`/`multi_get`/`multi_put` over a real
//!   cluster (`rmem-net`), pipelining independent per-shard operations
//!   across nodes concurrently ([`client`]).
//! * [`workload`] — simulated closed-loop store clients with uniform or
//!   Zipf key popularity and scripted crash/recovery, for `rmem-sim`.
//! * [`history`] — per-**key** atomicity certification: decode a run's
//!   register-level history, check each register's restriction
//!   (linearizability locality), and name every verdict with its key.
//!
//! Every store guarantee is inherited, not re-proved: a key's operations
//! are exactly its register's operations, so the paper's per-register
//! criteria (persistent/transient atomicity) lift to per-key criteria
//! word for word — which [`history::certify_per_key`] checks on real
//! traces.
//!
//! # Example: a simulated, certified store run
//!
//! ```
//! use rmem_consistency::Criterion;
//! use rmem_core::{Persistent, SharedMemory};
//! use rmem_kv::workload::{generate, KvWorkloadSpec};
//! use rmem_kv::history::certify_per_key;
//! use rmem_sim::{ClusterConfig, Simulation};
//!
//! let run = generate(&KvWorkloadSpec { ops_per_client: 6, ..KvWorkloadSpec::default() });
//! let mut sim = Simulation::new(
//!     ClusterConfig::new(3),
//!     SharedMemory::factory(Persistent::flavor()),
//!     7,
//! ).with_schedule(run.schedule.clone());
//! for lp in &run.loops {
//!     sim.add_closed_loop(lp.clone());
//! }
//! let report = sim.run();
//! let cert = certify_per_key(&report.trace.to_history(), &run.key_map, Criterion::Persistent)
//!     .expect("the persistent store must be atomic per key");
//! assert!(!cert.per_key.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod codec;
pub mod epoch;
pub mod exactly_once;
pub mod health;
pub mod history;
mod lease;
pub mod recorder;
pub mod router;
pub mod workload;

pub use chaos::{run_chaos, ChaosConfig, ChaosFailure, ChaosReport};
pub use client::{GrowReport, HealthStats, KvClient, KvError, KvOpStats};
pub use epoch::{data_register, ShardMap, CONFIG_REGISTER};
pub use exactly_once::{CrashPoint, Resolution};
pub use health::{HealthMemory, NodeGate};
pub use history::{
    certify_per_key, certify_per_key_epoch_path, certify_per_key_epochs, check_store_exactly_once,
    CertifyError, EpochTransition, KeyMap, KeyViolation, KvCertificate,
};
pub use recorder::OpRecorder;
pub use router::ShardRouter;
