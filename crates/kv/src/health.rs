//! Client-side cluster-health memory.
//!
//! `KvClient` failover is per operation: without shared state, a *wedged*
//! node (alive but unresponsive — the worst case, because only the client
//! timeout detects it) costs every key homed on it a full patience window
//! before failing over, even within one `multi_get`. [`HealthMemory`] is
//! the shared fix: a per-node "recently failed" mark with decay. The first
//! operation to time out on a node marks it; every subsequent operation —
//! including the concurrent per-shard threads of a multi-key batch — tries
//! the marked node *last* instead of first, so a wedged node costs one
//! timeout per batch rather than one per key.
//!
//! Marks are hints, never bans: a fully marked cluster is still tried in
//! home order, a successful operation clears its node's mark, and marks
//! expire after a cooldown so a recovered node regains its traffic without
//! any explicit signal. Correctness is therefore untouched — the register
//! emulations tolerate operations landing on any node — only tail latency
//! changes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Shared per-node failure marks with decay (see module docs).
///
/// Clones of a `KvClient` share one `HealthMemory` through an `Arc`; all
/// operations, from any thread, read and write the same marks.
#[derive(Debug)]
pub struct HealthMemory {
    /// Construction instant; marks are stored as micros since this base,
    /// offset by 1 so that 0 means "never failed".
    base: Instant,
    cooldown: Duration,
    marks: Vec<AtomicU64>,
}

impl HealthMemory {
    /// Fresh memory for `nodes` nodes with the given mark cooldown.
    pub fn new(nodes: usize, cooldown: Duration) -> Self {
        HealthMemory {
            base: Instant::now(),
            cooldown,
            marks: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn now_micros(&self) -> u64 {
        self.base.elapsed().as_micros() as u64
    }

    /// Records a failure (timeout / down) of `node`.
    pub fn mark(&self, node: usize) {
        self.marks[node].store(self.now_micros() + 1, Ordering::Relaxed);
    }

    /// Clears `node`'s mark (a successful operation went through it).
    pub fn clear(&self, node: usize) {
        self.marks[node].store(0, Ordering::Relaxed);
    }

    /// Whether `node` failed within the cooldown window.
    pub fn is_suspect(&self, node: usize) -> bool {
        match self.marks[node].load(Ordering::Relaxed) {
            0 => false,
            stamp => {
                let age = self.now_micros().saturating_sub(stamp - 1);
                age < self.cooldown.as_micros() as u64
            }
        }
    }

    /// Indices of currently suspect nodes.
    pub fn suspects(&self) -> Vec<usize> {
        (0..self.marks.len())
            .filter(|&i| self.is_suspect(i))
            .collect()
    }

    /// The configured mark cooldown.
    pub fn cooldown(&self) -> Duration {
        self.cooldown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_decay_and_clear() {
        let h = HealthMemory::new(3, Duration::from_millis(20));
        assert!(h.suspects().is_empty());
        h.mark(1);
        assert!(h.is_suspect(1));
        assert!(!h.is_suspect(0));
        assert_eq!(h.suspects(), vec![1]);
        h.clear(1);
        assert!(!h.is_suspect(1));
        h.mark(2);
        std::thread::sleep(Duration::from_millis(25));
        assert!(!h.is_suspect(2), "marks must decay after the cooldown");
    }

    #[test]
    fn remarking_refreshes_the_window() {
        let h = HealthMemory::new(1, Duration::from_millis(30));
        h.mark(0);
        std::thread::sleep(Duration::from_millis(20));
        h.mark(0);
        std::thread::sleep(Duration::from_millis(15));
        // 35ms after the first mark but only 15ms after the second.
        assert!(h.is_suspect(0));
    }
}
