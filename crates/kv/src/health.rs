//! Client-side cluster-health memory.
//!
//! `KvClient` failover is per operation: without shared state, a *wedged*
//! node (alive but unresponsive — the worst case, because only the client
//! timeout detects it) costs every key homed on it a full patience window
//! before failing over, even within one `multi_get`. [`HealthMemory`] is
//! the shared fix: a per-node "recently failed" mark with decay. The first
//! operation to time out on a node marks it; every subsequent operation —
//! including the concurrent per-shard threads of a multi-key batch — tries
//! the marked node *last* instead of first, so a wedged node costs one
//! timeout per batch rather than one per key.
//!
//! # Probe gating
//!
//! A decayed mark does not restore the node to full rotation outright: the
//! node first owes one **probe** — a single ordinary operation that one
//! caller (the probe winner, elected by compare-and-swap) routes through
//! it. Everyone else keeps treating the node as suspect until the probe
//! clears it, so a node that is *still* wedged after its cooldown costs
//! the cluster one more patience window, not a whole batch's worth. A
//! successful operation through the node (probe or not) clears all state.
//!
//! Marks are hints, never bans: a fully marked cluster is still tried in
//! home order, and correctness is untouched — the register emulations
//! tolerate operations landing on any node; only tail latency changes.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// What the failover rotation should do with a node right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeGate {
    /// Healthy (or already probed back): full rotation.
    Fresh,
    /// Recently failed, cooldown still running: try last.
    Suspect,
    /// Cooldown expired but the node has not served a probe yet: one
    /// caller should win [`HealthMemory::try_begin_probe`] and route a
    /// single operation through it; everyone else treats it as suspect.
    NeedsProbe,
}

const PROBE_NONE: u8 = 0;
const PROBE_OWED: u8 = 1;
const PROBE_IN_FLIGHT: u8 = 2;

/// Shared per-node failure marks with decay and probe gating (see module
/// docs).
///
/// Clones of a `KvClient` share one `HealthMemory` through an `Arc`; all
/// operations, from any thread, read and write the same marks.
#[derive(Debug)]
pub struct HealthMemory {
    /// Construction instant; marks are stored as micros since this base,
    /// offset by 1 so that 0 means "never failed".
    base: Instant,
    cooldown: Duration,
    marks: Vec<AtomicU64>,
    /// Per-node probe state (`PROBE_*`).
    probe: Vec<AtomicU8>,
    /// Failures recorded since construction.
    marks_total: AtomicU64,
    /// Probe operations started since construction.
    probes_total: AtomicU64,
}

impl HealthMemory {
    /// Fresh memory for `nodes` nodes with the given mark cooldown.
    pub fn new(nodes: usize, cooldown: Duration) -> Self {
        HealthMemory {
            base: Instant::now(),
            cooldown,
            marks: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            probe: (0..nodes).map(|_| AtomicU8::new(PROBE_NONE)).collect(),
            marks_total: AtomicU64::new(0),
            probes_total: AtomicU64::new(0),
        }
    }

    fn now_micros(&self) -> u64 {
        self.base.elapsed().as_micros() as u64
    }

    /// Records a failure (timeout / down) of `node`. The node re-owes a
    /// probe even if one was in flight — that probe evidently failed.
    pub fn mark(&self, node: usize) {
        self.marks[node].store(self.now_micros() + 1, Ordering::Relaxed);
        self.probe[node].store(PROBE_OWED, Ordering::Relaxed);
        self.marks_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Clears `node`'s mark and probe debt (a successful operation went
    /// through it).
    pub fn clear(&self, node: usize) {
        self.marks[node].store(0, Ordering::Relaxed);
        self.probe[node].store(PROBE_NONE, Ordering::Relaxed);
    }

    /// Whether `node` failed within the cooldown window.
    pub fn is_suspect(&self, node: usize) -> bool {
        match self.marks[node].load(Ordering::Relaxed) {
            0 => false,
            stamp => {
                let age = self.now_micros().saturating_sub(stamp - 1);
                age < self.cooldown.as_micros() as u64
            }
        }
    }

    /// The failover gate for `node` (see [`NodeGate`]).
    pub fn gate(&self, node: usize) -> NodeGate {
        if self.is_suspect(node) {
            return NodeGate::Suspect;
        }
        match self.probe[node].load(Ordering::Relaxed) {
            PROBE_NONE => NodeGate::Fresh,
            // A decayed mark still owing a probe — and a probe already in
            // flight means this caller is not the winner: stay cautious.
            _ => NodeGate::NeedsProbe,
        }
    }

    /// Tries to become the one caller that routes a probe operation
    /// through a [`NodeGate::NeedsProbe`] node. Returns `true` for exactly
    /// one caller per owed probe; losers keep treating the node as
    /// suspect. The winner's operation clears the node on success
    /// ([`clear`](Self::clear)) or re-marks it on failure
    /// ([`mark`](Self::mark)).
    pub fn try_begin_probe(&self, node: usize) -> bool {
        let won = self.probe[node]
            .compare_exchange(
                PROBE_OWED,
                PROBE_IN_FLIGHT,
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok();
        if won {
            self.probes_total.fetch_add(1, Ordering::Relaxed);
        }
        won
    }

    /// Hands a won probe back (the probe operation never conclusively
    /// exercised the node — e.g. a client-side refusal or Busy
    /// exhaustion): the node owes a probe again and another caller may
    /// win it.
    pub fn reopen_probe(&self, node: usize) {
        let _ = self.probe[node].compare_exchange(
            PROBE_IN_FLIGHT,
            PROBE_OWED,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Indices of currently suspect nodes.
    pub fn suspects(&self) -> Vec<usize> {
        (0..self.marks.len())
            .filter(|&i| self.is_suspect(i))
            .collect()
    }

    /// Total failures recorded since construction.
    pub fn marks_total(&self) -> u64 {
        self.marks_total.load(Ordering::Relaxed)
    }

    /// Total probe operations started since construction.
    pub fn probes_total(&self) -> u64 {
        self.probes_total.load(Ordering::Relaxed)
    }

    /// The configured mark cooldown.
    pub fn cooldown(&self) -> Duration {
        self.cooldown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_decay_and_clear() {
        let h = HealthMemory::new(3, Duration::from_millis(20));
        assert!(h.suspects().is_empty());
        h.mark(1);
        assert!(h.is_suspect(1));
        assert!(!h.is_suspect(0));
        assert_eq!(h.suspects(), vec![1]);
        h.clear(1);
        assert!(!h.is_suspect(1));
        h.mark(2);
        std::thread::sleep(Duration::from_millis(25));
        assert!(!h.is_suspect(2), "marks must decay after the cooldown");
    }

    #[test]
    fn remarking_refreshes_the_window() {
        let h = HealthMemory::new(1, Duration::from_millis(30));
        h.mark(0);
        std::thread::sleep(Duration::from_millis(20));
        h.mark(0);
        std::thread::sleep(Duration::from_millis(15));
        // 35ms after the first mark but only 15ms after the second.
        assert!(h.is_suspect(0));
    }

    #[test]
    fn decayed_mark_owes_exactly_one_probe() {
        let h = HealthMemory::new(2, Duration::from_millis(5));
        h.mark(0);
        assert_eq!(h.gate(0), NodeGate::Suspect);
        assert_eq!(h.gate(1), NodeGate::Fresh);
        std::thread::sleep(Duration::from_millis(8));
        // Cooldown decayed: the node is no longer suspect but owes a
        // probe before full rotation.
        assert!(!h.is_suspect(0));
        assert_eq!(h.gate(0), NodeGate::NeedsProbe);
        // Exactly one winner; the loser stays cautious.
        assert!(h.try_begin_probe(0));
        assert!(!h.try_begin_probe(0));
        assert_eq!(h.gate(0), NodeGate::NeedsProbe);
        // Probe success restores full rotation.
        h.clear(0);
        assert_eq!(h.gate(0), NodeGate::Fresh);
        assert_eq!(h.marks_total(), 1);
        assert_eq!(h.probes_total(), 1);
    }

    #[test]
    fn failed_probe_remarks_and_reowes() {
        let h = HealthMemory::new(1, Duration::from_millis(5));
        h.mark(0);
        std::thread::sleep(Duration::from_millis(8));
        assert!(h.try_begin_probe(0));
        // The probe operation failed: back to suspect, owing a new probe
        // after the next decay.
        h.mark(0);
        assert_eq!(h.gate(0), NodeGate::Suspect);
        std::thread::sleep(Duration::from_millis(8));
        assert_eq!(h.gate(0), NodeGate::NeedsProbe);
        assert!(h.try_begin_probe(0));
        assert_eq!(h.marks_total(), 2);
        assert_eq!(h.probes_total(), 2);
    }
}
