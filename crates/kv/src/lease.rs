//! The client-held tag-lease cache: zero-datagram reads for hot keys.
//!
//! A fast-path read whose quorum unanimously attested durability *and*
//! attached lease grants returns a [`rmem_types::LeaseGrant`] alongside
//! its payload. The grant is a replica-side promise: every replica in
//! the read quorum withholds acknowledgement of any **newer** write
//! until the granted horizon passes, and any completing write's quorum
//! intersects the grant quorum — so until the horizon, the granted tag
//! is the newest tag any completed write can have. The client may
//! therefore serve repeated reads of that register from local memory,
//! with **zero** datagrams, without violating atomicity.
//!
//! The cache is deliberately conservative on the client side:
//!
//! * The expiry clock starts at the instant the read was *submitted*
//!   (`t0`), not when its ack arrived — the replica's horizon opened no
//!   later than the ack left, so `t0 + grant` strictly undershoots every
//!   replica's fence.
//! * An entry is only served under the exact shard-map stamp it was
//!   filled under, and never while a split is migrating — a lease never
//!   survives an epoch change ([`LeaseCache::clear`] runs on every map
//!   adoption).
//! * Any write the client itself issues to a register revokes that
//!   register's entry *before* the write is sent.
//!
//! Capacity is bounded: filling past `capacity` evicts the
//! least-recently-served entry, so a scan over a large keyspace cannot
//! balloon client memory — only the Zipf-hot registers stay resident.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use rmem_types::{RegisterId, Timestamp, Value};

/// One cached leased read: the payload a future hit returns, the tag
/// that bounds which fills may replace it, the shard-map stamp it must
/// be served under, and the wall-clock horizon.
#[derive(Debug, Clone)]
struct LeaseEntry {
    payload: Value,
    ts: Timestamp,
    stamp: u8,
    expires_at: Instant,
    /// Monotone use counter for LRU eviction (bumped on hit and fill).
    used: u64,
}

/// The outcome of a cache lookup, split so the caller can count hits,
/// expiries (lapsed horizon — the entry is gone) and plain misses
/// separately.
#[derive(Debug)]
pub(crate) enum Lookup {
    /// A live lease under the expected stamp: the cached payload.
    Hit(Value),
    /// An entry existed but its horizon (or its epoch) had passed; it
    /// was evicted.
    Expired,
    /// No entry.
    Miss,
}

/// A bounded, LRU-evicting map from register to live lease, shared by a
/// client family (clones serve from and revoke into one cache).
#[derive(Debug)]
pub(crate) struct LeaseCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct Inner {
    entries: BTreeMap<RegisterId, LeaseEntry>,
    tick: u64,
}

impl LeaseCache {
    /// An empty cache holding at most `capacity` leases.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a lease cache needs room for one lease");
        LeaseCache {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    /// Looks up a live lease for `reg` under shard-map stamp `stamp`.
    /// An entry whose horizon passed — or that was filled under another
    /// stamp — is removed and reported as [`Lookup::Expired`].
    pub(crate) fn lookup(&self, reg: RegisterId, stamp: u8, now: Instant) -> Lookup {
        let mut inner = self.inner.lock().expect("lease cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let Some(entry) = inner.entries.get_mut(&reg) else {
            return Lookup::Miss;
        };
        if entry.stamp != stamp || now >= entry.expires_at {
            inner.entries.remove(&reg);
            return Lookup::Expired;
        }
        entry.used = tick;
        Lookup::Hit(entry.payload.clone())
    }

    /// Installs (or refreshes) the lease for `reg`. A fill never moves a
    /// tag backwards: if a concurrent thread already cached a newer tag,
    /// the older grant is dropped. Returns how many entries LRU
    /// eviction pushed out (0 or 1).
    pub(crate) fn fill(
        &self,
        reg: RegisterId,
        ts: Timestamp,
        payload: Value,
        stamp: u8,
        expires_at: Instant,
    ) -> usize {
        let mut inner = self.inner.lock().expect("lease cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(existing) = inner.entries.get(&reg) {
            if existing.ts > ts {
                return 0;
            }
        }
        inner.entries.insert(
            reg,
            LeaseEntry {
                payload,
                ts,
                stamp,
                expires_at,
                used: tick,
            },
        );
        let mut evicted = 0;
        while inner.entries.len() > self.capacity {
            let coldest = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(&r, _)| r)
                .expect("non-empty over-capacity cache");
            inner.entries.remove(&coldest);
            evicted += 1;
        }
        evicted
    }

    /// Drops `reg`'s lease (the client is about to write it, or observed
    /// a newer tag). Returns whether an entry was actually revoked.
    pub(crate) fn invalidate(&self, reg: RegisterId) -> bool {
        self.inner
            .lock()
            .expect("lease cache lock")
            .entries
            .remove(&reg)
            .is_some()
    }

    /// Drops every lease (the shard map moved — no lease survives an
    /// epoch change). Returns how many were dropped.
    pub(crate) fn clear(&self) -> usize {
        let mut inner = self.inner.lock().expect("lease cache lock");
        let n = inner.entries.len();
        inner.entries.clear();
        n
    }

    /// Live entry count (tests).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("lease cache lock").entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn val(b: u8) -> Value {
        Value::from(vec![b])
    }

    fn ts(n: u64) -> Timestamp {
        Timestamp {
            seq: n,
            pid: rmem_types::ProcessId(0),
        }
    }

    #[test]
    fn hit_requires_stamp_match_and_live_horizon() {
        let cache = LeaseCache::new(4);
        let now = Instant::now();
        let horizon = now + Duration::from_secs(60);
        cache.fill(RegisterId(1), ts(3), val(7), 42, horizon);
        assert!(matches!(
            cache.lookup(RegisterId(1), 42, now),
            Lookup::Hit(v) if v == val(7)
        ));
        // Foreign stamp: the entry is dead, not just skipped.
        assert!(matches!(
            cache.lookup(RegisterId(1), 43, now),
            Lookup::Expired
        ));
        assert!(matches!(cache.lookup(RegisterId(1), 42, now), Lookup::Miss));
        // Lapsed horizon.
        cache.fill(RegisterId(1), ts(3), val(7), 42, horizon);
        let late = horizon + Duration::from_micros(1);
        assert!(matches!(
            cache.lookup(RegisterId(1), 42, late),
            Lookup::Expired
        ));
    }

    #[test]
    fn fill_never_moves_a_tag_backwards() {
        let cache = LeaseCache::new(4);
        let now = Instant::now();
        let horizon = now + Duration::from_secs(60);
        cache.fill(RegisterId(1), ts(5), val(5), 1, horizon);
        // A racing older grant must not clobber the newer payload.
        cache.fill(RegisterId(1), ts(4), val(4), 1, horizon);
        assert!(matches!(
            cache.lookup(RegisterId(1), 1, now),
            Lookup::Hit(v) if v == val(5)
        ));
        // A newer grant replaces.
        cache.fill(RegisterId(1), ts(6), val(6), 1, horizon);
        assert!(matches!(
            cache.lookup(RegisterId(1), 1, now),
            Lookup::Hit(v) if v == val(6)
        ));
    }

    #[test]
    fn capacity_is_bounded_and_evicts_the_coldest() {
        let cache = LeaseCache::new(2);
        let now = Instant::now();
        let horizon = now + Duration::from_secs(60);
        cache.fill(RegisterId(1), ts(1), val(1), 0, horizon);
        cache.fill(RegisterId(2), ts(1), val(2), 0, horizon);
        // Touch register 1 so 2 is the coldest.
        assert!(matches!(
            cache.lookup(RegisterId(1), 0, now),
            Lookup::Hit(_)
        ));
        let evicted = cache.fill(RegisterId(3), ts(1), val(3), 0, horizon);
        assert_eq!(evicted, 1);
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.lookup(RegisterId(2), 0, now), Lookup::Miss));
        assert!(matches!(
            cache.lookup(RegisterId(1), 0, now),
            Lookup::Hit(_)
        ));
    }

    #[test]
    fn invalidate_and_clear_drop_leases() {
        let cache = LeaseCache::new(4);
        let horizon = Instant::now() + Duration::from_secs(60);
        cache.fill(RegisterId(1), ts(1), val(1), 0, horizon);
        cache.fill(RegisterId(2), ts(1), val(2), 0, horizon);
        assert!(cache.invalidate(RegisterId(1)));
        assert!(!cache.invalidate(RegisterId(1)));
        assert_eq!(cache.clear(), 1);
        assert_eq!(cache.len(), 0);
    }
}
