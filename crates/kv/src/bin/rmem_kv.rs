//! `rmem_kv` — the sharded store demo on the real runtime.
//!
//! Boots a 3-node cluster on this machine (UDP loopback sockets and
//! fsync'd file logs by default — the paper's §V-A setup), runs store
//! traffic through a [`KvClient`], kills and recovers a node mid-traffic,
//! and prints what survived.
//!
//! ```text
//! cargo run -p rmem-kv --bin rmem_kv                  # UDP + file logs
//! cargo run -p rmem-kv --bin rmem_kv -- --channel     # in-memory wiring
//! cargo run -p rmem-kv --bin rmem_kv -- --shards 16
//! ```

use bytes::Bytes;
use rmem_core::{Persistent, SharedMemory};
use rmem_kv::{KvClient, ShardRouter};
use rmem_net::LocalCluster;
use rmem_types::ProcessId;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let channel = args.iter().any(|a| a == "--channel");
    let shards: u16 = match args.iter().position(|a| a == "--shards") {
        None => 8,
        Some(i) => match args.get(i + 1).and_then(|s| s.parse().ok()) {
            Some(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --shards takes a number ≥ 1");
                std::process::exit(2);
            }
        },
    };

    let factory = SharedMemory::factory(Persistent::flavor());
    let dir = std::env::temp_dir().join(format!("rmem-kv-demo-{}", std::process::id()));
    let mut cluster = if channel {
        println!("• 3-node cluster, in-memory transport, persistent-atomic registers");
        LocalCluster::channel(3, factory).expect("cluster")
    } else {
        println!(
            "• 3-node cluster, UDP loopback + fsync file logs under {}",
            dir.display()
        );
        LocalCluster::udp(3, factory, &dir).expect("cluster")
    };

    let router = ShardRouter::new(shards);
    let kv = KvClient::new(cluster.clients(), router).expect("client");
    println!(
        "• router: {} shards, stable FNV-1a placement\n",
        router.shards()
    );

    // Seed one key per shard (collision-free by construction).
    let keys = router.covering_keys("user:");
    let entries: Vec<(String, Bytes)> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), Bytes::from(format!("v{i}").into_bytes())))
        .collect();
    kv.multi_put(&entries).expect("seeding puts");
    println!(
        "phase 1  multi_put of {} keys across {} shards: OK",
        entries.len(),
        shards
    );

    // Kill a node mid-traffic.
    cluster.kill(ProcessId(1));
    println!("phase 2  killed p1 (majority {{p0, p2}} still up)");

    // The *same* client keeps serving with a majority: shards homed on
    // the dead node fail over to the survivors. Overwrite half the keys,
    // read everything back through the degraded cluster.
    for (i, key) in keys.iter().enumerate().filter(|(i, _)| i % 2 == 0) {
        kv.put(key, Bytes::from(format!("v{i}-degraded").into_bytes()))
            .expect("put with majority up");
    }
    let read_back = kv.multi_get(&keys).expect("gets with majority up");
    let hits = read_back.iter().filter(|v| v.is_some()).count();
    println!(
        "phase 3  {hits}/{} keys served while p1 is down (same client, failover)",
        keys.len()
    );
    assert_eq!(
        hits,
        keys.len(),
        "every key must stay readable with a majority"
    );

    // Recover the node: it replays its logs and rejoins.
    cluster.restart(ProcessId(1)).expect("restart");
    println!("phase 4  p1 recovered from its stable logs");

    let healed = KvClient::new(cluster.clients(), router).expect("client");
    for (i, key) in keys.iter().enumerate() {
        let expect = if i % 2 == 0 {
            format!("v{i}-degraded")
        } else {
            format!("v{i}")
        };
        let got = healed
            .get(key)
            .expect("get after recovery")
            .expect("value present");
        assert_eq!(got.as_ref(), expect.as_bytes(), "stale read of {key}");
    }
    println!(
        "phase 5  all {} keys read their latest value after recovery",
        keys.len()
    );

    cluster.shutdown();
    if !channel {
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("\n✓ the sharded store survived the crash with every committed write intact");
}
