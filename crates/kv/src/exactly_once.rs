//! **Detectable client recovery**: exactly-once writes through a durable
//! intent journal and an idempotent [`KvClient::resolve`].
//!
//! A classic store client that crashes mid-`put` leaves the outcome
//! ambiguous forever — the write may have landed at a quorum, may still
//! be in flight inside a coordinator node, or may never have left. This
//! module closes the gap with three pieces:
//!
//! 1. every write of an exactly-once client carries a client-assigned
//!    **operation id** ([`rmem_types::OpTag`]), recorded with the value
//!    in the payload's op-id frame ([`crate::codec::encode_entry_tagged`]);
//! 2. the op is journaled in a durable [`IntentJournal`] **before the
//!    first datagram leaves**;
//! 3. after a crash, [`KvClient::resolve`] settles each journaled op to a
//!    definite verdict by re-reading the key's quorum state.
//!
//! **The resolve invariant: a resolved-`NotLanded` op may never later
//! become visible, and retrying a `Landed` op is a no-op.** The first
//! half is discharged *in the journal*, not at the registers: `NotLanded`
//! is returned only for ops still in [`IntentState::Prepared`] — nothing
//! ever left the client — and resolving one atomically fences it
//! ([`IntentState::Aborted`]), so a resurrected owner's
//! [`send_put`](KvClient::send_put) refuses with [`KvError::Fenced`]. An
//! op that reached [`IntentState::Sent`] always resolves `Landed`: a
//! quorum read either observes the tag (it landed), observes ⊥ and
//! **re-issues under the same tag** (completing it definitively — the
//! register layer may still be driving the original, but duplicate
//! writes of one tag carry one effect, so both landings are the same
//! logical write), or observes a foreign value — in which case the op is
//! conservatively `Landed` (landed-then-overwritten is indistinguishable
//! from never-landed, and re-issuing here could *resurrect* an
//! overwritten value between two reads of the overwriter, which no
//! atomic register may do). Verdicts are stored durably, so repeated
//! resolves — even across a resolver crash — always agree.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use bytes::Bytes;
use rmem_storage::{Intent, IntentJournal, IntentState};
use rmem_types::OpTag;

use crate::client::{KvClient, KvError};
use crate::codec;

/// The definite verdict [`KvClient::resolve`] assigns a journaled op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// The write is durably applied (observed at a quorum, completed by
    /// the resolver's re-issue, or already overwritten by a later write).
    Landed {
        /// The resolved operation's tag.
        tag: OpTag,
    },
    /// The write provably never left the client — and never will: the op
    /// is fenced, so this verdict can never be invalidated later.
    NotLanded,
}

/// Where an emulated client crash interrupts a write
/// ([`KvClient::crashed_put`] — the chaos matrix's fault injector).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// After the intent is journaled, before anything is sent.
    PreSend,
    /// While the write's quorum rounds are in flight: the register layer
    /// keeps driving the write (a coordinator node does not die with its
    /// client), so it may land arbitrarily late — concurrently with the
    /// recovery's resolve.
    MidRound,
    /// After the write is acknowledged at a quorum, before the journal
    /// tombstone: fully visible, still listed as pending.
    PostQuorum,
}

/// Shared exactly-once state of a client family: the durable intent
/// journal plus the tag allocator. Clones share one instance, so every
/// clone's writes draw from one monotone sequence.
#[derive(Debug)]
pub(crate) struct ExactlyOnce {
    client_id: u16,
    journal: Mutex<IntentJournal>,
    next_seq: AtomicU64,
}

impl ExactlyOnce {
    fn alloc(&self) -> OpTag {
        OpTag::new(
            self.client_id,
            self.next_seq.fetch_add(1, Ordering::Relaxed),
        )
    }

    fn lock(&self) -> MutexGuard<'_, IntentJournal> {
        self.journal.lock().expect("intent journal lock")
    }
}

fn journal_err(source: rmem_storage::StorageError) -> KvError {
    KvError::Journal { source }
}

impl KvClient {
    /// Turns this client family into an **exactly-once** client:
    /// `client_id` becomes the op-tag namespace (unique per logical
    /// client — reuse it across restarts of the *same* client, never
    /// across distinct ones), and `journal` records every write's intent
    /// durably before it is issued. Sequence numbers continue from the
    /// journal's high-water mark, so a reopened journal cannot reuse a
    /// crashed op's identity.
    pub fn with_exactly_once(mut self, client_id: u16, journal: IntentJournal) -> Self {
        let next_seq = AtomicU64::new(journal.next_seq());
        self.intents = Some(Arc::new(ExactlyOnce {
            client_id,
            journal: Mutex::new(journal),
            next_seq,
        }));
        self
    }

    /// The op-tag namespace of this exactly-once client family, if one is
    /// attached.
    pub fn op_client_id(&self) -> Option<u16> {
        self.intents.as_ref().map(|c| c.client_id)
    }

    /// Drops the shared exactly-once state from this handle (clones keep
    /// theirs): its writes are untagged and unjournaled again. The chaos
    /// injector uses this so an orphaned in-flight write cannot touch the
    /// journal its crashed owner left behind.
    pub(crate) fn detach_journal(&mut self) {
        self.intents = None;
    }

    fn ctx(&self) -> &ExactlyOnce {
        self.intents
            .as_deref()
            .expect("this operation needs with_exactly_once")
    }

    /// Every journaled op still awaiting a verdict, in tag order — the
    /// recovery work list for [`resolve`](KvClient::resolve). Empty when
    /// no exactly-once state is attached.
    pub fn pending_intents(&self) -> Vec<Intent> {
        self.intents
            .as_ref()
            .map_or_else(Vec::new, |c| c.lock().pending())
    }

    /// The exactly-once `put`: journal (durably, state `Sent`) → tagged
    /// write → tombstone.
    pub(crate) fn put_exactly_once(&self, key: &str, value: Bytes) -> Result<(), KvError> {
        let ctx = self.ctx();
        let tag = ctx.alloc();
        ctx.lock()
            .begin(Intent {
                tag,
                key: key.to_string(),
                value: value.clone(),
                state: IntentState::Sent,
            })
            .map_err(journal_err)?;
        let outcome = self.put_inner(key, value, Some(tag), &mut None);
        match &outcome {
            Ok(()) => ctx.lock().acknowledge(tag).map_err(journal_err)?,
            // Refused before anything was sent: settle the op now rather
            // than leaving a resolve to re-issue an untransmittable write.
            Err(KvError::TooLarge { .. }) => ctx
                .lock()
                .transition(tag, IntentState::Aborted)
                .map_err(journal_err)?,
            // Ambiguous (some node attempt may have taken effect): the op
            // stays `Sent` for resolve.
            Err(_) => {}
        }
        outcome
    }

    /// Stage an exactly-once write without sending anything: the intent
    /// is journaled durably in [`IntentState::Prepared`] and its tag
    /// returned. Issue it with [`send_put`](KvClient::send_put); until
    /// then a resolver may still fence it to `NotLanded`.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::Journal`] if the intent could not be made
    /// durable.
    ///
    /// # Panics
    ///
    /// Panics if no exactly-once state is attached
    /// ([`with_exactly_once`](KvClient::with_exactly_once)).
    pub fn begin_put(&self, key: &str, value: impl Into<Bytes>) -> Result<OpTag, KvError> {
        let ctx = self.ctx();
        let tag = ctx.alloc();
        ctx.lock()
            .begin(Intent {
                tag,
                key: key.to_string(),
                value: value.into(),
                state: IntentState::Prepared,
            })
            .map_err(journal_err)?;
        Ok(tag)
    }

    /// Issues (or re-issues) a staged write. The `Prepared → Sent`
    /// transition is durable and checked under the journal lock — the
    /// fence handshake with [`resolve`](KvClient::resolve): whichever of
    /// the two takes the lock first wins, so a fenced op provably never
    /// reaches the wire. Re-sending a `Sent` op retries under the same
    /// tag; re-sending a `Landed` op is a no-op.
    ///
    /// # Errors
    ///
    /// [`KvError::Fenced`] if a resolver already returned `NotLanded` for
    /// `tag`; [`KvError::UnknownIntent`] if the journal has no live
    /// record of it; otherwise as [`put`](KvClient::put).
    ///
    /// # Panics
    ///
    /// Panics if no exactly-once state is attached.
    pub fn send_put(&self, tag: OpTag) -> Result<(), KvError> {
        let ctx = self.ctx();
        let intent = {
            let mut journal = ctx.lock();
            let intent = journal
                .get(tag)
                .cloned()
                .ok_or(KvError::UnknownIntent { tag })?;
            match intent.state {
                IntentState::Aborted => return Err(KvError::Fenced { tag }),
                IntentState::Landed => return Ok(()),
                IntentState::Prepared => journal
                    .transition(tag, IntentState::Sent)
                    .map_err(journal_err)?,
                IntentState::Sent => {}
            }
            intent
        };
        let outcome = self.put_inner(&intent.key, intent.value, Some(tag), &mut None);
        if outcome.is_ok() {
            ctx.lock().acknowledge(tag).map_err(journal_err)?;
        }
        outcome
    }

    /// Settles a journaled op to a definite, durable, idempotent verdict
    /// (see the [module docs](self) for the invariant and the case
    /// analysis). Safe to call from a recovered client while the crashed
    /// incarnation's write is still in flight.
    ///
    /// # Errors
    ///
    /// [`KvError::UnknownIntent`] for tags the journal has no live record
    /// of (never begun here, or acknowledged — an acknowledged op landed,
    /// but this journal can no longer prove which); [`KvError::Journal`]
    /// or [`KvError::Register`] if the verdict could not be established.
    ///
    /// # Panics
    ///
    /// Panics if no exactly-once state is attached.
    pub fn resolve(&self, tag: OpTag) -> Result<Resolution, KvError> {
        let ctx = self.ctx();
        let intent = {
            let mut journal = ctx.lock();
            match journal.state(tag) {
                None => return Err(KvError::UnknownIntent { tag }),
                Some(IntentState::Landed) => return Ok(Resolution::Landed { tag }),
                Some(IntentState::Aborted) => return Ok(Resolution::NotLanded),
                // Nothing ever left the client. Fence it under the lock —
                // the owner's send_put checks under the same lock — and
                // the NotLanded verdict is unconditionally safe.
                Some(IntentState::Prepared) => {
                    journal
                        .transition(tag, IntentState::Aborted)
                        .map_err(journal_err)?;
                    return Ok(Resolution::NotLanded);
                }
                Some(IntentState::Sent) => journal
                    .get(tag)
                    .cloned()
                    .expect("a tag with a state has an intent"),
            }
        };
        // `Sent`: the write is anywhere between "never reached a node"
        // and "landed long ago" — and the register layer may *still* be
        // driving it, so NotLanded is out of reach. Make Landed true.
        let payload = self.resolve_read(&intent.key)?;
        if codec::payload_op_tag(&payload) != Some(tag) && payload.is_bottom() {
            // Nothing landed yet (at read time). Completing the op
            // ourselves under the same tag makes the verdict definitive;
            // if the original landing races us, both carry one effect.
            self.put_inner(&intent.key, intent.value, Some(tag), &mut None)?;
        }
        // A foreign value (or our own tag) means the register moved past
        // ⊥: either our write landed (possibly since overwritten) or it
        // never will surface *visibly fresh* — but re-issuing under a
        // foreign value could resurrect an overwritten value between two
        // observations of the overwriter, so the conservative verdict is
        // Landed without touching the register.
        ctx.lock()
            .transition(tag, IntentState::Landed)
            .map_err(journal_err)?;
        Ok(Resolution::Landed { tag })
    }

    /// Resolves every pending intent ([`pending_intents`]
    /// (KvClient::pending_intents)) in tag order — the whole-journal
    /// recovery sweep. Returns each op's verdict.
    ///
    /// # Errors
    ///
    /// As [`resolve`](KvClient::resolve); the sweep stops at the first
    /// failure (already-settled verdicts stay durable).
    pub fn resolve_all(&self) -> Result<Vec<(OpTag, Resolution)>, KvError> {
        self.pending_intents()
            .into_iter()
            .map(|intent| self.resolve(intent.tag).map(|r| (intent.tag, r)))
            .collect()
    }

    /// One recorded, failover-protected read of `key`'s quorum state
    /// returning the raw answering payload (epoch-aware, split-aware).
    fn resolve_read(&self, key: &str) -> Result<rmem_types::Value, KvError> {
        self.sync_map()?;
        let mut inv = None;
        let outcome = self.get_inner(key, &mut inv);
        match &outcome {
            Ok((payload, _)) => {
                self.rec_outcome(inv, Ok(rmem_types::OpResult::ReadValue(payload.clone())))
            }
            Err(e) => self.rec_outcome(inv, Err(e)),
        }
        outcome.map(|(payload, _)| payload)
    }

    /// Fault injection for the chaos matrix: a `put` that "crashes" at
    /// `point`, leaving exactly the journal/register state a real client
    /// crash would. Returns the orphaned op's tag; the test then emulates
    /// recovery by resolving it (through this client or a fresh one over
    /// the reopened journal).
    ///
    /// [`CrashPoint::MidRound`] hands the in-flight write to a detached
    /// thread over a journal-less clone — like a coordinator node still
    /// driving a dead client's write, it races the resolver and never
    /// touches the journal.
    ///
    /// # Errors
    ///
    /// As [`put`](KvClient::put) / [`KvError::Journal`].
    ///
    /// # Panics
    ///
    /// Panics if no exactly-once state is attached.
    pub fn crashed_put(
        &self,
        key: &str,
        value: impl Into<Bytes>,
        point: CrashPoint,
    ) -> Result<OpTag, KvError> {
        let ctx = self.ctx();
        let value = value.into();
        let tag = ctx.alloc();
        let state = if point == CrashPoint::PreSend {
            IntentState::Prepared
        } else {
            IntentState::Sent
        };
        ctx.lock()
            .begin(Intent {
                tag,
                key: key.to_string(),
                value: value.clone(),
                state,
            })
            .map_err(journal_err)?;
        let mut orphan = if self.recorder_attached() {
            self.recorded_clone()
        } else {
            self.clone()
        };
        orphan.detach_journal();
        match point {
            CrashPoint::PreSend => {}
            CrashPoint::MidRound => {
                let key = key.to_string();
                std::thread::spawn(move || {
                    let _ = orphan.put_inner(&key, value, Some(tag), &mut None);
                });
            }
            CrashPoint::PostQuorum => orphan.put_inner(key, value, Some(tag), &mut None)?,
        }
        Ok(tag)
    }

    fn recorder_attached(&self) -> bool {
        self.recorder.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ShardRouter;
    use rmem_core::{SharedMemory, Transient};
    use rmem_net::LocalCluster;
    use rmem_storage::MemStorage;

    fn mem_journal() -> IntentJournal {
        IntentJournal::with_storage(Box::new(MemStorage::new())).unwrap()
    }

    fn eo_client(cluster: &LocalCluster, id: u16) -> KvClient {
        KvClient::new(cluster.clients(), ShardRouter::new(4))
            .unwrap()
            .with_exactly_once(id, mem_journal())
    }

    fn cluster() -> LocalCluster {
        LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap()
    }

    #[test]
    fn exactly_once_put_tags_the_payload_and_clears_the_journal() {
        let mut cluster = cluster();
        let kv = eo_client(&cluster, 9);
        kv.put("alpha", b"v".to_vec()).unwrap();
        assert_eq!(kv.get("alpha").unwrap().as_deref(), Some(b"v".as_ref()));
        let reg = kv.shard_map().register_for("alpha");
        let payload = kv.raw_read(reg, "inspect").unwrap();
        assert_eq!(
            codec::payload_op_tag(&payload),
            Some(OpTag::new(9, 0)),
            "the landed payload must carry the client-assigned op id"
        );
        assert!(kv.pending_intents().is_empty(), "acked ops are tombstoned");
        kv.put("alpha", b"w".to_vec()).unwrap();
        let payload = kv.raw_read(reg, "inspect").unwrap();
        assert_eq!(codec::payload_op_tag(&payload), Some(OpTag::new(9, 1)));
        cluster.shutdown();
    }

    #[test]
    fn resolved_not_landed_is_fenced_forever() {
        let mut cluster = cluster();
        let kv = eo_client(&cluster, 3);
        let tag = kv.begin_put("ghost", b"never".to_vec()).unwrap();
        assert_eq!(kv.pending_intents().len(), 1);
        assert_eq!(kv.resolve(tag).unwrap(), Resolution::NotLanded);
        // The verdict is memoized and the op fenced: a resurrected owner
        // cannot make a resolved-NotLanded op visible.
        assert_eq!(kv.resolve(tag).unwrap(), Resolution::NotLanded);
        assert!(matches!(kv.send_put(tag), Err(KvError::Fenced { .. })));
        assert_eq!(kv.get("ghost").unwrap(), None);
        cluster.shutdown();
    }

    #[test]
    fn staged_put_issues_and_acknowledges() {
        let mut cluster = cluster();
        let kv = eo_client(&cluster, 4);
        let tag = kv.begin_put("staged", b"v".to_vec()).unwrap();
        kv.send_put(tag).unwrap();
        assert_eq!(kv.get("staged").unwrap().as_deref(), Some(b"v".as_ref()));
        assert!(kv.pending_intents().is_empty());
        assert!(matches!(
            kv.send_put(tag),
            Err(KvError::UnknownIntent { .. })
        ));
        cluster.shutdown();
    }

    #[test]
    fn post_quorum_crash_resolves_landed() {
        let mut cluster = cluster();
        let kv = eo_client(&cluster, 5);
        let tag = kv
            .crashed_put("acked", b"v".to_vec(), CrashPoint::PostQuorum)
            .unwrap();
        // Crashed after the quorum ack: still pending in the journal, but
        // fully visible — resolve must say Landed, repeatedly.
        assert_eq!(kv.pending_intents().len(), 1);
        assert_eq!(kv.resolve(tag).unwrap(), Resolution::Landed { tag });
        assert_eq!(kv.resolve(tag).unwrap(), Resolution::Landed { tag });
        assert_eq!(kv.get("acked").unwrap().as_deref(), Some(b"v".as_ref()));
        cluster.shutdown();
    }

    #[test]
    fn mid_round_crash_resolves_landed_and_value_lands() {
        let mut cluster = cluster();
        let kv = eo_client(&cluster, 6);
        let tag = kv
            .crashed_put("inflight", b"v".to_vec(), CrashPoint::MidRound)
            .unwrap();
        // The orphaned write races this resolve; either way the verdict
        // is definite and the value must end up visible.
        let verdict = kv.resolve(tag).unwrap();
        assert_eq!(verdict, Resolution::Landed { tag });
        assert_eq!(kv.get("inflight").unwrap().as_deref(), Some(b"v".as_ref()));
        cluster.shutdown();
    }

    #[test]
    fn sent_but_never_issued_is_completed_by_resolve() {
        // A journal that already holds a Sent intent whose datagrams were
        // all lost: resolve observes ⊥ and re-issues under the same tag.
        let mut journal = mem_journal();
        let tag = OpTag::new(7, 0);
        journal
            .begin(Intent {
                tag,
                key: "lost".into(),
                value: Bytes::from_static(b"v"),
                state: IntentState::Sent,
            })
            .unwrap();
        let mut cluster = cluster();
        let kv = KvClient::new(cluster.clients(), ShardRouter::new(4))
            .unwrap()
            .with_exactly_once(7, journal);
        // Sequence allocation continues above the crashed op.
        assert_eq!(kv.resolve(tag).unwrap(), Resolution::Landed { tag });
        assert_eq!(kv.get("lost").unwrap().as_deref(), Some(b"v".as_ref()));
        kv.put("next", b"n".to_vec()).unwrap();
        let reg = kv.shard_map().register_for("next");
        let payload = kv.raw_read(reg, "inspect").unwrap();
        assert_eq!(codec::payload_op_tag(&payload), Some(OpTag::new(7, 1)));
        cluster.shutdown();
    }

    #[test]
    fn foreign_value_resolves_landed_without_reissue() {
        // The key was overwritten by another client after our op: resolve
        // must NOT re-issue (resurrection), and conservatively says
        // Landed.
        let mut cluster = cluster();
        let kv = eo_client(&cluster, 8);
        let tag = kv
            .crashed_put("shared", b"ours".to_vec(), CrashPoint::PostQuorum)
            .unwrap();
        let other = eo_client(&cluster, 99);
        other.put("shared", b"theirs".to_vec()).unwrap();
        assert_eq!(kv.resolve(tag).unwrap(), Resolution::Landed { tag });
        assert_eq!(
            kv.get("shared").unwrap().as_deref(),
            Some(b"theirs".as_ref()),
            "resolve must never resurrect an overwritten value"
        );
        cluster.shutdown();
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let mut cluster = cluster();
        let kv = eo_client(&cluster, 2);
        assert!(matches!(
            kv.resolve(OpTag::new(2, 77)),
            Err(KvError::UnknownIntent { .. })
        ));
        cluster.shutdown();
    }
}
