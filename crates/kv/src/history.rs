//! Per-key atomicity certification of store runs.
//!
//! The register emulation's checkers certify histories per *register*
//! (linearizability is local). The store adds one indirection — keys route
//! to registers — so certification has two steps:
//!
//! 1. **Decode**: rewrite a register-level history of encoded entries
//!    (`[key][value]` payloads, see [`crate::codec`]) into one whose
//!    values are the raw store values, verifying along the way that every
//!    payload in a register belongs to the key the [`KeyMap`] assigns it
//!    (a foreign key would mean a shard collision — the certificate would
//!    be about the cell, not the key).
//! 2. **Check**: run [`rmem_consistency::check_per_register`] on the
//!    decoded history and relabel each register's verdict with its key.
//!
//! The result is checker output that *names keys*: "key `user:7` is
//! persistent-atomic", or a [`KeyViolation`] naming the key that is not.

use std::collections::BTreeMap;

use bytes::Bytes;
use rmem_consistency::{
    check_per_register, check_per_register_epochs, Criterion, DuplicateApplication, Event,
    ExactlyOnceReport, History, Verdict, Violation,
};
use rmem_types::{Op, OpResult, OpTag, RegisterId, Value};

use crate::codec;
use crate::epoch::{data_register, CONFIG_REGISTER};
use crate::router::ShardRouter;

/// The key ↔ register mapping of one run: which keys the workload uses and
/// which register each routes to.
#[derive(Debug, Clone)]
pub struct KeyMap {
    by_register: BTreeMap<RegisterId, Vec<String>>,
}

impl KeyMap {
    /// Builds the mapping for `keys` under `router`.
    pub fn new<'a>(router: &ShardRouter, keys: impl IntoIterator<Item = &'a str>) -> Self {
        let mut by_register: BTreeMap<RegisterId, Vec<String>> = BTreeMap::new();
        for key in keys {
            let reg = router.register_for(key);
            let keys = by_register.entry(reg).or_default();
            if !keys.iter().any(|k| k == key) {
                keys.push(key.to_string());
            }
        }
        KeyMap { by_register }
    }

    /// The keys hosted by `reg` (empty if none).
    pub fn keys_of(&self, reg: RegisterId) -> &[String] {
        self.by_register.get(&reg).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Registers that host more than one key — hash collisions, where a
    /// per-register certificate cannot be read as a per-key one.
    pub fn collisions(&self) -> Vec<(RegisterId, &[String])> {
        self.by_register
            .iter()
            .filter(|(_, keys)| keys.len() > 1)
            .map(|(reg, keys)| (*reg, keys.as_slice()))
            .collect()
    }

    /// Whether every register hosts at most one key.
    pub fn is_injective(&self) -> bool {
        self.by_register.values().all(|keys| keys.len() <= 1)
    }

    /// Iterates `(register, key)` pairs of the injective part.
    pub fn pairs(&self) -> impl Iterator<Item = (RegisterId, &str)> {
        self.by_register
            .iter()
            .filter(|(_, keys)| keys.len() == 1)
            .map(|(reg, keys)| (*reg, keys[0].as_str()))
    }
}

/// Why a store run could not be certified per key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvCertError {
    /// Two keys share a register; the per-key reading of locality does not
    /// apply. Re-run with more shards or different keys.
    ShardCollision {
        /// The shared register.
        register: RegisterId,
        /// The colliding keys.
        keys: Vec<String>,
    },
    /// The history addresses a register the map knows nothing about.
    UnmappedRegister {
        /// The unknown register.
        register: RegisterId,
    },
    /// A payload in a register decodes to a different key than the map
    /// assigns it (a router mismatch between writer and certifier).
    ForeignEntry {
        /// The register in question.
        register: RegisterId,
        /// The key the map expects there.
        expected: String,
        /// The key found in the payload.
        found: String,
    },
    /// A payload was not a well-formed store entry.
    MalformedEntry {
        /// The register in question.
        register: RegisterId,
    },
    /// The history itself is malformed: a reply appeared with no matching
    /// invocation, so the value cannot be attributed to a register.
    StrayReply {
        /// The orphaned operation id.
        op: rmem_types::OpId,
    },
}

impl std::fmt::Display for KvCertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvCertError::ShardCollision { register, keys } => {
                write!(f, "keys {keys:?} collide on {register}")
            }
            KvCertError::UnmappedRegister { register } => {
                write!(f, "history touches unmapped register {register}")
            }
            KvCertError::ForeignEntry {
                register,
                expected,
                found,
            } => {
                write!(
                    f,
                    "{register} hosts {expected:?} but carries an entry for {found:?}"
                )
            }
            KvCertError::MalformedEntry { register } => {
                write!(f, "non-store payload in {register}")
            }
            KvCertError::StrayReply { op } => {
                write!(f, "reply to {op} without a matching invocation")
            }
        }
    }
}

impl std::error::Error for KvCertError {}

/// A per-key atomicity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyViolation {
    /// The key whose history violates the criterion.
    pub key: String,
    /// The register hosting it.
    pub register: RegisterId,
    /// The underlying checker verdict.
    pub violation: Violation,
}

impl std::fmt::Display for KeyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "key {:?} (on {}): {}",
            self.key, self.register, self.violation
        )
    }
}

impl std::error::Error for KeyViolation {}

/// A successful certificate: per-key witnesses, named by key.
#[derive(Debug, Clone)]
pub struct KvCertificate {
    /// Each certified key's witnessing linearization.
    pub per_key: BTreeMap<String, Verdict>,
}

/// Rewrites a register-level store history into raw-value form: every
/// written/read payload `[key][value]` becomes just `value`, validated
/// against the key `map` assigns the register. Reads of ⊥ stay ⊥.
///
/// # Errors
///
/// Returns [`KvCertError`] on collisions, unmapped registers, or payloads
/// that do not belong (see the variants).
pub fn decode_history(history: &History, map: &KeyMap) -> Result<History, KvCertError> {
    // Reject collisions up front: the per-key reading needs injectivity.
    if let Some((register, keys)) = map.collisions().into_iter().next() {
        return Err(KvCertError::ShardCollision {
            register,
            keys: keys.to_vec(),
        });
    }
    for register in history.registers() {
        if map.keys_of(register).is_empty() {
            return Err(KvCertError::UnmappedRegister { register });
        }
    }

    let decode = |register: RegisterId, payload: &Value| -> Result<Value, KvCertError> {
        if payload.is_bottom() {
            // A read of a never-written register: ⊥ is ⊥ at the store
            // level too.
            return Ok(Value::bottom());
        }
        let expected = &map.keys_of(register)[0];
        // Batched writes may carry bundles. Under an injective key map a
        // certifiable bundle holds exactly one entry — the register's own
        // key (batching coalesces same-key puts; a second *key* in the
        // payload would mean a shard collision, which injectivity already
        // rules out) — so bundle decoding degrades to entry decoding and
        // the per-register criterion keeps reading as the per-key one.
        match codec::decode_entries(payload) {
            Some(entries) => {
                if let Some((found, _)) = entries.iter().find(|(found, _)| found != expected) {
                    return Err(KvCertError::ForeignEntry {
                        register,
                        expected: expected.clone(),
                        found: found.clone(),
                    });
                }
                // All entries carry the expected key; distinctness of
                // bundle keys means there is exactly one.
                Ok(Value::new(entries[0].1.to_vec()))
            }
            None => Err(KvCertError::MalformedEntry { register }),
        }
    };

    // Invocations carry the register; remember it per op so replies can be
    // decoded against the right key.
    let mut register_of_op = std::collections::HashMap::new();
    let mut out = History::new();
    for event in history.events() {
        match event {
            Event::Invoke { op, operation } => {
                let register = operation.register();
                register_of_op.insert(*op, register);
                let operation = match operation {
                    Op::WriteAt(_, payload) | Op::Write(payload) => {
                        Op::WriteAt(register, decode(register, payload)?)
                    }
                    Op::ReadAt(_) | Op::Read => Op::ReadAt(register),
                };
                out.push(Event::Invoke { op: *op, operation });
            }
            Event::Reply { op, result } => {
                let result = match result {
                    OpResult::ReadValue(payload) => {
                        let register = register_of_op
                            .get(op)
                            .copied()
                            .ok_or(KvCertError::StrayReply { op: *op })?;
                        OpResult::ReadValue(decode(register, payload)?)
                    }
                    other => other.clone(),
                };
                out.push(Event::Reply { op: *op, result });
            }
            Event::Crash { pid } => out.push(Event::Crash { pid: *pid }),
            Event::Recover { pid } => out.push(Event::Recover { pid: *pid }),
        }
    }
    Ok(out)
}

/// Certifies a store run per key: decodes the history, checks every
/// register's restriction under `criterion`, and names each verdict with
/// its key.
///
/// # Errors
///
/// Returns `Err(Ok(KvCertError))`-style layered errors flattened into one
/// enum: [`CertifyError::Setup`] when the history cannot be decoded (the
/// run is not a clean store run), [`CertifyError::Violation`] when a key's
/// history fails the criterion.
pub fn certify_per_key(
    history: &History,
    map: &KeyMap,
    criterion: Criterion,
) -> Result<KvCertificate, CertifyError> {
    check_store_exactly_once(history).map_err(CertifyError::DuplicateWrite)?;
    let decoded = decode_history(history, map).map_err(CertifyError::Setup)?;
    let mut per_key = BTreeMap::new();
    for (register, outcome) in check_per_register(&decoded, criterion) {
        let key = map.keys_of(register)[0].clone();
        match outcome {
            Ok(verdict) => {
                per_key.insert(key, verdict);
            }
            Err(violation) => {
                return Err(CertifyError::Violation(KeyViolation {
                    key,
                    register,
                    violation,
                }));
            }
        }
    }
    Ok(KvCertificate { per_key })
}

/// The logical identity and effect of one store write, for the
/// exactly-once criterion: the payload's op tag plus its decoded entries
/// (the epoch stamp is deliberately excluded — a recovery may re-issue a
/// write under a newer epoch without forking the logical op).
fn store_effect(op: &Op) -> Option<(OpTag, Vec<(String, Bytes)>)> {
    let payload = op.write_value()?;
    let tag = codec::payload_op_tag(payload)?;
    Some((tag, codec::decode_entries(payload).unwrap_or_default()))
}

/// Checks the **exactly-once criterion** over a store run: every write
/// carrying an op-id frame (see [`crate::codec`]) must share its effect
/// — key and value — with every other physical write under the same tag,
/// so duplicate applications (crash-recovery retries, duplicate
/// deliveries) collapse into one logical write. Untagged legacy writes
/// are exempt.
///
/// Both certifiers run this automatically; it is exposed for callers
/// that want the [`ExactlyOnceReport`] (retry counts) of a passing run.
///
/// # Errors
///
/// Returns the first [`DuplicateApplication`] in history order.
pub fn check_store_exactly_once(
    history: &History,
) -> Result<ExactlyOnceReport, DuplicateApplication<OpTag>> {
    rmem_consistency::check_exactly_once(history, store_effect)
}

/// One live split, as the cross-epoch certifier sees it: the shard
/// counts on either side of the epoch bump.
///
/// Routing is re-derived from the counts (linear hashing is a pure
/// function), and registers use the **epoch layer's numbering** — data
/// shard `i` at register `i + 1`, register 0 reserved for the shard map —
/// because cross-epoch histories come from real-runtime recorders
/// ([`crate::recorder::OpRecorder`]), not the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochTransition {
    /// Shard count before the split.
    pub old_shards: u16,
    /// Shard count after the split.
    pub new_shards: u16,
}

impl EpochTransition {
    /// The epoch-layer register hosting `key` before the split.
    pub fn old_register(&self, key: &str) -> RegisterId {
        register_under(key, self.old_shards)
    }

    /// The epoch-layer register hosting `key` after the split.
    pub fn new_register(&self, key: &str) -> RegisterId {
        register_under(key, self.new_shards)
    }
}

/// The epoch-layer register hosting `key` under a `shards`-wide routing.
fn register_under(key: &str, shards: u16) -> RegisterId {
    data_register(crate::router::shard_at(
        crate::router::stable_hash(key),
        shards,
    ))
}

/// How one recorded operation fares in the cross-epoch decode.
enum OpFate {
    /// Part of a key's logical history; carries the decoded read value
    /// for reads.
    Keep(Option<Value>),
    /// Migration infrastructure (seal-marker writes, reads that observed
    /// only a seal marker) — not a store operation on any key.
    Skip,
}

/// Certifies a store run **across a live shard split**: every key's
/// pre-split (old home) and post-split (new home) register operations are
/// stitched into one logical history — via
/// [`rmem_consistency::check_per_register_epochs`] — and checked under
/// `criterion`, named per key.
///
/// The key universe must be injective under *both* epochs (one key per
/// shard on each side; linear hashing preserves injectivity across a
/// split, so covering keys of the old router qualify). Config-register
/// operations (shard-map reads and publishes) are ignored; seal markers
/// and reads that observed only a seal are migration infrastructure and
/// are excluded from the per-key histories — a migration bug cannot hide
/// behind that exclusion, because the migrator's own old-home read and
/// the values later served at the new home remain in the history, and a
/// non-tag-monotonic handoff (lost update, resurrected value, forgotten
/// value) fails the stitched check.
///
/// # Errors
///
/// As [`certify_per_key`]: [`CertifyError::Setup`] when the run is not a
/// clean cross-epoch store run, [`CertifyError::Violation`] when a key's
/// stitched history fails the criterion.
pub fn certify_per_key_epochs<'a>(
    history: &History,
    keys: impl IntoIterator<Item = &'a str>,
    transition: &EpochTransition,
    criterion: Criterion,
) -> Result<KvCertificate, CertifyError> {
    certify_per_key_epoch_path(
        history,
        keys,
        &[transition.old_shards, transition.new_shards],
        criterion,
    )
}

/// Certifies a store run across a whole **chain of live splits** (e.g.
/// the chaos matrix's 4 → 8 → 16): each key's operations at every home
/// along the path are stitched into one logical history and checked
/// under `criterion`. [`certify_per_key_epochs`] is the two-epoch
/// special case.
///
/// `shard_path` lists the shard counts in epoch order. The key universe
/// must be injective under *every* count on the path (covering keys of
/// the first router qualify — linear hashing preserves injectivity
/// across splits). With per-epoch injectivity, a register's tenant is
/// unique across the whole path, so the composed old-home → final-home
/// relabeling is conflict-free by construction.
///
/// Registers no listed key maps to may appear only as the footprint of
/// splitting an **empty** shard — seal writes and reads observing ⊥ or a
/// seal, which carry no store data and are skipped. Any store data on an
/// unmapped register still fails with
/// [`KvCertError::UnmappedRegister`].
///
/// # Errors
///
/// As [`certify_per_key`], plus [`CertifyError::DuplicateWrite`] when
/// the run violates the exactly-once criterion
/// ([`check_store_exactly_once`]).
///
/// # Panics
///
/// Panics on an empty `shard_path`.
pub fn certify_per_key_epoch_path<'a>(
    history: &History,
    keys: impl IntoIterator<Item = &'a str>,
    shard_path: &[u16],
    criterion: Criterion,
) -> Result<KvCertificate, CertifyError> {
    assert!(
        !shard_path.is_empty(),
        "an epoch path names at least one shard count"
    );
    // The exactly-once criterion first: with it in hand, duplicate
    // physical writes of one logical op are guaranteed same-effect, so
    // the atomicity checkers below read them as benign re-writes.
    check_store_exactly_once(history).map_err(CertifyError::DuplicateWrite)?;

    // Tenant maps for every epoch on the path, refusing collisions up
    // front.
    let keys: Vec<&str> = keys.into_iter().collect();
    let mut tenants: Vec<BTreeMap<RegisterId, String>> = vec![BTreeMap::new(); shard_path.len()];
    for key in &keys {
        for (tenant, &shards) in tenants.iter_mut().zip(shard_path) {
            let reg = register_under(key, shards);
            if let Some(existing) = tenant.get(&reg) {
                if existing != key {
                    return Err(CertifyError::Setup(KvCertError::ShardCollision {
                        register: reg,
                        keys: vec![existing.clone(), key.to_string()],
                    }));
                }
            } else {
                tenant.insert(reg, key.to_string());
            }
        }
    }
    let tenant_of = |reg: RegisterId| tenants.iter().rev().find_map(|t| t.get(&reg));

    // Decode a payload against the register's tenant: `None` marks
    // migration infrastructure, `Some` carries the raw store value.
    let decode = |reg: RegisterId, payload: &Value| -> Result<Option<Value>, KvCertError> {
        if payload.is_bottom() {
            return Ok(Some(Value::bottom()));
        }
        if codec::is_seal(payload) {
            return Ok(None);
        }
        let tenant = tenant_of(reg).expect("checked before decoding");
        match codec::decode_entries(payload) {
            Some(entries) => {
                if let Some((found, _)) = entries.iter().find(|(found, _)| found != tenant) {
                    return Err(KvCertError::ForeignEntry {
                        register: reg,
                        expected: tenant.clone(),
                        found: found.clone(),
                    });
                }
                Ok(Some(Value::new(entries[0].1.to_vec())))
            }
            None => Err(KvCertError::MalformedEntry { register: reg }),
        }
    };

    // Pass 1: classify every operation (an op is skipped as a whole, so
    // reads that observed only a seal drop their invocation too — a
    // dangling invoke would read as a pending operation).
    let mut register_of_op: std::collections::HashMap<rmem_types::OpId, RegisterId> =
        std::collections::HashMap::new();
    let mut fates: std::collections::HashMap<rmem_types::OpId, OpFate> =
        std::collections::HashMap::new();
    for event in history.events() {
        match event {
            Event::Invoke { op, operation } => {
                let reg = operation.register();
                register_of_op.insert(*op, reg);
                if reg == CONFIG_REGISTER {
                    fates.insert(*op, OpFate::Skip);
                    continue;
                }
                if tenant_of(reg).is_none() {
                    // A register no key maps to may still appear as pure
                    // migration footprint: splitting an *empty* shard
                    // seals its old home and reads it (observing ⊥ or the
                    // seal). That carries no store data and is skipped;
                    // anything else on an unmapped register is a routing
                    // bug and fails below (writes here, reads at their
                    // reply).
                    match operation {
                        Op::WriteAt(_, payload) | Op::Write(payload)
                            if !codec::is_seal(payload) =>
                        {
                            return Err(CertifyError::Setup(KvCertError::UnmappedRegister {
                                register: reg,
                            }));
                        }
                        _ => {
                            fates.insert(*op, OpFate::Skip);
                            continue;
                        }
                    }
                }
                let fate = match operation {
                    Op::WriteAt(_, payload) | Op::Write(payload) => {
                        match decode(reg, payload).map_err(CertifyError::Setup)? {
                            Some(_) => OpFate::Keep(None),
                            None => OpFate::Skip, // seal-marker write
                        }
                    }
                    Op::ReadAt(_) | Op::Read => OpFate::Keep(None),
                };
                fates.insert(*op, fate);
            }
            Event::Reply { op, result } => {
                let reg = *register_of_op
                    .get(op)
                    .ok_or(CertifyError::Setup(KvCertError::StrayReply { op: *op }))?;
                if reg == CONFIG_REGISTER {
                    continue;
                }
                if let OpResult::ReadValue(payload) = result {
                    if tenant_of(reg).is_none() {
                        // Skipped unmapped-register read: legal only if it
                        // observed no store data.
                        if payload.is_bottom() || codec::is_seal(payload) {
                            continue;
                        }
                        return Err(CertifyError::Setup(KvCertError::UnmappedRegister {
                            register: reg,
                        }));
                    }
                    match decode(reg, payload).map_err(CertifyError::Setup)? {
                        Some(raw) => {
                            fates.insert(*op, OpFate::Keep(Some(raw)));
                        }
                        None => {
                            fates.insert(*op, OpFate::Skip); // saw only a seal
                        }
                    }
                }
            }
            Event::Crash { .. } | Event::Recover { .. } => {}
        }
    }

    // Pass 2: emit the decoded history, dropping skipped operations.
    let mut decoded = History::new();
    for event in history.events() {
        match event {
            Event::Invoke { op, operation } => {
                if matches!(fates.get(op), Some(OpFate::Skip)) {
                    continue;
                }
                let reg = register_of_op[op];
                let operation = match operation {
                    Op::WriteAt(_, payload) | Op::Write(payload) => Op::WriteAt(
                        reg,
                        decode(reg, payload)
                            .map_err(CertifyError::Setup)?
                            .expect("non-seal write classified Keep"),
                    ),
                    Op::ReadAt(_) | Op::Read => Op::ReadAt(reg),
                };
                decoded.push(Event::Invoke { op: *op, operation });
            }
            Event::Reply { op, result } => {
                if matches!(fates.get(op), Some(OpFate::Skip)) {
                    continue;
                }
                let result = match (result, fates.get(op)) {
                    (OpResult::ReadValue(_), Some(OpFate::Keep(Some(raw)))) => {
                        OpResult::ReadValue(raw.clone())
                    }
                    (other, _) => other.clone(),
                };
                decoded.push(Event::Reply { op: *op, result });
            }
            Event::Crash { pid } => decoded.push(Event::Crash { pid: *pid }),
            Event::Recover { pid } => decoded.push(Event::Recover { pid: *pid }),
        }
    }

    // The composed register moves of the whole path: every intermediate
    // home a key ever had relabels straight onto its final home (the
    // one-hop relabeling of `stitch_moves` composes here, at map
    // construction).
    let final_shards = *shard_path.last().expect("non-empty path");
    let mut moves: BTreeMap<RegisterId, RegisterId> = BTreeMap::new();
    for key in &keys {
        let final_reg = register_under(key, final_shards);
        for &shards in &shard_path[..shard_path.len() - 1] {
            let reg = register_under(key, shards);
            if reg != final_reg {
                moves.insert(reg, final_reg);
            }
        }
    }

    let final_tenant = tenants.last().expect("non-empty path");
    let mut per_key = BTreeMap::new();
    for (register, outcome) in check_per_register_epochs(&decoded, &moves, criterion) {
        let key = final_tenant
            .get(&register)
            .ok_or(CertifyError::Setup(KvCertError::UnmappedRegister {
                register,
            }))?
            .clone();
        match outcome {
            Ok(verdict) => {
                per_key.insert(key, verdict);
            }
            Err(violation) => {
                return Err(CertifyError::Violation(KeyViolation {
                    key,
                    register,
                    violation,
                }));
            }
        }
    }
    Ok(KvCertificate { per_key })
}

/// Failure modes of [`certify_per_key`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertifyError {
    /// The run is not a certifiable store run (collision, foreign
    /// payload, …).
    Setup(KvCertError),
    /// A key's history violates the criterion.
    Violation(KeyViolation),
    /// A logical write (one op tag) was applied with diverging effects —
    /// the exactly-once criterion ([`check_store_exactly_once`]) failed.
    DuplicateWrite(DuplicateApplication<OpTag>),
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertifyError::Setup(e) => write!(f, "cannot certify: {e}"),
            CertifyError::Violation(v) => write!(f, "atomicity violation: {v}"),
            CertifyError::DuplicateWrite(d) => write!(f, "duplicate application: {d}"),
        }
    }
}

impl std::error::Error for CertifyError {}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rmem_types::ProcessId;

    fn payload(key: &str, v: &[u8]) -> Value {
        codec::encode_entry(key, &Bytes::copy_from_slice(v), 0)
    }

    fn injective_map(shards: u16) -> (ShardRouter, Vec<String>, KeyMap) {
        let router = ShardRouter::new(shards);
        let keys = router.covering_keys("k-");
        let map = KeyMap::new(&router, keys.iter().map(String::as_str));
        (router, keys, map)
    }

    #[test]
    fn key_map_reports_collisions() {
        let router = ShardRouter::new(1);
        let map = KeyMap::new(&router, ["a", "b"]);
        assert!(!map.is_injective());
        assert_eq!(map.collisions().len(), 1);
        let (_, keys, map) = injective_map(8);
        assert!(map.is_injective());
        assert_eq!(map.pairs().count(), keys.len());
    }

    #[test]
    fn sequential_store_run_certifies_per_key() {
        let (router, keys, map) = injective_map(4);
        let mut h = History::new();
        for (i, key) in keys.iter().enumerate() {
            let reg = router.register_for(key);
            let w = h.invoke(ProcessId(0), Op::WriteAt(reg, payload(key, &[i as u8])));
            h.reply(w, OpResult::Written);
            let r = h.invoke(ProcessId(1), Op::ReadAt(reg));
            h.reply(r, OpResult::ReadValue(payload(key, &[i as u8])));
        }
        let cert = certify_per_key(&h, &map, Criterion::Persistent).unwrap();
        assert_eq!(cert.per_key.len(), keys.len());
        for key in &keys {
            assert!(
                cert.per_key.contains_key(key),
                "missing certificate for {key}"
            );
        }
    }

    #[test]
    fn stale_read_is_reported_against_its_key() {
        let (router, keys, map) = injective_map(2);
        let key = &keys[0];
        let reg = router.register_for(key);
        let mut h = History::new();
        let w1 = h.invoke(ProcessId(0), Op::WriteAt(reg, payload(key, b"1")));
        h.reply(w1, OpResult::Written);
        let w2 = h.invoke(ProcessId(0), Op::WriteAt(reg, payload(key, b"2")));
        h.reply(w2, OpResult::Written);
        // A read strictly after both writes returning the older value:
        // not atomic.
        let r = h.invoke(ProcessId(1), Op::ReadAt(reg));
        h.reply(r, OpResult::ReadValue(payload(key, b"1")));
        match certify_per_key(&h, &map, Criterion::Persistent) {
            Err(CertifyError::Violation(v)) => {
                assert_eq!(&v.key, key, "violation must name the key");
                assert_eq!(v.register, reg);
            }
            other => panic!("expected a named violation, got {other:?}"),
        }
    }

    #[test]
    fn collisions_refuse_certification() {
        let router = ShardRouter::new(1);
        let map = KeyMap::new(&router, ["a", "b"]);
        let h = History::new();
        assert!(matches!(
            certify_per_key(&h, &map, Criterion::Transient),
            Err(CertifyError::Setup(KvCertError::ShardCollision { .. }))
        ));
    }

    #[test]
    fn foreign_payload_is_detected() {
        let (router, keys, map) = injective_map(2);
        let reg = router.register_for(&keys[0]);
        let mut h = History::new();
        // A payload written under the *other* key's name into this
        // register.
        let w = h.invoke(ProcessId(0), Op::WriteAt(reg, payload(&keys[1], b"x")));
        h.reply(w, OpResult::Written);
        assert!(matches!(
            certify_per_key(&h, &map, Criterion::Persistent),
            Err(CertifyError::Setup(KvCertError::ForeignEntry { .. }))
        ));
    }

    #[test]
    fn unmapped_register_is_detected() {
        let (_, _, map) = injective_map(2);
        let mut h = History::new();
        let w = h.invoke(
            ProcessId(0),
            Op::WriteAt(RegisterId(7), payload("zzz", b"x")),
        );
        h.reply(w, OpResult::Written);
        assert!(matches!(
            certify_per_key(&h, &map, Criterion::Persistent),
            Err(CertifyError::Setup(KvCertError::UnmappedRegister { .. }))
        ));
    }

    #[test]
    fn stray_reply_is_an_error_not_a_panic() {
        let (_, _, map) = injective_map(2);
        let mut h = History::new();
        // A reply with no invocation: malformed, but must come back as an
        // error the caller can handle.
        h.push(rmem_consistency::Event::Reply {
            op: rmem_types::OpId::new(ProcessId(0), 0),
            result: OpResult::ReadValue(payload("k", b"x")),
        });
        assert!(matches!(
            certify_per_key(&h, &map, Criterion::Persistent),
            Err(CertifyError::Setup(KvCertError::StrayReply { .. }))
        ));
    }

    // -- Cross-epoch certification ----------------------------------------

    /// A key universe injective under both sides of a split, with the
    /// moved/stayed partition derived from the real routing.
    fn transition_fixture() -> (EpochTransition, Vec<String>, String, String) {
        let t = EpochTransition {
            old_shards: 4,
            new_shards: 8,
        };
        let keys = ShardRouter::new(4).covering_keys("e-");
        let moved = keys
            .iter()
            .find(|k| t.old_register(k) != t.new_register(k))
            .expect("a 4→8 split moves some covering key")
            .clone();
        let stayed = keys
            .iter()
            .find(|k| t.old_register(k) == t.new_register(k))
            .expect("a 4→8 split keeps some covering key")
            .clone();
        (t, keys, moved, stayed)
    }

    fn stamped(key: &str, v: &[u8], epoch: u8) -> Value {
        codec::encode_entry(key, &Bytes::copy_from_slice(v), epoch)
    }

    #[test]
    fn clean_split_run_certifies_across_epochs() {
        let (t, keys, moved, stayed) = transition_fixture();
        let mut h = History::new();
        // Epoch 0: both keys written and read at their old homes.
        for (i, key) in [&moved, &stayed].into_iter().enumerate() {
            let reg = t.old_register(key);
            let w = h.invoke(ProcessId(0), Op::WriteAt(reg, stamped(key, &[i as u8], 0)));
            h.reply(w, OpResult::Written);
            let r = h.invoke(ProcessId(1), Op::ReadAt(reg));
            h.reply(r, OpResult::ReadValue(stamped(key, &[i as u8], 0)));
        }
        // The migrator reads the moved key's old home (recorded), copies
        // it (unrecorded), seals; a lagging reader observes the seal
        // marker (excluded), then the new home serves the value.
        let m = h.invoke(ProcessId(2), Op::ReadAt(t.old_register(&moved)));
        h.reply(m, OpResult::ReadValue(stamped(&moved, &[0], 0)));
        let lag = h.invoke(ProcessId(1), Op::ReadAt(t.old_register(&moved)));
        h.reply(lag, OpResult::ReadValue(codec::encode_seal(1)));
        let r = h.invoke(ProcessId(1), Op::ReadAt(t.new_register(&moved)));
        h.reply(r, OpResult::ReadValue(stamped(&moved, &[0], 1)));
        // Epoch 1 write + read at the new home.
        let w = h.invoke(
            ProcessId(0),
            Op::WriteAt(t.new_register(&moved), stamped(&moved, b"n", 1)),
        );
        h.reply(w, OpResult::Written);
        let r = h.invoke(ProcessId(1), Op::ReadAt(t.new_register(&moved)));
        h.reply(r, OpResult::ReadValue(stamped(&moved, b"n", 1)));

        let cert = certify_per_key_epochs(
            &h,
            keys.iter().map(String::as_str),
            &t,
            Criterion::Persistent,
        )
        .expect("a clean split run must certify");
        assert!(cert.per_key.contains_key(&moved));
        assert!(cert.per_key.contains_key(&stayed));
    }

    #[test]
    fn lost_update_across_split_is_a_named_violation() {
        let (t, keys, moved, _) = transition_fixture();
        let mut h = History::new();
        // Two completed writes at the old home…
        for v in [b"1", b"2"] {
            let w = h.invoke(
                ProcessId(0),
                Op::WriteAt(t.old_register(&moved), stamped(&moved, v, 0)),
            );
            h.reply(w, OpResult::Written);
        }
        // …but the new home serves the superseded one: the handoff was
        // not tag-monotonic.
        let r = h.invoke(ProcessId(1), Op::ReadAt(t.new_register(&moved)));
        h.reply(r, OpResult::ReadValue(stamped(&moved, b"1", 1)));
        match certify_per_key_epochs(
            &h,
            keys.iter().map(String::as_str),
            &t,
            Criterion::Transient,
        ) {
            Err(CertifyError::Violation(v)) => {
                assert_eq!(v.key, moved, "the violation must name the moved key");
                assert_eq!(v.register, t.new_register(&moved));
            }
            other => panic!("expected a named violation, got {other:?}"),
        }
    }

    #[test]
    fn forgotten_value_across_split_fails() {
        let (t, keys, moved, _) = transition_fixture();
        let mut h = History::new();
        let w = h.invoke(
            ProcessId(0),
            Op::WriteAt(t.old_register(&moved), stamped(&moved, b"v", 0)),
        );
        h.reply(w, OpResult::Written);
        // The new home serves ⊥ although the write completed pre-split.
        let r = h.invoke(ProcessId(1), Op::ReadAt(t.new_register(&moved)));
        h.reply(r, OpResult::ReadValue(Value::bottom()));
        assert!(matches!(
            certify_per_key_epochs(
                &h,
                keys.iter().map(String::as_str),
                &t,
                Criterion::Persistent
            ),
            Err(CertifyError::Violation(_))
        ));
    }

    #[test]
    fn config_register_traffic_is_ignored() {
        let (t, keys, _, stayed) = transition_fixture();
        let mut h = History::new();
        // Shard-map publishes and reads share the recorded history.
        let w = h.invoke(
            ProcessId(0),
            Op::WriteAt(CONFIG_REGISTER, crate::epoch::ShardMap::genesis(4).encode()),
        );
        h.reply(w, OpResult::Written);
        let r = h.invoke(ProcessId(1), Op::ReadAt(CONFIG_REGISTER));
        h.reply(
            r,
            OpResult::ReadValue(crate::epoch::ShardMap::genesis(4).encode()),
        );
        let w = h.invoke(
            ProcessId(0),
            Op::WriteAt(t.old_register(&stayed), stamped(&stayed, b"v", 0)),
        );
        h.reply(w, OpResult::Written);
        let cert = certify_per_key_epochs(
            &h,
            keys.iter().map(String::as_str),
            &t,
            Criterion::Persistent,
        )
        .expect("config traffic must not disturb certification");
        assert!(cert.per_key.contains_key(&stayed));
    }

    #[test]
    fn cross_epoch_collisions_are_refused() {
        // A universe injective under the old epoch but colliding in the
        // new one cannot happen with linear hashing; force the reverse: 2
        // keys on one *old* shard.
        let t = EpochTransition {
            old_shards: 1,
            new_shards: 2,
        };
        let h = History::new();
        assert!(matches!(
            certify_per_key_epochs(&h, ["a", "b"], &t, Criterion::Persistent),
            Err(CertifyError::Setup(KvCertError::ShardCollision { .. }))
        ));
    }

    #[test]
    fn split_chain_certifies_along_the_whole_path() {
        // A key that moves at both hops of 4 → 8 → 16, written and read
        // at each of its three successive homes.
        let keys = ShardRouter::new(4).covering_keys("p-");
        let path = [4u16, 8, 16];
        let key = keys
            .iter()
            .find(|k| {
                register_under(k, 4) != register_under(k, 8)
                    && register_under(k, 8) != register_under(k, 16)
            })
            .expect("some covering key moves at both hops")
            .clone();
        let mut h = History::new();
        for (i, shards) in path.iter().enumerate() {
            let reg = register_under(&key, *shards);
            let w = h.invoke(ProcessId(0), Op::WriteAt(reg, stamped(&key, &[i as u8], 0)));
            h.reply(w, OpResult::Written);
            let r = h.invoke(ProcessId(1), Op::ReadAt(reg));
            h.reply(r, OpResult::ReadValue(stamped(&key, &[i as u8], 0)));
        }
        let cert = certify_per_key_epoch_path(
            &h,
            keys.iter().map(String::as_str),
            &path,
            Criterion::Persistent,
        )
        .expect("a clean three-epoch run must certify");
        assert!(cert.per_key.contains_key(&key));

        // A resurrected value across the chain still fails: the final
        // home serving hop 0's value after hop 2's write completed.
        let stale = h.invoke(ProcessId(1), Op::ReadAt(register_under(&key, 16)));
        h.reply(stale, OpResult::ReadValue(stamped(&key, &[0], 0)));
        assert!(matches!(
            certify_per_key_epoch_path(
                &h,
                keys.iter().map(String::as_str),
                &path,
                Criterion::Transient
            ),
            Err(CertifyError::Violation(_))
        ));
    }

    #[test]
    fn exactly_once_retries_collapse_but_forks_fail() {
        let (router, keys, map) = injective_map(2);
        let key = &keys[0];
        let reg = router.register_for(key);
        let tag = OpTag::new(5, 0);
        let tagged = |v: &[u8]| codec::encode_entry_tagged(key, &Bytes::copy_from_slice(v), 0, tag);

        // A crashed write retried under the same tag with the same value:
        // one logical write, certifiable.
        let mut h = History::new();
        let w1 = h.invoke(ProcessId(0), Op::WriteAt(reg, tagged(b"v")));
        h.reply(w1, OpResult::Written);
        let w2 = h.invoke(ProcessId(0), Op::WriteAt(reg, tagged(b"v")));
        h.reply(w2, OpResult::Written);
        let r = h.invoke(ProcessId(1), Op::ReadAt(reg));
        h.reply(r, OpResult::ReadValue(tagged(b"v")));
        certify_per_key(&h, &map, Criterion::Persistent).expect("same-effect retry is benign");
        let report = check_store_exactly_once(&h).unwrap();
        assert_eq!(report.tagged_writes, 2);
        assert_eq!(report.logical_ops, 1);
        assert_eq!(report.retries, 1);

        // A retry that forked the value is a duplicate application even
        // though each individual history would be atomic.
        let mut forked = History::new();
        let w1 = forked.invoke(ProcessId(0), Op::WriteAt(reg, tagged(b"a")));
        forked.reply(w1, OpResult::Written);
        let w2 = forked.invoke(ProcessId(0), Op::WriteAt(reg, tagged(b"b")));
        forked.reply(w2, OpResult::Written);
        match certify_per_key(&forked, &map, Criterion::Persistent) {
            Err(CertifyError::DuplicateWrite(d)) => assert_eq!(d.tag, tag),
            other => panic!("expected a duplicate application, got {other:?}"),
        }
        // The epoch certifier applies the same criterion.
        assert!(matches!(
            certify_per_key_epochs(
                &forked,
                keys.iter().map(String::as_str),
                &EpochTransition {
                    old_shards: 2,
                    new_shards: 4
                },
                Criterion::Persistent
            ),
            Err(CertifyError::DuplicateWrite(_))
        ));
    }

    #[test]
    fn crash_events_survive_decoding() {
        let (router, keys, map) = injective_map(2);
        let key = &keys[0];
        let reg = router.register_for(key);
        let mut h = History::new();
        let w = h.invoke(ProcessId(0), Op::WriteAt(reg, payload(key, b"1")));
        h.reply(w, OpResult::Written);
        h.crash(ProcessId(0));
        h.recover(ProcessId(0));
        let r = h.invoke(ProcessId(0), Op::ReadAt(reg));
        h.reply(r, OpResult::ReadValue(payload(key, b"1")));
        let cert = certify_per_key(&h, &map, Criterion::Persistent).unwrap();
        assert!(cert.per_key.contains_key(key));
    }
}
