//! The real-runtime store client: routes keys to shards and pipelines
//! independent per-shard operations across the cluster's nodes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use rmem_net::{Client, ClientError};
use rmem_types::{RegisterId, Value};

use crate::codec;
use crate::health::{HealthMemory, NodeGate};
use crate::router::ShardRouter;

/// Shared per-client operation counters (all clones update one set).
#[derive(Debug, Default)]
struct OpStatsInner {
    reads: AtomicU64,
    read_rounds: AtomicU64,
    fast_reads: AtomicU64,
    writes: AtomicU64,
    write_rounds: AtomicU64,
}

/// Snapshot of a client's per-operation quorum-round statistics.
///
/// Rounds are reported by the register automaton with each completion, so
/// the numbers measure what the emulation actually did: a read costs 1
/// round when the confirmed-timestamp fast path fired (unanimous durable
/// tags in the read quorum) and 2 when it fell back to the write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvOpStats {
    /// Register reads completed through this client (and its clones).
    pub reads: u64,
    /// Total quorum round-trips those reads performed.
    pub read_rounds: u64,
    /// Reads that completed in a single round (fast path / single-round
    /// flavor).
    pub fast_reads: u64,
    /// Register writes completed.
    pub writes: u64,
    /// Total quorum round-trips those writes performed.
    pub write_rounds: u64,
}

impl KvOpStats {
    /// Mean rounds per read (2.0 = every read paid the write-back,
    /// 1.0 = every read took the fast path; 0.0 with no reads).
    pub fn mean_read_rounds(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.read_rounds as f64 / self.reads as f64
    }

    /// Fraction of reads served by the one-round fast path.
    pub fn fast_read_fraction(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.fast_reads as f64 / self.reads as f64
    }
}

/// Snapshot of the shared cluster-health memory's operator counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthStats {
    /// Failures recorded (timeouts / downs) since construction.
    pub marks: u64,
    /// Probe operations started for decayed suspects since construction.
    pub probes: u64,
    /// Nodes currently inside their mark cooldown.
    pub suspects: Vec<usize>,
}

/// Why a store operation failed.
#[derive(Debug, Clone)]
pub enum KvError {
    /// The underlying register operation failed at the node serving the
    /// key's shard.
    Register {
        /// The key whose operation failed.
        key: String,
        /// The transport/runtime error.
        source: ClientError,
    },
    /// The encoded entry cannot fit the cluster's transport frame (e.g.
    /// the 64 KB UDP datagram ceiling). Surfaced *before* anything is
    /// sent — the fair-lossy runtime would otherwise retransmit the
    /// untransmittable message until the patience window expired.
    TooLarge {
        /// The key whose entry is oversized.
        key: String,
        /// The wire size the entry would produce.
        size: usize,
        /// The transport's frame limit.
        limit: usize,
    },
    /// The client was constructed without any node handles.
    NoNodes,
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Register { key, source } => write!(f, "operation on key {key:?}: {source}"),
            KvError::TooLarge { key, size, limit } => write!(
                f,
                "entry for key {key:?} needs a {size}-byte message, over the transport's {limit}-byte frame"
            ),
            KvError::NoNodes => write!(f, "KvClient needs at least one node handle"),
        }
    }
}

impl std::error::Error for KvError {}

/// A sharded key-value client over an emulated shared memory.
///
/// Keys route deterministically to shard registers ([`ShardRouter`]);
/// each shard prefers one of the cluster's node handles (`shard % nodes`,
/// so shard traffic spreads across the cluster) and fails over to the
/// remaining nodes when its home node is down or unresponsive — any node
/// can serve any register.
/// [`multi_get`](KvClient::multi_get)/[`multi_put`](KvClient::multi_put)
/// run the per-node batches **concurrently** — operations on different
/// shards touch different registers and are independent by locality, so
/// the only serialization kept is the per-node operation order.
///
/// Reads and writes inherit the register emulation's guarantees: with a
/// majority of nodes up, every operation terminates, and per-key histories
/// satisfy the configured flavor's atomicity criterion.
#[derive(Debug, Clone)]
pub struct KvClient {
    nodes: Vec<Client>,
    router: ShardRouter,
    busy_retries: u32,
    health: Arc<HealthMemory>,
    stats: Arc<OpStatsInner>,
}

impl KvClient {
    /// A client over `nodes` (e.g. `LocalCluster::clients()`) with the
    /// given router.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::NoNodes`] if `nodes` is empty.
    pub fn new(nodes: Vec<Client>, router: ShardRouter) -> Result<Self, KvError> {
        if nodes.is_empty() {
            return Err(KvError::NoNodes);
        }
        let health = Arc::new(HealthMemory::new(nodes.len(), Duration::from_secs(5)));
        Ok(KvClient {
            nodes,
            router,
            busy_retries: 32,
            health,
            stats: Arc::new(OpStatsInner::default()),
        })
    }

    /// Replaces the number of retries on `Busy` rejections (another client
    /// racing an operation through the same node; default 32).
    pub fn with_busy_retries(mut self, busy_retries: u32) -> Self {
        self.busy_retries = busy_retries;
        self
    }

    /// Replaces the cluster-health mark cooldown (default 5 s): how long a
    /// node that timed out is deprioritized before failover tries it first
    /// again. Resets the marks.
    pub fn with_health_cooldown(mut self, cooldown: Duration) -> Self {
        self.health = Arc::new(HealthMemory::new(self.nodes.len(), cooldown));
        self
    }

    /// The shared cluster-health memory (clones of this client observe and
    /// update the same marks).
    pub fn health(&self) -> &HealthMemory {
        &self.health
    }

    /// Operator counters of the shared health memory: total marks, total
    /// probes issued for decayed suspects, and the current suspect set.
    pub fn health_stats(&self) -> HealthStats {
        HealthStats {
            marks: self.health.marks_total(),
            probes: self.health.probes_total(),
            suspects: self.health.suspects(),
        }
    }

    /// Per-operation quorum-round statistics (shared with clones).
    pub fn stats(&self) -> KvOpStats {
        KvOpStats {
            reads: self.stats.reads.load(Ordering::Relaxed),
            read_rounds: self.stats.read_rounds.load(Ordering::Relaxed),
            fast_reads: self.stats.fast_reads.load(Ordering::Relaxed),
            writes: self.stats.writes.load(Ordering::Relaxed),
            write_rounds: self.stats.write_rounds.load(Ordering::Relaxed),
        }
    }

    fn record_read(&self, rounds: u32) {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        self.stats
            .read_rounds
            .fetch_add(u64::from(rounds), Ordering::Relaxed);
        if rounds <= 1 {
            self.stats.fast_reads.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_write(&self, rounds: u32) {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .write_rounds
            .fetch_add(u64::from(rounds), Ordering::Relaxed);
    }

    /// The router in use.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Number of node handles.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The largest *register value* this client can write, if any node's
    /// transport is bounded (the minimum across nodes — a value must fit
    /// every replica's frame, not just the contacted node's, because the
    /// protocol forwards it to all of them).
    pub fn max_value_len(&self) -> Option<usize> {
        self.nodes.iter().filter_map(Client::max_value_len).min()
    }

    /// Runs one register operation for `key`, preferring the shard's home
    /// node but failing over to the other nodes when it is unreachable:
    /// every node can serve every register, so as long as a majority is
    /// up the operation terminates through *some* handle. `Busy`
    /// rejections (another client racing this node) retry with backoff on
    /// the same node first, then fail over like any other unavailability —
    /// register operations are idempotent, so a retry after an ambiguous
    /// timeout is safe.
    ///
    /// Nodes the shared [`HealthMemory`] marks as recently failed are
    /// tried *last* (never skipped), and a timeout/down outcome marks the
    /// node — so across the concurrent threads of a multi-key batch, a
    /// wedged node costs one patience window, not one per key. A node
    /// whose mark has decayed must first serve one **probe** operation
    /// before rejoining full rotation: exactly one caller wins the probe
    /// (and routes its operation through the node, first), everyone else
    /// keeps trying it last until the probe clears it.
    /// [`ClientError::TooLarge`] short-circuits without marking: the value
    /// cannot fit *any* node's frame, so failing over would only repeat
    /// the refusal.
    fn with_failover<T>(
        &self,
        key: &str,
        reg: RegisterId,
        mut op: impl FnMut(&Client) -> Result<T, ClientError>,
    ) -> Result<T, KvError> {
        let home = reg.0 as usize % self.nodes.len();
        let rotation = (0..self.nodes.len()).map(|o| (home + o) % self.nodes.len());
        let mut fresh = Vec::new();
        let mut suspect = Vec::new();
        let mut probing: Option<usize> = None;
        for i in rotation {
            match self.health.gate(i) {
                NodeGate::Fresh => fresh.push(i),
                NodeGate::Suspect => suspect.push(i),
                NodeGate::NeedsProbe => {
                    if probing.is_none() && self.health.try_begin_probe(i) {
                        // The probe winner's operation *is* the probe: the
                        // node goes first so this operation definitely
                        // exercises it (success clears, failure re-marks).
                        probing = Some(i);
                    } else {
                        suspect.push(i);
                    }
                }
            }
        }
        let order = probing.into_iter().chain(fresh).chain(suspect);
        let mut last_err = None;
        for i in order {
            let node = &self.nodes[i];
            let mut attempts = 0;
            loop {
                match op(node) {
                    Err(ClientError::Busy) if attempts < self.busy_retries => {
                        attempts += 1;
                        std::thread::sleep(std::time::Duration::from_micros(200 * attempts as u64));
                    }
                    Err(ClientError::TooLarge { size, limit }) => {
                        if probing == Some(i) {
                            // The probe never reached the node (client-side
                            // refusal): hand the debt back.
                            self.health.reopen_probe(i);
                        }
                        return Err(KvError::TooLarge {
                            key: key.to_string(),
                            size,
                            limit,
                        });
                    }
                    // This node is gone, wedged, or permanently saturated
                    // (Busy retries exhausted); the next one serves the
                    // same register.
                    Err(source) => {
                        if matches!(source, ClientError::TimedOut | ClientError::ProcessDown) {
                            self.health.mark(i);
                        } else if probing == Some(i) {
                            // Inconclusive probe (e.g. Busy exhaustion):
                            // the node still owes one.
                            self.health.reopen_probe(i);
                        }
                        last_err = Some(source);
                        break;
                    }
                    Ok(v) => {
                        self.health.clear(i);
                        return Ok(v);
                    }
                }
            }
        }
        Err(KvError::Register {
            key: key.to_string(),
            source: last_err.expect("at least one node was tried"),
        })
    }

    /// One failover-protected register **write** of an already-encoded
    /// payload (single entry or bundle). The building block of the
    /// batching layer (`rmem-batch`); `label` names the operation in
    /// errors (a key, or a `"batch:<shard>"` tag).
    ///
    /// # Errors
    ///
    /// As for [`put`](Self::put).
    pub fn raw_write(&self, reg: RegisterId, payload: Value, label: &str) -> Result<(), KvError> {
        let rounds = self.with_failover(label, reg, |node| {
            node.write_at_counted(reg, payload.clone())
        })?;
        self.record_write(rounds);
        Ok(())
    }

    /// One failover-protected register **read** returning the raw payload
    /// (⊥, a single entry, or a bundle). The building block of the
    /// batching layer; see [`raw_write`](Self::raw_write).
    ///
    /// # Errors
    ///
    /// As for [`get`](Self::get).
    pub fn raw_read(&self, reg: RegisterId, label: &str) -> Result<Value, KvError> {
        let (payload, rounds) = self.with_failover(label, reg, |node| node.read_at_counted(reg))?;
        self.record_read(rounds);
        Ok(payload)
    }

    /// Stores `value` under `key`, blocking until the write is durable at
    /// a majority.
    ///
    /// The encoded entry (`2 + key + value` bytes plus protocol framing)
    /// must fit the cluster's transport frame: UDP transports cap
    /// datagrams at 64 KB, and an oversized entry fails fast with
    /// [`KvError::TooLarge`] before anything is sent — use a TCP-backed
    /// cluster for larger values.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::TooLarge`] for an entry over the transport
    /// frame, [`KvError::Register`] if the register operation fails.
    pub fn put(&self, key: &str, value: impl Into<Bytes>) -> Result<(), KvError> {
        let reg = self.router.register_for(key);
        let payload = codec::encode_entry(key, &value.into());
        let rounds =
            self.with_failover(key, reg, |node| node.write_at_counted(reg, payload.clone()))?;
        self.record_write(rounds);
        Ok(())
    }

    /// Reads the value stored under `key` (`None` if absent — never
    /// written, or displaced by a shard-colliding key).
    ///
    /// # Errors
    ///
    /// Returns [`KvError::Register`] if the register operation fails.
    pub fn get(&self, key: &str) -> Result<Option<Bytes>, KvError> {
        let reg = self.router.register_for(key);
        let (payload, rounds) = self.with_failover(key, reg, |node| node.read_at_counted(reg))?;
        self.record_read(rounds);
        Ok(codec::value_for_key(&payload, key))
    }

    /// Groups the operation indices by serving node, preserving input
    /// order within each group.
    fn group_by_node(&self, keys: impl Iterator<Item = RegisterId>) -> BTreeMap<usize, Vec<usize>> {
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, reg) in keys.enumerate() {
            groups
                .entry(reg.0 as usize % self.nodes.len())
                .or_default()
                .push(i);
        }
        groups
    }

    /// Reads many keys, pipelining across nodes: each node's batch runs in
    /// its own thread, concurrently with the others. Results align with
    /// the input order.
    ///
    /// Failover state is shared through the [`HealthMemory`]: the first
    /// key to time out on a wedged node marks it, and the batch's other
    /// threads then try that node last — one patience window per batch,
    /// not one per key.
    ///
    /// # Errors
    ///
    /// Returns the first failing key's [`KvError`]; other batches still
    /// ran to completion.
    pub fn multi_get<K: AsRef<str> + Sync>(
        &self,
        keys: &[K],
    ) -> Result<Vec<Option<Bytes>>, KvError> {
        type BatchResult = Result<Vec<(usize, Option<Bytes>)>, KvError>;
        let groups = self.group_by_node(keys.iter().map(|k| self.router.register_for(k.as_ref())));
        let mut results: Vec<Option<Option<Bytes>>> = vec![None; keys.len()];
        let outcomes: Vec<BatchResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .values()
                .map(|indices| {
                    scope.spawn(move || {
                        indices
                            .iter()
                            .map(|&i| self.get(keys[i].as_ref()).map(|v| (i, v)))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("kv batch thread panicked"))
                .collect()
        });
        for outcome in outcomes {
            for (i, value) in outcome? {
                results[i] = Some(value);
            }
        }
        Ok(results
            .into_iter()
            .map(|slot| slot.expect("every index answered"))
            .collect())
    }

    /// Writes many entries, pipelining across nodes (see
    /// [`multi_get`](KvClient::multi_get)).
    ///
    /// # Errors
    ///
    /// Returns the first failing key's [`KvError`]; other batches still
    /// ran to completion.
    pub fn multi_put<K: AsRef<str> + Sync>(&self, entries: &[(K, Bytes)]) -> Result<(), KvError> {
        let groups = self.group_by_node(
            entries
                .iter()
                .map(|(k, _)| self.router.register_for(k.as_ref())),
        );
        let outcomes: Vec<Result<(), KvError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .values()
                .map(|indices| {
                    scope.spawn(move || {
                        for &i in indices {
                            let (key, value) = &entries[i];
                            self.put(key.as_ref(), value.clone())?;
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("kv batch thread panicked"))
                .collect()
        });
        outcomes.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_core::{SharedMemory, Transient};
    use rmem_net::LocalCluster;

    fn cluster_client(shards: u16) -> (LocalCluster, KvClient) {
        let cluster = LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap();
        let client = KvClient::new(cluster.clients(), ShardRouter::new(shards)).unwrap();
        (cluster, client)
    }

    #[test]
    fn put_get_roundtrip() {
        let (mut cluster, kv) = cluster_client(8);
        kv.put("alpha", b"1".to_vec()).unwrap();
        assert_eq!(kv.get("alpha").unwrap().as_deref(), Some(b"1".as_ref()));
        assert_eq!(kv.get("never-written").unwrap(), None);
        cluster.shutdown();
    }

    #[test]
    fn multi_ops_roundtrip_across_shards() {
        let (mut cluster, kv) = cluster_client(8);
        let keys = kv.router().covering_keys("k-");
        let entries: Vec<(String, Bytes)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), Bytes::from(vec![i as u8])))
            .collect();
        kv.multi_put(&entries).unwrap();
        let got = kv.multi_get(&keys).unwrap();
        for (i, value) in got.iter().enumerate() {
            assert_eq!(
                value.as_deref(),
                Some([i as u8].as_ref()),
                "key {}",
                keys[i]
            );
        }
        cluster.shutdown();
    }

    #[test]
    fn overwrite_returns_latest() {
        let (mut cluster, kv) = cluster_client(4);
        kv.put("k", b"old".to_vec()).unwrap();
        kv.put("k", b"new".to_vec()).unwrap();
        assert_eq!(kv.get("k").unwrap().as_deref(), Some(b"new".as_ref()));
        cluster.shutdown();
    }

    #[test]
    fn colliding_key_displaces_previous_tenant() {
        // One shard: every key collides by construction. The displaced
        // key's get must report absence, not foreign bytes.
        let (mut cluster, kv) = cluster_client(1);
        kv.put("first", b"1".to_vec()).unwrap();
        kv.put("second", b"2".to_vec()).unwrap();
        assert_eq!(kv.get("second").unwrap().as_deref(), Some(b"2".as_ref()));
        assert_eq!(kv.get("first").unwrap(), None);
        cluster.shutdown();
    }

    #[test]
    fn client_fails_over_when_a_node_dies() {
        // The same KvClient (handles to all 3 nodes) must keep serving
        // every key after one node is killed — shards homed on the dead
        // node fail over to the survivors.
        let (mut cluster, kv) = cluster_client(8);
        let keys = kv.router().covering_keys("f-");
        for (i, key) in keys.iter().enumerate() {
            kv.put(key, vec![i as u8]).unwrap();
        }
        cluster.kill(rmem_types::ProcessId(1));
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(
                kv.get(key).unwrap().as_deref(),
                Some([i as u8].as_ref()),
                "key {key} must survive the node death"
            );
            kv.put(key, vec![i as u8 + 100]).unwrap();
        }
        cluster.shutdown();
    }

    #[test]
    fn dead_node_is_marked_and_deprioritized() {
        let (mut cluster, kv) = cluster_client(8);
        let kv = kv.with_health_cooldown(std::time::Duration::from_secs(30));
        let keys = kv.router().covering_keys("h-");
        let entries: Vec<(String, Bytes)> = keys
            .iter()
            .map(|k| (k.clone(), Bytes::from(b"v".to_vec())))
            .collect();
        kv.multi_put(&entries).unwrap();
        cluster.kill(rmem_types::ProcessId(1));
        // Every key still resolves; the batch's failovers mark node 1.
        let got = kv.multi_get(&keys).unwrap();
        assert!(got.iter().all(Option::is_some));
        assert!(
            kv.health().is_suspect(1),
            "the killed node must be marked as recently failed"
        );
        assert!(!kv.health().is_suspect(0));
        // A clone shares the same marks.
        assert!(kv.clone().health().is_suspect(1));
        // Marks are hints, not bans: with *every* node marked the store
        // still serves (suspects are tried in home order), and the node
        // that answers clears its own mark.
        cluster.restart(rmem_types::ProcessId(1)).unwrap();
        for i in 0..3 {
            kv.health().mark(i);
        }
        assert_eq!(kv.health().suspects().len(), 3);
        let got = kv.multi_get(&keys).unwrap();
        assert!(got.iter().all(Option::is_some));
        assert!(
            kv.health().suspects().len() < 3,
            "successful operations must clear the serving nodes' marks"
        );
        cluster.shutdown();
    }

    #[test]
    fn oversized_entry_fails_fast_with_a_named_error() {
        // UDP transport: 64 KB datagram ceiling. The put must fail
        // immediately with TooLarge, not retransmit into a timeout.
        let dir = std::env::temp_dir().join(format!("rmem-kv-toolarge-{}", std::process::id()));
        let mut cluster =
            LocalCluster::udp(3, SharedMemory::factory(Transient::flavor()), &dir).unwrap();
        let kv = KvClient::new(cluster.clients(), ShardRouter::new(4)).unwrap();
        assert!(kv.max_value_len().is_some());
        let started = std::time::Instant::now();
        let err = kv.put("big", vec![0u8; 80_000]).unwrap_err();
        assert!(
            matches!(err, KvError::TooLarge { ref key, size, limit }
                if key == "big" && size > limit),
            "expected TooLarge, got {err}"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "TooLarge must surface fast, not after a patience window"
        );
        // A value that fits still works on the same cluster.
        kv.put("small", b"ok".to_vec()).unwrap();
        assert_eq!(kv.get("small").unwrap().as_deref(), Some(b"ok".as_ref()));
        cluster.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn op_stats_count_reads_writes_and_fast_paths() {
        let (mut cluster, kv) = cluster_client(8);
        assert_eq!(kv.stats(), KvOpStats::default());
        kv.put("s", b"1".to_vec()).unwrap();
        // Quiescent key: the fast path answers the read in one round.
        assert_eq!(kv.get("s").unwrap().as_deref(), Some(b"1".as_ref()));
        let stats = kv.stats();
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.write_rounds, 2, "transient write = query + propagate");
        assert_eq!(stats.reads, 1);
        assert_eq!(
            stats.read_rounds, 1,
            "a quiescent read must take the fast path"
        );
        assert_eq!(stats.fast_reads, 1);
        assert!(stats.mean_read_rounds() < 2.0);
        assert_eq!(stats.fast_read_fraction(), 1.0);
        // Clones share the counters.
        kv.clone().get("s").unwrap();
        assert_eq!(kv.stats().reads, 2);
        cluster.shutdown();
    }

    #[test]
    fn decayed_suspect_is_probed_before_full_rotation() {
        let (mut cluster, kv) = cluster_client(8);
        let kv = kv.with_health_cooldown(std::time::Duration::from_millis(40));
        let keys = kv.router().covering_keys("p-");
        for key in &keys {
            kv.put(key, b"v".to_vec()).unwrap();
        }
        // A healthy node that got (spuriously) marked: after the decay it
        // owes one probe, the first batch issues exactly one, and the
        // success restores full rotation.
        kv.health().mark(1);
        assert_eq!(kv.health_stats().marks, 1);
        assert_eq!(kv.health().gate(1), NodeGate::Suspect);
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert_eq!(kv.health().gate(1), NodeGate::NeedsProbe);
        let got = kv.multi_get(&keys).unwrap();
        assert!(got.iter().all(Option::is_some));
        let stats = kv.health_stats();
        assert_eq!(stats.probes, 1, "exactly one probe per owed debt");
        assert_eq!(
            kv.health().gate(1),
            NodeGate::Fresh,
            "the successful probe must restore full rotation"
        );
        assert!(stats.suspects.is_empty());
        cluster.shutdown();
    }

    #[test]
    fn failed_probe_remarks_instead_of_restoring() {
        let (mut cluster, kv) = cluster_client(8);
        let kv = kv
            .with_health_cooldown(std::time::Duration::from_millis(40))
            .with_busy_retries(0);
        // Shrink patience so the dead node costs milliseconds, not 10s.
        let kv = KvClient {
            nodes: kv
                .nodes
                .iter()
                .map(|n| {
                    n.clone()
                        .with_timeout(std::time::Duration::from_millis(300))
                })
                .collect(),
            ..kv
        };
        let keys = kv.router().covering_keys("f-");
        for key in &keys {
            kv.put(key, b"v".to_vec()).unwrap();
        }
        cluster.kill(rmem_types::ProcessId(1));
        // The batch marks the dead node (one timeout, shared marks).
        let got = kv.multi_get(&keys).unwrap();
        assert!(got.iter().all(Option::is_some));
        assert!(kv.health_stats().marks >= 1, "the dead node must be marked");
        assert_eq!(
            kv.health_stats().probes,
            0,
            "no probe while the mark is hot"
        );
        // Mark decays, node is still dead: the next batch spends exactly
        // one probe on it and re-marks it — the probe gate is what keeps
        // the cost at one operation instead of one per key.
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert_eq!(kv.health().gate(1), NodeGate::NeedsProbe);
        let marks_before = kv.health_stats().marks;
        let got = kv.multi_get(&keys).unwrap();
        assert!(got.iter().all(Option::is_some));
        let stats = kv.health_stats();
        assert_eq!(stats.probes, 1, "one probe, not one per key");
        assert!(
            stats.marks > marks_before,
            "the failed probe must re-mark the node"
        );
        assert_eq!(kv.health().gate(1), NodeGate::Suspect);
        cluster.shutdown();
    }

    #[test]
    fn empty_node_list_is_rejected() {
        assert!(matches!(
            KvClient::new(Vec::new(), ShardRouter::new(4)),
            Err(KvError::NoNodes)
        ));
    }
}
