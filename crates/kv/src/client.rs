//! The real-runtime store client: epoch-aware key routing over a cached
//! shard map, with pipelined per-shard operations across the cluster's
//! nodes and a live shard-split protocol.
//!
//! # Epochs
//!
//! The authoritative shard map lives in the store itself (register 0, see
//! [`crate::epoch`]); each client keeps a cached [`ShardMap`] snapshot
//! (shared by its clones) and refreshes it from the config register
//! whenever a data payload's epoch stamp signals staleness. Data shard
//! `i` lives at register `i + 1`.
//!
//! # Live shard splits
//!
//! [`KvClient::grow`] publishes epoch `e+1` (a *migrating* map), then for
//! every split-source shard: reads the old home, copies each moved entry
//! to its new home (**tag-monotonically** — the copy is the old home's
//! latest value, and the write barrier below guarantees it still is when
//! the seal lands), and finally **seals** the old home under the new
//! epoch's stamp. Once every source is sealed, the committed map is
//! published.
//!
//! **The barrier invariant: a writer whose key is owned by a splitting
//! shard must observe that shard's seal before writing the key's
//! new-epoch home.** Writers poll the old home (bounded; see
//! [`KvError::Barrier`]) until the seal appears — so during a source
//! shard's copy window the migrator is the only writer touching its
//! registers, which is what makes the copy lossless. Readers during
//! migration fall back *old-home-then-new-home*: an unsealed old home is
//! authoritative, a sealed one forwards to the new routing.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use rmem_net::{Client, ClientError, PipelinedClient, Ticket, TraceCtx};
use rmem_obs::{
    Counter, EventKind, FlightEvent, FlightRecorder, Histogram, MetricsSnapshot, ObsHandle,
};
use rmem_types::{LeaseGrant, Op, OpResult, ProcessId, RegisterId, Value};

use rmem_storage::StorageError;
use rmem_types::OpTag;

use crate::codec;
use crate::epoch::{data_register, ShardMap, CONFIG_REGISTER};
use crate::exactly_once::ExactlyOnce;
use crate::health::{HealthMemory, NodeGate};
use crate::lease::{LeaseCache, Lookup};
use crate::recorder::OpRecorder;
use crate::router::ShardRouter;

/// How many times an operation re-routes after a shard-map refresh,
/// barrier re-route or epoch-guarded abort before giving up on chasing
/// epochs.
const MAP_RETRIES: usize = 6;

/// Shared per-client observability (all clones update one set): the
/// `rmem-obs` registry with every hot-path handle pre-resolved, plus the
/// client-side flight recorder. The former `OpStatsInner` counters live
/// in the registry now — [`KvClient::stats`] reads them back out, so the
/// [`KvOpStats`] surface is unchanged while `cluster`-style snapshots
/// ([`KvClient::metrics`]) see the same numbers.
#[derive(Debug)]
struct ClientObs {
    handle: ObsHandle,
    reads: Arc<Counter>,
    read_rounds: Arc<Counter>,
    fast_reads: Arc<Counter>,
    writes: Arc<Counter>,
    write_rounds: Arc<Counter>,
    barrier_waits: Arc<Counter>,
    barrier_polls: Arc<Counter>,
    map_refreshes: Arc<Counter>,
    retries: Arc<Counter>,
    backoff_micros: Arc<Counter>,
    lease_hits: Arc<Counter>,
    lease_misses: Arc<Counter>,
    lease_revocations: Arc<Counter>,
    lease_evictions: Arc<Counter>,
    inflight: Arc<rmem_obs::Gauge>,
    pipeline_depth: Arc<Histogram>,
    get_micros: Arc<Histogram>,
    put_micros: Arc<Histogram>,
}

impl ClientObs {
    fn new(handle: ObsHandle) -> Self {
        let m = &handle.metrics;
        ClientObs {
            reads: m.counter("kv.reads"),
            read_rounds: m.counter("kv.read_rounds"),
            fast_reads: m.counter("kv.fast_reads"),
            writes: m.counter("kv.writes"),
            write_rounds: m.counter("kv.write_rounds"),
            barrier_waits: m.counter("kv.barrier_waits"),
            barrier_polls: m.counter("kv.barrier_polls"),
            map_refreshes: m.counter("kv.map_refreshes"),
            retries: m.counter("kv.retries"),
            backoff_micros: m.counter("kv.backoff_micros"),
            lease_hits: m.counter("kv.lease_hits"),
            lease_misses: m.counter("kv.lease_misses"),
            lease_revocations: m.counter("kv.lease_revocations"),
            lease_evictions: m.counter("kv.lease_evictions"),
            inflight: m.gauge("kv.inflight"),
            pipeline_depth: m.histogram("kv.pipeline_depth"),
            get_micros: m.histogram("kv.get_micros"),
            put_micros: m.histogram("kv.put_micros"),
            handle,
        }
    }

    /// `Instant::now` for latency histograms, skipped when observability
    /// is disabled (the bench baseline).
    #[inline]
    fn op_clock(&self) -> Option<Instant> {
        self.handle.metrics.is_enabled().then(Instant::now)
    }
}

/// Bookkeeping for one op of a pipelined multi-key batch, kept in a twin
/// vector alongside its [`Ticket`] (so the ticket slice feeds `wait_any`
/// directly).
struct InFlightOp {
    /// Index into the caller's input slice.
    idx: usize,
    /// The register the op was routed to — its completion refills the
    /// next op from this register's queue.
    reg: RegisterId,
    /// The serving node (fan target order == `KvClient::nodes` order).
    node: usize,
    /// The recorded invocation: handed to the blocking path on fallback
    /// so a retried op never opens a second recorded operation.
    inv: Option<rmem_types::OpId>,
    /// Whether this op is the node's owed health probe (won via
    /// [`HealthMemory::try_begin_probe`]): an inconclusive outcome hands
    /// the debt back.
    probe: bool,
    /// Latency clock opened at submission (when metrics are on).
    started: Option<Instant>,
    /// Submission instant for the lease-horizon anchor (only stamped
    /// when the client's lease cache is armed): a grant riding this
    /// op's completion expires `grant.micros` after *this* moment.
    sent: Option<Instant>,
}

/// Snapshot of a client's per-operation quorum-round statistics.
///
/// Rounds are reported by the register automaton with each completion, so
/// the numbers measure what the emulation actually did: a read costs 1
/// round when the confirmed-timestamp fast path fired (unanimous durable
/// tags in the read quorum) and 2 when it fell back to the write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvOpStats {
    /// Register reads completed through this client (and its clones),
    /// including barrier polls and shard-map reads.
    pub reads: u64,
    /// Total quorum round-trips those reads performed.
    pub read_rounds: u64,
    /// Reads that completed in a single round (fast path / single-round
    /// flavor).
    pub fast_reads: u64,
    /// Register writes completed.
    pub writes: u64,
    /// Total quorum round-trips those writes performed.
    pub write_rounds: u64,
    /// Writes that entered a migration write barrier and found the seal
    /// not yet in place (i.e. actually waited).
    pub barrier_waits: u64,
    /// Barrier polls (old-home seal checks) performed in total; one poll
    /// per barriered write is the protocol's floor.
    pub barrier_polls: u64,
    /// Shard-map refreshes from the config register.
    pub map_refreshes: u64,
    /// Failed node attempts that made an operation retry — `Busy`
    /// re-tries on one node plus failover hops to the next.
    pub retries: u64,
    /// Total microseconds slept in retry backoff (see `kv.backoff_micros`).
    pub backoff_micros: u64,
    /// Reads served from the client's tag-lease cache with **zero**
    /// datagrams (counted into `reads` with 0 rounds). Always 0 unless
    /// [`KvClient::with_lease_cache`] armed the cache.
    pub lease_hits: u64,
    /// Lease-cache lookups that found no live lease and fell through to
    /// the quorum read path.
    pub lease_misses: u64,
    /// Leases dropped before their horizon: the client's own write to
    /// the register, a newer tag observed, or a shard-map epoch change
    /// (which revokes the whole cache).
    pub lease_revocations: u64,
    /// Leases dropped by the cache itself: LRU capacity pressure or a
    /// lapsed horizon discovered at lookup.
    pub lease_evictions: u64,
}

impl KvOpStats {
    /// Mean rounds per read (2.0 = every read paid the write-back,
    /// 1.0 = every read took the fast path; 0.0 with no reads).
    pub fn mean_read_rounds(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.read_rounds as f64 / self.reads as f64
    }

    /// Fraction of reads served by the one-round fast path.
    pub fn fast_read_fraction(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.fast_reads as f64 / self.reads as f64
    }

    /// Fraction of reads served locally by a live tag lease (0 rounds,
    /// 0 datagrams). With leases on over a Zipf-hot read-mostly
    /// workload this dominates, which is what pushes
    /// [`mean_read_rounds`](Self::mean_read_rounds) below 1.0.
    pub fn lease_hit_fraction(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.lease_hits as f64 / self.reads as f64
    }

    /// Mean seal polls per barrier wait (how long barriered writers
    /// actually stalled; 0.0 if nothing ever waited).
    pub fn mean_barrier_polls(&self) -> f64 {
        if self.barrier_waits == 0 {
            return 0.0;
        }
        self.barrier_polls as f64 / self.barrier_waits as f64
    }
}

/// Snapshot of the shared cluster-health memory's operator counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthStats {
    /// Failures recorded (timeouts / downs) since construction.
    pub marks: u64,
    /// Probe operations started for decayed suspects since construction.
    pub probes: u64,
    /// Nodes currently inside their mark cooldown.
    pub suspects: Vec<usize>,
}

/// What a completed [`KvClient::grow`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowReport {
    /// The committed epoch.
    pub epoch: u64,
    /// Shard count before the split.
    pub from_shards: u16,
    /// Shard count after the split.
    pub to_shards: u16,
    /// Split-source shards sealed by this driver (a resumed split may
    /// find some already sealed).
    pub sources_sealed: usize,
    /// Entries copied to a new home register.
    pub entries_moved: usize,
}

/// Why a store operation failed.
#[derive(Debug, Clone)]
pub enum KvError {
    /// The underlying register operation failed at the node serving the
    /// key's shard.
    Register {
        /// The key whose operation failed.
        key: String,
        /// The transport/runtime error.
        source: ClientError,
    },
    /// The encoded entry cannot fit the cluster's transport frame (e.g.
    /// the 64 KB UDP datagram ceiling). Surfaced *before* anything is
    /// sent — the fair-lossy runtime would otherwise retransmit the
    /// untransmittable message until the patience window expired.
    TooLarge {
        /// The key whose entry is oversized.
        key: String,
        /// The wire size the entry would produce.
        size: usize,
        /// The transport's frame limit.
        limit: usize,
    },
    /// A migration write barrier did not observe the source shard's seal
    /// within the bounded wait ([`KvClient::with_barrier_polls`]) — the
    /// migration driver is stalled or gone; run
    /// [`KvClient::finish_split`] to drive it to completion.
    Barrier {
        /// The key whose write was barriered.
        key: String,
        /// The splitting source shard the writer waited on.
        shard: u16,
    },
    /// A resharding request was invalid (e.g. shrinking the table).
    Reshard {
        /// What was wrong.
        message: String,
    },
    /// The client was constructed without any node handles.
    NoNodes,
    /// The staged operation was fenced: a resolver already returned
    /// `NotLanded` for this tag ([`KvClient::resolve`]), so issuing it now
    /// would make a resolved-NotLanded op visible.
    Fenced {
        /// The fenced operation's tag.
        tag: OpTag,
    },
    /// The intent journal has no record of this tag — it was never begun
    /// through this journal, or it was acknowledged and tombstoned.
    UnknownIntent {
        /// The unrecognized tag.
        tag: OpTag,
    },
    /// The client-side intent journal failed; the operation was not
    /// issued (journal writes come first).
    Journal {
        /// The storage failure.
        source: StorageError,
    },
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Register { key, source } => write!(f, "operation on key {key:?}: {source}"),
            KvError::TooLarge { key, size, limit } => write!(
                f,
                "entry for key {key:?} needs a {size}-byte message, over the transport's {limit}-byte frame"
            ),
            KvError::Barrier { key, shard } => write!(
                f,
                "write barrier on key {key:?} never saw shard {shard}'s migration seal"
            ),
            KvError::Reshard { message } => write!(f, "invalid reshard: {message}"),
            KvError::NoNodes => write!(f, "KvClient needs at least one node handle"),
            KvError::Fenced { tag } => write!(
                f,
                "operation {tag} was resolved NotLanded and is fenced from ever issuing"
            ),
            KvError::UnknownIntent { tag } => {
                write!(f, "the intent journal has no record of operation {tag}")
            }
            KvError::Journal { source } => write!(f, "intent journal: {source}"),
        }
    }
}

impl std::error::Error for KvError {}

/// A sharded key-value client over an emulated shared memory.
///
/// Keys route deterministically to shard registers through the cached
/// epoch [`ShardMap`] (clones share the cache); each shard prefers one of
/// the cluster's node handles (`register % nodes`, so shard traffic
/// spreads across the cluster) and fails over to the remaining nodes when
/// its home node is down or unresponsive — any node can serve any
/// register.
/// [`multi_get`](KvClient::multi_get)/[`multi_put`](KvClient::multi_put)
/// run the per-node batches **concurrently** — operations on different
/// shards touch different registers and are independent by locality, so
/// the only serialization kept is the per-node operation order.
///
/// Reads and writes inherit the register emulation's guarantees: with a
/// majority of nodes up, every operation terminates, and per-key histories
/// satisfy the configured flavor's atomicity criterion — across epochs,
/// certified by [`certify_per_key_epochs`](crate::certify_per_key_epochs).
#[derive(Debug, Clone)]
pub struct KvClient {
    nodes: Vec<Client>,
    map: Arc<Mutex<ShardMap>>,
    /// Whether this client family has read the config register at least
    /// once — until then the cache is only the constructor's guess, and
    /// a *write* issued under it could silently land behind another
    /// client's already-committed split (reads self-heal via stamp
    /// mismatches; writes are blind). The first operation syncs.
    synced: Arc<std::sync::atomic::AtomicBool>,
    busy_retries: u32,
    barrier_polls: u32,
    health: Arc<HealthMemory>,
    obs: Arc<ClientObs>,
    /// The client family's trace context, when the observability handle
    /// is enabled: node handles issue every operation under a fresh
    /// [`rmem_types::TraceId`] and the runtime propagates it across the
    /// wire, so the family's ring stitches into the nodes' rings.
    trace: Option<Arc<TraceCtx>>,
    pub(crate) recorder: Option<(OpRecorder, ProcessId)>,
    /// Exactly-once state (intent journal + tag allocator), attached by
    /// [`with_exactly_once`](KvClient::with_exactly_once); clones share
    /// it. `None` = classic at-least-once client, untagged writes.
    pub(crate) intents: Option<Arc<ExactlyOnce>>,
    /// The tag-lease cache, armed by
    /// [`with_lease_cache`](KvClient::with_lease_cache) and shared by
    /// clones. `None` = every read pays at least one quorum round.
    /// Serving hits additionally requires the cluster's flavor to grant
    /// leases ([`rmem_core::Flavor::leases`]) — against an unleased
    /// cluster the cache simply never fills.
    leases: Option<Arc<LeaseCache>>,
}

impl KvClient {
    /// A client over `nodes` (e.g. `LocalCluster::clients()`) with the
    /// given bootstrap router: `router.shards()` becomes the genesis
    /// shard count, superseded as soon as a published shard map is
    /// observed (a data payload's stamp mismatch, [`refresh_map`], or
    /// [`grow`]).
    ///
    /// [`refresh_map`]: KvClient::refresh_map
    /// [`grow`]: KvClient::grow
    ///
    /// # Errors
    ///
    /// Returns [`KvError::NoNodes`] if `nodes` is empty.
    pub fn new(nodes: Vec<Client>, router: ShardRouter) -> Result<Self, KvError> {
        if nodes.is_empty() {
            return Err(KvError::NoNodes);
        }
        let health = Arc::new(HealthMemory::new(nodes.len(), Duration::from_secs(5)));
        Ok(KvClient {
            nodes,
            map: Arc::new(Mutex::new(ShardMap::genesis(router.shards()))),
            synced: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            busy_retries: 32,
            barrier_polls: 512,
            health,
            obs: Arc::new(ClientObs::new(ObsHandle::new())),
            trace: None,
            recorder: None,
            intents: None,
            leases: None,
        }
        .rewire_trace())
    }

    /// Replaces the client family's observability handle (shared with
    /// clones made *after* this call). Benches pass
    /// [`ObsHandle::disabled`] to measure the uninstrumented baseline —
    /// counters still count (they are too cheap to gate), but latency
    /// clocks are skipped, flight-recorder events are dropped at the
    /// door, and operations are not traced.
    pub fn with_obs(mut self, handle: ObsHandle) -> Self {
        self.obs = Arc::new(ClientObs::new(handle));
        self.rewire_trace()
    }

    /// (Re)derives the trace context from the current observability
    /// handle and attaches it to every node handle: enabled handle →
    /// traced family recording into the handle's flight ring; disabled →
    /// untraced (zero wire or ring overhead).
    fn rewire_trace(mut self) -> Self {
        let flight = &self.obs.handle.flight;
        self.trace = flight
            .is_enabled()
            .then(|| Arc::new(TraceCtx::new(flight.clone())));
        self.nodes = self
            .nodes
            .into_iter()
            .map(|n| n.with_trace(self.trace.clone()))
            .collect();
        self
    }

    /// The family id this client's operations are traced under (the
    /// `pid` of its ring in a stitch), if tracing is on.
    pub fn trace_client_id(&self) -> Option<u16> {
        self.trace.as_ref().map(|t| t.client_id())
    }

    /// This family's client-side events as a stitcher input: combine with
    /// the cluster's node dumps (`LocalCluster::ring_dumps`) and hand to
    /// [`rmem_obs::trace::stitch`]. `None` when tracing is off.
    pub fn trace_ring_dump(&self) -> Option<rmem_obs::trace::RingDump> {
        self.trace
            .as_ref()
            .map(|t| rmem_obs::trace::RingDump::client(t.client_id(), t.ring().dump()))
    }

    /// Arms the client family's tag-lease cache: reads whose fast-path
    /// quorum attached a lease grant are cached, and repeated reads of
    /// the same register are served locally — zero datagrams, zero
    /// quorum rounds — until the lease's horizon passes, the client
    /// writes the register, a newer tag is observed, or the shard map
    /// changes epoch. At most `capacity` leases stay resident
    /// (least-recently-served eviction), so only the hot keys occupy
    /// client memory.
    ///
    /// Opt-in, and inert against a cluster whose flavor does not grant
    /// leases (`Flavor::with_lease`): the cache never fills, every read
    /// pays its normal rounds.
    ///
    /// **Freshness invariant**: a leased read never returns a value
    /// older than any value returned after a completed write — the
    /// granting replicas fence newer writes behind the granted horizon
    /// (quorum intersection does the rest), and the client's horizon
    /// clock starts at read *submission*, strictly undershooting every
    /// replica's fence.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_lease_cache(mut self, capacity: usize) -> Self {
        self.leases = Some(Arc::new(LeaseCache::new(capacity)));
        self
    }

    /// Replaces the number of retries on `Busy` rejections (another client
    /// racing an operation through the same node; default 32).
    pub fn with_busy_retries(mut self, busy_retries: u32) -> Self {
        self.busy_retries = busy_retries;
        self
    }

    /// Replaces the bounded-wait cap of the migration write barrier
    /// (default 512 seal polls with escalating backoff): a barriered
    /// write that exhausts the cap fails with [`KvError::Barrier`]
    /// instead of blocking forever.
    pub fn with_barrier_polls(mut self, barrier_polls: u32) -> Self {
        assert!(barrier_polls > 0, "the barrier needs at least one poll");
        self.barrier_polls = barrier_polls;
        self
    }

    /// Replaces each node handle's patience window (default 10 s): how
    /// long one node may sit on an operation before failover moves on.
    pub fn with_op_timeout(mut self, timeout: Duration) -> Self {
        self.nodes = self
            .nodes
            .into_iter()
            .map(|n| n.with_timeout(timeout))
            .collect();
        self
    }

    /// Replaces the cluster-health mark cooldown (default 5 s): how long a
    /// node that timed out is deprioritized before failover tries it first
    /// again. Resets the marks.
    pub fn with_health_cooldown(mut self, cooldown: Duration) -> Self {
        self.health = Arc::new(HealthMemory::new(self.nodes.len(), cooldown));
        self
    }

    /// Attaches a history recorder: every register operation this client
    /// performs is recorded under a fresh history process id. Use
    /// [`recorded_clone`](KvClient::recorded_clone) to hand each
    /// concurrent thread its own sequential process.
    pub fn with_recorder(mut self, recorder: OpRecorder) -> Self {
        let pid = recorder.assign_pid();
        self.recorder = Some((recorder, pid));
        self
    }

    /// A clone recording under its own fresh history process id (same
    /// shared history). Clones made with plain `clone()` share the
    /// original's id and must not race it on one register.
    ///
    /// # Panics
    ///
    /// Panics if no recorder is attached.
    pub fn recorded_clone(&self) -> Self {
        let (recorder, _) = self
            .recorder
            .as_ref()
            .expect("recorded_clone needs with_recorder first");
        let mut clone = self.clone();
        clone.recorder = Some((recorder.clone(), recorder.assign_pid()));
        clone
    }

    /// The shared cluster-health memory (clones of this client observe and
    /// update the same marks).
    pub fn health(&self) -> &HealthMemory {
        &self.health
    }

    /// Operator counters of the shared health memory: total marks, total
    /// probes issued for decayed suspects, and the current suspect set.
    pub fn health_stats(&self) -> HealthStats {
        HealthStats {
            marks: self.health.marks_total(),
            probes: self.health.probes_total(),
            suspects: self.health.suspects(),
        }
    }

    /// Per-operation quorum-round statistics (shared with clones). Reads
    /// the `kv.*` counters of this client family's metrics registry.
    pub fn stats(&self) -> KvOpStats {
        KvOpStats {
            reads: self.obs.reads.get(),
            read_rounds: self.obs.read_rounds.get(),
            fast_reads: self.obs.fast_reads.get(),
            writes: self.obs.writes.get(),
            write_rounds: self.obs.write_rounds.get(),
            barrier_waits: self.obs.barrier_waits.get(),
            barrier_polls: self.obs.barrier_polls.get(),
            map_refreshes: self.obs.map_refreshes.get(),
            retries: self.obs.retries.get(),
            backoff_micros: self.obs.backoff_micros.get(),
            lease_hits: self.obs.lease_hits.get(),
            lease_misses: self.obs.lease_misses.get(),
            lease_revocations: self.obs.lease_revocations.get(),
            lease_evictions: self.obs.lease_evictions.get(),
        }
    }

    /// A snapshot of the client family's metrics registry: the `kv.*`
    /// counters behind [`stats`](Self::stats) plus the wall-clock
    /// `kv.get_micros` / `kv.put_micros` latency histograms (empty when
    /// the handle is disabled or no wall-clock op has run).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.obs.handle.metrics.snapshot()
    }

    /// The metrics registry shared by this client family (for layers
    /// stacked on top — e.g. the batching scheduler — to register their
    /// own instruments into the same snapshot).
    pub fn metrics_registry(&self) -> &rmem_obs::Registry {
        &self.obs.handle.metrics
    }

    /// The client-side flight recorder: epoch refreshes, barrier waits
    /// and observed migration seals, in event order.
    pub fn flight_recorder(&self) -> Arc<FlightRecorder> {
        self.obs.handle.flight.clone()
    }

    fn record_read(&self, rounds: u32) {
        self.obs.reads.inc();
        self.obs.read_rounds.add(u64::from(rounds));
        if rounds <= 1 {
            self.obs.fast_reads.inc();
        }
    }

    fn record_write(&self, rounds: u32) {
        self.obs.writes.inc();
        self.obs.write_rounds.add(u64::from(rounds));
    }

    /// Serves `reg` from the lease cache if a live lease covers it under
    /// `map`. A hit is a complete zero-round, zero-datagram read and is
    /// counted into the read stats; during a migration the cache is
    /// bypassed entirely (the split read protocol owns routing).
    fn lease_hit(&self, reg: RegisterId, map: &ShardMap) -> Option<Value> {
        let cache = self.leases.as_deref()?;
        if map.is_migrating() {
            return None;
        }
        match cache.lookup(reg, map.stamp(), Instant::now()) {
            Lookup::Hit(payload) => {
                self.obs.lease_hits.inc();
                self.record_read(0);
                self.obs.handle.flight.record(
                    FlightEvent::new(EventKind::LeaseHit)
                        .with_register(reg.0)
                        .with_epoch(map.epoch as u32),
                );
                Some(payload)
            }
            Lookup::Expired => {
                self.obs.lease_evictions.inc();
                self.obs.lease_misses.inc();
                None
            }
            Lookup::Miss => {
                self.obs.lease_misses.inc();
                None
            }
        }
    }

    /// Installs a granted lease, with the horizon clock anchored at `t0`
    /// — the instant the read was *submitted*, so the client-side expiry
    /// strictly undershoots every granting replica's write fence. Fills
    /// are skipped during migrations: a mid-split grant would be stamped
    /// by a map that is about to change.
    fn lease_fill(
        &self,
        reg: RegisterId,
        grant: LeaseGrant,
        payload: Value,
        map: &ShardMap,
        t0: Instant,
    ) {
        let Some(cache) = self.leases.as_deref() else {
            return;
        };
        if map.is_migrating() {
            return;
        }
        let horizon = t0 + Duration::from_micros(u64::from(grant.micros));
        let evicted = cache.fill(reg, grant.ts, payload, map.stamp(), horizon);
        self.obs.lease_evictions.add(evicted as u64);
    }

    /// Revokes `reg`'s lease, called **before** any write this client
    /// issues to the register — the cached value is about to be stale.
    fn lease_revoke(&self, reg: RegisterId) {
        let Some(cache) = self.leases.as_deref() else {
            return;
        };
        if cache.invalidate(reg) {
            self.obs.lease_revocations.inc();
            self.obs.handle.flight.record(
                FlightEvent::new(EventKind::LeaseRevoke)
                    .with_register(reg.0)
                    .with_aux(1),
            );
        }
    }

    /// Bounded exponential backoff with jitter before retry `attempt`
    /// (1-based): base 50 µs doubling to a 2 ms ceiling, the actual sleep
    /// drawn uniformly from `[cap/2, cap]`. The jitter is what prevents
    /// livelock under contention — two clients Busy-bouncing on one
    /// register with deterministic sleeps would stay phase-locked and
    /// collide on every retry.
    fn backoff(&self, attempt: u32) {
        use rand::{Rng, SeedableRng};
        // Each thread jitters from its own stream (seeded off a global
        // counter): contending threads decorrelate instead of sharing a
        // sequence.
        static NEXT_SEED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        thread_local! {
            static JITTER: std::cell::RefCell<rand::rngs::StdRng> =
                std::cell::RefCell::new(rand::rngs::StdRng::seed_from_u64(
                    NEXT_SEED
                        .fetch_add(1, Ordering::Relaxed)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ));
        }
        let cap = (50u64 << attempt.min(6).saturating_sub(1)).min(2_000);
        let sleep = JITTER.with(|rng| rng.borrow_mut().gen_range(cap / 2..=cap));
        self.obs.backoff_micros.add(sleep);
        std::thread::sleep(Duration::from_micros(sleep));
    }

    /// The current cached shard map (shared with clones).
    pub fn shard_map(&self) -> ShardMap {
        *self.map.lock().expect("shard map lock")
    }

    /// The current epoch (of the cached map).
    pub fn epoch(&self) -> u64 {
        self.shard_map().epoch
    }

    /// A pure router over the cached map's *current* shard count. Note
    /// that it routes in shard space (register = shard), not the epoch
    /// layer's register space — use it for shard counts and key
    /// derivation, not raw register addressing.
    pub fn router(&self) -> ShardRouter {
        ShardRouter::new(self.shard_map().shards)
    }

    /// Number of node handles.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The largest *register value* this client can write, if any node's
    /// transport is bounded (the minimum across nodes — a value must fit
    /// every replica's frame, not just the contacted node's, because the
    /// protocol forwards it to all of them).
    pub fn max_value_len(&self) -> Option<usize> {
        self.nodes.iter().filter_map(Client::max_value_len).min()
    }

    /// Adopts `new` into the shared cache if it advances the current map
    /// (newer epoch, or same epoch moving from migrating to committed).
    /// An adoption revokes **every** lease: no lease survives a
    /// shard-map change — the keys behind a register may differ under
    /// the new routing, and migration copies rewrite registers outside
    /// the leased read path.
    fn adopt(&self, new: &ShardMap) {
        let changed = {
            let mut cur = self.map.lock().expect("shard map lock");
            if new.epoch > cur.epoch
                || (new.epoch == cur.epoch && cur.is_migrating() && !new.is_migrating())
            {
                *cur = *new;
                true
            } else {
                false
            }
        };
        if changed {
            if let Some(cache) = &self.leases {
                let dropped = cache.clear() as u64;
                if dropped > 0 {
                    self.obs.lease_revocations.add(dropped);
                    self.obs
                        .handle
                        .flight
                        .record(FlightEvent::new(EventKind::LeaseRevoke).with_aux(dropped));
                }
            }
        }
    }

    /// Re-reads the authoritative shard map from the config register and
    /// adopts it if it advances the cache. Returns whether the cache
    /// changed. A ⊥ config register (no map ever published) leaves the
    /// bootstrap map in force.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::Register`] if the config register cannot be
    /// read.
    pub fn refresh_map(&self) -> Result<bool, KvError> {
        self.obs.map_refreshes.inc();
        let payload = self.reg_read(CONFIG_REGISTER, "shard-map")?;
        self.synced.store(true, Ordering::Relaxed);
        let Some(published) = ShardMap::decode(&payload) else {
            return Ok(false);
        };
        let before = self.shard_map();
        self.adopt(&published);
        let changed = self.shard_map() != before;
        if changed {
            self.obs.handle.flight.record(
                FlightEvent::new(EventKind::EpochRefresh)
                    .with_epoch(published.epoch as u32)
                    .with_aux(u64::from(published.shards)),
            );
        }
        Ok(changed)
    }

    /// One-time bootstrap sync, run implicitly by the first operation of
    /// a client family (clones share it): reads the config register and
    /// adopts any published shard map, so a client joining a store that
    /// was resharded before it existed never writes under its
    /// constructor's guess. No-op once any config-register read has
    /// happened (including [`refresh_map`](KvClient::refresh_map) and
    /// [`grow`](KvClient::grow)).
    ///
    /// # Errors
    ///
    /// Returns [`KvError::Register`] if the config register cannot be
    /// read.
    pub fn sync_map(&self) -> Result<(), KvError> {
        if self.synced.load(Ordering::Relaxed) {
            return Ok(());
        }
        let (payload, _) = self.with_failover("shard-map", CONFIG_REGISTER, |node| {
            node.read_at_counted(CONFIG_REGISTER)
        })?;
        if let Some(published) = ShardMap::decode(&payload) {
            self.adopt(&published);
        }
        self.synced.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Runs one register operation for `label`, preferring the register's
    /// home node but failing over to the other nodes when it is
    /// unreachable: every node can serve every register, so as long as a
    /// majority is up the operation terminates through *some* handle.
    /// `Busy` rejections (another client racing this node) retry with
    /// backoff on the same node first, then fail over like any other
    /// unavailability — register operations are idempotent, so a retry
    /// after an ambiguous timeout is safe.
    ///
    /// Nodes the shared [`HealthMemory`] marks as recently failed are
    /// tried *last* (never skipped), and a timeout/down outcome marks the
    /// node — so across the concurrent threads of a multi-key batch, a
    /// wedged node costs one patience window, not one per key. A node
    /// whose mark has decayed must first serve one **probe** operation
    /// before rejoining full rotation: exactly one caller wins the probe
    /// (and routes its operation through the node, first), everyone else
    /// keeps trying it last until the probe clears it.
    /// [`ClientError::TooLarge`] short-circuits without marking: the value
    /// cannot fit *any* node's frame, so failing over would only repeat
    /// the refusal.
    fn with_failover<T>(
        &self,
        key: &str,
        reg: RegisterId,
        op: impl FnMut(&Client) -> Result<T, ClientError>,
    ) -> Result<T, KvError> {
        self.with_failover_abortable(key, reg, op, None)
            .map(|v| v.expect("unabortable failover cannot abort"))
    }

    /// [`with_failover`](Self::with_failover) with an abort guard checked
    /// before every node attempt; `Ok(None)` means the guard fired and
    /// the operation was **not** issued to any further node.
    ///
    /// The epoch-aware write path uses this to keep a write from landing
    /// *late*: a node attempt's effect lands within moments of its start,
    /// so checking "did the shard map move?" right before each attempt
    /// bounds how stale a landed write can be — without it, a write
    /// stalled behind a dead node's patience window could surface on a
    /// source register long after the shard was sealed.
    fn with_failover_abortable<T>(
        &self,
        key: &str,
        reg: RegisterId,
        mut op: impl FnMut(&Client) -> Result<T, ClientError>,
        abort: Option<&dyn Fn() -> bool>,
    ) -> Result<Option<T>, KvError> {
        let home = reg.0 as usize % self.nodes.len();
        let rotation = (0..self.nodes.len()).map(|o| (home + o) % self.nodes.len());
        let mut fresh = Vec::new();
        let mut suspect = Vec::new();
        let mut probing: Option<usize> = None;
        for i in rotation {
            match self.health.gate(i) {
                NodeGate::Fresh => fresh.push(i),
                NodeGate::Suspect => suspect.push(i),
                NodeGate::NeedsProbe => {
                    if probing.is_none() && self.health.try_begin_probe(i) {
                        // The probe winner's operation *is* the probe: the
                        // node goes first so this operation definitely
                        // exercises it (success clears, failure re-marks).
                        probing = Some(i);
                    } else {
                        suspect.push(i);
                    }
                }
            }
        }
        let order = probing.into_iter().chain(fresh).chain(suspect);
        let mut last_err = None;
        for i in order {
            let node = &self.nodes[i];
            let mut attempts = 0;
            loop {
                // Checked before *every* attempt, busy retries included: a
                // Busy storm (e.g. barrier pollers hammering a splitting
                // register) must not delay an issue past the guard — the
                // guarded write's contract is that its effect lands within
                // one clean attempt of a passing check.
                if abort.is_some_and(|guard| guard()) {
                    return Ok(None);
                }
                match op(node) {
                    Err(ClientError::Busy) if attempts < self.busy_retries => {
                        attempts += 1;
                        self.obs.retries.inc();
                        self.backoff(attempts);
                    }
                    Err(ClientError::TooLarge { size, limit }) => {
                        if probing == Some(i) {
                            // The probe never reached the node (client-side
                            // refusal): hand the debt back.
                            self.health.reopen_probe(i);
                        }
                        return Err(KvError::TooLarge {
                            key: key.to_string(),
                            size,
                            limit,
                        });
                    }
                    // This node is gone, wedged, or permanently saturated
                    // (Busy retries exhausted); the next one serves the
                    // same register.
                    Err(source) => {
                        self.obs.retries.inc();
                        if matches!(source, ClientError::TimedOut | ClientError::ProcessDown) {
                            self.health.mark(i);
                        } else if probing == Some(i) {
                            // Inconclusive probe (e.g. Busy exhaustion):
                            // the node still owes one.
                            self.health.reopen_probe(i);
                        }
                        last_err = Some(source);
                        break;
                    }
                    Ok(v) => {
                        self.health.clear(i);
                        return Ok(Some(v));
                    }
                }
            }
        }
        Err(KvError::Register {
            key: key.to_string(),
            source: last_err.expect("at least one node was tried"),
        })
    }

    /// Records a store-operation invocation (one per `put`/`get`, however
    /// many register rounds serve it).
    fn rec_invoke(&self, op: Op) -> Option<rmem_types::OpId> {
        self.recorder.as_ref().map(|(r, pid)| r.invoke(*pid, op))
    }

    /// Records an outcome against the pending invocation `inv`: replies
    /// for definite outcomes, the crash/recovery idiom for ambiguous
    /// ones.
    pub(crate) fn rec_outcome(
        &self,
        inv: Option<rmem_types::OpId>,
        outcome: Result<OpResult, &KvError>,
    ) {
        let Some((recorder, pid)) = &self.recorder else {
            return;
        };
        let Some(inv) = inv else {
            return;
        };
        match outcome {
            Ok(result) => recorder.reply(inv, result),
            // Refused before/without taking effect: the checkers ignore
            // rejected invocations.
            Err(KvError::TooLarge { .. })
            | Err(KvError::Register {
                source: ClientError::Busy,
                ..
            }) => recorder.reply(inv, OpResult::Rejected(rmem_types::RejectReason::Busy)),
            // Ambiguous (may or may not have applied): leave the op
            // pending and record the model's crash/recovery idiom.
            Err(_) => recorder.abandon(*pid),
        }
    }

    /// One failover-protected register read. **Unrecorded** — recording
    /// happens at the store-operation level (see [`rec_invoke`]), so
    /// infrastructure reads (barrier polls, map refreshes) and the
    /// several rounds of one logical `get` never masquerade as distinct
    /// store operations.
    ///
    /// [`rec_invoke`]: KvClient::rec_invoke
    fn reg_read(&self, reg: RegisterId, label: &str) -> Result<Value, KvError> {
        let (payload, rounds) = self.with_failover(label, reg, |node| node.read_at_counted(reg))?;
        self.record_read(rounds);
        Ok(payload)
    }

    /// [`reg_read`](Self::reg_read) that additionally harvests a lease
    /// grant into the cache when one rides the read's completion. `t0`
    /// is stamped inside the per-attempt closure, so the horizon anchors
    /// at the *successful* attempt's submission instant — never at an
    /// earlier failed node's.
    fn reg_read_leasing(
        &self,
        reg: RegisterId,
        label: &str,
        map: &ShardMap,
    ) -> Result<Value, KvError> {
        if self.leases.is_none() {
            return self.reg_read(reg, label);
        }
        let (payload, rounds, grant, t0) = self.with_failover(label, reg, |node| {
            let t0 = Instant::now();
            node.read_at_leased(reg).map(|(v, r, g)| (v, r, g, t0))
        })?;
        self.record_read(rounds);
        // With no grant, whatever lease the cache holds for this
        // register is not refreshable — the quorum stopped attesting
        // it. Leave it to expire on its own horizon (still safe: the
        // fence outlives it), no forced revocation.
        if let Some(grant) = grant {
            self.lease_fill(reg, grant, payload.clone(), map, t0);
        }
        Ok(payload)
    }

    /// One failover-protected register write. **Unrecorded** (see
    /// [`reg_read`](KvClient::reg_read)); notably the migration *data*
    /// writes — the copy to the new home and the seal of the old one —
    /// must never be recorded: at the store level they relocate a value
    /// rather than write one, and recording them would let a buggy
    /// (non-tag-monotonic) copy read as a legitimate write, hiding
    /// exactly the lost updates the cross-epoch certifier exists to
    /// catch.
    fn reg_write(&self, reg: RegisterId, payload: Value, label: &str) -> Result<(), KvError> {
        self.lease_revoke(reg);
        let rounds = self.with_failover(label, reg, |node| {
            node.write_at_counted(reg, payload.clone())
        })?;
        self.record_write(rounds);
        Ok(())
    }

    /// One register write that aborts — returns `Ok(false)`, nothing
    /// issued to any further node — as soon as the shard map's epoch
    /// moves past `epoch`. The epoch-aware `put` uses this so a write
    /// stalled in failover cannot land on a source register long after
    /// the shard was sealed.
    fn reg_write_guarded(
        &self,
        reg: RegisterId,
        payload: Value,
        label: &str,
        epoch: u64,
    ) -> Result<bool, KvError> {
        self.lease_revoke(reg);
        let guard = || self.shard_map().epoch != epoch;
        match self.with_failover_abortable(
            label,
            reg,
            |node| node.write_at_counted(reg, payload.clone()),
            Some(&guard),
        )? {
            Some(rounds) => {
                self.record_write(rounds);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// One failover-protected register **write** of an already-encoded
    /// payload (single entry or bundle), recorded as one operation. The
    /// building block of the batching layer (`rmem-batch`); `label` names
    /// the operation in errors (a key, or a `"batch:<shard>"` tag). The
    /// payload's epoch stamp is the caller's responsibility
    /// ([`ShardMap::stamp`]).
    ///
    /// # Errors
    ///
    /// As for [`put`](Self::put).
    pub fn raw_write(&self, reg: RegisterId, payload: Value, label: &str) -> Result<(), KvError> {
        self.sync_map()?;
        let inv = self.rec_invoke(Op::WriteAt(reg, payload.clone()));
        match self.reg_write(reg, payload, label) {
            Ok(()) => {
                self.rec_outcome(inv, Ok(OpResult::Written));
                Ok(())
            }
            Err(e) => {
                self.rec_outcome(inv, Err(&e));
                Err(e)
            }
        }
    }

    /// As [`raw_write`](Self::raw_write), but epoch-guarded: the write
    /// aborts — `Ok(false)`, nothing issued, nothing landed — as soon as
    /// the shard map's epoch moves past `epoch`, so a bundle formed under
    /// one epoch can never surface behind another epoch's migration seal.
    /// The batching layer re-routes an aborted bundle's entries through
    /// the per-key path.
    ///
    /// # Errors
    ///
    /// As for [`put`](Self::put).
    pub fn raw_write_guarded(
        &self,
        reg: RegisterId,
        payload: Value,
        label: &str,
        epoch: u64,
    ) -> Result<bool, KvError> {
        self.sync_map()?;
        let inv = self.rec_invoke(Op::WriteAt(reg, payload.clone()));
        match self.reg_write_guarded(reg, payload, label, epoch) {
            Ok(true) => {
                self.rec_outcome(inv, Ok(OpResult::Written));
                Ok(true)
            }
            Ok(false) => {
                // Never issued: a rejected invocation for the recorder.
                self.rec_outcome(inv, Ok(OpResult::Rejected(rmem_types::RejectReason::Busy)));
                Ok(false)
            }
            Err(e) => {
                self.rec_outcome(inv, Err(&e));
                Err(e)
            }
        }
    }

    /// One failover-protected register **read** returning the raw payload
    /// (⊥, a single entry, a bundle, or a migration seal), recorded as
    /// one operation. The building block of the batching layer; see
    /// [`raw_write`](Self::raw_write).
    ///
    /// # Errors
    ///
    /// As for [`get`](Self::get).
    pub fn raw_read(&self, reg: RegisterId, label: &str) -> Result<Value, KvError> {
        self.sync_map()?;
        let inv = self.rec_invoke(Op::ReadAt(reg));
        match self.reg_read(reg, label) {
            Ok(payload) => {
                self.rec_outcome(inv, Ok(OpResult::ReadValue(payload.clone())));
                Ok(payload)
            }
            Err(e) => {
                self.rec_outcome(inv, Err(&e));
                Err(e)
            }
        }
    }

    /// Waits for `old_shard`'s migration seal (bounded): the write
    /// barrier of a key owned by a splitting shard. Returns `Ok(true)`
    /// when the seal was observed under `map`'s epoch, `Ok(false)` when
    /// the shard map advanced past `map` mid-wait (the caller should
    /// re-route).
    fn barrier_wait(&self, key: &str, old_shard: u16, map: &ShardMap) -> Result<bool, KvError> {
        let reg = data_register(old_shard);
        let mut waited = false;
        for poll in 0..self.barrier_polls {
            // The shared cache moves the moment any clone observes a
            // newer map (e.g. the migration driver committing): always
            // re-route rather than poll for a seal that may already be
            // superseded.
            if self.shard_map() != *map {
                return Ok(false);
            }
            self.obs.barrier_polls.inc();
            let payload = self.reg_read(reg, key)?;
            if map.seals_source(&payload, old_shard) {
                if waited {
                    // How long the writer actually stalled, in seal polls.
                    self.obs.handle.flight.record(
                        FlightEvent::new(EventKind::BarrierWait)
                            .with_register(reg.0)
                            .with_epoch(map.epoch as u32)
                            .with_aux(u64::from(poll)),
                    );
                }
                self.obs.handle.flight.record(
                    FlightEvent::new(EventKind::SealObserved)
                        .with_register(reg.0)
                        .with_epoch(map.epoch as u32),
                );
                return Ok(true);
            }
            if !waited {
                waited = true;
                self.obs.barrier_waits.inc();
            }
            // Escalating backoff, capped: the migrator seals a shard in a
            // handful of register rounds, so the common case is one short
            // sleep. Every eighth poll re-reads the authoritative map in
            // case this client is the only one still watching.
            if poll % 8 == 7 {
                let _ = self.refresh_map()?;
            }
            let backoff = (100u64 << poll.min(5)).min(2_000);
            std::thread::sleep(Duration::from_micros(backoff));
        }
        // Exhausted without a seal: the stall itself is worth a trace.
        self.obs.handle.flight.record(
            FlightEvent::new(EventKind::BarrierWait)
                .with_register(reg.0)
                .with_epoch(map.epoch as u32)
                .with_aux(u64::from(self.barrier_polls)),
        );
        Err(KvError::Barrier {
            key: key.to_string(),
            shard: old_shard,
        })
    }

    /// Stores `value` under `key`, blocking until the write is durable at
    /// a majority. During a live split of the key's source shard, the
    /// write first waits on the migration **write barrier** (see the
    /// module docs; bounded by [`with_barrier_polls`]).
    ///
    /// The encoded entry (`3 + key + value` bytes plus protocol framing)
    /// must fit the cluster's transport frame: UDP transports cap
    /// datagrams at 64 KB, and an oversized entry fails fast with
    /// [`KvError::TooLarge`] before anything is sent — use a TCP-backed
    /// cluster for larger values.
    ///
    /// [`with_barrier_polls`]: KvClient::with_barrier_polls
    ///
    /// # Errors
    ///
    /// Returns [`KvError::TooLarge`] for an entry over the transport
    /// frame, [`KvError::Barrier`] if a migration barrier never cleared,
    /// [`KvError::Register`] if the register operation fails.
    pub fn put(&self, key: &str, value: impl Into<Bytes>) -> Result<(), KvError> {
        if self.intents.is_some() {
            // Exactly-once client: journal the intent durably, write under
            // a client-assigned op tag, tombstone on ack. (The journal
            // layer brackets the latency clock itself.)
            let clock = self.obs.op_clock();
            let outcome = self.put_exactly_once(key, value.into());
            if let Some(started) = clock {
                self.obs
                    .put_micros
                    .record(started.elapsed().as_micros() as u64);
            }
            return outcome;
        }
        self.put_settled(key, value.into(), &mut None)
    }

    /// The blocking put path with an externally-owned invocation slot:
    /// brackets the wall-clock latency histogram around
    /// [`put_inner`](Self::put_inner). The pipelined multi-key driver
    /// routes a submission that errored (node down, `Busy`, epoch moved)
    /// through here so the operation keeps its already-recorded
    /// invocation.
    fn put_settled(
        &self,
        key: &str,
        value: Bytes,
        inv: &mut Option<rmem_types::OpId>,
    ) -> Result<(), KvError> {
        let clock = self.obs.op_clock();
        let outcome = self.put_inner(key, value, None, inv);
        if let Some(started) = clock {
            self.obs
                .put_micros
                .record(started.elapsed().as_micros() as u64);
        }
        outcome
    }

    /// [`put`](Self::put)'s engine (split out so the wall-clock latency
    /// histogram brackets the whole operation, retries included). With
    /// `Some(tag)` every landed payload carries the op-id frame — retries
    /// across epoch re-routes re-encode under the *same* tag, which is
    /// what lets the exactly-once certifier collapse them into one
    /// logical write. The invocation slot is caller-owned so the
    /// pipelined driver can hand over an operation it already invoked
    /// (and part-attempted) without opening a second recorded op.
    pub(crate) fn put_inner(
        &self,
        key: &str,
        value: Bytes,
        tag: Option<OpTag>,
        inv: &mut Option<rmem_types::OpId>,
    ) -> Result<(), KvError> {
        self.sync_map()?;
        // Recorded as ONE store operation however many rounds serve it:
        // the invocation opens just before the first write attempt, the
        // reply lands after the last — so an epoch-repair re-write (below)
        // stays inside the operation's interval.
        for _ in 0..MAP_RETRIES {
            let map = self.shard_map();
            if map.is_migrating() {
                let old_shard = map.old_shard_of(key);
                if map.is_split_source(old_shard) && !self.barrier_wait(key, old_shard, &map)? {
                    continue; // the map advanced mid-wait; re-route
                }
            }
            let reg = map.register_for(key);
            let payload = match tag {
                Some(tag) => codec::encode_entry_tagged(key, &value, map.stamp(), tag),
                None => codec::encode_entry(key, &value, map.stamp()),
            };
            if inv.is_none() {
                *inv = self.rec_invoke(Op::WriteAt(reg, payload.clone()));
            }
            // The guard makes this all-or-nothing: either the write
            // landed under `map`'s epoch (within one clean attempt of a
            // passing epoch check — it cannot surface late behind a
            // seal), or nothing was issued and we re-route under the
            // fresh map. Exactly one landing either way: a re-write
            // after a successful landing would let pre-seal observers
            // and post-seal observers bracket another client's write,
            // which no single store operation can explain.
            match self.reg_write_guarded(reg, payload, key, map.epoch) {
                Ok(true) => {
                    self.rec_outcome(inv.take(), Ok(OpResult::Written));
                    return Ok(());
                }
                Ok(false) => continue, // epoch moved before landing; re-route
                Err(e) => {
                    self.rec_outcome(inv.take(), Err(&e));
                    return Err(e);
                }
            }
        }
        // Epochs kept moving for every retry (pathological churn): stop
        // chasing and write unguarded under the freshest map we have.
        let map = self.shard_map();
        let payload = match tag {
            Some(tag) => codec::encode_entry_tagged(key, &value, map.stamp(), tag),
            None => codec::encode_entry(key, &value, map.stamp()),
        };
        let reg = map.register_for(key);
        if inv.is_none() {
            *inv = self.rec_invoke(Op::WriteAt(reg, payload.clone()));
        }
        match self.reg_write(reg, payload, key) {
            Ok(()) => {
                self.rec_outcome(inv.take(), Ok(OpResult::Written));
                Ok(())
            }
            Err(e) => {
                self.rec_outcome(inv.take(), Err(&e));
                Err(e)
            }
        }
    }

    /// Reads the value stored under `key` (`None` if absent — never
    /// written, or displaced by a shard-colliding key). During a live
    /// split of the key's source shard the read falls back
    /// **old-home-then-new-home**; a payload whose epoch stamp does not
    /// match the cached map triggers a map refresh and a re-routed retry.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::Register`] if a register operation fails.
    pub fn get(&self, key: &str) -> Result<Option<Bytes>, KvError> {
        self.get_settled(key, &mut None)
    }

    /// The blocking get path with an externally-owned invocation slot
    /// (see [`put_settled`](Self::put_settled) for why the pipelined
    /// driver needs one): records ONE store operation — the invocation
    /// opens before the first data read, the reply carries the payload
    /// that actually answered (fallback hops and refresh-retries
    /// included).
    fn get_settled(
        &self,
        key: &str,
        inv: &mut Option<rmem_types::OpId>,
    ) -> Result<Option<Bytes>, KvError> {
        self.sync_map()?;
        let clock = self.obs.op_clock();
        let outcome = self.get_inner(key, inv);
        if let Some(started) = clock {
            self.obs
                .get_micros
                .record(started.elapsed().as_micros() as u64);
        }
        match &outcome {
            Ok((payload, _)) => {
                self.rec_outcome(inv.take(), Ok(OpResult::ReadValue(payload.clone())));
            }
            Err(e) => self.rec_outcome(inv.take(), Err(e)),
        }
        outcome.map(|(_, value)| value)
    }

    /// [`get`](Self::get)'s engine: returns the answering payload (for
    /// the recorder) alongside the extracted value.
    pub(crate) fn get_inner(
        &self,
        key: &str,
        inv: &mut Option<rmem_types::OpId>,
    ) -> Result<(Value, Option<Bytes>), KvError> {
        let mut last = Value::bottom();
        for _ in 0..MAP_RETRIES {
            let map = self.shard_map();
            if map.is_migrating() {
                let old_shard = map.old_shard_of(key);
                if map.is_split_source(old_shard) {
                    return self.get_during_split(key, &map, old_shard, inv);
                }
            }
            let reg = map.register_for(key);
            if let Some(payload) = self.lease_hit(reg, &map) {
                // A live lease answers locally: zero datagrams. The
                // read is still a recorded store operation — the lease
                // fence is exactly what makes it certifiable.
                if inv.is_none() {
                    *inv = self.rec_invoke(Op::ReadAt(reg));
                }
                let value = codec::value_for_key(&payload, key);
                return Ok((payload, value));
            }
            if inv.is_none() {
                *inv = self.rec_invoke(Op::ReadAt(reg));
            }
            let payload = self.reg_read_leasing(reg, key, &map)?;
            if payload.is_bottom() {
                return Ok((payload, None));
            }
            if let Some(value) = codec::value_for_key(&payload, key) {
                return Ok((payload, Some(value)));
            }
            // Key absent: under the expected stamp that is a plain miss
            // (collision displacement); under a foreign stamp our map may
            // be stale — refresh and re-route.
            if codec::payload_epoch(&payload) == Some(map.stamp()) || !self.refresh_map()? {
                return Ok((payload, None));
            }
            last = payload;
        }
        Ok((last, None))
    }

    /// The migration read path for a key whose source shard is splitting:
    /// the unsealed old home is authoritative (writers are barriered);
    /// a sealed old home forwards to the new routing.
    fn get_during_split(
        &self,
        key: &str,
        map: &ShardMap,
        old_shard: u16,
        inv: &mut Option<rmem_types::OpId>,
    ) -> Result<(Value, Option<Bytes>), KvError> {
        let old_reg = data_register(old_shard);
        if inv.is_none() {
            *inv = self.rec_invoke(Op::ReadAt(old_reg));
        }
        let payload = self.reg_read(old_reg, key)?;
        if map.seals_source(&payload, old_shard) {
            // Sealed (or already rewritten post-seal): the new routing is
            // live for this shard.
            if let Some(value) = codec::value_for_key(&payload, key) {
                return Ok((payload, Some(value)));
            }
            let new_reg = map.register_for(key);
            if new_reg == old_reg {
                return Ok((payload, None));
            }
            let forwarded = self.reg_read(new_reg, key)?;
            let value = codec::value_for_key(&forwarded, key);
            return Ok((forwarded, value));
        }
        let value = codec::value_for_key(&payload, key);
        Ok((payload, value))
    }

    // -- Live shard splits -----------------------------------------------

    /// Publishes `map` to the config register and adopts it locally.
    fn publish_map(&self, map: &ShardMap) -> Result<(), KvError> {
        self.reg_write(CONFIG_REGISTER, map.encode(), "shard-map")?;
        self.adopt(map);
        Ok(())
    }

    /// Migrates one split-source shard: reads the old home, copies every
    /// moved entry to its new home (tag-monotonically — the barrier keeps
    /// the old home frozen under us), then seals the old home under the
    /// new epoch. Idempotent: an already-sealed source is skipped, and
    /// re-running the copy rewrites the same values.
    fn migrate_source(&self, source: u16, map: &ShardMap) -> Result<(usize, bool), KvError> {
        let old_reg = data_register(source);
        // The handoff's recorded evidence: whatever the final verify read
        // returns is what the (unrecorded) copy relocates — a
        // non-tag-monotonic copy shows up against this read in the
        // stitched history.
        let mut payload = self.raw_read(old_reg, "migrate")?;
        // Copy-verify loop: a straggler write issued under the old epoch
        // (before the split was published) may still land on the source
        // register while we are copying. Pre-seal readers can observe it,
        // so the copy must carry it: after writing the movers, re-read
        // the source and redo the copy if anything changed. The epoch
        // guard on the write path keeps new stragglers from forming, so
        // the loop settles; the cap is a backstop against pathological
        // churn.
        let mut moved;
        let mut stayers;
        for _ in 0..16 {
            if map.seals_source(&payload, source) {
                return Ok((0, false)); // a previous driver already sealed it
            }
            let entries = codec::decode_entries(&payload).unwrap_or_default();
            stayers = Vec::<(String, Bytes)>::new();
            let mut movers: BTreeMap<u16, Vec<(String, Bytes)>> = BTreeMap::new();
            for (key, value) in entries {
                let dest = map.shard_of(&key);
                if dest == source {
                    stayers.push((key, value));
                } else {
                    movers.entry(dest).or_default().push((key, value));
                }
            }
            moved = 0;
            for (dest, items) in &movers {
                let refs: Vec<(&str, Bytes)> =
                    items.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
                self.reg_write(
                    data_register(*dest),
                    codec::encode_entries(&refs, map.stamp()),
                    "migrate",
                )?;
                moved += items.len();
            }
            // Verify: did a straggler land since we read the source?
            let verify = self.raw_read(old_reg, "migrate")?;
            if verify != payload {
                payload = verify;
                continue;
            }
            // The seal: after this write the new routing is live for the
            // shard — barriered writers proceed, readers forward.
            let seal = if stayers.is_empty() {
                codec::encode_seal(map.epoch)
            } else {
                let refs: Vec<(&str, Bytes)> = stayers
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.clone()))
                    .collect();
                codec::encode_entries(&refs, map.stamp())
            };
            self.reg_write(old_reg, seal, "seal")?;
            return Ok((moved, true));
        }
        Err(KvError::Reshard {
            message: format!("source shard {source} would not quiesce for its seal"),
        })
    }

    /// Runs the copy/seal phase of a published split.
    fn run_migration(&self, map: &ShardMap) -> Result<(usize, usize), KvError> {
        let mut moved = 0;
        let mut sealed = 0;
        for source in map.split_sources() {
            let (m, s) = self.migrate_source(source, map)?;
            moved += m;
            sealed += usize::from(s);
        }
        Ok((moved, sealed))
    }

    /// Grows the store to `new_shards` shards with a **live split**:
    ///
    /// 1. publish the *migrating* map for epoch `e+1` to the config
    ///    register (every client that refreshes now routes through the
    ///    split protocol);
    /// 2. for each split-source shard, copy its moved entries to their
    ///    new home registers and seal the old home (writers to those
    ///    shards wait on the write barrier exactly until their shard's
    ///    seal; readers fall back old-home-then-new-home);
    /// 3. publish the *committed* map once every source is sealed.
    ///
    /// Runs synchronously on the calling thread; concurrent `get`/`put`
    /// traffic through this client, its clones, and any client that
    /// refreshes its map keeps flowing throughout. At most one grow may
    /// drive the store at a time (operator action); a driver that died
    /// mid-split is recovered by [`finish_split`](KvClient::finish_split)
    /// — or by the next `grow`, which finishes the abandoned split before
    /// starting its own.
    ///
    /// # Errors
    ///
    /// [`KvError::Reshard`] if `new_shards` does not grow the table;
    /// [`KvError::Register`] if a migration register operation fails
    /// (the split stays published; re-drive with `finish_split`).
    pub fn grow(&self, new_shards: u16) -> Result<GrowReport, KvError> {
        let _ = self.refresh_map()?;
        let mut current = self.shard_map();
        if current.is_migrating() {
            // Finish the abandoned split first (idempotent).
            let _ = self.run_migration(&current)?;
            let committed = current.committed();
            self.publish_map(&committed)?;
            current = committed;
        }
        if new_shards <= current.shards {
            return Err(KvError::Reshard {
                message: format!(
                    "cannot grow from {} to {new_shards} shards (tables only grow)",
                    current.shards
                ),
            });
        }
        let migrating = current.split_to(new_shards);
        self.publish_map(&migrating)?;
        let (moved, sealed) = self.run_migration(&migrating)?;
        self.publish_map(&migrating.committed())?;
        Ok(GrowReport {
            epoch: migrating.epoch,
            from_shards: current.shards,
            to_shards: new_shards,
            sources_sealed: sealed,
            entries_moved: moved,
        })
    }

    /// Drives a published-but-uncommitted split (whose driver died) to
    /// completion: re-runs the idempotent copy/seal phase for every
    /// unsealed source and publishes the committed map. Returns `true` if
    /// there was a split to finish.
    ///
    /// # Errors
    ///
    /// As the migration phase of [`grow`](KvClient::grow).
    pub fn finish_split(&self) -> Result<bool, KvError> {
        let _ = self.refresh_map()?;
        let map = self.shard_map();
        if !map.is_migrating() {
            return Ok(false);
        }
        let _ = self.run_migration(&map)?;
        self.publish_map(&map.committed())?;
        Ok(true)
    }

    // -- Multi-key operations ----------------------------------------------

    /// Groups the operation indices by serving node, preserving input
    /// order within each group.
    fn group_by_node(&self, regs: impl Iterator<Item = RegisterId>) -> BTreeMap<usize, Vec<usize>> {
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, reg) in regs.enumerate() {
            groups
                .entry(reg.0 as usize % self.nodes.len())
                .or_default()
                .push(i);
        }
        groups
    }

    /// The pipelined submit's health gate for a key's home node. The
    /// pipeline has no failover rotation — a key's op goes to its home or
    /// to the blocking fallback — so the gate maps to a three-way choice:
    /// `Some(false)` submit normally, `Some(true)` submit *as the node's
    /// owed probe* (this caller won [`HealthMemory::try_begin_probe`]),
    /// `None` route through the blocking path, whose failover tries the
    /// suspect node last instead of burning the pipeline's patience on
    /// it.
    fn gate_for_pipeline(&self, node: usize) -> Option<bool> {
        match self.health.gate(node) {
            NodeGate::Fresh => Some(false),
            NodeGate::Suspect => None,
            NodeGate::NeedsProbe => self.health.try_begin_probe(node).then_some(true),
        }
    }

    /// Builds the per-register FIFO queues of a multi-key batch: the
    /// runner admits ONE op per register at a time (§III-A per-register
    /// sequentiality), so the pipeline keeps at most one in-flight op per
    /// register and refills from its queue — queueing client-side instead
    /// of eating self-inflicted `Busy` rejections. Duplicate keys keep
    /// their input order (same register → same queue).
    fn register_queues<'k>(
        &self,
        map: &ShardMap,
        keys: impl Iterator<Item = &'k str>,
    ) -> BTreeMap<RegisterId, VecDeque<usize>> {
        let mut queues: BTreeMap<RegisterId, VecDeque<usize>> = BTreeMap::new();
        for (i, key) in keys.enumerate() {
            queues
                .entry(map.register_for(key))
                .or_default()
                .push_back(i);
        }
        queues
    }

    /// Reads many keys, pipelined: every shard's read is submitted from
    /// this one thread through the event-driven
    /// [`PipelinedClient`](rmem_net::PipelinedClient) fan and settles as
    /// its completion arrives — no per-node threads. Results align with
    /// the input order.
    ///
    /// An op the pipeline cannot settle cleanly (node down, timeout,
    /// `Busy` collision with another client, a payload under a foreign
    /// epoch stamp) falls back to the blocking [`get`](Self::get) path —
    /// carrying its already-recorded invocation — where the full
    /// failover/backoff/refresh machinery applies. A batch issued while
    /// a split is migrating takes the thread-per-node path wholesale: the
    /// barrier protocol is the blocking path's job.
    ///
    /// Failover state is shared through the [`HealthMemory`]: the first
    /// key to time out on a wedged node marks it, and the batch's other
    /// keys then try that node last — one patience window per batch,
    /// not one per key.
    ///
    /// # Errors
    ///
    /// Returns the first failing key's [`KvError`]; other keys still
    /// ran to completion.
    pub fn multi_get<K: AsRef<str> + Sync>(
        &self,
        keys: &[K],
    ) -> Result<Vec<Option<Bytes>>, KvError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        self.sync_map()?;
        let map = self.shard_map();
        if map.is_migrating() {
            return self.multi_get_threaded(keys);
        }
        let mut results: Vec<Option<Option<Bytes>>> = vec![None; keys.len()];
        // Live leases answer before anything is submitted: those keys
        // never enter the pipeline at all (zero datagrams).
        let mut queues: BTreeMap<RegisterId, VecDeque<usize>> = BTreeMap::new();
        for (i, key) in keys.iter().enumerate() {
            let reg = map.register_for(key.as_ref());
            if let Some(payload) = self.lease_hit(reg, &map) {
                let inv = self.rec_invoke(Op::ReadAt(reg));
                let value = codec::value_for_key(&payload, key.as_ref());
                self.rec_outcome(inv, Ok(OpResult::ReadValue(payload)));
                results[i] = Some(value);
            } else {
                queues.entry(reg).or_default().push_back(i);
            }
        }
        let fan = PipelinedClient::fan(&self.nodes);
        let mut fallback: Vec<(usize, Option<rmem_types::OpId>)> = Vec::new();
        let mut tickets: Vec<Ticket> = Vec::new();
        let mut pending: Vec<InFlightOp> = Vec::new();

        // One submission. The map-equality check right before the send is
        // the pipelined analogue of the guarded write's per-attempt epoch
        // check: the effect lands within one event-loop dispatch of a
        // passing check, so a stale-routed op cannot surface long after a
        // split moved the key (stale → blocking path, which re-syncs).
        let try_submit = |idx: usize,
                          reg: RegisterId|
         -> Result<(Ticket, InFlightOp), Option<rmem_types::OpId>> {
            if self.shard_map() != map {
                return Err(None);
            }
            let node = reg.0 as usize % self.nodes.len();
            let Some(probe) = self.gate_for_pipeline(node) else {
                return Err(None);
            };
            let started = self.obs.op_clock();
            let inv = self.rec_invoke(Op::ReadAt(reg));
            let sent = self.leases.is_some().then(Instant::now);
            match fan.submit_read(node, reg) {
                Ok(ticket) => Ok((
                    ticket,
                    InFlightOp {
                        idx,
                        reg,
                        node,
                        inv,
                        probe,
                        started,
                        sent,
                    },
                )),
                Err(_) => {
                    // The only read submit error is `ProcessDown` (the
                    // node's event loop is gone): mark and settle
                    // blocking, like any other node failure.
                    self.obs.retries.inc();
                    self.health.mark(node);
                    Err(inv)
                }
            }
        };
        for (&reg, queue) in queues.iter_mut() {
            if let Some(idx) = queue.pop_front() {
                match try_submit(idx, reg) {
                    Ok((t, p)) => {
                        tickets.push(t);
                        pending.push(p);
                    }
                    Err(inv) => fallback.push((idx, inv)),
                }
            }
        }
        let metered = self.obs.handle.metrics.is_enabled();
        while !pending.is_empty() {
            if metered {
                self.obs.inflight.set(pending.len() as u64);
                self.obs.pipeline_depth.record(pending.len() as u64);
            }
            let Some((pos, outcome)) = fan.wait_any(&tickets) else {
                // The patience window passed with nothing settling:
                // abandon the whole flight (late acks are counted, never
                // misdelivered) and settle blocking.
                for (ticket, p) in tickets.drain(..).zip(pending.drain(..)) {
                    fan.cancel(ticket);
                    self.obs.retries.inc();
                    self.health.mark(p.node);
                    fallback.push((p.idx, p.inv));
                }
                break;
            };
            tickets.swap_remove(pos);
            let done = pending.swap_remove(pos);
            match outcome {
                Ok((OpResult::ReadValue(payload), rounds, lease)) => {
                    self.record_read(rounds);
                    self.health.clear(done.node);
                    if let Some(started) = done.started {
                        self.obs
                            .get_micros
                            .record(started.elapsed().as_micros() as u64);
                    }
                    if let (Some(grant), Some(t0)) = (lease, done.sent) {
                        self.lease_fill(done.reg, grant, payload.clone(), &map, t0);
                    }
                    if payload.is_bottom() {
                        self.rec_outcome(done.inv, Ok(OpResult::ReadValue(payload)));
                        results[done.idx] = Some(None);
                    } else if let Some(value) =
                        codec::value_for_key(&payload, keys[done.idx].as_ref())
                    {
                        self.rec_outcome(done.inv, Ok(OpResult::ReadValue(payload)));
                        results[done.idx] = Some(Some(value));
                    } else if codec::payload_epoch(&payload) == Some(map.stamp()) {
                        // Key absent under the expected stamp: a plain
                        // miss (collision displacement).
                        self.rec_outcome(done.inv, Ok(OpResult::ReadValue(payload)));
                        results[done.idx] = Some(None);
                    } else {
                        // Foreign stamp — the map may be stale; the
                        // blocking path refreshes and re-routes.
                        fallback.push((done.idx, done.inv));
                    }
                }
                Ok(_) => fallback.push((done.idx, done.inv)),
                Err(e) => {
                    self.obs.retries.inc();
                    if matches!(e, ClientError::TimedOut | ClientError::ProcessDown) {
                        self.health.mark(done.node);
                    } else if done.probe {
                        // Inconclusive probe (`Busy`): the node still
                        // owes one.
                        self.health.reopen_probe(done.node);
                    }
                    fallback.push((done.idx, done.inv));
                }
            }
            if let Some(idx) = queues.get_mut(&done.reg).and_then(VecDeque::pop_front) {
                match try_submit(idx, done.reg) {
                    Ok((t, p)) => {
                        tickets.push(t);
                        pending.push(p);
                    }
                    Err(inv) => fallback.push((idx, inv)),
                }
            }
        }
        if metered {
            self.obs.inflight.set(0);
        }
        // Whatever never settled in the pipeline — plus queue remainders
        // whose head went to fallback before they were submitted —
        // settles through the blocking path.
        for queue in queues.values_mut() {
            fallback.extend(queue.drain(..).map(|idx| (idx, None)));
        }
        let mut first_err: Option<KvError> = None;
        for (idx, mut inv) in fallback {
            match self.get_settled(keys[idx].as_ref(), &mut inv) {
                Ok(value) => results[idx] = Some(value),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(results
            .into_iter()
            .map(|slot| slot.expect("every index answered"))
            .collect())
    }

    /// The thread-per-node batch read: each node's keys run sequentially
    /// in that node's thread, nodes concurrently. Used when a split is
    /// migrating (the blocking path owns the barrier/fallback protocol).
    fn multi_get_threaded<K: AsRef<str> + Sync>(
        &self,
        keys: &[K],
    ) -> Result<Vec<Option<Bytes>>, KvError> {
        type BatchResult = Result<Vec<(usize, Option<Bytes>)>, KvError>;
        let map = self.shard_map();
        let groups = self.group_by_node(keys.iter().map(|k| map.register_for(k.as_ref())));
        let mut results: Vec<Option<Option<Bytes>>> = vec![None; keys.len()];
        let outcomes: Vec<BatchResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .values()
                .map(|indices| {
                    scope.spawn(move || {
                        indices
                            .iter()
                            .map(|&i| self.get(keys[i].as_ref()).map(|v| (i, v)))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("kv batch thread panicked"))
                .collect()
        });
        for outcome in outcomes {
            for (i, value) in outcome? {
                results[i] = Some(value);
            }
        }
        Ok(results
            .into_iter()
            .map(|slot| slot.expect("every index answered"))
            .collect())
    }

    /// Writes many entries, pipelined (see
    /// [`multi_get`](KvClient::multi_get) for the driver's shape). When
    /// no recorder is attached the payload is encoded **zero-copy**,
    /// straight into the op slot's reusable scratch buffer. Exactly-once
    /// clients take the thread-per-node path: the intent journal's
    /// durable fsync per op is a per-write barrier the pipeline has
    /// nothing to overlap with.
    ///
    /// # Errors
    ///
    /// Returns the first failing key's [`KvError`]; other keys still
    /// ran to completion.
    pub fn multi_put<K: AsRef<str> + Sync>(&self, entries: &[(K, Bytes)]) -> Result<(), KvError> {
        if entries.is_empty() {
            return Ok(());
        }
        if self.intents.is_some() {
            return self.multi_put_threaded(entries);
        }
        self.sync_map()?;
        let map = self.shard_map();
        if map.is_migrating() {
            return self.multi_put_threaded(entries);
        }
        let mut queues = self.register_queues(&map, entries.iter().map(|(k, _)| k.as_ref()));
        let fan = PipelinedClient::fan(&self.nodes);
        let mut first_err: Option<KvError> = None;
        let mut fallback: Vec<(usize, Option<rmem_types::OpId>)> = Vec::new();
        let mut tickets: Vec<Ticket> = Vec::new();
        let mut pending: Vec<InFlightOp> = Vec::new();

        // One submission (see `multi_get` on the pre-send map check). A
        // client-side `TooLarge` refusal is terminal — no node's frame
        // fits the value, so neither retry nor fallback can help.
        let mut try_submit =
            |idx: usize,
             reg: RegisterId|
             -> Result<(Ticket, InFlightOp), Option<Option<rmem_types::OpId>>> {
                if self.shard_map() != map {
                    return Err(Some(None));
                }
                let node = reg.0 as usize % self.nodes.len();
                let Some(probe) = self.gate_for_pipeline(node) else {
                    return Err(Some(None));
                };
                let (key, value) = &entries[idx];
                let key = key.as_ref();
                let started = self.obs.op_clock();
                // The cached value for this register is about to go
                // stale — revoke before the write leaves.
                self.lease_revoke(reg);
                let (inv, submitted) = if self.recorder.is_some() {
                    // Recorded run: the invocation needs the encoded payload,
                    // so encode once and send the same value.
                    let payload = codec::encode_entry(key, value, map.stamp());
                    let inv = self.rec_invoke(Op::WriteAt(reg, payload.clone()));
                    (inv, fan.submit_write(node, reg, payload))
                } else {
                    (
                        None,
                        fan.submit_write_with(node, reg, |buf| {
                            codec::encode_entry_into(buf, key, value, map.stamp())
                        }),
                    )
                };
                match submitted {
                    Ok(ticket) => Ok((
                        ticket,
                        InFlightOp {
                            idx,
                            reg,
                            node,
                            inv,
                            probe,
                            started,
                            sent: None,
                        },
                    )),
                    Err(ClientError::TooLarge { size, limit }) => {
                        // Client-side refusal: the value fits no node's
                        // frame, so neither retry nor fallback can help —
                        // and a won probe never exercised the node.
                        if probe {
                            self.health.reopen_probe(node);
                        }
                        let e = KvError::TooLarge {
                            key: key.to_string(),
                            size,
                            limit,
                        };
                        self.rec_outcome(inv, Err(&e));
                        first_err = first_err.take().or(Some(e));
                        Err(None)
                    }
                    Err(_) => {
                        self.obs.retries.inc();
                        self.health.mark(node);
                        Err(Some(inv))
                    }
                }
            };
        for (&reg, queue) in queues.iter_mut() {
            if let Some(idx) = queue.pop_front() {
                match try_submit(idx, reg) {
                    Ok((t, p)) => {
                        tickets.push(t);
                        pending.push(p);
                    }
                    Err(Some(inv)) => fallback.push((idx, inv)),
                    Err(None) => {} // terminal refusal, already recorded
                }
            }
        }
        let metered = self.obs.handle.metrics.is_enabled();
        while !pending.is_empty() {
            if metered {
                self.obs.inflight.set(pending.len() as u64);
                self.obs.pipeline_depth.record(pending.len() as u64);
            }
            let Some((pos, outcome)) = fan.wait_any(&tickets) else {
                for (ticket, p) in tickets.drain(..).zip(pending.drain(..)) {
                    fan.cancel(ticket);
                    self.obs.retries.inc();
                    self.health.mark(p.node);
                    fallback.push((p.idx, p.inv));
                }
                break;
            };
            tickets.swap_remove(pos);
            let done = pending.swap_remove(pos);
            match outcome {
                Ok((OpResult::Written, rounds, _)) => {
                    self.record_write(rounds);
                    self.health.clear(done.node);
                    if let Some(started) = done.started {
                        self.obs
                            .put_micros
                            .record(started.elapsed().as_micros() as u64);
                    }
                    self.rec_outcome(done.inv, Ok(OpResult::Written));
                }
                Ok(_) => fallback.push((done.idx, done.inv)),
                Err(e) => {
                    self.obs.retries.inc();
                    if matches!(e, ClientError::TimedOut | ClientError::ProcessDown) {
                        self.health.mark(done.node);
                    } else if done.probe {
                        self.health.reopen_probe(done.node);
                    }
                    fallback.push((done.idx, done.inv));
                }
            }
            if let Some(idx) = queues.get_mut(&done.reg).and_then(VecDeque::pop_front) {
                match try_submit(idx, done.reg) {
                    Ok((t, p)) => {
                        tickets.push(t);
                        pending.push(p);
                    }
                    Err(Some(inv)) => fallback.push((idx, inv)),
                    Err(None) => {}
                }
            }
        }
        if metered {
            self.obs.inflight.set(0);
        }
        for queue in queues.values_mut() {
            fallback.extend(queue.drain(..).map(|idx| (idx, None)));
        }
        for (idx, mut inv) in fallback {
            let (key, value) = &entries[idx];
            if let Err(e) = self.put_settled(key.as_ref(), value.clone(), &mut inv) {
                first_err = first_err.take().or(Some(e));
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The thread-per-node batch write (see
    /// [`multi_get_threaded`](Self::multi_get_threaded)): used mid-split
    /// and by exactly-once clients.
    fn multi_put_threaded<K: AsRef<str> + Sync>(
        &self,
        entries: &[(K, Bytes)],
    ) -> Result<(), KvError> {
        self.sync_map()?;
        let map = self.shard_map();
        let groups = self.group_by_node(entries.iter().map(|(k, _)| map.register_for(k.as_ref())));
        let outcomes: Vec<Result<(), KvError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .values()
                .map(|indices| {
                    scope.spawn(move || {
                        for &i in indices {
                            let (key, value) = &entries[i];
                            self.put(key.as_ref(), value.clone())?;
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("kv batch thread panicked"))
                .collect()
        });
        outcomes.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_core::{Persistent, SharedMemory, Transient};
    use rmem_net::LocalCluster;

    fn cluster_client(shards: u16) -> (LocalCluster, KvClient) {
        let cluster = LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap();
        let client = KvClient::new(cluster.clients(), ShardRouter::new(shards)).unwrap();
        (cluster, client)
    }

    #[test]
    fn put_get_roundtrip() {
        let (mut cluster, kv) = cluster_client(8);
        kv.put("alpha", b"1".to_vec()).unwrap();
        assert_eq!(kv.get("alpha").unwrap().as_deref(), Some(b"1".as_ref()));
        assert_eq!(kv.get("never-written").unwrap(), None);
        cluster.shutdown();
    }

    #[test]
    fn multi_ops_roundtrip_across_shards() {
        let (mut cluster, kv) = cluster_client(8);
        let keys = kv.router().covering_keys("k-");
        let entries: Vec<(String, Bytes)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), Bytes::from(vec![i as u8])))
            .collect();
        kv.multi_put(&entries).unwrap();
        let got = kv.multi_get(&keys).unwrap();
        for (i, value) in got.iter().enumerate() {
            assert_eq!(
                value.as_deref(),
                Some([i as u8].as_ref()),
                "key {}",
                keys[i]
            );
        }
        cluster.shutdown();
    }

    #[test]
    fn overwrite_returns_latest() {
        let (mut cluster, kv) = cluster_client(4);
        kv.put("k", b"old".to_vec()).unwrap();
        kv.put("k", b"new".to_vec()).unwrap();
        assert_eq!(kv.get("k").unwrap().as_deref(), Some(b"new".as_ref()));
        cluster.shutdown();
    }

    #[test]
    fn colliding_key_displaces_previous_tenant() {
        // One shard: every key collides by construction. The displaced
        // key's get must report absence, not foreign bytes.
        let (mut cluster, kv) = cluster_client(1);
        kv.put("first", b"1".to_vec()).unwrap();
        kv.put("second", b"2".to_vec()).unwrap();
        assert_eq!(kv.get("second").unwrap().as_deref(), Some(b"2".as_ref()));
        assert_eq!(kv.get("first").unwrap(), None);
        cluster.shutdown();
    }

    #[test]
    fn client_fails_over_when_a_node_dies() {
        // The same KvClient (handles to all 3 nodes) must keep serving
        // every key after one node is killed — shards homed on the dead
        // node fail over to the survivors.
        let (mut cluster, kv) = cluster_client(8);
        let keys = kv.router().covering_keys("f-");
        for (i, key) in keys.iter().enumerate() {
            kv.put(key, vec![i as u8]).unwrap();
        }
        cluster.kill(rmem_types::ProcessId(1));
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(
                kv.get(key).unwrap().as_deref(),
                Some([i as u8].as_ref()),
                "key {key} must survive the node death"
            );
            kv.put(key, vec![i as u8 + 100]).unwrap();
        }
        cluster.shutdown();
    }

    #[test]
    fn dead_node_is_marked_and_deprioritized() {
        let (mut cluster, kv) = cluster_client(8);
        let kv = kv.with_health_cooldown(std::time::Duration::from_secs(30));
        let keys = kv.router().covering_keys("h-");
        let entries: Vec<(String, Bytes)> = keys
            .iter()
            .map(|k| (k.clone(), Bytes::from(b"v".to_vec())))
            .collect();
        kv.multi_put(&entries).unwrap();
        cluster.kill(rmem_types::ProcessId(1));
        // Every key still resolves; the batch's failovers mark node 1.
        let got = kv.multi_get(&keys).unwrap();
        assert!(got.iter().all(Option::is_some));
        assert!(
            kv.health().is_suspect(1),
            "the killed node must be marked as recently failed"
        );
        assert!(!kv.health().is_suspect(0));
        // A clone shares the same marks.
        assert!(kv.clone().health().is_suspect(1));
        // Marks are hints, not bans: with *every* node marked the store
        // still serves (suspects are tried in home order), and the node
        // that answers clears its own mark.
        cluster.restart(rmem_types::ProcessId(1)).unwrap();
        for i in 0..3 {
            kv.health().mark(i);
        }
        assert_eq!(kv.health().suspects().len(), 3);
        let got = kv.multi_get(&keys).unwrap();
        assert!(got.iter().all(Option::is_some));
        assert!(
            kv.health().suspects().len() < 3,
            "successful operations must clear the serving nodes' marks"
        );
        cluster.shutdown();
    }

    #[test]
    fn oversized_entry_fails_fast_with_a_named_error() {
        // UDP transport: 64 KB datagram ceiling. The put must fail
        // immediately with TooLarge, not retransmit into a timeout.
        let dir = std::env::temp_dir().join(format!("rmem-kv-toolarge-{}", std::process::id()));
        let mut cluster =
            LocalCluster::udp(3, SharedMemory::factory(Transient::flavor()), &dir).unwrap();
        let kv = KvClient::new(cluster.clients(), ShardRouter::new(4)).unwrap();
        assert!(kv.max_value_len().is_some());
        let started = std::time::Instant::now();
        let err = kv.put("big", vec![0u8; 80_000]).unwrap_err();
        assert!(
            matches!(err, KvError::TooLarge { ref key, size, limit }
                if key == "big" && size > limit),
            "expected TooLarge, got {err}"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "TooLarge must surface fast, not after a patience window"
        );
        // A value that fits still works on the same cluster.
        kv.put("small", b"ok".to_vec()).unwrap();
        assert_eq!(kv.get("small").unwrap().as_deref(), Some(b"ok".as_ref()));
        cluster.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn op_stats_count_reads_writes_and_fast_paths() {
        let (mut cluster, kv) = cluster_client(8);
        assert_eq!(kv.stats(), KvOpStats::default());
        kv.put("s", b"1".to_vec()).unwrap();
        // Quiescent key: the fast path answers the read in one round.
        assert_eq!(kv.get("s").unwrap().as_deref(), Some(b"1".as_ref()));
        let stats = kv.stats();
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.write_rounds, 2, "transient write = query + propagate");
        assert_eq!(stats.reads, 1);
        assert_eq!(
            stats.read_rounds, 1,
            "a quiescent read must take the fast path"
        );
        assert_eq!(stats.fast_reads, 1);
        assert!(stats.mean_read_rounds() < 2.0);
        assert_eq!(stats.fast_read_fraction(), 1.0);
        assert_eq!(stats.barrier_waits, 0, "no split, no barrier");
        // Clones share the counters.
        kv.clone().get("s").unwrap();
        assert_eq!(kv.stats().reads, 2);
        cluster.shutdown();
    }

    #[test]
    fn decayed_suspect_is_probed_before_full_rotation() {
        let (mut cluster, kv) = cluster_client(8);
        let kv = kv.with_health_cooldown(std::time::Duration::from_millis(40));
        let keys = kv.router().covering_keys("p-");
        for key in &keys {
            kv.put(key, b"v".to_vec()).unwrap();
        }
        // A healthy node that got (spuriously) marked: after the decay it
        // owes one probe, the first batch issues exactly one, and the
        // success restores full rotation.
        kv.health().mark(1);
        assert_eq!(kv.health_stats().marks, 1);
        assert_eq!(kv.health().gate(1), NodeGate::Suspect);
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert_eq!(kv.health().gate(1), NodeGate::NeedsProbe);
        let got = kv.multi_get(&keys).unwrap();
        assert!(got.iter().all(Option::is_some));
        let stats = kv.health_stats();
        assert_eq!(stats.probes, 1, "exactly one probe per owed debt");
        assert_eq!(
            kv.health().gate(1),
            NodeGate::Fresh,
            "the successful probe must restore full rotation"
        );
        assert!(stats.suspects.is_empty());
        cluster.shutdown();
    }

    #[test]
    fn failed_probe_remarks_instead_of_restoring() {
        let (mut cluster, kv) = cluster_client(8);
        let kv = kv
            .with_health_cooldown(std::time::Duration::from_millis(40))
            .with_busy_retries(0)
            // Shrink patience so the dead node costs milliseconds, not 10s.
            .with_op_timeout(std::time::Duration::from_millis(300));
        let keys = kv.router().covering_keys("f-");
        for key in &keys {
            kv.put(key, b"v".to_vec()).unwrap();
        }
        cluster.kill(rmem_types::ProcessId(1));
        // The batch marks the dead node (one timeout, shared marks).
        let got = kv.multi_get(&keys).unwrap();
        assert!(got.iter().all(Option::is_some));
        assert!(kv.health_stats().marks >= 1, "the dead node must be marked");
        assert_eq!(
            kv.health_stats().probes,
            0,
            "no probe while the mark is hot"
        );
        // Mark decays, node is still dead: the next batch spends exactly
        // one probe on it and re-marks it — the probe gate is what keeps
        // the cost at one operation instead of one per key.
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert_eq!(kv.health().gate(1), NodeGate::NeedsProbe);
        let marks_before = kv.health_stats().marks;
        let got = kv.multi_get(&keys).unwrap();
        assert!(got.iter().all(Option::is_some));
        let stats = kv.health_stats();
        assert_eq!(stats.probes, 1, "one probe, not one per key");
        assert!(
            stats.marks > marks_before,
            "the failed probe must re-mark the node"
        );
        assert_eq!(kv.health().gate(1), NodeGate::Suspect);
        cluster.shutdown();
    }

    #[test]
    fn empty_node_list_is_rejected() {
        assert!(matches!(
            KvClient::new(Vec::new(), ShardRouter::new(4)),
            Err(KvError::NoNodes)
        ));
    }

    #[test]
    fn contended_register_makes_progress_without_livelock() {
        // Eight writers hammering ONE key through one node family: the
        // jittered exponential backoff must decorrelate their Busy
        // retries so every writer completes a burst well inside the
        // test budget (phase-locked retries would starve some writer
        // past its busy_retries cap and fail the put).
        let (mut cluster, kv) = cluster_client(1);
        let done: Vec<Result<(), KvError>> = std::thread::scope(|scope| {
            (0..8u8)
                .map(|w| {
                    let kv = kv.clone();
                    scope.spawn(move || {
                        for i in 0..10u8 {
                            kv.put("hot", vec![w, i])?;
                        }
                        Ok(())
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("writer thread panicked"))
                .collect()
        });
        for outcome in done {
            outcome.expect("every contended writer must finish its burst");
        }
        let stats = kv.stats();
        assert_eq!(stats.writes, 80);
        // The backoff accounting is exported: every Busy retry slept and
        // was counted (a contention-free run legitimately reports 0/0).
        assert_eq!(
            stats.backoff_micros > 0,
            stats.retries > 0,
            "retries and backoff accounting must move together: {stats:?}"
        );
        assert!(kv.get("hot").unwrap().is_some());
        cluster.shutdown();
    }

    // -- Epochs and live splits -------------------------------------------

    #[test]
    fn grow_moves_only_split_keys_and_serves_all() {
        let (mut cluster, kv) = cluster_client(4);
        let old_router = ShardRouter::new(4);
        let keys = old_router.covering_keys("g-");
        for (i, key) in keys.iter().enumerate() {
            kv.put(key, vec![i as u8]).unwrap();
        }
        assert_eq!(kv.epoch(), 0);
        let report = kv.grow(8).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.from_shards, 4);
        assert_eq!(report.to_shards, 8);
        assert_eq!(report.sources_sealed, 4, "4 → 8 splits every old shard");
        let map = kv.shard_map();
        assert!(!map.is_migrating());
        assert_eq!(map.shards, 8);
        // Every key still serves its value, wherever it landed.
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(
                kv.get(key).unwrap().as_deref(),
                Some([i as u8].as_ref()),
                "key {key} must survive the split"
            );
        }
        // Writes after the split land at the new homes and read back.
        for (i, key) in keys.iter().enumerate() {
            kv.put(key, vec![i as u8 + 50]).unwrap();
            assert_eq!(
                kv.get(key).unwrap().as_deref(),
                Some([i as u8 + 50].as_ref())
            );
        }
        cluster.shutdown();
    }

    #[test]
    fn fresh_client_syncs_on_first_op_and_refreshes_on_stamp_mismatch() {
        let (mut cluster, kv) = cluster_client(4);
        let keys = ShardRouter::new(4).covering_keys("d-");
        for key in &keys {
            kv.put(key, b"v0".to_vec()).unwrap();
        }
        kv.grow(8).unwrap();
        // Write fresh epoch-1 values so moved keys live at new homes only.
        for key in &keys {
            kv.put(key, b"v1".to_vec()).unwrap();
        }
        // A brand-new client believes the genesis 4-shard map until its
        // first operation, which syncs from the config register — so it
        // can never *write* under its constructor's guess.
        let late = KvClient::new(cluster.clients(), ShardRouter::new(4)).unwrap();
        assert_eq!(late.epoch(), 0);
        for key in &keys {
            assert_eq!(
                late.get(key).unwrap().as_deref(),
                Some(b"v1".as_ref()),
                "late client must discover the split for {key}"
            );
        }
        assert_eq!(late.epoch(), 1, "the first-op sync must adopt the map");
        // A *second* split by the original client: the late client's
        // cache is now stale again (it already synced), and the sealed
        // old homes' stamp mismatches trigger refresh-and-re-route.
        kv.grow(16).unwrap();
        for key in &keys {
            kv.put(key, b"v2".to_vec()).unwrap();
        }
        for key in &keys {
            assert_eq!(
                late.get(key).unwrap().as_deref(),
                Some(b"v2".as_ref()),
                "stamp mismatch must re-route {key} after the second split"
            );
        }
        assert_eq!(late.epoch(), 2, "the mismatch refresh must adopt epoch 2");
        assert!(late.stats().map_refreshes >= 1);
        cluster.shutdown();
    }

    #[test]
    fn grow_rejects_non_growth() {
        let (mut cluster, kv) = cluster_client(4);
        assert!(matches!(kv.grow(4), Err(KvError::Reshard { .. })));
        assert!(matches!(kv.grow(2), Err(KvError::Reshard { .. })));
        cluster.shutdown();
    }

    #[test]
    fn abandoned_split_is_finished_by_finish_split() {
        let (mut cluster, kv) = cluster_client(4);
        let keys = ShardRouter::new(4).covering_keys("a-");
        for (i, key) in keys.iter().enumerate() {
            kv.put(key, vec![i as u8]).unwrap();
        }
        // Simulate a driver that published the split and died before
        // migrating anything.
        let current = kv.shard_map();
        let migrating = current.split_to(8);
        kv.raw_write(CONFIG_REGISTER, migrating.encode(), "shard-map")
            .unwrap();
        // A second client discovers the stranded split and finishes it.
        let rescuer = KvClient::new(cluster.clients(), ShardRouter::new(4)).unwrap();
        assert!(rescuer.finish_split().unwrap());
        assert!(!rescuer.shard_map().is_migrating());
        assert_eq!(rescuer.shard_map().shards, 8);
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(
                rescuer.get(key).unwrap().as_deref(),
                Some([i as u8].as_ref())
            );
        }
        assert!(!rescuer.finish_split().unwrap(), "nothing left to finish");
        cluster.shutdown();
    }

    #[test]
    fn sequential_grows_stack_epochs() {
        let (mut cluster, kv) = cluster_client(2);
        let keys = ShardRouter::new(2).covering_keys("s-");
        for key in &keys {
            kv.put(key, b"x".to_vec()).unwrap();
        }
        kv.grow(4).unwrap();
        kv.grow(9).unwrap();
        assert_eq!(kv.epoch(), 2);
        assert_eq!(kv.shard_map().shards, 9);
        for key in &keys {
            assert_eq!(kv.get(key).unwrap().as_deref(), Some(b"x".as_ref()));
        }
        cluster.shutdown();
    }

    #[test]
    fn fresh_client_first_write_cannot_land_behind_a_foreign_split() {
        // Client B grows the store; a brand-new client A (separate
        // KvClient, never synced) writes a moved key. Without the
        // first-op sync the write would land on the sealed old home and
        // be lost to every up-to-date reader.
        let (mut cluster, kv) = cluster_client(4);
        let keys = ShardRouter::new(4).covering_keys("x-");
        for key in &keys {
            kv.put(key, b"old".to_vec()).unwrap();
        }
        kv.grow(8).unwrap();
        let fresh = KvClient::new(cluster.clients(), ShardRouter::new(4)).unwrap();
        assert_eq!(fresh.epoch(), 0, "constructor does not contact the cluster");
        for key in &keys {
            fresh.put(key, b"new".to_vec()).unwrap();
        }
        assert_eq!(fresh.epoch(), 1, "the first put must sync the map");
        // The up-to-date client observes every write.
        for key in &keys {
            assert_eq!(
                kv.get(key).unwrap().as_deref(),
                Some(b"new".as_ref()),
                "{key}: a fresh client's write must be visible at the new routing"
            );
        }
        cluster.shutdown();
    }

    #[test]
    fn recorded_clone_assigns_distinct_pids() {
        let (mut cluster, kv) = cluster_client(4);
        let recorder = OpRecorder::new();
        let kv = kv.with_recorder(recorder.clone());
        let other = kv.recorded_clone();
        kv.put("r", b"1".to_vec()).unwrap();
        other.get("r").unwrap();
        let history = recorder.history();
        let pids: std::collections::BTreeSet<_> = history
            .events()
            .iter()
            .filter_map(|e| match e {
                rmem_consistency::Event::Invoke { op, .. } => Some(op.pid),
                _ => None,
            })
            .collect();
        assert_eq!(pids.len(), 2, "two recording clients, two processes");
        cluster.shutdown();
    }

    /// A cluster whose flavor grants tag leases, paired with a
    /// lease-caching client.
    fn leased_cluster_client(lease_micros: u64, shards: u16) -> (LocalCluster, KvClient) {
        let cluster = LocalCluster::channel(
            3,
            SharedMemory::factory(Persistent::flavor().with_lease(lease_micros)),
        )
        .unwrap();
        let client = KvClient::new(cluster.clients(), ShardRouter::new(shards))
            .unwrap()
            .with_lease_cache(16);
        (cluster, client)
    }

    #[test]
    fn hot_key_reads_are_served_by_the_lease_cache() {
        let (mut cluster, kv) = leased_cluster_client(2_000_000, 8);
        kv.put("hot", b"v1".to_vec()).unwrap();
        // The first read pays its quorum round and harvests the grant…
        assert_eq!(kv.get("hot").unwrap().as_deref(), Some(b"v1".as_ref()));
        // …the rest are zero-round, zero-datagram hits.
        for _ in 0..8 {
            assert_eq!(kv.get("hot").unwrap().as_deref(), Some(b"v1".as_ref()));
        }
        let stats = kv.stats();
        assert!(stats.lease_hits >= 8, "hits missing: {stats:?}");
        assert!(
            stats.mean_read_rounds() < 1.0,
            "leased reads must push mean rounds below one: {stats:?}"
        );
        cluster.shutdown();
    }

    #[test]
    fn own_write_revokes_the_lease_and_the_next_read_is_fresh() {
        let (mut cluster, kv) = leased_cluster_client(500_000, 8);
        kv.put("k", b"v1".to_vec()).unwrap();
        assert_eq!(kv.get("k").unwrap().as_deref(), Some(b"v1".as_ref()));
        assert_eq!(kv.get("k").unwrap().as_deref(), Some(b"v1".as_ref()));
        assert!(kv.stats().lease_hits >= 1);
        // The put revokes this client's lease before the write leaves
        // (the replicas additionally fence it behind every *other*
        // client's outstanding grant), so the next read returns v2.
        kv.put("k", b"v2".to_vec()).unwrap();
        assert_eq!(kv.get("k").unwrap().as_deref(), Some(b"v2".as_ref()));
        assert!(kv.stats().lease_revocations >= 1, "{:?}", kv.stats());
        cluster.shutdown();
    }

    #[test]
    fn multi_get_serves_hot_keys_from_leases() {
        let (mut cluster, kv) = leased_cluster_client(2_000_000, 8);
        let keys = ["a", "b", "c", "d"];
        for key in keys {
            kv.put(key, key.as_bytes().to_vec()).unwrap();
        }
        // First batch fills the cache through the pipeline…
        let first = kv.multi_get(&keys).unwrap();
        // …second batch answers entirely from leases.
        let before = kv.stats();
        let second = kv.multi_get(&keys).unwrap();
        assert_eq!(first, second);
        for (key, value) in keys.iter().zip(&second) {
            assert_eq!(value.as_deref(), Some(key.as_bytes()));
        }
        let after = kv.stats();
        assert!(
            after.lease_hits >= before.lease_hits + keys.len() as u64,
            "batch hits missing: {before:?} -> {after:?}"
        );
        cluster.shutdown();
    }

    #[test]
    fn unleased_cluster_never_fills_the_cache() {
        let (mut cluster, kv) = cluster_client(8);
        let kv = kv.with_lease_cache(16);
        kv.put("k", b"v".to_vec()).unwrap();
        for _ in 0..4 {
            assert_eq!(kv.get("k").unwrap().as_deref(), Some(b"v".as_ref()));
        }
        let stats = kv.stats();
        assert_eq!(stats.lease_hits, 0, "no grants, no hits: {stats:?}");
        assert!(stats.lease_misses >= 4);
        assert!(stats.mean_read_rounds() >= 1.0);
        cluster.shutdown();
    }

    #[test]
    fn a_grow_revokes_every_lease() {
        let (mut cluster, kv) = leased_cluster_client(100_000, 4);
        kv.put("x", b"1".to_vec()).unwrap();
        kv.put("y", b"2".to_vec()).unwrap();
        let _ = kv.get("x").unwrap();
        let _ = kv.get("y").unwrap();
        let before = kv.stats();
        kv.grow(8).unwrap();
        let after = kv.stats();
        assert!(
            after.lease_revocations > before.lease_revocations,
            "the epoch change must drop cached leases: {before:?} -> {after:?}"
        );
        // Post-split reads are correct (and refill under the new stamp).
        assert_eq!(kv.get("x").unwrap().as_deref(), Some(b"1".as_ref()));
        assert_eq!(kv.get("y").unwrap().as_deref(), Some(b"2".as_ref()));
        cluster.shutdown();
    }
}
