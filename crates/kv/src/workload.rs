//! Simulated store workloads: closed-loop clients with skewed key
//! popularity and scripted crash/recovery, ready to drive
//! [`rmem_sim::Simulation`] and be certified per key afterwards.
//!
//! The generator owns the whole loop: it derives a collision-free key
//! universe from the router ([`ShardRouter::covering_keys`], one key per
//! shard), draws each client's operation list from a
//! [`KeyDistribution`] (uniform or Zipf), encodes writes through the store
//! codec, and returns the [`KeyMap`] that later names the checker's
//! verdicts.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmem_sim::workload::ClosedLoop;
use rmem_sim::{KeyDistribution, PlannedEvent, Schedule};
use rmem_types::{Micros, Op, ProcessId};

use crate::codec;
use crate::history::KeyMap;
use crate::router::ShardRouter;

/// Key-popularity shape of a generated workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipf-skewed with this exponent (YCSB-style skew at ≈ 0.99).
    Zipf(f64),
}

impl KeyDist {
    fn distribution(self, n: usize) -> KeyDistribution {
        match self {
            KeyDist::Uniform => KeyDistribution::uniform(n),
            KeyDist::Zipf(s) => KeyDistribution::zipf(n, s),
        }
    }

    /// Short label for reports.
    pub fn label(self) -> String {
        match self {
            KeyDist::Uniform => "uniform".to_string(),
            KeyDist::Zipf(s) => format!("zipf({s})"),
        }
    }
}

/// Specification of a simulated store workload.
#[derive(Debug, Clone)]
pub struct KvWorkloadSpec {
    /// Shard count (also the number of distinct keys; the generator uses
    /// one key per shard so runs certify per key).
    pub shards: u16,
    /// Closed-loop clients, bound to processes `0..clients`.
    pub clients: usize,
    /// Operations per client.
    pub ops_per_client: usize,
    /// Probability an operation is a put (the rest are gets).
    pub write_fraction: f64,
    /// Key popularity.
    pub distribution: KeyDist,
    /// Bytes per written value. Floor of 8: the first 8 bytes carry a
    /// `(client, counter)` tag making every written value unique, which
    /// is what gives the atomicity checkers discriminating power.
    pub value_len: usize,
    /// Client think time between operations.
    pub think: Micros,
    /// Seed for all randomness (same seed ⇒ same workload).
    pub seed: u64,
    /// Restrict each key's writes to one owning client (`shard % clients`)
    /// — required for the single-writer `Regular` flavor, optional
    /// elsewhere.
    pub single_writer: bool,
    /// Multi-op round size, modelling `rmem-batch`'s per-shard batching:
    /// `1` issues every store operation as its own register operation
    /// (the unbatched baseline); `k > 1` groups each client's stream into
    /// rounds of `k` and coalesces each round per shard — the round's
    /// gets on one shard become a single `ReadAt`, its puts one `WriteAt`
    /// of the coalesced payload (last write per key wins, exactly the
    /// engine's semantics). [`KvRun::logical_ops`] /
    /// [`KvRun::register_ops`] report the amortization.
    pub batch: usize,
    /// Scripted crashes: `(at µs, process, down-for µs)`.
    pub crashes: Vec<(u64, u16, u64)>,
}

impl Default for KvWorkloadSpec {
    fn default() -> Self {
        KvWorkloadSpec {
            shards: 8,
            clients: 3,
            ops_per_client: 40,
            write_fraction: 0.5,
            distribution: KeyDist::Uniform,
            value_len: 8,
            think: Micros(200),
            seed: 42,
            single_writer: false,
            batch: 1,
            crashes: Vec::new(),
        }
    }
}

/// A generated run: attach [`loops`](KvRun::loops) and
/// [`schedule`](KvRun::schedule) to a simulation, then certify its trace
/// with [`key_map`](KvRun::key_map).
#[derive(Debug, Clone)]
pub struct KvRun {
    /// One closed-loop client per process.
    pub loops: Vec<ClosedLoop>,
    /// The crash/recovery schedule.
    pub schedule: Schedule,
    /// The key universe (key `i` lives on shard `i`).
    pub keys: Vec<String>,
    /// Names for the per-register verdicts.
    pub key_map: KeyMap,
    /// The router used.
    pub router: ShardRouter,
    /// Store-level operations the run represents (puts + gets before any
    /// coalescing). Equal to [`register_ops`](KvRun::register_ops) for
    /// unbatched runs.
    pub logical_ops: usize,
    /// Register operations actually scheduled (after per-shard
    /// coalescing). Throughput reports divide completed *logical* work by
    /// time, so batched and unbatched rows compare the same workload.
    pub register_ops: usize,
}

/// One store-level operation before lowering to register operations.
enum LogicalOp {
    /// Write this pre-built value under key `keys[index]`.
    Put(usize, Vec<u8>),
    /// Read key `keys[index]`.
    Get(usize),
}

/// Lowers one client's logical stream to register operations: 1:1 for
/// `batch == 1`, per-shard coalesced rounds otherwise (see
/// [`KvWorkloadSpec::batch`]).
fn lower(logical: Vec<LogicalOp>, batch: usize, keys: &[String], router: &ShardRouter) -> Vec<Op> {
    if batch <= 1 {
        return logical
            .into_iter()
            .map(|op| match op {
                LogicalOp::Put(i, value) => Op::WriteAt(
                    router.register_for(&keys[i]),
                    // Simulated runs live in epoch 0 (the sim engine has
                    // no config register or migration actors).
                    codec::encode_entry(&keys[i], &Bytes::from(value), 0),
                ),
                LogicalOp::Get(i) => Op::ReadAt(router.register_for(&keys[i])),
            })
            .collect();
    }
    let mut ops = Vec::new();
    for round in logical.chunks(batch) {
        // The round's gets: one Read round per touched shard.
        let mut read_regs = std::collections::BTreeSet::new();
        // The round's puts: per shard, last write per key wins (key order
        // by first appearance — the engine's coalescing). Indexed so a
        // hot key under heavy skew coalesces in linear time.
        let mut writes: std::collections::BTreeMap<u16, Vec<(usize, Vec<u8>)>> =
            std::collections::BTreeMap::new();
        let mut index: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for op in round {
            match op {
                LogicalOp::Get(i) => {
                    read_regs.insert(router.register_for(&keys[*i]));
                }
                LogicalOp::Put(i, value) => {
                    let reg = router.register_for(&keys[*i]);
                    let entries = writes.entry(reg.0).or_default();
                    match index.get(i) {
                        Some(&pos) => entries[pos].1 = value.clone(),
                        None => {
                            index.insert(*i, entries.len());
                            entries.push((*i, value.clone()));
                        }
                    }
                }
            }
        }
        // Reads first, then writes: everything in a round is concurrent
        // at the store level, so any serialization is legal; this one
        // mirrors the engine's flush order.
        ops.extend(read_regs.into_iter().map(Op::ReadAt));
        for (reg, entries) in writes {
            let entries: Vec<(&str, Bytes)> = entries
                .iter()
                .map(|(i, v)| (keys[*i].as_str(), Bytes::from(v.clone())))
                .collect();
            ops.push(Op::WriteAt(
                rmem_types::RegisterId(reg),
                codec::encode_entries(&entries, 0),
            ));
        }
    }
    ops
}

/// Generates a workload from `spec`.
///
/// # Panics
///
/// Panics if `spec.clients == 0` or `spec.write_fraction` is outside
/// `[0, 1]`.
pub fn generate(spec: &KvWorkloadSpec) -> KvRun {
    assert!(spec.clients > 0, "a workload needs at least one client");
    assert!(
        (0.0..=1.0).contains(&spec.write_fraction),
        "write_fraction must be a probability"
    );
    let router = ShardRouter::new(spec.shards);
    let keys = router.covering_keys("key-");
    let key_map = KeyMap::new(&router, keys.iter().map(String::as_str));
    let dist = spec.distribution.distribution(keys.len());

    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut loops = Vec::with_capacity(spec.clients);
    let mut logical_ops = 0;
    let mut register_ops = 0;
    for client in 0..spec.clients {
        let owned: Vec<usize> = (0..keys.len())
            .filter(|i| i % spec.clients == client)
            .collect();
        let mut logical = Vec::with_capacity(spec.ops_per_client);
        let mut write_counter = 0u64;
        for _ in 0..spec.ops_per_client {
            let key_index = dist.sample(&mut rng);
            let is_write = rng.gen_bool(spec.write_fraction);
            if is_write {
                // Under single-writer ownership a client only writes its
                // own keys; fold foreign draws onto an owned key of
                // similar rank to keep the skew shape.
                let key_index = if spec.single_writer {
                    if owned.is_empty() {
                        // More clients than keys: this client only reads.
                        logical.push(LogicalOp::Get(key_index));
                        continue;
                    }
                    owned[key_index % owned.len()]
                } else {
                    key_index
                };
                let mut value = vec![0u8; spec.value_len.max(8)];
                value[..8].copy_from_slice(&((client as u64) << 32 | write_counter).to_be_bytes());
                write_counter += 1;
                logical.push(LogicalOp::Put(key_index, value));
            } else {
                logical.push(LogicalOp::Get(key_index));
            }
        }
        logical_ops += logical.len();
        let ops = lower(logical, spec.batch, &keys, &router);
        register_ops += ops.len();
        loops.push(ClosedLoop {
            pid: ProcessId(client as u16),
            ops,
            think: spec.think,
            start_after: Micros(10 + client as u64 * 7),
        });
    }

    let mut schedule = Schedule::new();
    for &(at, pid, down_for) in &spec.crashes {
        schedule = schedule
            .at(at, PlannedEvent::Crash(ProcessId(pid)))
            .at(at + down_for, PlannedEvent::Recover(ProcessId(pid)));
    }

    KvRun {
        loops,
        schedule,
        keys,
        key_map,
        router,
        logical_ops,
        register_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = KvWorkloadSpec::default();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.keys, b.keys);
        for (la, lb) in a.loops.iter().zip(&b.loops) {
            assert_eq!(la.ops, lb.ops);
        }
        let c = generate(&KvWorkloadSpec { seed: 43, ..spec });
        assert!(a.loops.iter().zip(&c.loops).any(|(x, y)| x.ops != y.ops));
    }

    #[test]
    fn one_key_per_shard_and_injective_map() {
        let run = generate(&KvWorkloadSpec {
            shards: 16,
            ..KvWorkloadSpec::default()
        });
        assert_eq!(run.keys.len(), 16);
        assert!(run.key_map.is_injective());
    }

    #[test]
    fn single_writer_partitions_write_ownership() {
        let spec = KvWorkloadSpec {
            single_writer: true,
            write_fraction: 1.0,
            ops_per_client: 60,
            ..KvWorkloadSpec::default()
        };
        let run = generate(&spec);
        for (client, lp) in run.loops.iter().enumerate() {
            for op in &lp.ops {
                if let Op::WriteAt(reg, _) = op {
                    assert_eq!(
                        reg.0 as usize % spec.clients,
                        client,
                        "client {client} wrote a foreign shard {reg}"
                    );
                }
            }
        }
    }

    #[test]
    fn crashes_turn_into_schedule_pairs() {
        let run = generate(&KvWorkloadSpec {
            crashes: vec![(5_000, 1, 2_000)],
            ..KvWorkloadSpec::default()
        });
        assert_eq!(run.schedule.entries().len(), 2);
    }

    #[test]
    fn batched_lowering_coalesces_and_accounts() {
        let base = KvWorkloadSpec {
            shards: 8,
            clients: 3,
            ops_per_client: 40,
            distribution: KeyDist::Zipf(0.99),
            ..KvWorkloadSpec::default()
        };
        let unbatched = generate(&base);
        assert_eq!(unbatched.logical_ops, 120);
        assert_eq!(unbatched.register_ops, 120, "batch=1 lowers 1:1");
        let batched = generate(&KvWorkloadSpec { batch: 8, ..base });
        assert_eq!(batched.logical_ops, 120, "same workload");
        assert!(
            batched.register_ops < unbatched.register_ops,
            "coalescing must drop register ops ({} vs {})",
            batched.register_ops,
            unbatched.register_ops
        );
        assert_eq!(
            batched.register_ops,
            batched.loops.iter().map(|l| l.ops.len()).sum::<usize>()
        );
        // Every lowered write is decodable, single-key (injective
        // universe), and correctly routed.
        for lp in &batched.loops {
            for op in &lp.ops {
                if let Op::WriteAt(reg, payload) = op {
                    let entries = crate::codec::decode_entries(payload).expect("decodable");
                    assert_eq!(entries.len(), 1, "one key per shard ⇒ one entry");
                    assert_eq!(batched.router.register_for(&entries[0].0), *reg);
                }
            }
        }
    }

    #[test]
    fn batched_generation_is_deterministic() {
        let spec = KvWorkloadSpec {
            batch: 4,
            ..KvWorkloadSpec::default()
        };
        let a = generate(&spec);
        let b = generate(&spec);
        for (la, lb) in a.loops.iter().zip(&b.loops) {
            assert_eq!(la.ops, lb.ops);
        }
    }

    #[test]
    fn writes_are_valid_store_entries() {
        let run = generate(&KvWorkloadSpec {
            write_fraction: 1.0,
            ..KvWorkloadSpec::default()
        });
        for lp in &run.loops {
            for op in &lp.ops {
                let Op::WriteAt(reg, payload) = op else {
                    panic!("expected writes only")
                };
                let (key, _) = crate::codec::decode_entry(payload).expect("decodable entry");
                assert_eq!(run.router.register_for(&key), *reg);
            }
        }
    }
}
