//! The shard router: a pure, stable mapping from string keys onto the
//! registers of a shared memory.
//!
//! Determinism is the load-bearing property: every client, every process,
//! every incarnation after a crash, and every future run must route a key
//! to the same [`RegisterId`] — shard maps are never exchanged over the
//! network, the function *is* the map. The router therefore hashes with a
//! fixed, platform-independent FNV-1a (not `std`'s `DefaultHasher`, whose
//! output is unspecified across releases and randomized per process).

use rmem_types::RegisterId;

/// Stable 64-bit FNV-1a over the key bytes.
///
/// Exposed so tests and tooling can reason about placements without a
/// router instance.
pub fn stable_hash(key: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Routes keys to shards (= registers of a `SharedMemoryAutomaton`).
///
/// # Example
///
/// ```
/// use rmem_kv::ShardRouter;
///
/// let router = ShardRouter::new(8);
/// let reg = router.register_for("user:42");
/// // Same key, same shard — here, on every node, after every restart.
/// assert_eq!(router.register_for("user:42"), reg);
/// assert!(reg.0 < 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u16,
}

impl ShardRouter {
    /// A router over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: u16) -> Self {
        assert!(shards > 0, "a shard router needs at least one shard");
        ShardRouter { shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// The shard index of `key` (in `0..shards`).
    pub fn shard_of(&self, key: &str) -> u16 {
        (stable_hash(key) % self.shards as u64) as u16
    }

    /// The register hosting `key`'s shard.
    pub fn register_for(&self, key: &str) -> RegisterId {
        RegisterId(self.shard_of(key))
    }

    /// Deterministically derives one key per shard from the naming scheme
    /// `"{prefix}{i}"`: for each shard, the first `i` (scanning from 0)
    /// whose key routes to it.
    ///
    /// The result is injective (one key per register, every shard
    /// covered), which is what makes per-register atomicity certificates
    /// readable as per-*key* certificates — workload generators and
    /// examples use this to build collision-free key universes.
    pub fn covering_keys(&self, prefix: &str) -> Vec<String> {
        let mut found: Vec<Option<String>> = vec![None; self.shards as usize];
        let mut remaining = self.shards as usize;
        let mut i = 0u64;
        while remaining > 0 {
            let key = format!("{prefix}{i}");
            let shard = self.shard_of(&key) as usize;
            if found[shard].is_none() {
                found[shard] = Some(key);
                remaining -= 1;
            }
            i += 1;
        }
        found
            .into_iter()
            .map(|k| k.expect("all shards covered"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_across_instances() {
        let a = ShardRouter::new(16);
        let b = ShardRouter::new(16);
        for key in ["a", "user:1", "ключ", "🔑", ""] {
            assert_eq!(a.register_for(key), b.register_for(key));
        }
    }

    #[test]
    fn known_hash_values_do_not_drift() {
        // Pinned FNV-1a test vectors: a silent hash change would reshuffle
        // every deployed shard map.
        assert_eq!(stable_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(stable_hash("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn shards_bound_register_ids() {
        let router = ShardRouter::new(3);
        for i in 0..1000 {
            assert!(router.shard_of(&format!("k{i}")) < 3);
        }
    }

    #[test]
    fn covering_keys_hit_every_shard_exactly_once() {
        let router = ShardRouter::new(8);
        let keys = router.covering_keys("key-");
        assert_eq!(keys.len(), 8);
        let mut seen = std::collections::BTreeSet::new();
        for (shard, key) in keys.iter().enumerate() {
            assert_eq!(router.shard_of(key) as usize, shard);
            assert!(seen.insert(key.clone()), "duplicate key {key}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardRouter::new(0);
    }
}
