//! The shard router: a pure, stable mapping from string keys onto the
//! registers of a shared memory.
//!
//! Determinism is the load-bearing property: every client, every process,
//! every incarnation after a crash, and every future run must route a key
//! to the same [`RegisterId`] — within one epoch, no shard map is ever
//! exchanged over the network, the function *is* the map. The router
//! therefore hashes with a fixed, platform-independent FNV-1a (not
//! `std`'s `DefaultHasher`, whose output is unspecified across releases
//! and randomized per process).
//!
//! # Addressing and minimal movement
//!
//! The shard of a key is computed with **linear-hashing addressing**
//! ([`shard_at`]), not a bare `hash % shards`: for power-of-two shard
//! counts the two coincide exactly, but linear hashing additionally gives
//! live resharding its crucial property — growing from `s` to `s + k`
//! shards only moves keys out of the [*split source*](split_sources)
//! shards, everything else stays put. That is what lets the epoch layer
//! ([`crate::epoch`]) migrate a handful of registers under a write
//! barrier instead of reshuffling the whole store.

use rmem_types::RegisterId;

/// Stable 64-bit FNV-1a over the key bytes.
///
/// Exposed so tests and tooling can reason about placements without a
/// router instance.
pub fn stable_hash(key: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Linear-hashing address of `hash` in a table of `shards` buckets
/// (Litwin's addressing): take the hash modulo the next power of two
/// `2^(ℓ+1) ≥ shards`; addresses beyond the table fold back by `2^ℓ`.
///
/// For a power-of-two `shards` this is exactly `hash % shards`. Its
/// defining property: growing the table from `s` to `s + 1` splits
/// exactly one bucket (`s - 2^ℓ`) between its old position and the new
/// bucket `s` — no other key moves.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn shard_at(hash: u64, shards: u16) -> u16 {
    assert!(shards > 0, "a shard table needs at least one bucket");
    let upper = (shards as u64).next_power_of_two();
    let addr = hash % upper;
    if addr >= shards as u64 {
        (addr - upper / 2) as u16
    } else {
        addr as u16
    }
}

/// The bucket a freshly created bucket `j` splits from: `j` with its top
/// bit cleared (the bucket whose keys fold onto `j` one level up).
///
/// # Panics
///
/// Panics if `j == 0` (the first bucket splits from nothing).
pub fn parent_of(j: u16) -> u16 {
    assert!(j > 0, "bucket 0 has no parent");
    let top = 1u16 << (15 - j.leading_zeros() as u16);
    j - top
}

/// The shards of an `old`-shard table whose keys may move when the table
/// grows to `new` shards — every other shard's keys provably stay put
/// (the minimal-movement property of linear hashing).
///
/// Each new bucket `j ∈ old..new` drains from its parent chain's first
/// member below `old`.
///
/// # Panics
///
/// Panics if `old == 0` or `new < old`.
pub fn split_sources(old: u16, new: u16) -> std::collections::BTreeSet<u16> {
    assert!(old > 0, "a shard table needs at least one bucket");
    assert!(new >= old, "shard tables only grow");
    let mut sources = std::collections::BTreeSet::new();
    for j in old..new {
        let mut b = j;
        while b >= old {
            b = parent_of(b);
        }
        sources.insert(b);
    }
    sources
}

/// Routes keys to shards (= registers of a `SharedMemoryAutomaton`).
///
/// # Example
///
/// ```
/// use rmem_kv::ShardRouter;
///
/// let router = ShardRouter::new(8);
/// let reg = router.register_for("user:42");
/// // Same key, same shard — here, on every node, after every restart.
/// assert_eq!(router.register_for("user:42"), reg);
/// assert!(reg.0 < 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u16,
}

impl ShardRouter {
    /// A router over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: u16) -> Self {
        assert!(shards > 0, "a shard router needs at least one shard");
        ShardRouter { shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// The shard index of `key` (in `0..shards`; linear-hashing
    /// addressing, see [`shard_at`]).
    pub fn shard_of(&self, key: &str) -> u16 {
        shard_at(stable_hash(key), self.shards)
    }

    /// The register hosting `key`'s shard.
    ///
    /// This is the *simulation* numbering (register = shard index). The
    /// epoch layer offsets data registers by one to reserve register 0
    /// for the shard map — see [`crate::epoch::ShardMap::register_for`].
    pub fn register_for(&self, key: &str) -> RegisterId {
        RegisterId(self.shard_of(key))
    }

    /// Deterministically derives one key per shard from the naming scheme
    /// `"{prefix}{i}"`: for each shard, the first `i` (scanning from 0)
    /// whose key routes to it.
    ///
    /// The result is injective (one key per register, every shard
    /// covered), which is what makes per-register atomicity certificates
    /// readable as per-*key* certificates — workload generators and
    /// examples use this to build collision-free key universes.
    pub fn covering_keys(&self, prefix: &str) -> Vec<String> {
        let mut found: Vec<Option<String>> = vec![None; self.shards as usize];
        let mut remaining = self.shards as usize;
        let mut i = 0u64;
        while remaining > 0 {
            let key = format!("{prefix}{i}");
            let shard = self.shard_of(&key) as usize;
            if found[shard].is_none() {
                found[shard] = Some(key);
                remaining -= 1;
            }
            i += 1;
        }
        found
            .into_iter()
            .map(|k| k.expect("all shards covered"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_across_instances() {
        let a = ShardRouter::new(16);
        let b = ShardRouter::new(16);
        for key in ["a", "user:1", "ключ", "🔑", ""] {
            assert_eq!(a.register_for(key), b.register_for(key));
        }
    }

    #[test]
    fn known_hash_values_do_not_drift() {
        // Pinned FNV-1a test vectors: a silent hash change would reshuffle
        // every deployed shard map.
        assert_eq!(stable_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(stable_hash("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn power_of_two_addressing_is_plain_modulo() {
        // The pre-epoch router was `hash % shards` for the power-of-two
        // counts every deployment uses; linear hashing must not move a
        // single one of those placements.
        for shards in [1u16, 2, 4, 8, 16, 64, 256] {
            for i in 0..500u64 {
                let h = stable_hash(&format!("k{i}"));
                assert_eq!(shard_at(h, shards), (h % shards as u64) as u16);
            }
        }
    }

    #[test]
    fn shards_bound_register_ids() {
        for shards in [3u16, 5, 7, 12, 100] {
            let router = ShardRouter::new(shards);
            for i in 0..1000 {
                assert!(router.shard_of(&format!("k{i}")) < shards);
            }
        }
    }

    #[test]
    fn growing_one_shard_splits_exactly_one_bucket() {
        for s in 1u16..40 {
            let sources = split_sources(s, s + 1);
            assert_eq!(sources.len(), 1, "{s} -> {} split {sources:?}", s + 1);
            // And keys only ever leave that bucket.
            for i in 0..2000u64 {
                let h = stable_hash(&format!("g{i}"));
                let (old, new) = (shard_at(h, s), shard_at(h, s + 1));
                if old != new {
                    assert!(sources.contains(&old));
                    assert_eq!(new, s, "a moved key lands in the new bucket");
                }
            }
        }
    }

    #[test]
    fn doubling_splits_every_bucket_to_its_image() {
        // 4 → 8: each bucket i splits into {i, i+4}.
        assert_eq!(
            split_sources(4, 8).into_iter().collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        for i in 0..4000u64 {
            let h = stable_hash(&format!("d{i}"));
            let (old, new) = (shard_at(h, 4), shard_at(h, 8));
            assert!(new == old || new == old + 4);
        }
    }

    #[test]
    fn parent_chain_reaches_below() {
        assert_eq!(parent_of(4), 0);
        assert_eq!(parent_of(5), 1);
        assert_eq!(parent_of(9), 1);
        assert_eq!(parent_of(13), 5);
        // 5 → 16 drains buckets created mid-grow through their chain.
        let sources = split_sources(5, 16);
        assert!(sources.iter().all(|&b| b < 5));
    }

    #[test]
    fn covering_keys_hit_every_shard_exactly_once() {
        let router = ShardRouter::new(8);
        let keys = router.covering_keys("key-");
        assert_eq!(keys.len(), 8);
        let mut seen = std::collections::BTreeSet::new();
        for (shard, key) in keys.iter().enumerate() {
            assert_eq!(router.shard_of(key) as usize, shard);
            assert!(seen.insert(key.clone()), "duplicate key {key}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardRouter::new(0);
    }
}
