//! Property tests for the shard router and the per-key certification
//! pipeline (the locality story, end to end), plus the epoch layer's
//! routing properties: same-epoch determinism across clients and the
//! minimal-movement guarantee of linear-hash splits.

use proptest::prelude::*;
use rmem_consistency::Criterion;
use rmem_kv::history::{certify_per_key, KeyMap};
use rmem_kv::router::split_sources;
use rmem_kv::{codec, ShardMap, ShardRouter};
use rmem_types::{Op, OpResult, ProcessId};

fn arb_key() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9_:/.-]{1,32}").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The mapping is a pure function of the key: two routers built
    /// independently (different "processes"/"restarts") agree on every
    /// key.
    #[test]
    fn routing_is_deterministic_across_instances(
        keys in proptest::collection::vec(arb_key(), 1..40),
        shards in 1u16..64,
    ) {
        let before_restart = ShardRouter::new(shards);
        let after_restart = ShardRouter::new(shards);
        for key in &keys {
            prop_assert_eq!(
                before_restart.register_for(key),
                after_restart.register_for(key),
                "key {:?} moved across restarts", key
            );
        }
    }

    /// Shard indices stay in range for arbitrary keys and shard counts.
    #[test]
    fn shards_stay_in_range(key in arb_key(), shards in 1u16..512) {
        let router = ShardRouter::new(shards);
        prop_assert!(router.shard_of(&key) < shards);
    }

    /// The derived covering key set hits every shard exactly once, for any
    /// shard count and prefix.
    #[test]
    fn covering_keys_cover_all_shards(
        shards in 1u16..48,
        prefix in proptest::string::string_regex("[a-z]{0,6}").unwrap(),
    ) {
        let router = ShardRouter::new(shards);
        let keys = router.covering_keys(&prefix);
        prop_assert_eq!(keys.len() as u16, shards);
        let mut hit = vec![false; shards as usize];
        for key in &keys {
            let s = router.shard_of(key) as usize;
            prop_assert!(!hit[s], "shard {} covered twice", s);
            hit[s] = true;
        }
        prop_assert!(hit.iter().all(|&h| h));
    }

    /// Entry payloads roundtrip for arbitrary keys, values and epoch
    /// stamps.
    #[test]
    fn codec_roundtrips(
        key in arb_key(),
        value in proptest::collection::vec(any::<u8>(), 0..256),
        epoch in any::<u8>(),
    ) {
        let payload = codec::encode_entry(&key, &bytes::Bytes::from(value.clone()), epoch);
        let (k, v) = codec::decode_entry(&payload).expect("decodes");
        prop_assert_eq!(k, key);
        prop_assert_eq!(v.as_ref(), value.as_slice());
        prop_assert_eq!(codec::payload_epoch(&payload), Some(epoch));
    }

    /// Same-epoch routing is deterministic across clients: two shard maps
    /// built independently from the same epoch record agree on every key,
    /// on both the current and the previous routing.
    #[test]
    fn same_epoch_routing_is_deterministic_across_clients(
        keys in proptest::collection::vec(arb_key(), 1..32),
        old_shards in 1u16..48,
        grow_by in 0u16..16,
        epoch in 0u64..1000,
    ) {
        let map_a = ShardMap { epoch, shards: old_shards + grow_by, prev_shards: old_shards };
        // A second client decodes the same published record.
        let map_b = ShardMap::decode(&map_a.encode()).expect("decodes");
        prop_assert_eq!(map_a, map_b);
        for key in &keys {
            prop_assert_eq!(map_a.register_for(key), map_b.register_for(key));
            prop_assert_eq!(map_a.old_register_for(key), map_b.old_register_for(key));
            prop_assert_eq!(map_a.shard_of(key), map_b.shard_of(key));
        }
    }

    /// Minimal movement: a split from `s` to `s + k` shards moves only
    /// keys owned by the split-source shards — every key either keeps its
    /// shard or leaves a split source for one of the new shards; keys of
    /// non-source shards never move.
    #[test]
    fn split_moves_only_split_source_keys(
        keys in proptest::collection::vec(arb_key(), 1..64),
        s in 1u16..48,
        k in 1u16..16,
    ) {
        let before = ShardRouter::new(s);
        let after = ShardRouter::new(s + k);
        let sources = split_sources(s, s + k);
        for key in &keys {
            let (old, new) = (before.shard_of(key), after.shard_of(key));
            if old != new {
                prop_assert!(
                    sources.contains(&old),
                    "key {:?} moved out of non-source shard {} ({} -> {} shards)",
                    key, old, s, s + k
                );
                prop_assert!(
                    new >= s,
                    "a moved key must land in a newly created shard, got {}",
                    new
                );
            }
        }
        // The source set never names a shard that does not exist yet.
        prop_assert!(sources.iter().all(|&b| b < s));
    }

    /// Injectivity survives a split: a universe with at most one key per
    /// shard before the split keeps at most one key per shard after it
    /// (what lets covering keys of the old router certify across epochs).
    #[test]
    fn injectivity_survives_splits(s in 1u16..24, k in 1u16..16) {
        let before = ShardRouter::new(s);
        let after = ShardRouter::new(s + k);
        let keys = before.covering_keys("inj-");
        let mut seen = std::collections::BTreeSet::new();
        for key in &keys {
            prop_assert!(
                seen.insert(after.shard_of(key)),
                "two old-injective keys collided after {} -> {}",
                s, s + k
            );
        }
    }

    /// Locality end to end: a random multi-key sequential store history
    /// (every read returns the latest value of *its* key) certifies
    /// per key under both criteria.
    #[test]
    fn multi_key_history_sliced_per_key_passes(
        steps in proptest::collection::vec((0u16..3, any::<bool>(), 0usize..8, 1u32..5), 1..24),
        shards in 8u16..16,
    ) {
        let router = ShardRouter::new(shards);
        let keys = router.covering_keys("key-");
        let map = KeyMap::new(&router, keys.iter().map(String::as_str));
        prop_assert!(map.is_injective());

        let mut h = rmem_consistency::History::new();
        let mut latest: Vec<Option<u32>> = vec![None; keys.len()];
        for (pid, is_write, key_index, v) in steps {
            let key = &keys[key_index % keys.len()];
            let reg = router.register_for(key);
            let latest = &mut latest[key_index % keys.len()];
            if is_write {
                let payload = codec::encode_entry(key, &bytes::Bytes::from(v.to_be_bytes().to_vec()), 0);
                let op = h.invoke(ProcessId(pid), Op::WriteAt(reg, payload));
                h.reply(op, OpResult::Written);
                *latest = Some(v);
            } else {
                let result = match *latest {
                    Some(v) => OpResult::ReadValue(
                        codec::encode_entry(key, &bytes::Bytes::from(v.to_be_bytes().to_vec()), 0),
                    ),
                    None => OpResult::ReadValue(rmem_types::Value::bottom()),
                };
                let op = h.invoke(ProcessId(pid), Op::ReadAt(reg));
                h.reply(op, result);
            }
        }

        let persistent = certify_per_key(&h, &map, Criterion::Persistent);
        prop_assert!(persistent.is_ok(), "persistent: {:?}", persistent.err());
        let transient = certify_per_key(&h, &map, Criterion::Transient);
        prop_assert!(transient.is_ok(), "transient: {:?}", transient.err());
    }
}
