//! End-to-end: simulated store runs — skewed traffic, crashes and
//! recoveries — certified atomic per key.

use rmem_consistency::Criterion;
use rmem_core::{Persistent, SharedMemory, Transient};
use rmem_kv::history::certify_per_key;
use rmem_kv::workload::{generate, KeyDist, KvWorkloadSpec};
use rmem_sim::{ClusterConfig, SimReport, Simulation};

fn run(
    spec: &KvWorkloadSpec,
    flavor: rmem_core::Flavor,
    seed: u64,
) -> (SimReport, rmem_kv::KeyMap) {
    let kv_run = generate(spec);
    let mut sim = Simulation::new(
        ClusterConfig::new(spec.clients),
        SharedMemory::factory(flavor),
        seed,
    )
    .with_schedule(kv_run.schedule.clone());
    for lp in &kv_run.loops {
        sim.add_closed_loop(lp.clone());
    }
    (sim.run(), kv_run.key_map)
}

/// The acceptance run: ≥ 8 shards, ≥ 3 clients, a crash and a recovery
/// mid-traffic, certified atomic per key by the checker.
#[test]
fn crashy_store_run_is_certified_atomic_per_key() {
    let spec = KvWorkloadSpec {
        shards: 8,
        clients: 3,
        ops_per_client: 25,
        write_fraction: 0.5,
        distribution: KeyDist::Zipf(0.99),
        crashes: vec![(8_000, 1, 4_000)],
        ..KvWorkloadSpec::default()
    };
    let (report, key_map) = run(&spec, Persistent::flavor(), 11);
    assert!(report.trace.crashes >= 1, "the crash must have happened");
    assert!(
        report.trace.recoveries >= 1,
        "the recovery must have happened"
    );
    let h = report.trace.to_history();
    let cert = certify_per_key(&h, &key_map, Criterion::Persistent)
        .expect("persistent store run must certify per key");
    assert!(!cert.per_key.is_empty(), "traffic must have touched keys");
}

/// The transient flavor certifies under its own (weaker) criterion.
#[test]
fn transient_store_run_is_certified_transient_per_key() {
    let spec = KvWorkloadSpec {
        shards: 8,
        ..KvWorkloadSpec::default()
    };
    let (report, key_map) = run(&spec, Transient::flavor(), 5);
    let h = report.trace.to_history();
    certify_per_key(&h, &key_map, Criterion::Transient)
        .expect("transient store run must certify per key");
}

/// Uniform and Zipf workloads both complete all their operations under a
/// crash-free run (closed loops terminate).
#[test]
fn workload_operations_all_terminate() {
    for dist in [KeyDist::Uniform, KeyDist::Zipf(0.99)] {
        let spec = KvWorkloadSpec {
            shards: 12,
            clients: 4,
            ops_per_client: 15,
            distribution: dist,
            ..KvWorkloadSpec::default()
        };
        let (report, _) = run(&spec, Persistent::flavor(), 3);
        let completed = report
            .trace
            .operations()
            .iter()
            .filter(|o| o.is_completed())
            .count();
        assert_eq!(completed, 4 * 15, "{dist:?}: all operations must complete");
    }
}

/// Batched runs (per-shard coalesced rounds, the `rmem-batch` model) stay
/// certified per key — the per-key checker is the correctness oracle of
/// the batching subsystem — including through a crash.
#[test]
fn batched_store_run_is_certified_atomic_per_key() {
    let spec = KvWorkloadSpec {
        shards: 8,
        clients: 3,
        ops_per_client: 32,
        batch: 8,
        distribution: KeyDist::Zipf(0.99),
        crashes: vec![(8_000, 1, 4_000)],
        ..KvWorkloadSpec::default()
    };
    let kv_run = generate(&spec);
    assert!(
        kv_run.register_ops < kv_run.logical_ops,
        "the batched run must actually coalesce"
    );
    let (report, key_map) = run(&spec, Persistent::flavor(), 11);
    let h = report.trace.to_history();
    let cert = certify_per_key(&h, &key_map, Criterion::Persistent)
        .expect("batched persistent store run must certify per key");
    assert!(!cert.per_key.is_empty());
}

/// Several seeds, several crash points: the certificate holds across the
/// space (a cheap randomized sweep on top of the scripted acceptance run).
#[test]
fn certification_holds_across_seeds_and_crash_points() {
    for (seed, crash_at) in [(1u64, 5_000u64), (2, 9_000), (3, 14_000)] {
        let spec = KvWorkloadSpec {
            shards: 8,
            clients: 3,
            ops_per_client: 12,
            distribution: KeyDist::Zipf(0.8),
            crashes: vec![(crash_at, (seed % 3) as u16, 3_000)],
            seed,
            ..KvWorkloadSpec::default()
        };
        let (report, key_map) = run(&spec, Persistent::flavor(), seed);
        let h = report.trace.to_history();
        certify_per_key(&h, &key_map, Criterion::Persistent).unwrap_or_else(|e| {
            panic!("seed {seed}, crash at {crash_at}: {e}");
        });
    }
}
