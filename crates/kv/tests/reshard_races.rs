//! Migration fault injection: concurrent get/put traffic during a live
//! 4 → 8 shard split, with crash schedules that kill and recover a
//! minority mid-migration. Every run is recorded and must pass
//! **cross-epoch per-key certification** (`certify_per_key_epochs`), and
//! the write barrier must never deadlock: every operation either
//! completes or fails with a definite non-barrier error within its
//! bounded wait.
//!
//! The sweep runs ≥ 12 seeds; each seed varies the Zipf traffic, the
//! victim node, the crash timing relative to the split, and the outage
//! length. CI additionally runs `single_seed_smoke` as its own step.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmem_consistency::Criterion;
use rmem_core::{SharedMemory, Transient};
use rmem_kv::{
    certify_per_key_epochs, EpochTransition, KvClient, KvError, OpRecorder, ShardRouter,
};
use rmem_net::{FaultSchedule, LocalCluster};
use rmem_sim::KeyDistribution;
use rmem_types::ProcessId;

const OLD_SHARDS: u16 = 4;
const NEW_SHARDS: u16 = 8;
const TRAFFIC_THREADS: u64 = 3;
const OPS_PER_THREAD: usize = 50;

/// Debug aid: prints a recorded history with decoded payload summaries.
fn dump_history(history: &rmem_consistency::History) {
    use rmem_consistency::Event;
    use rmem_types::{Op, OpResult};
    let summarize = |v: &rmem_types::Value| -> String {
        if v.is_bottom() {
            return "⊥".into();
        }
        if rmem_kv::codec::is_seal(v) {
            return format!("seal(e{})", rmem_kv::codec::payload_epoch(v).unwrap_or(255));
        }
        match rmem_kv::codec::decode_entries(v) {
            Some(entries) => entries
                .iter()
                .map(|(k, val)| {
                    format!(
                        "{k}={:02x?}(e{})",
                        &val[..val.len().min(8)],
                        rmem_kv::codec::payload_epoch(v).unwrap_or(255)
                    )
                })
                .collect::<Vec<_>>()
                .join(","),
            None => format!("raw:{:02x?}", &v.bytes()[..v.bytes().len().min(6)]),
        }
    };
    for (i, event) in history.events().iter().enumerate() {
        match event {
            Event::Invoke { op, operation } => match operation {
                Op::WriteAt(reg, v) => eprintln!("{i:4} {op:?} W {reg} {}", summarize(v)),
                Op::ReadAt(reg) => eprintln!("{i:4} {op:?} R {reg}"),
                other => eprintln!("{i:4} {op:?} {other:?}"),
            },
            Event::Reply { op, result } => match result {
                OpResult::ReadValue(v) => eprintln!("{i:4} {op:?} -> {}", summarize(v)),
                other => eprintln!("{i:4} {op:?} -> {other:?}"),
            },
            Event::Crash { pid } => eprintln!("{i:4} CRASH {pid}"),
            Event::Recover { pid } => eprintln!("{i:4} RECOVER {pid}"),
        }
    }
}

struct RunOutcome {
    completed: u64,
    ambiguous: u64,
    barrier_waits: u64,
    barrier_polls: u64,
}

/// One seeded run: preload → concurrent Zipf traffic + minority crash
/// schedule + mid-run 4→8 grow → cross-epoch certification.
fn run_seed(seed: u64) -> RunOutcome {
    let mut cluster = LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap();
    let recorder = OpRecorder::new();
    // Patience well below the health cooldown: the first op to hit the
    // dead node pays one timeout and marks it for everyone; the barrier
    // budget covers a couple of timeouts' worth of migration stall.
    let kv = KvClient::new(cluster.clients(), ShardRouter::new(OLD_SHARDS))
        .unwrap()
        .with_op_timeout(Duration::from_millis(300))
        .with_health_cooldown(Duration::from_secs(2))
        .with_barrier_polls(4_096)
        .with_recorder(recorder.clone());

    // One key per pre-split shard: injective under both epochs (linear
    // hashing preserves injectivity across a split), which is what lets
    // the per-register certificates read as per-key ones.
    let keys = ShardRouter::new(OLD_SHARDS).covering_keys("rk-");
    for (i, key) in keys.iter().enumerate() {
        kv.put(key, vec![0, i as u8]).unwrap();
    }

    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
    // The crash schedule: kill one of the three nodes (a minority) in a
    // window overlapping the split, recover it before the run ends.
    let victim = ProcessId(rng.gen_range(0..3));
    let kill_at = Duration::from_millis(rng.gen_range(5..35));
    let down_for = Duration::from_millis(rng.gen_range(20..60));
    let grow_at = Duration::from_millis(rng.gen_range(10..30));
    let schedule = FaultSchedule::new().crash_for(kill_at, victim, down_for);

    let completed = AtomicU64::new(0);
    let ambiguous = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // Traffic: closed-loop clients with Zipf-skewed key popularity.
        for t in 0..TRAFFIC_THREADS {
            let client = kv.recorded_clone();
            let keys = &keys;
            let completed = &completed;
            let ambiguous = &ambiguous;
            let mut rng = StdRng::seed_from_u64(seed * 31 + t);
            scope.spawn(move || {
                let dist = KeyDistribution::zipf(keys.len(), 0.99);
                let mut counter = 0u64;
                for _ in 0..OPS_PER_THREAD {
                    let key = &keys[dist.sample(&mut rng)];
                    let outcome = if rng.gen_bool(0.5) {
                        counter += 1;
                        // Unique values give the certifier discriminating
                        // power: (thread, counter) tags.
                        let value = ((t + 1) << 32 | counter).to_be_bytes().to_vec();
                        client.put(key, value).map(|_| ())
                    } else {
                        client.get(key).map(|_| ())
                    };
                    match outcome {
                        Ok(()) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        // The bounded-wait assertion: a barrier that never
                        // cleared would surface here and fail the run.
                        Err(KvError::Barrier { key, shard }) => {
                            panic!(
                                "seed {seed}: write barrier deadlocked on {key:?} (shard {shard})"
                            )
                        }
                        // Ambiguous failures (node died under the op after
                        // failover) are legal — the recorder stores them as
                        // pending-plus-crash, exactly the model's story.
                        Err(_) => {
                            ambiguous.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(Duration::from_micros(rng.gen_range(0..300)));
                }
            });
        }
        // The migration driver: a live 4 → 8 split mid-traffic.
        let grower = kv.recorded_clone();
        scope.spawn(move || {
            std::thread::sleep(grow_at);
            let report = grower.grow(NEW_SHARDS).unwrap();
            assert_eq!(report.epoch, 1);
            assert_eq!(report.to_shards, NEW_SHARDS);
        });
        // The adversary: kill + recover the victim on the clock.
        let cluster = &mut cluster;
        scope.spawn(move || {
            schedule.run(cluster).unwrap();
        });
    });

    // The split committed despite the crash.
    let map = kv.shard_map();
    assert!(
        !map.is_migrating(),
        "seed {seed}: split must have committed"
    );
    assert_eq!(map.shards, NEW_SHARDS);
    assert_eq!(map.epoch, 1);

    // Cross-epoch per-key certification: the correctness oracle.
    let transition = EpochTransition {
        old_shards: OLD_SHARDS,
        new_shards: NEW_SHARDS,
    };
    let history = recorder.history();
    let cert = certify_per_key_epochs(
        &history,
        keys.iter().map(String::as_str),
        &transition,
        Criterion::Transient,
    )
    .unwrap_or_else(|e| {
        dump_history(&history);
        // The per-node flight recorders: what each runner actually did
        // (rounds, store queue→durable, group commits) around the
        // violation — evidence the decoded history alone cannot carry.
        eprintln!("{}", cluster.dump_flight_recorders(120));
        eprintln!("--- client flight recorder ---");
        eprintln!("{}", kv.flight_recorder().dump_timeline(120));
        // The stitched causal view: node rings + client ring merged into
        // per-op timelines with clock skew corrected — shows *which hop*
        // of which op went wrong, not just what each node saw locally.
        eprintln!(
            "{}",
            cluster.dump_stitched(kv.trace_ring_dump().into_iter().collect(), 5)
        );
        panic!("seed {seed}: cross-epoch certification failed: {e}")
    });
    assert_eq!(
        cert.per_key.len(),
        keys.len(),
        "seed {seed}: every key must be certified"
    );

    // Post-split sanity: every key serves, and new writes stick.
    for key in &keys {
        kv.put(key, b"final".to_vec()).unwrap();
        assert_eq!(kv.get(key).unwrap().as_deref(), Some(b"final".as_ref()));
    }

    let stats = kv.stats();
    RunOutcome {
        completed: completed.load(Ordering::Relaxed),
        ambiguous: ambiguous.load(Ordering::Relaxed),
        barrier_waits: stats.barrier_waits,
        barrier_polls: stats.barrier_polls,
    }
}

/// The CI smoke: one full seeded run (fault schedule + live split +
/// cross-epoch certification).
#[test]
fn single_seed_smoke() {
    let outcome = run_seed(0);
    assert!(
        outcome.completed > 0,
        "traffic must have flowed through the split"
    );
}

/// The seeded sweep: ≥ 12 seeds of concurrent traffic, minority crash
/// schedules and live splits — all certified, none deadlocked.
#[test]
fn sweep_reshard_under_faults() {
    let mut total_completed = 0;
    let mut total_ambiguous = 0;
    let mut total_barrier_waits = 0;
    let mut total_barrier_polls = 0;
    for seed in 1..=12 {
        let outcome = run_seed(seed);
        assert!(
            outcome.completed >= (TRAFFIC_THREADS * OPS_PER_THREAD as u64) / 2,
            "seed {seed}: most operations must complete (got {})",
            outcome.completed
        );
        total_completed += outcome.completed;
        total_ambiguous += outcome.ambiguous;
        total_barrier_waits += outcome.barrier_waits;
        total_barrier_polls += outcome.barrier_polls;
    }
    // Bounded wait, quantified across the sweep: barriered writers poll
    // the seal a handful of times, not anywhere near the failure cap
    // (every run above already proved none *hit* the cap).
    if total_barrier_waits > 0 {
        let mean_polls = total_barrier_polls as f64 / total_barrier_waits as f64;
        assert!(
            mean_polls < 64.0,
            "barriered writers should clear in a few polls, got mean {mean_polls:.1}"
        );
    }
    println!(
        "sweep: {total_completed} completed, {total_ambiguous} ambiguous, \
         {total_barrier_waits} barrier waits ({total_barrier_polls} polls)"
    );
}
