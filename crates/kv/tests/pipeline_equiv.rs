//! Depth-1 equivalence: the pipelined multi-key driver, run one op at a
//! time, is observationally the blocking client.
//!
//! The pipelined `multi_get`/`multi_put` share their register machinery
//! with `get`/`put` but drive it through a completely different engine
//! (event-driven reactor, completion routing, blocking fallback). This
//! sweep pins the equivalence at depth 1, where the two paths must be
//! indistinguishable:
//!
//! * 12 seeds of mixed reader/writer threads, each seed run twice — once
//!   through depth-1 pipelined batches, once through the blocking calls —
//!   and **both** recorded histories must certify per key;
//! * a quiescent twin (single thread, settled ops) must produce
//!   **identical** `KvOpStats` round counts on both paths — same reads,
//!   same writes, same quorum rounds, same fast-read count;
//! * the fast-read fraction of the concurrent sweep must be preserved
//!   across the two engines (the pipeline must not perturb the one-round
//!   fast path).

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmem_consistency::Criterion;
use rmem_core::{SharedMemory, Transient};
use rmem_kv::{certify_per_key_epoch_path, KvClient, KvOpStats, OpRecorder, ShardRouter};
use rmem_net::LocalCluster;
use rmem_sim::KeyDistribution;

const SHARDS: u16 = 16;
const TRAFFIC_THREADS: u64 = 3;
const OPS_PER_THREAD: usize = 40;

/// Which engine drives the workload's ops.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Drive {
    /// `multi_get(&[key])` / `multi_put(&[(key, value)])`: the pipelined
    /// reactor at depth 1.
    PipelinedDepth1,
    /// `get(key)` / `put(key, value)`: the blocking path.
    Blocking,
}

fn cluster_kv(recorder: &OpRecorder) -> (LocalCluster, KvClient) {
    let cluster = LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap();
    let kv = KvClient::new(cluster.clients(), ShardRouter::new(SHARDS))
        .unwrap()
        .with_recorder(recorder.clone());
    (cluster, kv)
}

fn do_put(kv: &KvClient, drive: Drive, key: &str, value: Vec<u8>) {
    match drive {
        Drive::PipelinedDepth1 => kv
            .multi_put(&[(key, bytes::Bytes::from(value))])
            .expect("depth-1 pipelined put must complete"),
        Drive::Blocking => kv.put(key, value).expect("blocking put must complete"),
    }
}

fn do_get(kv: &KvClient, drive: Drive, key: &str) -> Option<bytes::Bytes> {
    match drive {
        Drive::PipelinedDepth1 => kv
            .multi_get(&[key])
            .expect("depth-1 pipelined get must complete")
            .pop()
            .expect("one key in, one slot out"),
        Drive::Blocking => kv.get(key).expect("blocking get must complete"),
    }
}

/// One seeded concurrent run under `drive`: preload, mixed Zipf traffic
/// from several threads, then per-key certification of the recorded
/// history. Returns the run's op stats.
fn run_concurrent_seed(seed: u64, drive: Drive) -> KvOpStats {
    let recorder = OpRecorder::new();
    let (mut cluster, kv) = cluster_kv(&recorder);
    let keys = kv.router().covering_keys("eq-");
    for (i, key) in keys.iter().enumerate() {
        do_put(&kv, drive, key, vec![0, i as u8]);
    }

    std::thread::scope(|scope| {
        for t in 0..TRAFFIC_THREADS {
            let client = kv.recorded_clone();
            let keys = &keys;
            let mut rng = StdRng::seed_from_u64(seed * 131 + t);
            scope.spawn(move || {
                let dist = KeyDistribution::zipf(keys.len(), 0.99);
                let mut counter = 0u64;
                for _ in 0..OPS_PER_THREAD {
                    let key = &keys[dist.sample(&mut rng)];
                    if rng.gen_bool(0.5) {
                        counter += 1;
                        // Unique (thread, counter) values give the
                        // certifier discriminating power.
                        let value = ((t + 1) << 32 | counter).to_be_bytes().to_vec();
                        do_put(&client, drive, key, value);
                    } else {
                        do_get(&client, drive, key);
                    }
                    std::thread::sleep(Duration::from_micros(rng.gen_range(0..300)));
                }
            });
        }
    });

    let history = recorder.history();
    certify_per_key_epoch_path(
        &history,
        keys.iter().map(String::as_str),
        &[SHARDS],
        Criterion::Transient,
    )
    .unwrap_or_else(|e| {
        eprintln!("{}", cluster.dump_flight_recorders(120));
        panic!("seed {seed} ({drive:?}): certification failed: {e}")
    });
    let stats = kv.stats();
    cluster.shutdown();
    stats
}

/// The 12-seed sweep: every seed certifies under both engines, and the
/// aggregate fast-read fraction is preserved across them.
#[test]
fn sweep_depth1_matches_blocking_and_certifies() {
    let mut agg = [KvOpStats::default(), KvOpStats::default()];
    for seed in 0..12u64 {
        for (slot, drive) in [Drive::PipelinedDepth1, Drive::Blocking]
            .into_iter()
            .enumerate()
        {
            let stats = run_concurrent_seed(seed, drive);
            assert!(
                stats.reads > 0 && stats.writes > 0,
                "seed {seed} ({drive:?}): traffic must have flowed"
            );
            agg[slot].reads += stats.reads;
            agg[slot].read_rounds += stats.read_rounds;
            agg[slot].fast_reads += stats.fast_reads;
            agg[slot].writes += stats.writes;
            agg[slot].write_rounds += stats.write_rounds;
        }
    }
    let [pipelined, blocking] = agg;
    assert!(
        pipelined.fast_reads > 0 && blocking.fast_reads > 0,
        "both engines must exercise the fast path"
    );
    let drift = (pipelined.fast_read_fraction() - blocking.fast_read_fraction()).abs();
    assert!(
        drift < 0.2,
        "depth-1 pipelining must preserve the fast-read fraction: \
         pipelined {:.3} vs blocking {:.3}",
        pipelined.fast_read_fraction(),
        blocking.fast_read_fraction()
    );
}

/// The quiescent twin: a single-threaded, settled op sequence must yield
/// **identical** round counts through both engines — same number of
/// recorded reads/writes, same quorum rounds, and every read on the
/// fast path.
#[test]
fn quiescent_twin_has_identical_round_counts() {
    let mut outcomes = Vec::new();
    for drive in [Drive::PipelinedDepth1, Drive::Blocking] {
        let recorder = OpRecorder::new();
        let (mut cluster, kv) = cluster_kv(&recorder);
        let keys = kv.router().covering_keys("tw-");
        for (i, key) in keys.iter().enumerate() {
            do_put(&kv, drive, key, vec![i as u8; 8]);
            // Settle: the propagate round finishes everywhere, so the
            // following reads deterministically fast-path.
            std::thread::sleep(Duration::from_millis(5));
            assert_eq!(
                do_get(&kv, drive, key).as_deref(),
                Some(vec![i as u8; 8].as_slice()),
                "{drive:?}: the settled read must observe the write"
            );
            assert!(do_get(&kv, drive, key).is_some());
        }
        certify_per_key_epoch_path(
            &recorder.history(),
            keys.iter().map(String::as_str),
            &[SHARDS],
            Criterion::Transient,
        )
        .unwrap_or_else(|e| panic!("{drive:?}: quiescent twin failed certification: {e}"));
        let stats = kv.stats();
        assert_eq!(
            stats.fast_reads, stats.reads,
            "{drive:?}: every quiescent read must take the fast path"
        );
        outcomes.push(stats);
        cluster.shutdown();
    }
    assert_eq!(
        outcomes[0], outcomes[1],
        "the quiescent twin must produce identical op stats through the \
         pipelined and blocking engines"
    );
}
