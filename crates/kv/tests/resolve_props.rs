//! Property coverage for the resolve() idempotency invariant (see
//! `rmem_kv::exactly_once`): **a resolved-`NotLanded` op may never later
//! become visible, and retrying a `Landed` op is a no-op.**
//!
//! Each property spins a real 3-node channel cluster per case, so the
//! case counts are deliberately low — these are randomized integration
//! probes over the crash/recovery surface, not number-theoretic sweeps:
//!
//! * **duplicate delivery** — the same `Sent` intent replayed through
//!   several recovering clients carries exactly one store effect;
//! * **resolve-before-ack** — resolving a staged (`Prepared`) op before
//!   its owner sends fences the owner forever;
//! * **resolve-after-crash-mid-round** — a recovery sweep over a
//!   reopened on-disk journal settles every op definitively while the
//!   orphaned write is still racing it;
//! * **double-resolve** — repeated resolves, from the crashed handle and
//!   from clones, always agree (with the verdict memoized durably).

use proptest::prelude::*;
use proptest::TestCaseError;
use rmem_core::{SharedMemory, Transient};
use rmem_kv::history::check_store_exactly_once;
use rmem_kv::{codec, CrashPoint, KvClient, KvError, OpRecorder, Resolution, ShardRouter};
use rmem_net::LocalCluster;
use rmem_storage::{Intent, IntentJournal, IntentState, MemStorage};
use rmem_types::OpTag;

fn cluster() -> LocalCluster {
    LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap()
}

fn mem_journal() -> IntentJournal {
    IntentJournal::with_storage(Box::new(MemStorage::new())).unwrap()
}

fn eo_client(cluster: &LocalCluster, id: u16) -> KvClient {
    KvClient::new(cluster.clients(), ShardRouter::new(4))
        .unwrap()
        .with_exactly_once(id, mem_journal())
}

fn arb_key() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9_.-]{1,24}").unwrap()
}

fn arb_value() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..32)
}

fn arb_crash_point() -> impl Strategy<Value = CrashPoint> {
    prop_oneof![
        Just(CrashPoint::PreSend),
        Just(CrashPoint::MidRound),
        Just(CrashPoint::PostQuorum),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Duplicate delivery: the same `Sent` intent (one tag, one value)
    /// replayed through several recovering clients — each a fresh client
    /// over a journal still holding the op — resolves `Landed` every
    /// time, leaves exactly the op's value under exactly its tag, and
    /// the recorded history carries **one** application of the tag.
    #[test]
    fn duplicate_delivery_carries_one_effect(
        key in arb_key(),
        value in arb_value(),
        deliveries in 1usize..4,
    ) {
        let mut cluster = cluster();
        let recorder = OpRecorder::new();
        let tag = OpTag::new(7, 0);
        for _ in 0..deliveries {
            // A recovering incarnation: its journal says `Sent`, the
            // datagrams' fate unknown. The first resolve re-issues under
            // the tag; later ones observe the tag and touch nothing.
            let mut journal = mem_journal();
            journal
                .begin(Intent {
                    tag,
                    key: key.clone(),
                    value: value.clone().into(),
                    state: IntentState::Sent,
                })
                .unwrap();
            let kv = KvClient::new(cluster.clients(), ShardRouter::new(4))
                .unwrap()
                .with_recorder(recorder.clone())
                .with_exactly_once(7, journal);
            prop_assert_eq!(kv.resolve(tag).unwrap(), Resolution::Landed { tag });
            prop_assert!(kv.pending_intents().is_empty());
        }
        let kv = KvClient::new(cluster.clients(), ShardRouter::new(4)).unwrap();
        let got = kv.get(&key).unwrap();
        prop_assert_eq!(got.as_deref(), Some(value.as_slice()));
        let reg = kv.shard_map().register_for(&key);
        let payload = kv.raw_read(reg, "inspect").unwrap();
        prop_assert_eq!(codec::payload_op_tag(&payload), Some(tag));
        let report = check_store_exactly_once(&recorder.history())
            .map_err(|dup| TestCaseError::fail(format!("duplicate application: {dup:?}")))?;
        prop_assert_eq!(report.logical_ops, 1, "one tag, one logical write");
        prop_assert!(
            report.retries as usize <= deliveries,
            "at most one physical write per delivery"
        );
        cluster.shutdown();
    }

    /// Resolve-before-ack: a staged op resolved before its owner issues
    /// it is `NotLanded` — and that verdict can never be invalidated.
    /// However many times the owner retries `send_put`, it stays fenced
    /// and the key stays invisible.
    #[test]
    fn resolve_before_ack_fences_the_owner(
        key in arb_key(),
        value in arb_value(),
        retries in 1usize..4,
    ) {
        let mut cluster = cluster();
        let kv = eo_client(&cluster, 3);
        let tag = kv.begin_put(&key, value).unwrap();
        // The recovery sweep (e.g. from a clone of the family) wins the
        // fence race before the owner's send.
        prop_assert_eq!(kv.clone().resolve(tag).unwrap(), Resolution::NotLanded);
        for _ in 0..retries {
            prop_assert!(matches!(kv.send_put(tag), Err(KvError::Fenced { .. })));
            prop_assert_eq!(kv.resolve(tag).unwrap(), Resolution::NotLanded);
        }
        prop_assert_eq!(kv.get(&key).unwrap(), None);
        cluster.shutdown();
    }

    /// Resolve-after-crash-mid-round: the client crashes with its write
    /// still being driven by the register layer; a **fresh client over
    /// the reopened on-disk journal** (the real recovery path) sweeps the
    /// journal and must settle the op to `Landed` with the value visible,
    /// racing the orphaned write the whole time.
    #[test]
    fn resolve_after_mid_round_crash_settles_from_reopened_journal(
        key in arb_key(),
        value in arb_value(),
        case in 0u64..10_000,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "rmem-resolve-props-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cluster = cluster();
        let crashed = KvClient::new(cluster.clients(), ShardRouter::new(4))
            .unwrap()
            .with_exactly_once(5, IntentJournal::open(&dir).unwrap());
        let tag = crashed
            .crashed_put(&key, value.clone(), CrashPoint::MidRound)
            .unwrap();
        drop(crashed);
        let recovered = KvClient::new(cluster.clients(), ShardRouter::new(4))
            .unwrap()
            .with_exactly_once(5, IntentJournal::open(&dir).unwrap());
        let verdicts = recovered.resolve_all().unwrap();
        prop_assert_eq!(verdicts, vec![(tag, Resolution::Landed { tag })]);
        prop_assert!(recovered.pending_intents().is_empty());
        let got = recovered.get(&key).unwrap();
        prop_assert_eq!(got.as_deref(), Some(value.as_slice()));
        // Sequence allocation continues past the crashed op's identity.
        let next = recovered.begin_put(&key, b"next".to_vec()).unwrap();
        prop_assert!(next.seq > tag.seq);
        cluster.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Double-resolve agreement: however often and from however many
    /// handles an op is resolved — any crash point — every verdict is the
    /// same, and the store state matches it.
    #[test]
    fn double_resolve_always_agrees(
        key in arb_key(),
        value in arb_value(),
        point in arb_crash_point(),
        resolves in 2usize..5,
    ) {
        let mut cluster = cluster();
        let kv = eo_client(&cluster, 6);
        let tag = kv.crashed_put(&key, value.clone(), point).unwrap();
        let first = kv.resolve(tag).unwrap();
        for i in 0..resolves {
            // Alternate the crashed handle and a clone of the family.
            let verdict = if i % 2 == 0 {
                kv.resolve(tag).unwrap()
            } else {
                kv.clone().resolve(tag).unwrap()
            };
            prop_assert_eq!(verdict, first);
        }
        match first {
            Resolution::NotLanded => {
                prop_assert_eq!(point, CrashPoint::PreSend);
                prop_assert_eq!(kv.get(&key).unwrap(), None);
            }
            Resolution::Landed { tag: t } => {
                prop_assert_eq!(t, tag);
                let got = kv.get(&key).unwrap();
                prop_assert_eq!(got.as_deref(), Some(value.as_slice()));
            }
        }
        cluster.shutdown();
    }
}
