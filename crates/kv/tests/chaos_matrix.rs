//! The combined chaos matrix (see `rmem_kv::chaos`): seeded schedules
//! mixing node kill/recover windows, torn-WAL-tail recoveries, a live
//! 4 → 8 → 16 split chain and client crashes at every write phase, on a
//! 50-node cluster. Every surviving history must pass cross-epoch
//! certification (including the exactly-once duplicate check), and every
//! crashed client's ops must resolve to a definite verdict.
//!
//! CI runs `single_seed_smoke` (and the dedicated chaos-smoke job runs a
//! few seeds via `rmem-bench --chaos`); the full ≥ 12-seed sweep is the
//! release-mode acceptance run.

use std::collections::BTreeSet;

use rmem_consistency::Criterion;
use rmem_core::{Persistent, SharedMemory};
use rmem_kv::history::certify_per_key;
use rmem_kv::workload::{generate, KeyDist, KvWorkloadSpec};
use rmem_kv::{run_chaos, ChaosConfig, ChaosReport, Resolution};
use rmem_sim::{ChaosPlan, ClusterConfig, MatrixSpec, Simulation};

fn run_seed(seed: u64) -> ChaosReport {
    let cfg = ChaosConfig {
        seed,
        ..ChaosConfig::default()
    };
    match run_chaos(&cfg) {
        Ok(report) => report,
        Err(failure) => {
            eprintln!("{}", failure.dumps);
            panic!("{failure}");
        }
    }
}

fn check_report(report: &ChaosReport) {
    assert_eq!(
        report.certified_keys, 4,
        "seed {}: every key must be certified across the whole path",
        report.seed
    );
    for (client, tag, resolution) in &report.verdicts {
        // Definite by type; spot-check the tags belong to their clients.
        assert_eq!(tag.client, *client, "seed {}: foreign tag", report.seed);
        match resolution {
            Resolution::Landed { tag: t } => assert_eq!(t, tag),
            Resolution::NotLanded => {}
        }
    }
}

/// The CI smoke: one full seeded chaos run on the 50-node cluster.
#[test]
fn single_seed_smoke() {
    let report = run_seed(0);
    check_report(&report);
    assert!(report.completed > 0, "traffic must have flowed");
    assert!(report.faults_applied > 0, "faults must have fired");
}

/// The acceptance sweep: ≥ 12 seeds of combined faults — node windows,
/// torn tails, split chains, client crashes — all certified, all
/// resolved. Release-mode runs finish in well under a minute; debug
/// builds should prefer `single_seed_smoke`.
#[test]
#[ignore = "full 12-seed sweep; run explicitly (release mode recommended)"]
fn sweep_chaos_matrix() {
    let mut total_completed = 0;
    let mut total_faults = 0;
    let mut total_torn = 0;
    let mut total_verdicts = 0;
    for seed in 1..=12 {
        let report = run_seed(seed);
        check_report(&report);
        total_completed += report.completed;
        total_faults += report.faults_applied;
        total_torn += report.torn_tails;
        total_verdicts += report.verdicts.len();
    }
    assert!(total_completed > 0);
    assert!(
        total_torn > 0,
        "across 12 seeds some torn-tail recoveries must have happened"
    );
    println!(
        "chaos sweep: {total_completed} completed, {total_faults} faults \
         ({total_torn} torn tails), {total_verdicts} recovery verdicts"
    );
}

/// The sim-scale arm of the matrix: the same seeded plan generator
/// drives the discrete-event simulator at 100 processes — far past what
/// real threads afford — and the runs stay certified per key.
#[test]
fn des_scale_hundred_processes_certified() {
    for seed in [3u64, 17] {
        let processes = 100usize;
        let spec = KvWorkloadSpec {
            shards: 16,
            clients: processes,
            ops_per_client: 2,
            write_fraction: 0.6,
            // Uniform, not Zipf: certification cost grows with the number
            // of concurrent ops piled on one register, and 100 clients on
            // a Zipf-hot register push the checker's search past reason.
            distribution: KeyDist::Uniform,
            seed,
            ..KvWorkloadSpec::default()
        };
        let kv_run = generate(&spec);
        let plan = ChaosPlan::generate(&MatrixSpec {
            seed,
            processes,
            windows: 6,
            max_concurrent_down: 8,
            client_crashes: 0,
            horizon: rmem_types::Micros(40_000),
            ..MatrixSpec::default()
        });
        // Merge the plan's crash/recover windows into the workload's own
        // schedule: combined faults at a scale only virtual time affords.
        let mut schedule = kv_run.schedule.clone();
        let mut crashed = BTreeSet::new();
        for (at, event) in plan.schedule().entries() {
            schedule = schedule.at(at.as_micros(), event.clone());
            if let rmem_sim::PlannedEvent::Crash(pid) = event {
                crashed.insert(*pid);
            }
        }
        assert!(crashed.len() >= 6, "the plan must crash a spread of nodes");
        let mut sim = Simulation::new(
            ClusterConfig::new(processes),
            SharedMemory::factory(Persistent::flavor()),
            seed,
        )
        .with_schedule(schedule);
        for lp in &kv_run.loops {
            sim.add_closed_loop(lp.clone());
        }
        let report = sim.run();
        assert!(report.quiescent, "seed {seed}: the run must drain");
        assert!(report.trace.crashes >= 6, "the windows must have fired");
        let h = report.trace.to_history();
        certify_per_key(&h, &kv_run.key_map, Criterion::Persistent)
            .unwrap_or_else(|e| panic!("seed {seed}: 100-process run failed certification: {e}"));
    }
}
