//! Pipeline fault handling: timeouts, cancellation, and kill/recover
//! schedules against the event-driven client core.
//!
//! Three layers of assurance:
//!
//! 1. **abandonment** — a cancelled in-flight op's slot and scratch
//!    buffer are reclaimed immediately, its eventual ack is counted
//!    late and never delivered to the slot's next tenant;
//! 2. **dead-node fallback** — a batch whose home node is down still
//!    completes through the blocking failover path, firing
//!    `kv.retries`, and the recorded history certifies;
//! 3. **kill/recover mid-pipeline** — seeded [`FaultSchedule`] crash
//!    windows under concurrent batched traffic: no wedged waiter, no
//!    barrier deadlock, every surviving history certifies per key.
//!    Failures dump the per-node flight recorders and the client's own
//!    timeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmem_consistency::Criterion;
use rmem_core::{SharedMemory, Transient};
use rmem_kv::{certify_per_key_epoch_path, KvClient, KvError, OpRecorder, ShardRouter};
use rmem_net::{FaultSchedule, LocalCluster, PipelinedClient};
use rmem_types::{OpResult, ProcessId, RegisterId, Value};

const SHARDS: u16 = 8;
const TRAFFIC_THREADS: u64 = 3;
const OPS_PER_THREAD: usize = 30;

/// Cancelling an in-flight op reclaims its slot at once; the zombie ack
/// is dropped and counted, and the reused slot's new tenant is
/// untouched.
#[test]
fn cancelled_op_reclaims_slot_and_drops_late_ack() {
    let mut cluster = LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap();
    let fan = PipelinedClient::fan(&cluster.clients());

    // Submit a write, then abandon it before draining any completion:
    // the slot and its scratch buffer go back to the free list now.
    let abandoned = fan
        .submit_write(0, RegisterId(0), Value::from_u32(7))
        .unwrap();
    assert_eq!(fan.in_flight(), 1);
    assert!(fan.cancel(abandoned), "an in-flight op must be cancellable");
    assert_eq!(fan.in_flight(), 0, "cancel must reclaim the slot now");
    assert!(!fan.cancel(abandoned), "double cancel must be a no-op");

    // A new tenant takes the reclaimed slot. Waiting on it drains the
    // completion channel — including the abandoned op's ack, which must
    // be counted late, not delivered to the tenant.
    let tenant = fan.submit_read(1, RegisterId(1)).unwrap();
    let (result, _) = fan.wait(tenant).expect("the new tenant must complete");
    assert!(
        matches!(result, OpResult::ReadValue(_)),
        "tenant claimed a foreign result: {result:?}"
    );
    assert_eq!(fan.in_flight(), 0);

    // The abandoned write still executed server-side: the cancel
    // abandoned the *claim*, not the quorum op. This read targets the
    // same node and register, so it serializes behind the write — by
    // the time it completes, the zombie ack has been drained and must
    // have been counted late, not delivered anywhere.
    let check = fan.submit_read(0, RegisterId(0)).unwrap();
    let (result, _) = fan.wait(check).unwrap();
    assert_eq!(result, OpResult::ReadValue(Value::from_u32(7)));
    assert_eq!(
        fan.late_acks(),
        1,
        "the abandoned op's ack must be counted late"
    );
    cluster.shutdown();
}

/// A batch whose home node is dead still completes: the pipelined
/// driver falls back to the blocking failover path, `kv.retries` fires,
/// the health memory steers later submissions away, and the recorded
/// history certifies.
#[test]
fn dead_node_mid_pipeline_falls_back_and_fires_retries() {
    let mut cluster = LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap();
    let recorder = OpRecorder::new();
    let kv = KvClient::new(cluster.clients(), ShardRouter::new(SHARDS))
        .unwrap()
        .with_op_timeout(Duration::from_millis(200))
        .with_recorder(recorder.clone());
    let keys = kv.router().covering_keys("pf-");

    let seed: Vec<(&str, bytes::Bytes)> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k.as_str(), bytes::Bytes::from(vec![1, i as u8])))
        .collect();
    kv.multi_put(&seed).expect("preload batch must complete");

    // Kill one node: a third of the shard homes now point at a corpse.
    cluster.kill(ProcessId(1));

    let got = kv
        .multi_get(&keys.iter().map(String::as_str).collect::<Vec<_>>())
        .expect("a dead minority must not fail the batch");
    for (i, value) in got.iter().enumerate() {
        assert_eq!(
            value.as_deref(),
            Some([1, i as u8].as_slice()),
            "key {} lost its value to the failover",
            keys[i]
        );
    }
    assert!(
        kv.metrics().counter("kv.retries") > 0,
        "the dead node must have cost at least one retry"
    );

    // Writes through the same outage: the fallback path again.
    let rewrite: Vec<(&str, bytes::Bytes)> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k.as_str(), bytes::Bytes::from(vec![2, i as u8])))
        .collect();
    kv.multi_put(&rewrite)
        .expect("writes must survive a dead minority");

    // Recover the node; the next batches run clean.
    cluster.restart(ProcessId(1)).unwrap();
    let got = kv
        .multi_get(&keys.iter().map(String::as_str).collect::<Vec<_>>())
        .expect("post-recovery batch must complete");
    for (i, value) in got.iter().enumerate() {
        assert_eq!(value.as_deref(), Some([2, i as u8].as_slice()));
    }

    certify_per_key_epoch_path(
        &recorder.history(),
        keys.iter().map(String::as_str),
        &[SHARDS],
        Criterion::Transient,
    )
    .unwrap_or_else(|e| {
        eprintln!("{}", cluster.dump_flight_recorders(120));
        eprintln!("--- client flight recorder ---");
        eprintln!("{}", kv.flight_recorder().dump_timeline(120));
        panic!("certification failed across the outage: {e}")
    });
    cluster.shutdown();
}

/// One seeded kill/recover run: batched pipelined traffic from several
/// threads while a [`FaultSchedule`] crashes and revives a minority
/// node mid-pipeline. Returns (completed, ambiguous) op counts.
fn run_kill_recover_seed(seed: u64) -> (u64, u64) {
    let mut cluster = LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap();
    let recorder = OpRecorder::new();
    let kv = KvClient::new(cluster.clients(), ShardRouter::new(SHARDS))
        .unwrap()
        .with_op_timeout(Duration::from_millis(300))
        .with_health_cooldown(Duration::from_secs(2))
        .with_recorder(recorder.clone());
    let keys = kv.router().covering_keys("kr-");
    for (i, key) in keys.iter().enumerate() {
        kv.put(key, vec![0, i as u8]).unwrap();
    }

    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
    let victim = ProcessId(rng.gen_range(0..3));
    let kill_at = Duration::from_millis(rng.gen_range(5..30));
    let down_for = Duration::from_millis(rng.gen_range(20..60));
    let schedule = FaultSchedule::new().crash_for(kill_at, victim, down_for);

    let completed = AtomicU64::new(0);
    let ambiguous = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for t in 0..TRAFFIC_THREADS {
            let client = kv.recorded_clone();
            let keys = &keys;
            let completed = &completed;
            let ambiguous = &ambiguous;
            let mut rng = StdRng::seed_from_u64(seed * 67 + t);
            scope.spawn(move || {
                let mut counter = 0u64;
                for _ in 0..OPS_PER_THREAD {
                    // Batches of 2–4 distinct keys keep several shard
                    // queues in flight at once — the pipelined path.
                    let batch = rng.gen_range(2..=4usize).min(keys.len());
                    let start = rng.gen_range(0..keys.len());
                    let picked: Vec<&str> = (0..batch)
                        .map(|j| keys[(start + j) % keys.len()].as_str())
                        .collect();
                    let outcome = if rng.gen_bool(0.5) {
                        counter += 1;
                        let puts: Vec<(&str, bytes::Bytes)> = picked
                            .iter()
                            .map(|k| {
                                let value = ((t + 1) << 32 | counter).to_be_bytes().to_vec();
                                (*k, bytes::Bytes::from(value))
                            })
                            .collect();
                        client.multi_put(&puts)
                    } else {
                        client.multi_get(&picked).map(|_| ())
                    };
                    match outcome {
                        Ok(()) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(KvError::Barrier { key, shard }) => {
                            panic!("seed {seed}: barrier deadlocked on {key:?} (shard {shard})")
                        }
                        // Ambiguous failures under the crash window are
                        // legal: the recorder keeps them pending.
                        Err(_) => {
                            ambiguous.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(Duration::from_micros(rng.gen_range(0..300)));
                }
            });
        }
        let cluster = &mut cluster;
        scope.spawn(move || {
            schedule.run(cluster).unwrap();
        });
    });

    let history = recorder.history();
    certify_per_key_epoch_path(
        &history,
        keys.iter().map(String::as_str),
        &[SHARDS],
        Criterion::Transient,
    )
    .unwrap_or_else(|e| {
        eprintln!("{}", cluster.dump_flight_recorders(120));
        eprintln!("--- client flight recorder ---");
        eprintln!("{}", kv.flight_recorder().dump_timeline(120));
        panic!("seed {seed}: certification failed under kill/recover: {e}")
    });

    // Post-recovery: every key still serves through the batch path.
    let survivors = kv
        .multi_get(&keys.iter().map(String::as_str).collect::<Vec<_>>())
        .expect("post-schedule batch must complete");
    assert!(
        survivors.iter().all(Option::is_some),
        "seed {seed}: a preloaded key vanished"
    );

    let out = (
        completed.load(Ordering::Relaxed),
        ambiguous.load(Ordering::Relaxed),
    );
    cluster.shutdown();
    out
}

/// The seeded kill/recover sweep: every run completes (no wedged
/// waiter — `thread::scope` returning *is* the assertion), most ops
/// succeed, and every history certifies.
#[test]
fn sweep_kill_recover_mid_pipeline() {
    let mut total_completed = 0;
    let mut total_ambiguous = 0;
    for seed in 0..6 {
        let (completed, ambiguous) = run_kill_recover_seed(seed);
        assert!(
            completed >= (TRAFFIC_THREADS * OPS_PER_THREAD as u64) / 2,
            "seed {seed}: most batches must complete (got {completed})"
        );
        total_completed += completed;
        total_ambiguous += ambiguous;
    }
    println!("kill/recover sweep: {total_completed} completed, {total_ambiguous} ambiguous");
}
