//! Real-runtime lease freshness: concurrent writers vs leased readers,
//! plus the pinned epoch-change-mid-lease revocation case.
//!
//! The client-held lease cache answers hot-key gets with **zero**
//! datagrams, so these are the reads most able to go stale. Each seeded
//! run races a writer installing monotone versions against two leased
//! reader families over Zipf-hot keys; every run is recorded and
//! per-key certified, and every leased read (identified by the family's
//! `lease_hits` delta around the get) is policed by the
//! [`check_freshness`] oracle on one shared monotonic clock: **a leased
//! read must never return a value older than any value returned after a
//! completed write.**
//!
//! The pinned case drives a live 4 → 8 split while a reader family
//! holds leases: the split's seal writes are fenced at the replicas
//! behind the outstanding grants (the grow demonstrably stalls), the
//! reader's next get discovers the new epoch, the map adoption revokes
//! every resident lease, and the post-split read returns the new
//! epoch's freshest write.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmem_consistency::{check_freshness, Criterion, FreshnessKind, FreshnessOp};
use rmem_core::{Persistent, SharedMemory};
use rmem_kv::{certify_per_key_epoch_path, KvClient, OpRecorder, ShardRouter};
use rmem_net::LocalCluster;
use rmem_sim::KeyDistribution;

const SHARDS: u16 = 4;
/// Real-time lease horizon for the traffic sweep: long enough for a
/// reader's inter-op think time (≤ 150µs) to land many gets inside one
/// grant, short enough that the replica write fence (horizon + ¼) keeps
/// each seeded run well under 100ms.
const LEASE_MICROS: u64 = 2_000;
const WRITES_PER_SEED: usize = 24;
const READS_PER_READER: usize = 60;

fn leased_cluster(lease_micros: u64) -> LocalCluster {
    LocalCluster::channel(
        3,
        SharedMemory::factory(Persistent::flavor().with_lease(lease_micros)),
    )
    .unwrap()
}

fn version_bytes(v: u64) -> Vec<u8> {
    v.to_be_bytes().to_vec()
}

fn version_of(bytes: Option<&[u8]>) -> u64 {
    bytes.map_or(0, |b| {
        u64::from_be_bytes(b.try_into().expect("writers install 8-byte versions"))
    })
}

struct SeedOutcome {
    leased_reads: usize,
    quorum_reads: usize,
}

/// One seeded run: preload → one writer thread installing monotone
/// versions vs two leased reader families → per-key certification and
/// the per-key freshness oracle.
fn run_seed(seed: u64) -> SeedOutcome {
    let cluster = leased_cluster(LEASE_MICROS);
    let recorder = OpRecorder::new();
    let writer = KvClient::new(cluster.clients(), ShardRouter::new(SHARDS))
        .unwrap()
        .with_recorder(recorder.clone());
    let keys = ShardRouter::new(SHARDS).covering_keys("lk-");
    // Preload: version 1 everywhere, so no read ever sees ⊥ and every
    // returned value names its version.
    for key in &keys {
        writer.put(key, version_bytes(1)).unwrap();
    }

    // (key index, op) pairs from every thread, on one shared clock.
    let t_zero = Instant::now();
    let log: Mutex<Vec<(usize, FreshnessOp)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        // The writer: Zipf-hot keys, per-key monotone versions 2, 3, …
        {
            let writer = &writer;
            let keys = &keys;
            let log = &log;
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
            scope.spawn(move || {
                let dist = KeyDistribution::zipf(keys.len(), 0.99);
                let mut versions = vec![1u64; keys.len()];
                for _ in 0..WRITES_PER_SEED {
                    let k = dist.sample(&mut rng);
                    versions[k] += 1;
                    let invoked_at = t_zero.elapsed().as_micros() as u64;
                    writer.put(&keys[k], version_bytes(versions[k])).unwrap();
                    let completed_at = t_zero.elapsed().as_micros() as u64;
                    log.lock().unwrap().push((
                        k,
                        FreshnessOp {
                            invoked_at,
                            completed_at,
                            kind: FreshnessKind::Write {
                                version: versions[k],
                            },
                        },
                    ));
                    std::thread::sleep(Duration::from_micros(rng.gen_range(0..150)));
                }
            });
        }
        // Two leased reader families. Each family is one thread owning
        // its own client (and so its own lease cache and counters): the
        // `lease_hits` delta around a get is exactly "this get was
        // answered by the lease, zero datagrams".
        for family in 0..2u64 {
            let clients = cluster.clients();
            let recorder = recorder.clone();
            let keys = &keys;
            let log = &log;
            let mut rng = StdRng::seed_from_u64(seed * 31 + family);
            scope.spawn(move || {
                let reader = KvClient::new(clients, ShardRouter::new(SHARDS))
                    .unwrap()
                    .with_lease_cache(8)
                    .with_recorder(recorder);
                let dist = KeyDistribution::zipf(keys.len(), 0.99);
                for _ in 0..READS_PER_READER {
                    let k = dist.sample(&mut rng);
                    let hits_before = reader.stats().lease_hits;
                    let invoked_at = t_zero.elapsed().as_micros() as u64;
                    let got = reader.get(&keys[k]).unwrap();
                    let completed_at = t_zero.elapsed().as_micros() as u64;
                    let leased = reader.stats().lease_hits > hits_before;
                    log.lock().unwrap().push((
                        k,
                        FreshnessOp {
                            invoked_at,
                            completed_at,
                            kind: FreshnessKind::Read {
                                version: version_of(got.as_deref()),
                                leased,
                            },
                        },
                    ));
                    std::thread::sleep(Duration::from_micros(rng.gen_range(0..150)));
                }
            });
        }
    });

    // Full per-key atomicity certification of everything that ran —
    // leased reads included (they are ordinary recorded store ops).
    let history = recorder.history();
    certify_per_key_epoch_path(
        &history,
        keys.iter().map(String::as_str),
        &[SHARDS],
        Criterion::Persistent,
    )
    .unwrap_or_else(|e| panic!("seed {seed}: certification failed: {e}"));

    // The freshness oracle, per key (it polices one register at a time).
    let log = log.into_inner().unwrap();
    let mut leased_reads = 0;
    let mut quorum_reads = 0;
    for (k, key) in keys.iter().enumerate() {
        let ops: Vec<FreshnessOp> = log
            .iter()
            .filter(|(logged, _)| *logged == k)
            .map(|&(_, op)| op)
            .collect();
        let report = check_freshness(&ops)
            .unwrap_or_else(|violation| panic!("seed {seed}, key {key}: {violation}"));
        leased_reads += report.leased_reads;
        quorum_reads += ops
            .iter()
            .filter(|o| matches!(o.kind, FreshnessKind::Read { leased: false, .. }))
            .count();
    }
    SeedOutcome {
        leased_reads,
        quorum_reads,
    }
}

/// The CI smoke: one full seeded run.
#[test]
fn single_seed_smoke() {
    let outcome = run_seed(0);
    assert_eq!(
        outcome.leased_reads + outcome.quorum_reads,
        2 * READS_PER_READER,
        "every read must be logged"
    );
}

/// ≥ 12 seeds of writers vs leased readers: every history certified,
/// zero stale leased reads, and the lease demonstrably fired (while
/// cold starts and revocations kept some reads on the quorum path).
#[test]
fn sweep_writers_vs_leased_readers() {
    let mut leased = 0usize;
    let mut quorum = 0usize;
    for seed in 1..=12 {
        let outcome = run_seed(seed);
        leased += outcome.leased_reads;
        quorum += outcome.quorum_reads;
    }
    assert!(
        leased > 0,
        "the sweep must serve some reads from leases — otherwise the \
         freshness oracle policed nothing (got {quorum} quorum reads)"
    );
    assert!(
        quorum > 0,
        "cold starts and horizon expiries must keep some reads on the \
         quorum path"
    );
    println!("sweep: {leased} leased reads, {quorum} quorum reads, all fresh");
}

/// Pinned: an epoch change races live leases. A reader family holds
/// leases on two keys; a concurrent 4 → 8 grow must (a) stall its seal
/// writes behind the replica-side lease fence, (b) trigger a map
/// adoption at the reader that revokes every resident lease, and
/// (c) leave the reader returning the new epoch's freshest value — a
/// lease never survives an epoch change.
#[test]
fn a_grow_mid_lease_fences_the_seal_and_revokes() {
    const LEASE: u64 = 100_000; // 100ms: the grow demonstrably waits it out.
    let cluster = leased_cluster(LEASE);
    let owner = KvClient::new(cluster.clients(), ShardRouter::new(SHARDS)).unwrap();
    let reader = KvClient::new(cluster.clients(), ShardRouter::new(SHARDS))
        .unwrap()
        .with_lease_cache(8);
    let keys = ShardRouter::new(SHARDS).covering_keys("gk-");
    let hot = &keys[0];
    let warm = &keys[1];
    owner.put(hot, version_bytes(1)).unwrap();
    owner.put(warm, version_bytes(1)).unwrap();

    // Earn grants, then hit them: both keys leased and resident.
    for key in [hot, warm] {
        assert_eq!(
            reader.get(key).unwrap().as_deref(),
            Some(version_bytes(1).as_slice())
        );
        assert_eq!(
            reader.get(key).unwrap().as_deref(),
            Some(version_bytes(1).as_slice())
        );
    }
    let hits_before = reader.stats().lease_hits;
    assert!(hits_before >= 2, "both keys must be served from leases");

    // The split: its seal writes carry tags newer than the granted ones,
    // so the replicas park them until the reader's horizons pass — the
    // fence is what keeps the resident leases fresh while the epoch
    // turns under them.
    let sealed_at = Instant::now();
    let report = owner.grow(2 * SHARDS).unwrap();
    assert_eq!(report.epoch, 1);
    assert!(
        sealed_at.elapsed() >= Duration::from_millis(50),
        "the seal must have waited out the outstanding grants (took {:?})",
        sealed_at.elapsed()
    );

    // A post-split write in the new epoch…
    owner.put(hot, version_bytes(2)).unwrap();

    // …and the stale-mapped reader must return it: its lease horizon
    // expired strictly before the seal landed, the quorum read hits the
    // sealed old home, the foreign stamp forces a map refresh, and the
    // adoption revokes the still-resident leases.
    assert_eq!(
        reader.get(hot).unwrap().as_deref(),
        Some(version_bytes(2).as_slice()),
        "a leased reader must never see past a completed post-split write"
    );
    assert_eq!(reader.shard_map().epoch, 1, "the reader adopted the split");
    let stats = reader.stats();
    assert!(
        stats.lease_revocations >= 1,
        "the adoption must have revoked the resident leases (got {})",
        stats.lease_revocations
    );
    // And the new epoch re-earns leases as usual.
    assert_eq!(
        reader.get(hot).unwrap().as_deref(),
        Some(version_bytes(2).as_slice())
    );
    assert_eq!(
        reader.get(hot).unwrap().as_deref(),
        Some(version_bytes(2).as_slice())
    );
    assert!(reader.stats().lease_hits > hits_before);
}
