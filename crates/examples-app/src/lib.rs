//! Shared helpers for the runnable examples in the repository-root
//! `examples/` directory.
//!
//! The examples themselves are the interesting artifacts:
//!
//! * `quickstart` — five minutes with the simulated persistent register;
//! * `crash_recovery_demo` — the paper's Fig. 1 run, live: the same crash
//!   schedule against the transient and persistent registers, with the
//!   checkers adjudicating;
//! * `config_store` — a replicated configuration store on real threads
//!   surviving kill/restart cycles;
//! * `real_cluster` — the §V-A setup on loopback UDP with fsync'd file
//!   logs;
//! * `fault_tour` — message loss, duplication and crash storms under a
//!   seeded adversary, every run certified atomic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rmem_sim::OpRecord;
use rmem_types::OpKind;

/// Renders one operation record as a compact human-readable line.
pub fn describe_op(record: &OpRecord) -> String {
    let outcome = match (&record.result, record.kind) {
        (Some(r), OpKind::Read) => match r.read_value() {
            Some(v) => format!("→ {v}"),
            None => "rejected".to_string(),
        },
        (Some(_), OpKind::Write) => "→ OK".to_string(),
        (None, _) => "… lost to a crash".to_string(),
    };
    let latency = record
        .latency()
        .map(|l| format!(" [{l}]"))
        .unwrap_or_default();
    let reg = record.operation.register();
    let target = if reg == rmem_types::RegisterId::ZERO {
        String::new()
    } else {
        format!("{reg}, ")
    };
    format!(
        "t={:>6}µs  {}  {}({}{}) {}{}",
        record.invoked_at.as_micros(),
        record.op.pid,
        record.kind,
        target,
        record
            .operation
            .write_value()
            .map(|v| v.to_string())
            .unwrap_or_default(),
        outcome,
        latency,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_sim::{ClusterConfig, PlannedEvent, Schedule, Simulation};
    use rmem_types::{Op, ProcessId, Value};

    #[test]
    fn describe_op_formats_reads_and_writes() {
        let mut sim = Simulation::new(ClusterConfig::new(3), rmem_core::Persistent::factory(), 1)
            .with_schedule(
                Schedule::new()
                    .at(
                        1_000,
                        PlannedEvent::Invoke(ProcessId(0), Op::Write(Value::from_u32(1))),
                    )
                    .at(10_000, PlannedEvent::Invoke(ProcessId(1), Op::Read)),
            );
        let report = sim.run();
        let lines: Vec<String> = report.trace.operations().iter().map(describe_op).collect();
        assert!(lines[0].contains("W(1) → OK"), "{}", lines[0]);
        assert!(lines[1].contains("R() → 1"), "{}", lines[1]);
    }
}
