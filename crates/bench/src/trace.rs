//! The `--trace` scenario: **cross-node causal tracing with per-op
//! critical-path attribution** on the real UDP runtime.
//!
//! A WAL-backed UDP cluster runs the closed-loop workload with tracing
//! on (deep flight-recorder rings on every node and on the client
//! family, trace context propagated in every datagram), then every ring
//! is dumped and stitched into one causal timeline per completed op:
//! per-ring clock offsets are estimated from matched send/receive pairs
//! (NTP-style midpoint, error bound `rtt/2`), and each op's latency is
//! decomposed into named segments — client queue, coordinator compute,
//! wire out, replica compute, store wait, wire back.
//!
//! The scenario's gates (asserted by the `kv_throughput` bin):
//!
//! * **coverage** — ≥99% of completed ops stitch into complete causal
//!   timelines;
//! * **causality** — zero effect-before-cause violations after skew
//!   correction (beyond the accumulated error bounds);
//! * **attribution** — each op's segments sum to its client-observed
//!   wall clock within 5%;
//! * **overhead** — the PR 6 priced ≤3% instrumentation gate re-runs
//!   with tracing on (tracing is part of the instrumented side of
//!   [`crate::obs`] now, so `--trace` simply re-asserts that scenario).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmem_core::{SharedMemory, Transient};
use rmem_kv::{KvClient, ShardRouter};
use rmem_net::{DiskMode, LocalCluster};
use rmem_obs::trace::{TraceReport, SEGMENTS};
use rmem_obs::ObsHandle;
use rmem_sim::KeyDistribution;
use rmem_types::ProcessId;

/// Nodes in the traced cluster.
pub const TRACE_NODES: u16 = 3;

/// Shard count (and key universe) of the scenario.
pub const TRACE_SHARDS: u16 = 16;

/// Put fraction of the workload.
pub const TRACE_WRITE_FRACTION: f64 = 0.5;

/// Closed-loop worker threads driving the cluster.
pub const TRACE_WORKERS: u64 = 2;

/// Flight-recorder ring capacity used on every node and on the client
/// family: 2^17 slots × 48 bytes = 6 MiB per ring. Stitching needs every
/// event of the measured window still in its ring, so the rings are
/// sized to the op budget below with an order of magnitude of headroom.
pub const TRACE_RING_CAPACITY: usize = 1 << 17;

/// Ops per worker (full-size run; the smoke run quarters it). Bounded —
/// not a time window — so the event volume cannot outrun the rings.
pub const TRACE_OPS_PER_WORKER: u64 = 2_000;

/// The coverage gate: at least this fraction of completed ops must
/// stitch into full causal timelines.
pub const COVERAGE_FLOOR: f64 = 0.99;

/// The attribution gate: each stitched op's segment sum must land within
/// this relative distance of its client-observed wall clock.
pub const ATTRIBUTION_TOLERANCE: f64 = 0.05;

/// How many slowest-op exemplar timelines the scenario renders/exports.
pub const TRACE_EXEMPLARS: usize = 5;

/// Per-segment attribution percentiles, microseconds.
#[derive(Debug, Clone)]
pub struct SegmentRow {
    /// Segment name (see [`rmem_obs::trace::SEGMENTS`]).
    pub name: &'static str,
    /// Median attribution across stitched ops.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// This segment's share of the total attributed time.
    pub share: f64,
}

/// The full `--trace` report.
#[derive(Debug, Clone)]
pub struct TraceBenchReport {
    /// Logical ops the workers completed.
    pub completed_ops: u64,
    /// Wall-clock throughput of the traced run.
    pub ops_per_sec: f64,
    /// The stitch itself: clock model, stitched ops, violation count.
    pub report: TraceReport,
    /// Per-segment p50/p99 attribution across every stitched op.
    pub segments: Vec<SegmentRow>,
    /// Total `runner.trace_evictions` across the nodes: how many
    /// request→op trace bindings the bounded per-runner map pushed out.
    /// In steady state this must be zero — an evicted binding leaves an
    /// ack unstamped and its op unstitchable, which would silently eat
    /// into the coverage gate.
    pub trace_evictions: u64,
}

impl TraceBenchReport {
    /// The scenario's JSON row for the benchmark output.
    pub fn to_json(&self) -> String {
        let segs: Vec<String> = self
            .segments
            .iter()
            .map(|s| {
                format!(
                    "\"{}\": {{\"p50_us\": {}, \"p99_us\": {}, \"share\": {:.4}}}",
                    s.name, s.p50_us, s.p99_us, s.share
                )
            })
            .collect();
        format!(
            "  {{\"scenario\": \"trace\", \"time\": \"wall\", \"write_fraction\": {:.2}, \
             \"completed_ops\": {}, \"ops_per_sec\": {:.1}, \
             \"stitched\": {}, \"incomplete\": {}, \"coverage\": {:.4}, \
             \"violations\": {}, \"max_attribution_error\": {:.4}, \
             \"max_clock_err_us\": {:.1}, \"trace_evictions\": {}, \"segments\": {{{}}}}}",
            TRACE_WRITE_FRACTION,
            self.completed_ops,
            self.ops_per_sec,
            self.report.stitched.len(),
            self.report.incomplete,
            self.report.coverage(),
            self.report.violations,
            self.report.max_attribution_error(),
            self.report.max_clock_err_us(),
            self.trace_evictions,
            segs.join(", "),
        )
    }

    /// The human-readable attribution table the bin prints.
    pub fn render_table(&self) -> String {
        let mut out = String::from("segment            p50 (µs)   p99 (µs)   share\n");
        for s in &self.segments {
            out.push_str(&format!(
                "{:<16} {:>10} {:>10} {:>6.1}%\n",
                s.name,
                s.p50_us,
                s.p99_us,
                s.share * 100.0
            ));
        }
        out
    }
}

fn scratch_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rmem-tracebench-{}", std::process::id()))
}

/// Runs the scenario: a traced closed-loop workload on a WAL-backed UDP
/// cluster, then stitches every ring into the causal report. `smoke`
/// quarters the op budget for CI.
///
/// # Panics
///
/// Panics if an operation errors terminally or a node's log fails.
pub fn trace_scenario(smoke: bool) -> TraceBenchReport {
    let per_worker = if smoke {
        TRACE_OPS_PER_WORKER / 4
    } else {
        TRACE_OPS_PER_WORKER
    };
    let dir = scratch_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = LocalCluster::udp_with_disk_obs_sized(
        usize::from(TRACE_NODES),
        SharedMemory::factory(Transient::flavor()),
        &dir,
        DiskMode::Wal,
        true,
        TRACE_RING_CAPACITY,
    )
    .expect("cluster");
    let kv = KvClient::new(cluster.clients(), ShardRouter::new(TRACE_SHARDS))
        .expect("kv client")
        .with_obs(ObsHandle::with_capacity(TRACE_RING_CAPACITY));
    let keys = ShardRouter::new(TRACE_SHARDS).covering_keys("trace-");
    for (i, key) in keys.iter().enumerate() {
        kv.put(key, vec![0, i as u8]).expect("seed put");
    }

    let completed = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        let completed = &completed;
        let keys = &keys;
        for t in 0..TRACE_WORKERS {
            let client = kv.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1009 + t);
                let dist = KeyDistribution::zipf(keys.len(), 0.99);
                let mut counter = 0u64;
                for _ in 0..per_worker {
                    let key = &keys[dist.sample(&mut rng)];
                    if rng.gen_bool(TRACE_WRITE_FRACTION) {
                        counter += 1;
                        let value = ((t + 1) << 32 | counter).to_be_bytes().to_vec();
                        client.put(key, value).expect("put");
                    } else {
                        client.get(key).expect("get");
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let completed_ops = completed.load(Ordering::Relaxed);

    // Dump every ring — the nodes' and the client family's — and stitch.
    let mut rings = cluster.ring_dumps();
    rings.push(kv.trace_ring_dump().expect("tracing was on"));
    let report = rmem_obs::trace::stitch(&rings);

    // Segment histograms through the client family's registry, then the
    // percentile table off the snapshot.
    report.record_segments(kv.metrics_registry());
    let snapshot = kv.metrics();
    let total_attributed: f64 = report
        .stitched
        .iter()
        .map(|op| op.attributed_us())
        .sum::<f64>()
        .max(1.0);
    let segments = SEGMENTS
        .iter()
        .map(|name| {
            let hist = snapshot.histogram(&format!("trace.{name}_us"));
            let sum: f64 = report
                .stitched
                .iter()
                .map(|op| op.segments[SEGMENTS.iter().position(|s| s == name).expect("segment")])
                .sum();
            SegmentRow {
                name,
                p50_us: hist.percentile(0.50),
                p99_us: hist.percentile(0.99),
                share: sum / total_attributed,
            }
        })
        .collect();

    // The request-trace maps are bounded per runner; in steady state
    // nothing should ever be evicted (the gate in the bin asserts zero).
    let trace_evictions = (0..TRACE_NODES)
        .map(|i| {
            cluster
                .metrics(ProcessId(i))
                .counter("runner.trace_evictions")
        })
        .sum();

    drop(kv);
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
    TraceBenchReport {
        completed_ops,
        ops_per_sec: completed_ops as f64 / elapsed.as_secs_f64(),
        report,
        segments,
        trace_evictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_stitches_with_coverage_and_exact_attribution() {
        let r = trace_scenario(true);
        assert!(r.completed_ops > 0);
        // The trace-level count also covers the seed puts and the
        // one-time shard-map sync, so it strictly dominates.
        assert!(
            r.report.completed as u64 >= r.completed_ops,
            "every worker op must appear as a completed trace ({} < {})",
            r.report.completed,
            r.completed_ops
        );
        assert!(
            r.report.coverage() >= COVERAGE_FLOOR,
            "stitched coverage {:.4} under the {COVERAGE_FLOOR} floor \
             ({} stitched / {} completed, {} incomplete)",
            r.report.coverage(),
            r.report.stitched.len(),
            r.report.completed,
            r.report.incomplete,
        );
        assert_eq!(
            r.report.violations,
            0,
            "effect-before-cause after skew correction:\n{}",
            r.report.render_exemplars(3)
        );
        assert!(
            r.report.max_attribution_error() <= ATTRIBUTION_TOLERANCE,
            "attribution must telescope to wall clock (worst {:.4})",
            r.report.max_attribution_error()
        );
        // Every ring participated in the clock model.
        assert!(r.report.offsets.iter().all(|o| o.reachable));
        // Steady state never overflows the bounded request-trace maps —
        // an eviction would mean a silently unstitchable op.
        assert_eq!(
            r.trace_evictions, 0,
            "the runners' request-trace maps must not evict in steady state"
        );
        // The attribution table is fully populated and shares sum to 1.
        assert_eq!(r.segments.len(), SEGMENTS.len());
        let share_sum: f64 = r.segments.iter().map(|s| s.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-6, "shares sum to {share_sum}");
        // Exemplars render and serialize.
        assert!(!r.report.render_exemplars(TRACE_EXEMPLARS).is_empty());
        let json = r.to_json();
        assert!(json.contains("\"scenario\": \"trace\""));
        assert!(json.contains("\"store_wait\""));
    }
}
