//! Extension experiment: the cost of each algorithm's recovery procedure
//! (Recover event → process ready to serve).
//!
//! Usage:
//! ```text
//! cargo run --release -p rmem-bench --bin recovery_time -- [--csv]
//! ```

fn main() {
    let (_, table) = rmem_bench::recovery_table();
    println!("{}", table.to_text());
    println!("expected composition (δ=100µs, λ=200µs):");
    println!("  persistent ≈ one propagation round-trip (2δ), plus replica logs (λ) if the");
    println!("               interrupted write had not been adopted yet (Fig. 4 lines 43–46);");
    println!("  transient  ≈ one local log (λ) for the rec counter (Fig. 5 lines 19–21);");
    println!("  regular    ≈ λ + a majority query round (2δ);");
    println!("  crash-stop = 0 — it restores nothing, which is exactly why it forgets.");
    if std::env::args().any(|a| a == "--csv") {
        let path = table.write_csv("recovery_time").expect("writing CSV");
        println!("wrote {}", path.display());
    }
}
