//! Real-mode calibration: loopback UDP + fsync file logs on this machine
//! (the §V-A setup scaled down to one host).
//!
//! Usage:
//! ```text
//! cargo run --release -p rmem-bench --bin real_mode
//! ```

fn main() {
    let dir = std::env::temp_dir().join(format!("rmem-real-mode-{}", std::process::id()));
    let table = rmem_bench::real_mode(&dir);
    println!("{}", table.to_text());
    println!("note: all processes share one host and one disk here, so absolute numbers");
    println!("compress the paper's LAN spread; the ordering crash-stop < transient < persistent");
    println!("and the role of λ are what carries over.");
    let _ = std::fs::remove_dir_all(dir);
}
