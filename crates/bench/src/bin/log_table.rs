//! Regenerates the causal-log complexity table (§IV Theorems 1–2) from
//! measured runs, and — with `--ablations` — demonstrates that removing
//! any of the required logs produces checker-certified atomicity
//! violations on the paper's proof runs.
//!
//! Usage:
//! ```text
//! cargo run --release -p rmem-bench --bin log_table -- [--ablations] [--csv]
//! ```

use std::sync::Arc;

use rmem_bench::scenarios;
use rmem_consistency::{check_persistent, check_transient, Violation};
use rmem_core::{ablation, FlavorFactory, Persistent, DEFAULT_RETRANSMIT};
use rmem_sim::{ClusterConfig, Simulation};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (_, table) = rmem_bench::log_table();
    println!("{}", table.to_text());
    println!("bounds: Theorem 1 (writes: persistent ≥ 2, transient ≥ 1), Theorem 2 (reads ≥ 1 worst-case);");
    println!("idle reads are log-free, as §IV-B notes (\"in the absence of concurrency, a read will not log\").\n");
    if args.iter().any(|a| a == "--csv") {
        let path = table.write_csv("log_table").expect("writing CSV");
        println!("wrote {}", path.display());
    }

    if args.iter().any(|a| a == "--ablations") {
        ablations();
        let (_, table) = rmem_bench::ablation_table();
        println!();
        println!("{}", table.to_text());
        println!("the latency saved by each removed log is exactly what Theorems 1-2 prove");
        println!("unobtainable: every shortcut row is checker-certified VIOLATED.");
    }
}

fn verdict(r: Result<(), Violation>) -> String {
    match r {
        Ok(()) => "SATISFIED".to_string(),
        Err(e) => format!("VIOLATED ({e})"),
    }
}

/// Runs each ablation through the corresponding lower-bound proof run and
/// prints the checker verdicts, alongside the intact algorithm on the
/// same schedule.
fn ablations() {
    println!("== Ablations on the lower-bound proof runs (Figs. 2–3) ==");

    // Theorem 1 / ρ1: a write with only one causal log.
    let ablated = Arc::new(FlavorFactory::new(
        ablation::no_pre_log(),
        DEFAULT_RETRANSMIT,
    ));
    let report = Simulation::new(ClusterConfig::new(3), ablated, 1)
        .with_schedule(scenarios::rho1())
        .run();
    let h = report.trace.to_history();
    println!(
        "ρ1, no-pre-log writer  : persistent {} | transient {}",
        verdict(check_persistent(&h).map(|_| ())),
        verdict(check_transient(&h).map(|_| ()))
    );

    let intact = Persistent::factory();
    let report = Simulation::new(ClusterConfig::new(3), intact, 1)
        .with_schedule(scenarios::rho1())
        .run();
    let h = report.trace.to_history();
    println!(
        "ρ1, persistent (intact): persistent {}",
        verdict(check_persistent(&h).map(|_| ()))
    );

    // Theorem 2 / ρ4: reads without any log.
    let ablated = Arc::new(FlavorFactory::new(
        ablation::no_read_write_back(),
        DEFAULT_RETRANSMIT,
    ));
    let report = Simulation::new(ClusterConfig::new(3), ablated, 2)
        .with_schedule(scenarios::rho4())
        .run();
    let h = report.trace.to_history();
    println!(
        "ρ4, log-free reads     : persistent {} | transient {}",
        verdict(check_persistent(&h).map(|_| ())),
        verdict(check_transient(&h).map(|_| ()))
    );

    let intact = Persistent::factory();
    let report = Simulation::new(ClusterConfig::new(3), intact, 2)
        .with_schedule(scenarios::rho4())
        .run();
    let h = report.trace.to_history();
    println!(
        "ρ4, persistent (intact): persistent {}",
        verdict(check_persistent(&h).map(|_| ()))
    );
}
