//! Regenerates Fig. 6 of the paper (both panels).
//!
//! Usage:
//! ```text
//! cargo run --release -p rmem-bench --bin fig6 -- [top|bottom|all] [--csv]
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    let csv = args.iter().any(|a| a == "--csv");

    if which == "top" || which == "all" {
        let (_, table) = rmem_bench::fig6_top();
        println!("{}", table.to_text());
        println!(
            "paper reference at N=5: crash-stop ≈ 500µs, transient ≈ 700µs, persistent ≈ 900µs"
        );
        println!("(simulator constants: δ=100µs one-way, λ=200µs per log)\n");
        if csv {
            let path = table.write_csv("fig6_top").expect("writing CSV");
            println!("wrote {}", path.display());
        }
    }
    if which == "bottom" || which == "all" {
        let (_, table) = rmem_bench::fig6_bottom();
        println!("{}", table.to_text());
        println!("paper shape: latency grows linearly with payload size (§V-B)\n");
        if csv {
            let path = table.write_csv("fig6_bottom").expect("writing CSV");
            println!("wrote {}", path.display());
        }
    }
    if !["top", "bottom", "all"].contains(&which) {
        eprintln!("usage: fig6 [top|bottom|all] [--csv]");
        std::process::exit(2);
    }
}
