//! Runs the `kv_throughput` scenario: sharded-store throughput for the
//! persistent, transient and regular register flavors under uniform and
//! Zipf-skewed key popularity, unbatched vs per-shard batched
//! (`rmem-batch`'s coalescing model), plus the read-heavy fast-path
//! section (confirmed-timestamp reads vs the legacy two-round path).
//!
//! ```text
//! cargo run --release -p rmem-bench --bin kv_throughput \
//!     [-- --csv] [-- --smoke] [-- --json PATH] [-- --no-fastpath] [-- --reshard]
//! ```
//!
//! `--smoke` runs the same grid on a reduced workload (CI-sized);
//! `--no-fastpath` forces every cell onto the legacy always-write-back
//! read path (CI runs both modes so the fallback cannot rot); `--reshard`
//! additionally runs the live 4→8 shard-split scenario on the real
//! runtime (ops/s dip during migration, recovery after, cross-epoch
//! certified) and appends its row to the JSON output; `--json PATH`
//! writes the rows as machine-readable JSON for perf diffing
//! (`BENCH_kv.json` is the committed baseline). Every reported run is
//! certified per key before its row prints.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let smoke = args.iter().any(|a| a == "--smoke");
    let reshard = args.iter().any(|a| a == "--reshard");
    let fastpath = !args.iter().any(|a| a == "--no-fastpath");
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .unwrap_or_else(|| {
                eprintln!("--json requires a path operand (e.g. --json BENCH_kv.json)");
                std::process::exit(2);
            })
            .clone()
    });

    let (rows, table) = rmem_bench::kv::kv_throughput_with_mode(smoke, fastpath);
    println!("{}", table.to_text());
    println!("per-key certification: atomic flavors checked before reporting (batched included)");
    println!(
        "(log counts per put: persistent = 2, transient = 1, regular = 1; \
         virtual time, so differences are purely algorithmic)"
    );
    let fastest = rows
        .iter()
        .max_by(|a, b| a.ops_per_sec.partial_cmp(&b.ops_per_sec).expect("finite"))
        .expect("rows");
    println!(
        "fastest cell: {} / {} / {} at {:.0} ops/s",
        fastest.flavor, fastest.distribution, fastest.mode, fastest.ops_per_sec
    );
    for flavor in ["persistent", "transient"] {
        let pick = |mode: &str| {
            rows.iter()
                .find(|r| {
                    r.flavor == flavor
                        && r.distribution == "zipf(0.99)"
                        && r.mode.starts_with(mode)
                        && (r.write_fraction - rmem_bench::kv::MIXED_WRITE_FRACTION).abs() < 1e-9
                })
                .expect("cell")
        };
        let (un, ba) = (pick("unbatched"), pick("batched"));
        assert!(
            ba.ops_per_sec > un.ops_per_sec,
            "{flavor}/zipf: batched must beat unbatched"
        );
        println!(
            "{flavor}/zipf: batched {:.0} ops/s vs unbatched {:.0} ops/s ({:.2}× , {} vs {} register ops)",
            ba.ops_per_sec,
            un.ops_per_sec,
            ba.ops_per_sec / un.ops_per_sec,
            ba.register_ops,
            un.register_ops,
        );
    }
    if fastpath {
        // The fast-path headline: read-heavy Zipf, fast vs legacy at
        // otherwise identical settings. Asserted here so the CI smoke run
        // cannot let the win rot silently. The full-size workload clears
        // 1.3× on every cell; the smoke workload is a quarter the size,
        // so its guard is slightly looser.
        let threshold = if smoke { 1.25 } else { 1.3 };
        for flavor in ["persistent", "transient"] {
            for mode in ["unbatched", "batched"] {
                let pick = |fast: bool| {
                    rows.iter()
                        .find(|r| {
                            r.flavor == flavor
                                && r.distribution == "zipf(0.99)"
                                && r.mode.starts_with(mode)
                                && (r.write_fraction - rmem_bench::kv::READ_HEAVY_WRITE_FRACTION)
                                    .abs()
                                    < 1e-9
                                && r.fastpath == fast
                        })
                        .expect("fast-path cell")
                };
                let (fast, legacy) = (pick(true), pick(false));
                let speedup = fast.ops_per_sec / legacy.ops_per_sec;
                assert!(
                    speedup >= threshold,
                    "{flavor}/{mode}: fast path regressed below {threshold}× ({speedup:.2}×)"
                );
                assert!(fast.read_rounds_mean < 2.0);
                println!(
                    "{flavor}/zipf read-heavy/{mode}: fast {:.0} ops/s vs legacy {:.0} ops/s \
                     ({speedup:.2}×; mean read rounds {:.2} vs {:.2})",
                    fast.ops_per_sec,
                    legacy.ops_per_sec,
                    fast.read_rounds_mean,
                    legacy.read_rounds_mean,
                );
            }
        }
    } else {
        println!("legacy mode (--no-fastpath): every read paid its write-back round");
    }
    let reshard_report = if reshard {
        let r = rmem_bench::reshard::reshard_scenario(smoke);
        println!(
            "reshard 4→8 (live, certified across epochs): pre {:.0} ops/s, during {:.0} ops/s \
             ({:.0}% retained), post {:.0} ops/s ({:.0}% of pre); migration {:.2} ms, \
             {} entries moved, {} sources sealed, {} barrier waits ({} polls)",
            r.pre_ops_per_sec,
            r.during_ops_per_sec,
            r.dip_ratio() * 100.0,
            r.post_ops_per_sec,
            r.recovery_ratio() * 100.0,
            r.migration_ms,
            r.entries_moved,
            r.sources_sealed,
            r.barrier_waits,
            r.barrier_polls,
        );
        assert_eq!(r.epoch, 1, "the split must commit at epoch 1");
        assert!(
            r.recovery_ratio() > 0.5,
            "post-split throughput must recover (got {:.0}% of pre)",
            r.recovery_ratio() * 100.0
        );
        Some(r)
    } else {
        None
    };
    if let Some(path) = json_path {
        std::fs::write(
            &path,
            rmem_bench::kv::rows_to_json_with(&rows, reshard_report.as_ref()),
        )
        .expect("writing JSON rows");
        println!("wrote {path}");
    }
    if csv {
        let path = table.write_csv("kv_throughput").expect("writing CSV");
        println!("wrote {}", path.display());
    }
}
