//! Runs the `kv_throughput` scenario: sharded-store throughput for the
//! persistent, transient and regular register flavors under uniform and
//! Zipf-skewed key popularity, unbatched vs per-shard batched
//! (`rmem-batch`'s coalescing model), plus the read-heavy fast-path
//! section (confirmed-timestamp reads vs the legacy two-round path).
//!
//! ```text
//! cargo run --release -p rmem-bench --bin kv_throughput \
//!     [-- --csv] [-- --smoke] [-- --json PATH] [-- --no-fastpath] \
//!     [-- --lease] [-- --reshard] [-- --disk] [-- --obs] [-- --obs-json PATH] \
//!     [-- --trace] [-- --trace-json PATH] \
//!     [-- --chaos] [-- --chaos-dump PATH] [-- --pipeline-depth N]
//! ```
//!
//! `--smoke` runs the same grid on a reduced workload (CI-sized);
//! `--no-fastpath` forces every cell onto the legacy always-write-back
//! read path (CI runs both modes so the fallback cannot rot); `--reshard`
//! additionally runs the live 4→8 shard-split scenario on the real
//! runtime (ops/s dip during migration, recovery after, cross-epoch
//! certified) and appends its row to the JSON output; `--disk` runs the
//! write-heavy Zipf rows over real disks on the UDP runtime —
//! `FileStorage` vs the group-commit `WalStorage` — reporting fsyncs/op
//! and group sizes, certified per key, and asserts the WAL clears 3× the
//! slot files' ops/s; `--obs` runs the observability scenario on the UDP
//! runtime — wall-clock p50/p90/p99/p999 from the `rmem-obs` latency
//! histograms, interleaved baseline/instrumented trials, and the ≤3%
//! instrumentation-overhead gate asserted here (priced: per-op
//! instrument firing rates × microbenched unit costs vs baseline
//! CPU/op — see `rmem_bench::obs`) (`--obs-json PATH` also
//! writes the merged metrics-snapshot JSON for the CI artifact);
//! `--trace` runs the causal-tracing scenario on the WAL-backed UDP
//! runtime: every ring is stitched into per-op cross-node timelines
//! (clock skew estimated from matched send/recv pairs), a per-segment
//! p50/p99 attribution table prints, and three gates are asserted —
//! ≥99% stitched coverage, zero effect-before-cause violations after
//! skew correction, and per-op segment sums within 5% of wall clock —
//! plus a re-run of the ≤3% priced instrumentation gate with tracing on
//! (`--trace-json PATH` also writes the slowest ops' stitched timelines
//! as JSON for the CI artifact);
//! `--chaos` runs the combined chaos matrix (`rmem_kv::run_chaos`) over
//! a seed sweep: seeded node kill/recover windows with torn-WAL-tail
//! recoveries, a live shard-split chain and client crashes at every
//! write phase, every surviving history certified (exactly-once
//! duplicate check included) and every crashed client's ops resolved to
//! a definite verdict — `--smoke` shrinks the cluster for CI, and on a
//! failed oracle the flight-recorder dumps + stitched causal trace are
//! written to the `--chaos-dump PATH` artifact before exiting nonzero;
//! `--lease` runs the tag-lease section — the read-mostly Zipf(0.99)
//! workload with leases on vs off at otherwise identical settings, every
//! run certified per key — asserts the zero-round gates (full size: the
//! leased twin's mean read rounds ≤ 0.30 and ≥ 1.5× the off twin's
//! ops/s; the smoke run is fence-window dominated and holds looser
//! guards), re-asserts the ≤3% priced instrumentation gate with leases
//! armed on both sides, and rides its rows into `--json`;
//! `--pipeline-depth N` runs the pipeline depth sweep on the real
//! runtime — one client thread keeping up to N operations in flight
//! through the event-driven reactor, ops/s per depth on the uniform
//! write-heavy row, every row backed by a certified recorded twin, the
//! in-flight gauge asserted zero after every run — and asserts the
//! depth-scaling gate (≥3× the depth-1 single-thread baseline at depth
//! 64) plus a re-run of the ≤3% priced instrumentation gate with the
//! pipelined workload driving the trials (its rows ride into `--json`
//! labeled by depth);
//! `--json PATH` writes the rows as machine-readable JSON for perf
//! diffing (`BENCH_kv.json` is the committed baseline). The sim grid's
//! rows are virtual-time (labeled so); every reported run is certified
//! per key before its row prints.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let smoke = args.iter().any(|a| a == "--smoke");
    let reshard = args.iter().any(|a| a == "--reshard");
    let disk = args.iter().any(|a| a == "--disk");
    let obs = args.iter().any(|a| a == "--obs");
    let trace = args.iter().any(|a| a == "--trace");
    let chaos = args.iter().any(|a| a == "--chaos");
    let lease = args.iter().any(|a| a == "--lease");
    let fastpath = !args.iter().any(|a| a == "--no-fastpath");
    let path_operand = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .filter(|p| !p.starts_with("--"))
                .unwrap_or_else(|| {
                    eprintln!("{flag} requires a path operand (e.g. {flag} out.json)");
                    std::process::exit(2);
                })
                .clone()
        })
    };
    let json_path = path_operand("--json");
    let obs_json_path = path_operand("--obs-json");
    let trace_json_path = path_operand("--trace-json");
    let chaos_dump_path = path_operand("--chaos-dump");
    let pipeline_depth: Option<usize> =
        args.iter().position(|a| a == "--pipeline-depth").map(|i| {
            args.get(i + 1)
                .and_then(|d| d.parse().ok())
                .filter(|&d| d >= 1)
                .unwrap_or_else(|| {
                    eprintln!("--pipeline-depth requires a depth ≥ 1 (e.g. --pipeline-depth 64)");
                    std::process::exit(2);
                })
        });

    let (mut rows, table) = rmem_bench::kv::kv_throughput_with_mode(smoke, fastpath);
    println!("{}", table.to_text());
    println!("per-key certification: atomic flavors checked before reporting (batched included)");
    println!(
        "(log counts per put: persistent = 2, transient = 1, regular = 1; \
         virtual time, so differences are purely algorithmic)"
    );
    let fastest = rows
        .iter()
        .max_by(|a, b| a.ops_per_sec.partial_cmp(&b.ops_per_sec).expect("finite"))
        .expect("rows");
    println!(
        "fastest cell: {} / {} / {} at {:.0} ops/s",
        fastest.flavor, fastest.distribution, fastest.mode, fastest.ops_per_sec
    );
    for flavor in ["persistent", "transient"] {
        let pick = |mode: &str| {
            rows.iter()
                .find(|r| {
                    r.flavor == flavor
                        && r.distribution == "zipf(0.99)"
                        && r.mode.starts_with(mode)
                        && (r.write_fraction - rmem_bench::kv::MIXED_WRITE_FRACTION).abs() < 1e-9
                })
                .expect("cell")
        };
        let (un, ba) = (pick("unbatched"), pick("batched"));
        assert!(
            ba.ops_per_sec > un.ops_per_sec,
            "{flavor}/zipf: batched must beat unbatched"
        );
        println!(
            "{flavor}/zipf: batched {:.0} ops/s vs unbatched {:.0} ops/s ({:.2}× , {} vs {} register ops)",
            ba.ops_per_sec,
            un.ops_per_sec,
            ba.ops_per_sec / un.ops_per_sec,
            ba.register_ops,
            un.register_ops,
        );
    }
    if fastpath {
        // The fast-path headline: read-heavy Zipf, fast vs legacy at
        // otherwise identical settings. Asserted here so the CI smoke run
        // cannot let the win rot silently. The full-size workload clears
        // 1.3× on every cell; the smoke workload is a quarter the size,
        // so its guard is slightly looser.
        let threshold = if smoke { 1.25 } else { 1.3 };
        for flavor in ["persistent", "transient"] {
            for mode in ["unbatched", "batched"] {
                let pick = |fast: bool| {
                    rows.iter()
                        .find(|r| {
                            r.flavor == flavor
                                && r.distribution == "zipf(0.99)"
                                && r.mode.starts_with(mode)
                                && (r.write_fraction - rmem_bench::kv::READ_HEAVY_WRITE_FRACTION)
                                    .abs()
                                    < 1e-9
                                && r.fastpath == fast
                        })
                        .expect("fast-path cell")
                };
                let (fast, legacy) = (pick(true), pick(false));
                let speedup = fast.ops_per_sec / legacy.ops_per_sec;
                assert!(
                    speedup >= threshold,
                    "{flavor}/{mode}: fast path regressed below {threshold}× ({speedup:.2}×)"
                );
                assert!(fast.read_rounds_mean < 2.0);
                println!(
                    "{flavor}/zipf read-heavy/{mode}: fast {:.0} ops/s vs legacy {:.0} ops/s \
                     ({speedup:.2}×; mean read rounds {:.2} vs {:.2})",
                    fast.ops_per_sec,
                    legacy.ops_per_sec,
                    fast.read_rounds_mean,
                    legacy.read_rounds_mean,
                );
            }
        }
    } else {
        println!("legacy mode (--no-fastpath): every read paid its write-back round");
    }
    if lease {
        let (lease_rows, lease_table) = rmem_bench::kv::kv_lease_section(smoke);
        println!("{}", lease_table.to_text());
        // The zero-round acceptance gates. The full-size run holds the
        // headline numbers; the smoke run is a fifth the length, so its
        // single put's fence window and the cold-start grant-earning
        // reads cover a far larger share of it — its guard is looser
        // while still proving both effects.
        let (mean_cap, speedup_floor) = if smoke { (0.5, 1.2) } else { (0.30, 1.5) };
        for flavor in ["persistent", "transient"] {
            let pick = |lease_on: bool| {
                lease_rows
                    .iter()
                    .find(|r| r.flavor == flavor && r.lease == lease_on)
                    .expect("lease cell")
            };
            let (on, off) = (pick(true), pick(false));
            let speedup = on.ops_per_sec / off.ops_per_sec;
            assert!(
                on.read_rounds_mean <= mean_cap,
                "{flavor}: leased mean read rounds must be ≤ {mean_cap}, got {:.3}",
                on.read_rounds_mean
            );
            assert!(
                speedup >= speedup_floor,
                "{flavor}: leases must clear {speedup_floor}× the lease-off twin,                  got {speedup:.2}×"
            );
            assert!(
                off.read_rounds_mean >= 1.0,
                "{flavor}: the off twin must pay quorum rounds, got {:.2}",
                off.read_rounds_mean
            );
            println!(
                "{flavor}/zipf read-mostly: leased {:.0} ops/s vs off {:.0} ops/s                  ({speedup:.2}×; mean read rounds {:.2} vs {:.2})",
                on.ops_per_sec,
                off.ops_per_sec,
                on.read_rounds_mean,
                off.read_rounds_mean,
            );
        }
        // The PR 6 priced-overhead gate, re-asserted with leases armed on
        // both sides: zero-round serving changes what fires per op
        // (lease counters and flight events join; some quorum-path
        // instruments drop out), and the budget must still hold.
        let o = rmem_bench::obs::obs_scenario_leased(smoke);
        assert!(
            o.within_budget(),
            "instrumentation overhead gate with leases on: priced cost {:.2} µs/op              exceeds {:.0}% of baseline ({:.2}% on the {} basis)",
            o.priced_overhead_ns_per_op() / 1_000.0,
            rmem_bench::obs::OVERHEAD_BUDGET * 100.0,
            (1.0 - o.overhead_ratio()) * 100.0,
            o.gate_basis(),
        );
        println!(
            "obs gate with leases on ({} µs horizon): {:.2}% priced overhead              ({} basis, budget {:.0}%)",
            rmem_bench::obs::OBS_LEASE_MICROS,
            (1.0 - o.overhead_ratio()) * 100.0,
            o.gate_basis(),
            rmem_bench::obs::OVERHEAD_BUDGET * 100.0,
        );
        rows.extend(lease_rows);
    }
    let reshard_report = if reshard {
        let r = rmem_bench::reshard::reshard_scenario(smoke);
        println!(
            "reshard 4→8 (live, certified across epochs): pre {:.0} ops/s, during {:.0} ops/s \
             ({:.0}% retained), post {:.0} ops/s ({:.0}% of pre); migration {:.2} ms, \
             {} entries moved, {} sources sealed, {} barrier waits ({} polls)",
            r.pre_ops_per_sec,
            r.during_ops_per_sec,
            r.dip_ratio() * 100.0,
            r.post_ops_per_sec,
            r.recovery_ratio() * 100.0,
            r.migration_ms,
            r.entries_moved,
            r.sources_sealed,
            r.barrier_waits,
            r.barrier_polls,
        );
        assert_eq!(r.epoch, 1, "the split must commit at epoch 1");
        assert!(
            r.recovery_ratio() > 0.5,
            "post-split throughput must recover (got {:.0}% of pre)",
            r.recovery_ratio() * 100.0
        );
        Some(r)
    } else {
        None
    };
    let disk_report = if disk {
        let r = rmem_bench::disk::disk_scenario(smoke);
        for row in &r.rows {
            println!(
                "disk/{} (udp, wf {:.1}, certified): {:.0} ops/s, {:.2} fsyncs/op, \
                 mean group {:.2}, {:.0} bytes/commit",
                row.backend,
                row.write_fraction,
                row.ops_per_sec,
                row.fsyncs_per_op,
                row.mean_group_size,
                row.bytes_per_commit,
            );
        }
        let speedup = r.wal_speedup();
        // The acceptance gate: group commit must move disk-backed
        // write-heavy throughput by multiples — the full run holds the
        // 3× line. The smoke gate is a regression tripwire, not the
        // claim: a 250 ms wall-clock window on an arbitrary CI host
        // (where the temp dir may sit on a write-back cache that makes
        // fsync nearly free) measures the syscall economy more than the
        // fsync economy, so it only asserts the direction with margin.
        // The mechanism itself is gated exactly in either mode by the
        // fsyncs/op comparison below.
        let threshold = if smoke { 1.5 } else { 3.0 };
        assert!(
            speedup >= threshold,
            "WAL must clear {threshold}× FileStorage on the write-heavy row, got {speedup:.2}×"
        );
        assert!(
            r.row("wal").fsyncs_per_op < r.row("file").fsyncs_per_op / 2.0,
            "the WAL must spend well under half the slot files' fsyncs per operation \
             ({:.2} vs {:.2})",
            r.row("wal").fsyncs_per_op,
            r.row("file").fsyncs_per_op,
        );
        println!(
            "disk: WAL {:.2}× FileStorage ops/s on the write-heavy zipf row \
             ({:.2} vs {:.2} fsyncs/op)",
            speedup,
            r.row("wal").fsyncs_per_op,
            r.row("file").fsyncs_per_op,
        );
        Some(r)
    } else {
        None
    };
    // `--trace` re-asserts the priced instrumentation-overhead gate with
    // tracing on: tracing IS part of the instrumented side of the obs
    // scenario (a KvClient with an enabled handle traces every op), so
    // running the obs scenario under --trace is exactly that re-check.
    let obs_report = if obs || trace || obs_json_path.is_some() {
        let r = rmem_bench::obs::obs_scenario(smoke);
        let cpu_per_op = |v: Option<f64>| match v {
            Some(ns) => format!("{:.1} µs", ns / 1_000.0),
            None => "n/a".to_string(),
        };
        println!(
            "obs (udp+wal, wall clock, wf {:.1}): instrumented {:.0} ops/s vs baseline {:.0} ops/s \
             (cpu/op {} vs {}); priced instrument cost {:.2} µs/op \
             ({:.1} flight events, {:.1} histogram samples, {:.1} counter incs per op) \
             = {:.2}% overhead ({} basis); \
             get p50/p90/p99/p999 = {}/{}/{}/{} µs, \
             put p50/p90/p99/p999 = {}/{}/{}/{} µs",
            rmem_bench::obs::OBS_WRITE_FRACTION,
            r.instrumented_ops_per_sec,
            r.baseline_ops_per_sec,
            cpu_per_op(r.instrumented_cpu_ns_per_op),
            cpu_per_op(r.baseline_cpu_ns_per_op),
            r.priced_overhead_ns_per_op() / 1_000.0,
            r.flight_events_per_op,
            r.hist_samples_per_op,
            r.counter_incs_per_op,
            (1.0 - r.overhead_ratio()) * 100.0,
            r.gate_basis(),
            r.get_percentiles_us[0],
            r.get_percentiles_us[1],
            r.get_percentiles_us[2],
            r.get_percentiles_us[3],
            r.put_percentiles_us[0],
            r.put_percentiles_us[1],
            r.put_percentiles_us[2],
            r.put_percentiles_us[3],
        );
        // The acceptance gate: the metrics registry and flight recorder
        // must ride along for ≤3% of the per-op budget — their measured
        // firing rates priced at measured unit costs, against the
        // baseline's measured CPU per completed op (wall-clock throughput
        // where /proc isn't readable).
        assert!(
            r.within_budget(),
            "instrumentation overhead gate: priced instrument cost {:.2} µs/op must stay within \
             {:.0}% of baseline cpu/op {} (instrumented {:.0} vs baseline {:.0} ops/s); got \
             {:.2}% overhead on the {} basis",
            r.priced_overhead_ns_per_op() / 1_000.0,
            rmem_bench::obs::OVERHEAD_BUDGET * 100.0,
            cpu_per_op(r.baseline_cpu_ns_per_op),
            r.instrumented_ops_per_sec,
            r.baseline_ops_per_sec,
            (1.0 - r.overhead_ratio()) * 100.0,
            r.gate_basis(),
        );
        if let Some(path) = &obs_json_path {
            std::fs::write(path, format!("[\n{}\n]\n", r.to_json()))
                .expect("writing obs metrics snapshot");
            println!("wrote {path}");
        }
        Some(r)
    } else {
        None
    };
    let trace_report = if trace {
        use rmem_bench::trace::{ATTRIBUTION_TOLERANCE, COVERAGE_FLOOR, TRACE_EXEMPLARS};
        let r = rmem_bench::trace::trace_scenario(smoke);
        println!(
            "trace (udp+wal, wall clock, wf {:.1}): {} ops at {:.0} ops/s",
            rmem_bench::trace::TRACE_WRITE_FRACTION,
            r.completed_ops,
            r.ops_per_sec,
        );
        print!("{}", r.report.render_summary());
        print!("{}", r.render_table());
        // The acceptance gates: near-total stitched coverage, a clock
        // model that never lets an effect precede its cause, and an
        // attribution that telescopes back to the client's wall clock.
        assert!(
            r.report.coverage() >= COVERAGE_FLOOR,
            "stitched coverage {:.2}% under the {:.0}% floor ({} stitched / {} completed, {} incomplete)",
            r.report.coverage() * 100.0,
            COVERAGE_FLOOR * 100.0,
            r.report.stitched.len(),
            r.report.completed,
            r.report.incomplete,
        );
        assert_eq!(
            r.report.violations,
            0,
            "effect-before-cause violations survived skew correction:\n{}",
            r.report.render_exemplars(3),
        );
        assert!(
            r.report.max_attribution_error() <= ATTRIBUTION_TOLERANCE,
            "per-segment attribution must sum within {:.0}% of wall clock (worst {:.2}%)",
            ATTRIBUTION_TOLERANCE * 100.0,
            r.report.max_attribution_error() * 100.0,
        );
        assert_eq!(
            r.trace_evictions, 0,
            "the runners' bounded request-trace maps must not evict in steady state \
             (an eviction silently un-stitches an op)",
        );
        println!(
            "trace gates: coverage {:.2}% (floor {:.0}%), 0 causality violations, \
             worst attribution error {:.2}% (limit {:.0}%), max clock err ±{:.1} µs",
            r.report.coverage() * 100.0,
            COVERAGE_FLOOR * 100.0,
            r.report.max_attribution_error() * 100.0,
            ATTRIBUTION_TOLERANCE * 100.0,
            r.report.max_clock_err_us(),
        );
        if let Some(path) = &trace_json_path {
            let payload = format!(
                "{{\"row\":\n{},\n\"exemplars\": {}\n}}\n",
                r.to_json(),
                r.report.exemplars_json(TRACE_EXEMPLARS),
            );
            std::fs::write(path, payload).expect("writing trace exemplars");
            println!("wrote {path}");
        }
        Some(r)
    } else {
        None
    };
    if chaos {
        // The chaos matrix as a gate: every seed's run must certify and
        // every crashed client's ops must resolve. On failure the
        // postmortem evidence (flight-recorder dumps + stitched causal
        // trace) lands at --chaos-dump for the CI artifact upload.
        match rmem_bench::chaos::chaos_scenario(smoke) {
            Ok(rows) => {
                for row in &rows {
                    let r = &row.report;
                    println!(
                        "chaos seed {} ({} nodes, splits {:?}): {} completed, {} ambiguous \
                         (all resolved), {} faults ({} torn tails), {} recovery verdicts, \
                         {} keys certified, {} retries",
                        r.seed,
                        row.nodes,
                        row.shard_path,
                        r.completed,
                        r.ambiguous,
                        r.faults_applied,
                        r.torn_tails,
                        r.verdicts.len(),
                        r.certified_keys,
                        r.retries,
                    );
                }
                let total_faults: usize = rows.iter().map(|r| r.report.faults_applied).sum();
                assert!(total_faults > 0, "the chaos sweep must inject faults");
                println!(
                    "chaos gates: {} seeds certified (exactly-once duplicate check included), \
                     every crashed client's ops resolved to a definite verdict",
                    rows.len(),
                );
                if let Some(path) = &chaos_dump_path {
                    let body: Vec<String> = rows.iter().map(|r| r.to_json()).collect();
                    std::fs::write(path, format!("[\n{}\n]\n", body.join(",\n")))
                        .expect("writing chaos rows");
                    println!("wrote {path}");
                }
            }
            Err(failure) => {
                if let Some(path) = &chaos_dump_path {
                    let payload = format!("{failure}\n\n{}", failure.dumps);
                    std::fs::write(path, payload).expect("writing chaos postmortem");
                    eprintln!("chaos postmortem written to {path}");
                }
                panic!("chaos scenario failed: {failure}");
            }
        }
    }
    let pipeline_report = pipeline_depth.map(|max_depth| {
        let r = rmem_bench::pipeline::pipeline_scenario(smoke, max_depth);
        for row in &r.rows {
            println!(
                "pipeline depth {:>3} (channel, wall clock, wf {:.1}, certified): \
                 {:.0} ops/s ({} ops in {:.3} s, observed mean depth {:.1})",
                row.depth,
                rmem_bench::pipeline::PIPELINE_WRITE_FRACTION,
                row.ops_per_sec,
                row.completed_ops,
                row.elapsed_secs,
                row.observed_mean_depth,
            );
            assert!(row.certified, "depth {}: row must be certified", row.depth);
        }
        // The depth-scaling gate: the full sweep must show pipelining
        // paying for itself by multiples at depth 64; shallower sweeps
        // (CI smoke) assert the direction with margin — a tripwire, not
        // the claim.
        let speedup = r.speedup();
        let threshold = if max_depth >= 64 { 3.0 } else { 1.2 };
        assert!(
            speedup >= threshold,
            "pipeline depth {max_depth} must clear {threshold}× the depth-1 \
             single-thread baseline, got {speedup:.2}×"
        );
        println!(
            "pipeline: depth {} clears {:.2}× the single-thread depth-1 baseline \
             (gate: ≥{threshold}×)",
            r.rows.last().expect("rows").depth,
            speedup,
        );
        // The PR 6 priced-overhead gate, re-asserted with pipelining on:
        // the same interleaved trials, but every worker drives pipelined
        // batches, so `kv.inflight` / `kv.pipeline_depth` fire and are
        // priced with everything else.
        let depth = max_depth.min(rmem_bench::obs::OBS_SHARDS as usize);
        let o = rmem_bench::obs::obs_scenario_with(smoke, Some(depth));
        assert!(
            o.within_budget(),
            "instrumentation overhead gate with pipelining on (depth {depth}): priced cost \
             {:.2} µs/op exceeds {:.0}% of baseline ({:.2}% on the {} basis)",
            o.priced_overhead_ns_per_op() / 1_000.0,
            rmem_bench::obs::OVERHEAD_BUDGET * 100.0,
            (1.0 - o.overhead_ratio()) * 100.0,
            o.gate_basis(),
        );
        println!(
            "obs gate with pipelining on (depth {depth}): {:.2}% priced overhead \
             ({} basis, budget {:.0}%)",
            (1.0 - o.overhead_ratio()) * 100.0,
            o.gate_basis(),
            rmem_bench::obs::OVERHEAD_BUDGET * 100.0,
        );
        r
    });
    if let Some(path) = json_path {
        std::fs::write(
            &path,
            rmem_bench::kv::rows_to_json_with(
                &rows,
                reshard_report.as_ref(),
                disk_report.as_ref(),
                // The obs row rides into the JSON only when asked for
                // explicitly (--trace borrows the scenario for its gate
                // re-check without changing the row set).
                obs_report
                    .as_ref()
                    .filter(|_| obs || obs_json_path.is_some()),
                trace_report.as_ref(),
                pipeline_report.as_ref(),
            ),
        )
        .expect("writing JSON rows");
        println!("wrote {path}");
    }
    if csv {
        let path = table.write_csv("kv_throughput").expect("writing CSV");
        println!("wrote {}", path.display());
    }
}
