//! Runs the `kv_throughput` scenario: sharded-store throughput for the
//! persistent, transient and regular register flavors under uniform and
//! Zipf-skewed key popularity, unbatched vs per-shard batched
//! (`rmem-batch`'s coalescing model).
//!
//! ```text
//! cargo run --release -p rmem-bench --bin kv_throughput [-- --csv] [-- --smoke]
//! ```
//!
//! `--smoke` runs the same grid on a reduced workload (CI-sized); every
//! reported run is still certified per key before its row prints.

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rows, table) = rmem_bench::kv::kv_throughput_with(smoke);
    println!("{}", table.to_text());
    println!("per-key certification: atomic flavors checked before reporting (batched included)");
    println!(
        "(log counts per put: persistent = 2, transient = 1, regular = 1; \
         virtual time, so differences are purely algorithmic)"
    );
    let fastest = rows
        .iter()
        .max_by(|a, b| a.ops_per_sec.partial_cmp(&b.ops_per_sec).expect("finite"))
        .expect("rows");
    println!(
        "fastest cell: {} / {} / {} at {:.0} ops/s",
        fastest.flavor, fastest.distribution, fastest.mode, fastest.ops_per_sec
    );
    for flavor in ["persistent", "transient"] {
        let pick = |mode: &str| {
            rows.iter()
                .find(|r| {
                    r.flavor == flavor && r.distribution == "zipf(0.99)" && r.mode.starts_with(mode)
                })
                .expect("cell")
        };
        let (un, ba) = (pick("unbatched"), pick("batched"));
        assert!(
            ba.ops_per_sec > un.ops_per_sec,
            "{flavor}/zipf: batched must beat unbatched"
        );
        println!(
            "{flavor}/zipf: batched {:.0} ops/s vs unbatched {:.0} ops/s ({:.2}× , {} vs {} register ops)",
            ba.ops_per_sec,
            un.ops_per_sec,
            ba.ops_per_sec / un.ops_per_sec,
            ba.register_ops,
            un.register_ops,
        );
    }
    if csv {
        let path = table.write_csv("kv_throughput").expect("writing CSV");
        println!("wrote {}", path.display());
    }
}
