//! Runs the `kv_throughput` scenario: sharded-store throughput for the
//! persistent, transient and regular register flavors under uniform and
//! Zipf-skewed key popularity.
//!
//! ```text
//! cargo run --release -p rmem-bench --bin kv_throughput [-- --csv]
//! ```

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let (rows, table) = rmem_bench::kv::kv_throughput();
    println!("{}", table.to_text());
    println!("per-key certification: atomic flavors checked before reporting");
    println!(
        "(log counts per put: persistent = 2, transient = 1, regular = 1; \
         virtual time, so differences are purely algorithmic)"
    );
    let fastest = rows
        .iter()
        .max_by(|a, b| a.ops_per_sec.partial_cmp(&b.ops_per_sec).expect("finite"))
        .expect("rows");
    println!(
        "fastest cell: {} / {} at {:.0} ops/s",
        fastest.flavor, fastest.distribution, fastest.ops_per_sec
    );
    if csv {
        let path = table.write_csv("kv_throughput").expect("writing CSV");
        println!("wrote {}", path.display());
    }
}
