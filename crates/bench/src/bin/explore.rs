//! Randomized adversary exploration at scale: thousands of seeded random
//! crash/partition/loss schedules, every history checker-certified.
//!
//! Usage:
//! ```text
//! cargo run --release -p rmem-bench --bin explore -- \
//!     [--target persistent|transient|persistent-memory|all] \
//!     [--runs N] [--base SEED]
//! ```
//!
//! A violation prints the offending seed — which, thanks to the
//! deterministic simulator, is a complete reproduction — and exits
//! non-zero.

use rmem_bench::explore::{sweep, Target};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target = "all".to_string();
    let mut runs = 200usize;
    let mut base = 0u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--target" => target = it.next().cloned().unwrap_or_default(),
            "--runs" => runs = it.next().and_then(|v| v.parse().ok()).unwrap_or(runs),
            "--base" => base = it.next().and_then(|v| v.parse().ok()).unwrap_or(base),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let targets: Vec<Target> = match target.as_str() {
        "persistent" => vec![Target::Persistent],
        "transient" => vec![Target::Transient],
        "persistent-memory" => vec![Target::PersistentMemory],
        "all" => Target::ALL.to_vec(),
        other => {
            eprintln!("unknown target {other:?}");
            std::process::exit(2);
        }
    };

    let mut failed = false;
    for t in targets {
        let start = std::time::Instant::now();
        let summary = sweep(t, base, runs);
        println!(
            "{:<18} {} runs in {:?}: {} ops completed, {} crashes, {} msgs dropped — {}",
            t.name(),
            summary.runs,
            start.elapsed(),
            summary.completed_ops,
            summary.crashes,
            summary.dropped,
            if summary.violations.is_empty() {
                "no violations".to_string()
            } else {
                failed = true;
                format!("VIOLATING SEEDS: {:?}", summary.violations)
            }
        );
        for &seed in summary.violations.iter().take(3) {
            if let Some(minimal) = rmem_bench::explore::minimal_counterexample(t, seed) {
                println!("--- minimal counterexample for seed {seed} ---");
                println!("{minimal:#?}");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
