//! The experiment implementations.

use std::sync::Arc;

use rmem_core::{CrashStop, FlavorFactory, Persistent, Regular, Transient};
use rmem_sim::workload::ClosedLoop;
use rmem_sim::{ClusterConfig, LatencyStats, PlannedEvent, Schedule, Simulation};
use rmem_types::{Micros, Op, OpKind, ProcessId, Value};

use crate::table::Table;

/// The algorithms compared by the paper's first experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoChoice {
    /// Crash-stop baseline (no logs).
    CrashStop,
    /// Transient atomic (1 causal log per write).
    Transient,
    /// Persistent atomic (2 causal logs per write).
    Persistent,
    /// Single-writer regular register (§VI extension).
    Regular,
}

impl AlgoChoice {
    /// The three algorithms of Fig. 6.
    pub const FIG6: [AlgoChoice; 3] = [
        AlgoChoice::CrashStop,
        AlgoChoice::Transient,
        AlgoChoice::Persistent,
    ];

    /// Factory for this choice.
    pub fn factory(self) -> Arc<FlavorFactory> {
        match self {
            AlgoChoice::CrashStop => CrashStop::factory(),
            AlgoChoice::Transient => Transient::factory(),
            AlgoChoice::Persistent => Persistent::factory(),
            AlgoChoice::Regular => Regular::factory(),
        }
    }

    /// Display name matching the paper's legend.
    pub fn name(self) -> &'static str {
        match self {
            AlgoChoice::CrashStop => "atomic crash-stop",
            AlgoChoice::Transient => "transient crash-recovery",
            AlgoChoice::Persistent => "persistent crash-recovery",
            AlgoChoice::Regular => "regular (SWMR)",
        }
    }
}

/// Runs `writes` back-to-back writes of `payload` bytes at one writer on a
/// cluster of `n` and returns the write-latency statistics — the paper's
/// measurement loop ("repeating the write fifty times and finally
/// averaging the write times", §V-B).
fn measure_writes(
    algo: AlgoChoice,
    n: usize,
    writes: usize,
    payload: usize,
    seed: u64,
) -> LatencyStats {
    let value = Value::new(vec![0xA5u8; payload]);
    let mut sim = Simulation::new(ClusterConfig::new(n), algo.factory(), seed);
    sim.add_closed_loop(ClosedLoop::writes(ProcessId(0), value, writes).with_think(Micros(50)));
    let report = sim.run();
    let lats = report.trace.latencies(OpKind::Write);
    assert_eq!(
        lats.len(),
        writes,
        "{}: every write must complete",
        algo.name()
    );
    LatencyStats::from_sample(lats).expect("non-empty sample")
}

/// One row of the Fig. 6 (top) reproduction.
#[derive(Debug, Clone)]
pub struct Fig6TopRow {
    /// Cluster size.
    pub n: usize,
    /// Algorithm.
    pub algo: AlgoChoice,
    /// Mean write latency in µs.
    pub mean_us: f64,
    /// The paper's reference value at N=5, when it quotes one.
    pub paper_us_at_5: Option<f64>,
}

/// Reproduces **Fig. 6 (top)**: average write time (4-byte value) vs.
/// number of workstations, for the three algorithms.
pub fn fig6_top() -> (Vec<Fig6TopRow>, Table) {
    let mut rows = Vec::new();
    let mut table = Table::new(
        "Fig. 6 (top): avg write latency [µs] vs cluster size (4-byte value, 50 writes)",
        &["algorithm", "N=3", "N=5", "N=7", "N=9"],
    );
    for algo in AlgoChoice::FIG6 {
        let mut cells = vec![algo.name().to_string()];
        for (i, n) in [3usize, 5, 7, 9].into_iter().enumerate() {
            let stats = measure_writes(algo, n, 50, 4, 0xF160 + i as u64);
            if n == 5 {
                rows.push(Fig6TopRow {
                    n,
                    algo,
                    mean_us: stats.mean,
                    paper_us_at_5: Some(match algo {
                        AlgoChoice::CrashStop => 500.0,
                        AlgoChoice::Transient => 700.0,
                        AlgoChoice::Persistent => 900.0,
                        AlgoChoice::Regular => unreachable!(),
                    }),
                });
            } else {
                rows.push(Fig6TopRow {
                    n,
                    algo,
                    mean_us: stats.mean,
                    paper_us_at_5: None,
                });
            }
            cells.push(format!("{:.0}", stats.mean));
        }
        table.row(&cells);
    }
    (rows, table)
}

/// One row of the Fig. 6 (bottom) reproduction.
#[derive(Debug, Clone)]
pub struct Fig6BottomRow {
    /// Payload size in bytes.
    pub size: usize,
    /// Algorithm.
    pub algo: AlgoChoice,
    /// Mean write latency in µs.
    pub mean_us: f64,
}

/// Reproduces **Fig. 6 (bottom)**: average write time vs. payload size at
/// N = 5 (sizes capped at the 64 KB UDP datagram limit, §V-B).
pub fn fig6_bottom() -> (Vec<Fig6BottomRow>, Table) {
    let sizes = [
        4usize,
        1 << 10,
        4 << 10,
        8 << 10,
        16 << 10,
        32 << 10,
        64 << 10,
    ];
    let mut rows = Vec::new();
    let mut table = Table::new(
        "Fig. 6 (bottom): avg write latency [µs] vs payload size (N=5, 50 writes)",
        &["size [B]", "atomic crash-stop", "transient", "persistent"],
    );
    for (i, size) in sizes.into_iter().enumerate() {
        let mut cells = vec![size.to_string()];
        for algo in AlgoChoice::FIG6 {
            let stats = measure_writes(algo, 5, 50, size, 0xB070 + i as u64);
            rows.push(Fig6BottomRow {
                size,
                algo,
                mean_us: stats.mean,
            });
            cells.push(format!("{:.0}", stats.mean));
        }
        table.row(&cells);
    }
    (rows, table)
}

/// One row of the log-complexity table.
#[derive(Debug, Clone)]
pub struct LogTableRow {
    /// Algorithm.
    pub algo: &'static str,
    /// Measured causal logs for an uncontended write.
    pub write_logs: u32,
    /// Measured causal logs for an uncontended read.
    pub read_logs_uncontended: u32,
    /// Measured causal logs for a read racing a write (worst case seen).
    pub read_logs_contended: u32,
    /// The paper's bound for writes (Theorem 1 / §IV-C).
    pub bound_write: u32,
    /// The paper's bound for reads (Theorem 2).
    pub bound_read: u32,
}

/// Measures **causal logs per operation** for every algorithm — the
/// paper's §IV complexity table turned into an experiment. Uncontended
/// operations run in isolation; the contended read races a concurrent
/// write.
pub fn log_table() -> (Vec<LogTableRow>, Table) {
    let algos = [
        (AlgoChoice::Persistent, 2u32, 1u32),
        (AlgoChoice::Transient, 1, 1),
        (AlgoChoice::CrashStop, 0, 0),
        (AlgoChoice::Regular, 1, 0),
    ];
    let mut rows = Vec::new();
    let mut table = Table::new(
        "Causal logs per operation: measured vs the paper's tight bounds (§IV)",
        &[
            "algorithm",
            "write",
            "read (idle)",
            "read (contended)",
            "bound W",
            "bound R",
        ],
    );
    for (algo, bound_w, bound_r) in algos {
        // Uncontended: spaced sequential ops.
        let mut sim = Simulation::new(ClusterConfig::new(5), algo.factory(), 0x10).with_schedule(
            Schedule::new()
                .at(
                    1_000,
                    PlannedEvent::Invoke(ProcessId(0), Op::Write(Value::from_u32(1))),
                )
                .at(20_000, PlannedEvent::Invoke(ProcessId(1), Op::Read))
                .at(
                    40_000,
                    PlannedEvent::Invoke(ProcessId(0), Op::Write(Value::from_u32(2))),
                )
                .at(60_000, PlannedEvent::Invoke(ProcessId(2), Op::Read)),
        );
        let report = sim.run();
        let write_logs = report.trace.max_causal_logs(OpKind::Write);
        let read_idle = report.trace.max_causal_logs(OpKind::Read);

        // Contended: a read racing a write's propagation phase.
        let mut sim = Simulation::new(ClusterConfig::new(5), algo.factory(), 0x11).with_schedule(
            Schedule::new()
                .at(
                    1_000,
                    PlannedEvent::Invoke(ProcessId(0), Op::Write(Value::from_u32(9))),
                )
                .at(1_450, PlannedEvent::Invoke(ProcessId(1), Op::Read))
                .at(
                    10_000,
                    PlannedEvent::Invoke(ProcessId(0), Op::Write(Value::from_u32(10))),
                )
                .at(10_250, PlannedEvent::Invoke(ProcessId(2), Op::Read)),
        );
        let report = sim.run();
        let read_contended = report.trace.max_causal_logs(OpKind::Read);

        let name = algo.factory().flavor().name;
        rows.push(LogTableRow {
            algo: name,
            write_logs,
            read_logs_uncontended: read_idle,
            read_logs_contended: read_contended,
            bound_write: bound_w,
            bound_read: bound_r,
        });
        table.row(&[
            name.to_string(),
            write_logs.to_string(),
            read_idle.to_string(),
            read_contended.to_string(),
            bound_w.to_string(),
            bound_r.to_string(),
        ]);
    }
    (rows, table)
}

/// One row of the recovery-cost table.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Algorithm.
    pub algo: &'static str,
    /// Mean Recover→ready duration in µs when the crash interrupted a
    /// write (the recovery has real work to do).
    pub busy_crash_us: f64,
    /// Mean duration when the crash hit an idle process.
    pub idle_crash_us: f64,
}

/// **Extension experiment**: the cost of each algorithm's recovery
/// procedure — the flip side of the per-operation log counts. Persistent
/// recovery re-runs a propagation round (≈ one round-trip, plus replica
/// logs if the interrupted write was not yet adopted); transient recovery
/// is one log (the `rec` counter, ≈ λ); the crash-stop baseline recovers
/// in zero time because it restores nothing — and loses everything.
pub fn recovery_table() -> (Vec<RecoveryRow>, Table) {
    let mut rows = Vec::new();
    let mut table = Table::new(
        "Recovery cost [µs]: Recover event → process ready (extension experiment)",
        &["algorithm", "after mid-write crash", "after idle crash"],
    );
    for algo in [
        AlgoChoice::Persistent,
        AlgoChoice::Transient,
        AlgoChoice::CrashStop,
        AlgoChoice::Regular,
    ] {
        let measure = |busy: bool, seed: u64| -> f64 {
            let mut schedule = Schedule::new().at(
                1_000,
                PlannedEvent::Invoke(ProcessId(0), Op::Write(Value::from_u32(1))),
            );
            if busy {
                schedule = schedule
                    .at(
                        10_000,
                        PlannedEvent::Invoke(ProcessId(0), Op::Write(Value::from_u32(2))),
                    )
                    .at(10_500, PlannedEvent::Crash(ProcessId(0)));
            } else {
                schedule = schedule.at(10_500, PlannedEvent::Crash(ProcessId(0)));
            }
            schedule = schedule
                .at(20_000, PlannedEvent::Recover(ProcessId(0)))
                .at(40_000, PlannedEvent::Invoke(ProcessId(0), Op::Read));
            let mut sim = Simulation::new(ClusterConfig::new(5), algo.factory(), seed)
                .with_schedule(schedule);
            let report = sim.run();
            let d = &report.trace.recovery_durations;
            assert_eq!(d.len(), 1, "{}: one recovery expected", algo.name());
            d[0] as f64
        };
        let busy = measure(true, 0x5EC);
        let idle = measure(false, 0x1D7E);
        let name = algo.factory().flavor().name;
        rows.push(RecoveryRow {
            algo: name,
            busy_crash_us: busy,
            idle_crash_us: idle,
        });
        table.row(&[name.to_string(), format!("{busy:.0}"), format!("{idle:.0}")]);
    }
    (rows, table)
}

/// One row of the ablation cost/benefit table.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant name.
    pub variant: &'static str,
    /// Mean uncontended write latency (µs).
    pub write_us: f64,
    /// Mean uncontended read latency (µs).
    pub read_us: f64,
    /// Causal logs per write (by construction).
    pub logs_w: u32,
    /// Causal logs per read, worst case (by construction).
    pub logs_r: u32,
    /// Which lower-bound proof run judges this variant.
    pub judged_by: &'static str,
    /// Whether the variant survives that run (checker verdict).
    pub survives: bool,
}

/// **Ablation cost/benefit**: each removed log buys real latency — and
/// loses the correctness criterion on the corresponding lower-bound run.
/// This is Theorems 1–2 expressed as an engineering trade-off table: the
/// savings are exactly the ones the paper proves unobtainable.
pub fn ablation_table() -> (Vec<AblationRow>, Table) {
    use rmem_core::{ablation, FlavorFactory, DEFAULT_RETRANSMIT};

    let measure = |flavor: rmem_core::Flavor| -> (f64, f64) {
        let factory = Arc::new(FlavorFactory::new(flavor, DEFAULT_RETRANSMIT));
        let mut sim = Simulation::new(ClusterConfig::new(5), factory.clone(), 0xAB7);
        sim.add_closed_loop(
            ClosedLoop::writes(ProcessId(0), Value::from_u32(1), 20).with_think(Micros(50)),
        );
        let report = sim.run();
        let w = report.trace.latencies(OpKind::Write);
        let w_mean = w.iter().sum::<u64>() as f64 / w.len() as f64;

        let mut sim = Simulation::new(ClusterConfig::new(5), factory, 0xAB8);
        sim.add_closed_loop(ClosedLoop::reads(ProcessId(1), 20).with_think(Micros(50)));
        let report = sim.run();
        let r = report.trace.latencies(OpKind::Read);
        let r_mean = r.iter().sum::<u64>() as f64 / r.len() as f64;
        (w_mean, r_mean)
    };

    let survives = |flavor: rmem_core::Flavor, rho1: bool| -> bool {
        let factory = Arc::new(FlavorFactory::new(flavor, DEFAULT_RETRANSMIT));
        let schedule = if rho1 {
            crate::scenarios::rho1()
        } else {
            crate::scenarios::rho4()
        };
        let mut sim = Simulation::new(ClusterConfig::new(3), factory, if rho1 { 1 } else { 2 })
            .with_schedule(schedule);
        let report = sim.run();
        let h = report.trace.to_history();
        if flavor.name.contains("transient") || flavor == rmem_core::Flavor::transient() {
            rmem_consistency::check_transient(&h).is_ok()
        } else {
            rmem_consistency::check_persistent(&h).is_ok()
        }
    };

    // The published rows measure the paper's unoptimised rounds (fast
    // path off), so "what does each log/round cost" reads exactly as in
    // §IV; the final row is the confirmed-timestamp fast path, which buys
    // the ablation's read latency *without* giving up the criterion.
    let fast_read = rmem_core::Flavor {
        name: "persistent+fastread",
        ..rmem_core::Flavor::persistent()
    };
    let variants: [(rmem_core::Flavor, &'static str, bool); 6] = [
        (
            rmem_core::Flavor::persistent().with_read_fast_path(false),
            "ρ1",
            true,
        ),
        (ablation::no_pre_log(), "ρ1", true),
        (
            rmem_core::Flavor::transient().with_read_fast_path(false),
            "ρ1",
            true,
        ),
        (ablation::no_rec_counter(), "ρ1", true),
        (ablation::no_read_write_back(), "ρ4", false),
        (fast_read, "ρ4", false),
    ];

    let mut rows = Vec::new();
    let mut table = Table::new(
        "Ablation cost/benefit: latency saved by removing a log vs the criterion lost",
        &[
            "variant",
            "write µs",
            "read µs",
            "logs W",
            "logs R",
            "run",
            "verdict",
        ],
    );
    for (flavor, run, rho1) in variants {
        let (w, r) = measure(flavor);
        let ok = survives(flavor, rho1);
        rows.push(AblationRow {
            variant: flavor.name,
            write_us: w,
            read_us: r,
            logs_w: flavor.causal_logs_per_write(),
            logs_r: flavor.causal_logs_per_read(),
            judged_by: run,
            survives: ok,
        });
        table.row(&[
            flavor.name.to_string(),
            format!("{w:.0}"),
            format!("{r:.0}"),
            flavor.causal_logs_per_write().to_string(),
            flavor.causal_logs_per_read().to_string(),
            run.to_string(),
            if ok {
                "SATISFIED".into()
            } else {
                "VIOLATED".into()
            },
        ]);
    }
    (rows, table)
}

/// Real-mode calibration (§V-A analogue): measures the loopback
/// round-trip of the UDP transport and the `fsync` latency of
/// [`FileStorage`](rmem_storage::FileStorage) on this machine, then runs a
/// short write loop on a real UDP cluster. Returns a rendered report.
pub fn real_mode(dir: &std::path::Path) -> Table {
    use rmem_net::LocalCluster;
    use rmem_storage::StableStorage;

    let mut table = Table::new(
        "Real mode: measured constants and write latency over loopback UDP + fsync",
        &["metric", "value"],
    );

    // fsync latency (the paper's λ).
    let mut fs = rmem_storage::FileStorage::open(dir.join("calib")).expect("calib dir");
    let payload = bytes::Bytes::from(vec![0u8; 64]);
    let t0 = std::time::Instant::now();
    let rounds = 50;
    for i in 0..rounds {
        fs.store(&format!("slot{}", i % 4), payload.clone())
            .expect("store");
    }
    let lambda = t0.elapsed().as_micros() as f64 / rounds as f64;
    table.row(&["fsync log latency λ [µs]".into(), format!("{lambda:.0}")]);

    // Write latency over a real 3-process UDP cluster with file logs.
    for (name, factory) in [
        ("crash-stop", CrashStop::factory()),
        ("transient", Transient::factory()),
        ("persistent", Persistent::factory()),
    ] {
        let mut cluster =
            LocalCluster::udp(3, factory, dir.join(format!("cluster-{name}"))).expect("cluster");
        let client = cluster.client(ProcessId(0));
        // Warm-up.
        client.write(Value::from_u32(0)).expect("warm-up write");
        let t0 = std::time::Instant::now();
        let count = 30;
        for i in 0..count {
            client.write(Value::from_u32(i)).expect("write");
        }
        let mean = t0.elapsed().as_micros() as f64 / count as f64;
        table.row(&[
            format!("UDP write latency, {name} [µs]"),
            format!("{mean:.0}"),
        ]);
        cluster.shutdown();
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_top_reproduces_the_paper_shape() {
        let (rows, table) = fig6_top();
        assert_eq!(rows.len(), 12);
        assert_eq!(table.len(), 3);
        // Ordering at every N: crash-stop < transient < persistent.
        for n in [3usize, 5, 7, 9] {
            let at = |a: AlgoChoice| {
                rows.iter()
                    .find(|r| r.n == n && r.algo == a)
                    .unwrap()
                    .mean_us
            };
            let (cs, tr, pe) = (
                at(AlgoChoice::CrashStop),
                at(AlgoChoice::Transient),
                at(AlgoChoice::Persistent),
            );
            assert!(cs < tr && tr < pe, "N={n}: {cs} {tr} {pe}");
            // The gaps are each ≈ λ = 200µs (within 25%).
            assert!(
                (tr - cs - 200.0).abs() < 50.0,
                "N={n}: transient gap {}",
                tr - cs
            );
            assert!(
                (pe - tr - 200.0).abs() < 50.0,
                "N={n}: persistent gap {}",
                pe - tr
            );
        }
        // Latency grows (mildly) with N for each algorithm.
        for algo in AlgoChoice::FIG6 {
            let series: Vec<f64> = [3usize, 5, 7, 9]
                .iter()
                .map(|&n| {
                    rows.iter()
                        .find(|r| r.n == n && r.algo == algo)
                        .unwrap()
                        .mean_us
                })
                .collect();
            assert!(
                series.windows(2).all(|w| w[1] >= w[0]),
                "{}: series must be non-decreasing: {series:?}",
                algo.name()
            );
        }
    }

    #[test]
    fn fig6_bottom_grows_linearly_in_payload() {
        let (rows, _) = fig6_bottom();
        for algo in AlgoChoice::FIG6 {
            let series: Vec<(usize, f64)> = rows
                .iter()
                .filter(|r| r.algo == algo)
                .map(|r| (r.size, r.mean_us))
                .collect();
            // Monotone growth.
            assert!(
                series.windows(2).all(|w| w[1].1 > w[0].1),
                "{}: {series:?}",
                algo.name()
            );
            // Roughly linear: latency(64K)-latency(32K) ≈ latency(32K)-latency(16K) × 2 … check
            // the ratio of increments against size increments.
            let base = series[0].1;
            let at = |s: usize| series.iter().find(|(sz, _)| *sz == s).unwrap().1;
            let inc_32_64 = at(64 << 10) - at(32 << 10);
            let inc_16_32 = at(32 << 10) - at(16 << 10);
            let ratio = inc_32_64 / inc_16_32;
            assert!(
                (1.6..2.4).contains(&ratio),
                "{}: doubling the size must roughly double the increment, got {ratio} (base {base})",
                algo.name()
            );
        }
    }

    #[test]
    fn ablation_table_shows_the_tradeoff() {
        let (rows, _) = ablation_table();
        let by_name = |n: &str| rows.iter().find(|r| r.variant == n).unwrap();
        let persistent = by_name("persistent");
        let no_prelog = by_name("ablation:no-pre-log");
        let no_wb = by_name("ablation:no-read-write-back");
        let fast = by_name("persistent+fastread");
        // The removed pre-log saves ≈ λ on writes…
        assert!((persistent.write_us - no_prelog.write_us - 200.0).abs() < 60.0);
        // …and the removed write-back halves read latency…
        assert!(no_wb.read_us < persistent.read_us * 0.6);
        // …which the fast path matches on these quiescent reads *without*
        // surrendering the criterion (its fallback keeps the write-back
        // exactly where it is needed).
        assert!(fast.read_us < persistent.read_us * 0.6);
        assert!((fast.read_us - no_wb.read_us).abs() < 30.0);
        assert!(fast.survives, "the fast path must keep the criterion");
        // …but every ablation loses its criterion, and every intact
        // algorithm keeps it.
        for row in &rows {
            assert_eq!(
                row.survives,
                !row.variant.starts_with("ablation:"),
                "{}",
                row.variant
            );
        }
    }

    #[test]
    fn recovery_table_matches_flavor_procedures() {
        let (rows, _) = recovery_table();
        let by_name = |n: &str| rows.iter().find(|r| r.algo == n).unwrap();
        assert_eq!(by_name("crash-stop").idle_crash_us, 0.0);
        // Transient ≈ λ; persistent ≈ 2δ (+serialization); regular ≈ λ+2δ.
        assert!((150.0..260.0).contains(&by_name("transient").idle_crash_us));
        assert!((180.0..280.0).contains(&by_name("persistent").idle_crash_us));
        assert!((350.0..500.0).contains(&by_name("regular").idle_crash_us));
    }

    #[test]
    fn log_table_matches_bounds() {
        let (rows, _) = log_table();
        for row in rows {
            assert_eq!(row.write_logs, row.bound_write, "{}: writes", row.algo);
            assert!(
                row.read_logs_contended <= row.bound_read,
                "{}: contended reads exceed the bound",
                row.algo
            );
            assert_eq!(
                row.read_logs_uncontended, 0,
                "{}: idle reads must be log-free",
                row.algo
            );
        }
    }
}
