//! Experiment harness regenerating every figure of the paper's evaluation
//! (§V), plus the log-complexity table implied by §IV.
//!
//! | experiment | paper | binary |
//! |---|---|---|
//! | write latency vs. cluster size | Fig. 6 (top) | `cargo run -p rmem-bench --bin fig6 -- top` |
//! | write latency vs. payload size | Fig. 6 (bottom) | `cargo run -p rmem-bench --bin fig6 -- bottom` |
//! | causal logs per operation (+ ablation violations) | §IV Theorems 1–2 | `cargo run -p rmem-bench --bin log_table` |
//! | real-mode calibration (loopback UDP + fsync) | §V-A setup | `cargo run -p rmem-bench --bin real_mode` |
//! | sharded-store throughput per flavor (uniform/Zipf keys) | store layer over §V | `cargo run -p rmem-bench --bin kv_throughput` |
//!
//! The simulator is calibrated to the paper's constants — one-way message
//! delay δ ≈ 100 µs, synchronous log λ ≈ 200 µs (§I-B) — so the *shape*
//! of every result is comparable: who wins, by roughly what factor, and
//! where the curves grow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod disk;
pub mod experiments;
pub mod explore;
pub mod kv;
pub mod obs;
pub mod pipeline;
pub mod reshard;
pub mod scenarios;
pub mod table;
pub mod trace;

pub use experiments::{
    ablation_table, fig6_bottom, fig6_top, log_table, real_mode, recovery_table, AblationRow,
    AlgoChoice, Fig6BottomRow, Fig6TopRow, LogTableRow, RecoveryRow,
};
pub use table::Table;
