//! Executable reproductions of the paper's figure runs: the Fig. 1
//! persistent/transient comparison and the lower-bound proof runs ρ1
//! (Fig. 2, Theorem 1) and ρ4 (Fig. 3, Theorem 2).
//!
//! Each function returns an adversary [`Schedule`] for a 3-process
//! cluster. The schedules use directional link blocks and precisely timed
//! crashes to steer which replicas see which values — the simulator's
//! deterministic delays (δ = 100 µs one-way, ≈5 µs send serialization,
//! λ = 200 µs logs, 2 ms retransmit) make the interleavings reproducible.
//! Run the matching algorithm and feed the trace history to the checkers:
//!
//! | schedule | algorithm | persistent? | transient? |
//! |---|---|---|---|
//! | [`fig1`] | `Transient` | **violated** | satisfied |
//! | [`fig1`] | `Persistent` | satisfied | satisfied |
//! | [`rho1`] | `ablation::no_pre_log` | **violated** | **violated** |
//! | [`rho1`] | `Persistent` / `Transient` | satisfied | satisfied |
//! | [`rho4`] | `ablation::no_read_write_back` | **violated** | **violated** |
//! | [`rho4`] | `Persistent` | satisfied | satisfied |

use rmem_sim::{PlannedEvent, Schedule};
use rmem_types::{Op, ProcessId, Value};

fn p(i: u16) -> ProcessId {
    ProcessId(i)
}

fn w(x: u32) -> Op {
    Op::Write(Value::from_u32(x))
}

/// **Fig. 1**: the writer `p0` crashes mid-`W(v2)` after `v2` reached only
/// `p1`; after recovery it starts `W(v3)`, whose propagation is stalled by
/// blocks. Two reads by `p2` during `W(v3)` then return `v1` followed by
/// `v2` — the "overlapping write": fine for transient atomicity (the
/// unfinished `W(v2)` may linearize inside `W(v3)`'s window), a violation
/// of persistent atomicity (`W(v2)` had to finish before `W(v3)` began).
///
/// Run with the **transient** register to exhibit the anomaly; the
/// **persistent** register on the same schedule never lets `v2` escape
/// (the writer crashed before its pre-log completed, so recovery finds
/// nothing to finish and `v2` vanishes).
pub fn fig1() -> Schedule {
    Schedule::new()
        // A completed first write seeds v1 everywhere.
        .at(1_000, PlannedEvent::Invoke(p(0), w(1)))
        // Contain v2: p2 must not receive the W(v2) propagation.
        .at(9_000, PlannedEvent::Block(p(0), p(2)))
        .at(10_000, PlannedEvent::Invoke(p(0), w(2)))
        // The transient writer broadcasts at ~10.21 ms (right after its
        // query round); p1 adopts v2. Crashing at 10.30 ms kills the
        // writer's own in-flight adoption, so only p1 holds v2.
        .at(10_300, PlannedEvent::Crash(p(0)))
        .at(13_000, PlannedEvent::Recover(p(0)))
        // Reopen p0→p2 so the upcoming reads can hear p0 (v2 is dead at
        // the writer, nothing re-propagates it).
        .at(13_500, PlannedEvent::Unblock(p(0), p(2)))
        // W(v3): its query round runs 20.00–20.21 ms; the blocks planted
        // at 20.15 ms let the in-flight SN acks through but stop the
        // propagation round, so v3 exists only at p0 and W(v3) stays
        // open, retransmitting against closed links.
        .at(20_000, PlannedEvent::Invoke(p(0), w(3)))
        .at(20_150, PlannedEvent::Block(p(0), p(1)))
        .at(20_150, PlannedEvent::Block(p(0), p(2)))
        // R1 by p2 at 20.01 ms: its quorum is itself (v1) plus p0's
        // ReadAck (v1 — sent before v3's self-adoption, in flight before
        // the block): returns v1.
        .at(20_010, PlannedEvent::Invoke(p(2), Op::Read))
        // R2 by p2 at 20.50 ms: p0's ReadAck is now blocked, so the
        // quorum is itself (v1) plus p1 (v2): returns v2.
        .at(20_500, PlannedEvent::Invoke(p(2), Op::Read))
        // Lift the blocks: W(v3)'s retransmission completes it, closing
        // the history exactly like the figure (W(v3) replies last).
        .at(25_000, PlannedEvent::Unblock(p(0), p(1)))
        .at(25_000, PlannedEvent::Unblock(p(0), p(2)))
}

/// **Run ρ1** (Fig. 2, Theorem 1): the writer crashes mid-`W(v2)` with
/// `v2` adopted by `p1` alone and nothing logged at the writer. The
/// recovered writer's query round is steered to a majority that never saw
/// `v2`, so — without the pre-log (and without the transient `rec`
/// counter) — it reuses sequence number 2 and `W(v3)` collides with
/// `W(v2)`: two different values under the tag `[2, p0]`. Reads then
/// return `v2, v3, v2` — certified not atomic.
///
/// The real persistent algorithm survives the same schedule via its
/// `writing` pre-log + recovery completion; the transient one via `rec`.
pub fn rho1() -> Schedule {
    Schedule::new()
        .at(1_000, PlannedEvent::Invoke(p(0), w(1)))
        // Contain v2: only p1 (and the writer itself) can receive the
        // propagation; the query round is served by {p0, p1}.
        .at(9_000, PlannedEvent::Block(p(0), p(2)))
        .at(10_000, PlannedEvent::Invoke(p(0), w(2)))
        // Broadcast leaves at ~10.21 ms; crash at 10.30 ms: p1's adoption
        // is in flight (it completes), the writer's own is lost.
        .at(10_300, PlannedEvent::Crash(p(0)))
        // While the writer is down, reopen p0→p2 and isolate p1 entirely,
        // so the recovered writer's query round sees only {p0, p2} — a
        // majority whose maximum sequence number is still 1.
        .at(11_000, PlannedEvent::Unblock(p(0), p(2)))
        .at(12_000, PlannedEvent::Block(p(0), p(1)))
        .at(12_000, PlannedEvent::Block(p(1), p(0)))
        .at(13_000, PlannedEvent::Recover(p(0)))
        .at(14_000, PlannedEvent::Invoke(p(0), w(3)))
        // Heal the cluster and read from everyone.
        .at(20_000, PlannedEvent::Unblock(p(0), p(1)))
        .at(20_000, PlannedEvent::Unblock(p(1), p(0)))
        .at(25_000, PlannedEvent::Invoke(p(1), Op::Read))
        .at(35_000, PlannedEvent::Invoke(p(2), Op::Read))
        .at(45_000, PlannedEvent::Invoke(p(1), Op::Read))
}

/// **Run ρ4** (Fig. 3, Theorem 2): `W(v2)` stays in flight, held at the
/// writer alone. Reader `p1` hears `v2` once (through a briefly opened
/// link), crashes, recovers, and — if its read performed no write-back
/// (no log anywhere) — its next read assembles a majority of `v1`
/// holders: `v2` then `v1`, a new-old inversion across the crash.
///
/// The real algorithm's read write-back (its 1 causal log) pushes `v2`
/// into a majority before the first read returns, which is exactly why
/// the same schedule leaves it atomic.
pub fn rho4() -> Schedule {
    Schedule::new()
        .at(1_000, PlannedEvent::Invoke(p(0), w(1)))
        // Contain v2 at the writer: p1 is cut off before the write begins
        // and p2 is cut off between the query round (whose SN acks are
        // already in flight) and the propagation round.
        .at(9_000, PlannedEvent::Block(p(0), p(1)))
        .at(10_000, PlannedEvent::Invoke(p(0), w(2)))
        .at(10_150, PlannedEvent::Block(p(0), p(2)))
        // Briefly reopen p0→p1 so exactly one ReadAck carrying v2 gets
        // through; the 2 ms retransmission of W(v2) fires at ~12.21 ms,
        // after the link closes again.
        .at(10_950, PlannedEvent::Unblock(p(0), p(1)))
        .at(11_000, PlannedEvent::Invoke(p(1), Op::Read)) // returns v2
        .at(11_500, PlannedEvent::Block(p(0), p(1)))
        .at(13_000, PlannedEvent::Crash(p(1)))
        .at(14_000, PlannedEvent::Recover(p(1)))
        .at(15_000, PlannedEvent::Invoke(p(1), Op::Read)) // returns v1
        // Heal everything so W(v2) finally completes and the run
        // quiesces (the paper's figure also completes W(v2) at the end).
        .at(30_000, PlannedEvent::Unblock(p(0), p(1)))
        .at(30_000, PlannedEvent::Unblock(p(0), p(2)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_nonempty_and_ordered_sanely() {
        for s in [fig1(), rho1(), rho4()] {
            assert!(s.entries().len() >= 8);
        }
    }
}
