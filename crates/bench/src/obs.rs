//! The `--obs` scenario: **wall-clock latency percentiles and the
//! instrumentation overhead gate** on the real UDP runtime.
//!
//! The virtual-time grid of [`crate::kv`] reports latencies in simulated
//! microseconds — exact, noise-free, and explicitly labeled `virtual`.
//! This scenario is its wall-clock counterpart: the same closed-loop Zipf
//! workload runs against a WAL-backed UDP cluster with the `rmem-obs`
//! stack live, and the row's p50/p90/p99/p999 come from the client's
//! `kv.get_micros` / `kv.put_micros` histograms — real time, measured by
//! the instruments the operator would read in production.
//!
//! The price of those instruments is the scenario's own acceptance gate.
//! Trials run **interleaved** — baseline (observability disabled: no
//! latency clocks, flight events dropped at the door) and instrumented
//! alternating, with the in-pair order itself alternating pair to pair —
//! so both slow drift of the host (thermal, cache, background load) and
//! positional effects (the second trial of a pair runs in the first's
//! teardown shadow) land on both sides equally.
//!
//! The gate itself is **deterministic**, because on a small multi-tenant
//! host the A/B difference is not: window-to-window wall-clock swings of
//! ±20% (steal time, scheduling) and a large fixed CPU component
//! (event-loop wakeups, amortized over however many ops the window
//! happened to complete) both dwarf a 3% budget, in either direction.
//! So the gate *prices* the instruments instead of differencing two
//! noisy runs:
//!
//! 1. the instrumented trials report exactly how often each primitive
//!    fired per completed op (flight events from the recorders' tickets,
//!    histogram samples and counter increments from the snapshot);
//! 2. tight in-process microbenchmarks price each primitive in CPU ns
//!    per call, measured with per-thread CPU time (`schedstat`) so host
//!    steal cannot distort them;
//! 3. priced overhead = Σ rate × unit cost — an *over*estimate, since
//!    counters and ungated histograms run on the baseline side too;
//! 4. the gate asserts priced overhead ≤ 3% of the **measured** baseline
//!    CPU per op (summed over every baseline trial's per-thread CPU).
//!
//! Wall-clock ops/s of both sides is still measured and reported (best
//! trial a side), and is the gate's fallback where `/proc` is
//! unavailable.
//!
//! The report also carries a full metrics-snapshot JSON — the client
//! registry (`kv.*`) merged per name with every node's registry
//! (`runner.*`, `syncer.*`, bridged `storage.*` gauges) — which CI
//! uploads as a build artifact.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmem_core::{SharedMemory, Transient};
use rmem_kv::{KvClient, ShardRouter};
use rmem_net::{DiskMode, LocalCluster};
use rmem_obs::{MetricsSnapshot, ObsHandle};
use rmem_sim::KeyDistribution;

/// Shard count (and key universe) of the scenario.
pub const OBS_SHARDS: u16 = 16;

/// Put fraction of the workload (the mixed mix of the kv grid).
pub const OBS_WRITE_FRACTION: f64 = 0.5;

/// Closed-loop worker threads driving the cluster.
pub const OBS_WORKERS: u64 = 4;

/// Trials per side (baseline / instrumented), interleaved; each side
/// scores its best trial. Even, so the alternating in-pair order gives
/// both sides the same number of first-position runs.
pub const OBS_TRIALS: usize = 4;

/// The acceptance budget: the instrumented side must stay within this
/// fraction of the baseline (≤3% overhead, CPU per completed op).
pub const OVERHEAD_BUDGET: f64 = 0.03;

/// Wall-clock lease horizon of the leased gate re-run
/// ([`obs_scenario_leased`]), in µs. Short: at this scenario's 50% put
/// mix every put to a granted key freezes its register for the fence
/// term, so the horizon is kept to a few round trips — enough for the
/// lease instruments (`kv.lease_hits` / `kv.lease_misses` /
/// `kv.lease_revocations`, plus the `LeaseHit` / `LeaseRevoke` flight
/// events) to fire at real rates, without the fences dominating the
/// window.
pub const OBS_LEASE_MICROS: u64 = 500;

/// One trial's outcome.
#[derive(Debug, Clone)]
struct Trial {
    ops_per_sec: f64,
    completed_ops: u64,
    /// CPU nanoseconds the whole process (workers + node threads +
    /// syncers) spent inside the trial window; `None` off Linux.
    cpu_ns: Option<u64>,
    /// Flight events recorded across the client + every node (recorder
    /// tickets, so lapped events count too); 0 for baseline trials.
    flight_events: u64,
    /// Total histogram samples across the merged snapshot; 0 baseline.
    hist_samples: u64,
    /// Total counter increments across the merged snapshot; 0 baseline.
    counter_incs: u64,
    /// Client + per-node metrics, merged — instrumented trials only.
    metrics: Option<MetricsSnapshot>,
}

/// Deterministic unit costs of the observability primitives, in CPU ns
/// per call — the prices the gate multiplies the measured per-op rates
/// by. Measured with per-thread CPU time where available, so host steal
/// cannot distort them.
#[derive(Debug, Clone, Copy)]
pub struct UnitCosts {
    /// One [`rmem_obs::FlightRecorder::record`] (timestamp included).
    pub flight_record_ns: f64,
    /// One counter increment.
    pub counter_inc_ns: f64,
    /// One histogram sample.
    pub histogram_record_ns: f64,
    /// One monotonic clock sample (`Instant::now`).
    pub clock_sample_ns: f64,
}

/// Prices each primitive with a tight in-process loop, timed by the
/// calling thread's own CPU clock (falling back to wall time off Linux).
pub fn measure_unit_costs() -> UnitCosts {
    fn priced<F: FnMut(u64)>(iters: u64, mut f: F) -> f64 {
        for i in 0..iters / 10 {
            f(i); // warm caches and the branch predictor
        }
        let cpu0 = my_cpu_ns();
        let t0 = Instant::now();
        for i in 0..iters {
            f(i);
        }
        let wall = t0.elapsed().as_nanos() as f64 / iters as f64;
        match (cpu0, my_cpu_ns()) {
            (Some(a), Some(b)) if b > a => (b - a) as f64 / iters as f64,
            _ => wall,
        }
    }
    let rec = rmem_obs::FlightRecorder::new(rmem_obs::FlightRecorder::DEFAULT_CAPACITY);
    let flight_record_ns = priced(1_000_000, |i| {
        rec.record(
            rmem_obs::FlightEvent::new(rmem_obs::EventKind::RoundSent)
                .with_op(0, i)
                .with_register((i % 16) as u16)
                .with_aux(i % 3),
        )
    });
    let reg = rmem_obs::Registry::new();
    let counter = reg.counter("price.counter");
    let counter_inc_ns = priced(2_000_000, |_| counter.inc());
    let histogram = reg.histogram("price.histogram");
    let histogram_record_ns = priced(2_000_000, |i| histogram.record(i));
    let clock_sample_ns = priced(1_000_000, |_| {
        std::hint::black_box(Instant::now());
    });
    UnitCosts {
        flight_record_ns,
        counter_inc_ns,
        histogram_record_ns,
        clock_sample_ns,
    }
}

/// CPU nanoseconds consumed so far by one thread, from its `schedstat`
/// (`running_ns wait_ns timeslices` — nanosecond resolution, unlike the
/// 10 ms clock ticks of `/proc/self/stat`).
fn thread_cpu_ns(path: &std::path::Path) -> Option<u64> {
    let s = std::fs::read_to_string(path).ok()?;
    s.split_whitespace().next()?.parse().ok()
}

/// Sum of CPU nanoseconds over every *live* thread of this process.
/// Threads that exit between the two samples of a window are not seen by
/// the second sample — callers have such threads report themselves (see
/// the worker loop in [`run_trial`]).
fn live_threads_cpu_ns() -> Option<u64> {
    let mut total = 0u64;
    // A thread may exit between readdir and read: skip it, its CPU is
    // accounted by its own exit-time self-report or not at all.
    for entry in std::fs::read_dir("/proc/self/task").ok()?.flatten() {
        if let Some(ns) = thread_cpu_ns(&entry.path().join("schedstat")) {
            total += ns;
        }
    }
    Some(total)
}

/// CPU nanoseconds consumed so far by the calling thread.
fn my_cpu_ns() -> Option<u64> {
    thread_cpu_ns(std::path::Path::new("/proc/thread-self/schedstat"))
}

/// The full `--obs` report.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Best uninstrumented ops/s across the interleaved trials.
    pub baseline_ops_per_sec: f64,
    /// Best instrumented ops/s across the interleaved trials.
    pub instrumented_ops_per_sec: f64,
    /// Uninstrumented CPU ns per completed op, summed over every
    /// baseline trial; `None` where `/proc` is unavailable.
    pub baseline_cpu_ns_per_op: Option<f64>,
    /// Instrumented CPU ns per completed op, summed over every
    /// instrumented trial.
    pub instrumented_cpu_ns_per_op: Option<f64>,
    /// Flight events recorded per completed op (instrumented trials).
    pub flight_events_per_op: f64,
    /// Histogram samples per completed op.
    pub hist_samples_per_op: f64,
    /// Counter increments per completed op.
    pub counter_incs_per_op: f64,
    /// The measured unit costs the gate priced those rates with.
    pub unit_costs: UnitCosts,
    /// Logical ops completed in the best instrumented trial.
    pub completed_ops: u64,
    /// Wall-clock get percentiles (µs) from `kv.get_micros`, best
    /// instrumented trial: `[p50, p90, p99, p999]`.
    pub get_percentiles_us: [u64; 4],
    /// Wall-clock put percentiles (µs) from `kv.put_micros`.
    pub put_percentiles_us: [u64; 4],
    /// The merged metrics snapshot of the best instrumented trial
    /// (client `kv.*`/`batch.*` + every node's `runner.*`/`syncer.*`/
    /// bridged `storage.*`).
    pub metrics: MetricsSnapshot,
}

impl ObsReport {
    /// The priced cost of the instruments, in CPU ns per completed op:
    /// every flight event, histogram sample (plus the two clock samples
    /// a gated latency histogram implies) and counter increment, at the
    /// measured unit prices. A deliberate overestimate — counters and
    /// ungated histograms run on the baseline side too.
    pub fn priced_overhead_ns_per_op(&self) -> f64 {
        self.flight_events_per_op * self.unit_costs.flight_record_ns
            + self.counter_incs_per_op * self.unit_costs.counter_inc_ns
            + self.hist_samples_per_op
                * (self.unit_costs.histogram_record_ns + 2.0 * self.unit_costs.clock_sample_ns)
    }

    /// Instrumented efficiency as a fraction of baseline (1.0 = free,
    /// 0.97 = the gate's floor). With a measured baseline CPU/op, this
    /// is `1 − priced overhead ÷ baseline CPU/op` — deterministic where
    /// an A/B wall-clock difference on a shared host is not; wall-clock
    /// throughput best-of-N is the fallback.
    pub fn overhead_ratio(&self) -> f64 {
        if let Some(base) = self.baseline_cpu_ns_per_op {
            if base > 0.0 {
                return 1.0 - self.priced_overhead_ns_per_op() / base;
            }
        }
        if self.baseline_ops_per_sec == 0.0 {
            return 0.0;
        }
        self.instrumented_ops_per_sec / self.baseline_ops_per_sec
    }

    /// The basis [`overhead_ratio`](ObsReport::overhead_ratio) used.
    pub fn gate_basis(&self) -> &'static str {
        match self.baseline_cpu_ns_per_op {
            Some(_) => "priced-cpu",
            None => "wall",
        }
    }

    /// Whether the instrumented side held the ≤3% overhead budget.
    pub fn within_budget(&self) -> bool {
        self.overhead_ratio() >= 1.0 - OVERHEAD_BUDGET
    }

    /// The scenario's JSON object: headline numbers, wall-clock
    /// percentiles (labeled `"time": "wall"` — the virtual-time grid
    /// labels its rows `"virtual"`), and the full metrics snapshot.
    pub fn to_json(&self) -> String {
        let cpu = |v: Option<f64>| match v {
            Some(ns) => format!("{ns:.0}"),
            None => "null".to_string(),
        };
        format!(
            "  {{\"scenario\": \"obs\", \"time\": \"wall\", \"write_fraction\": {:.2}, \
             \"baseline_ops_per_sec\": {:.1}, \"instrumented_ops_per_sec\": {:.1}, \
             \"baseline_cpu_ns_per_op\": {}, \"instrumented_cpu_ns_per_op\": {}, \
             \"gate_basis\": \"{}\", \"priced_overhead_ns_per_op\": {:.0}, \
             \"flight_events_per_op\": {:.2}, \"hist_samples_per_op\": {:.2}, \
             \"counter_incs_per_op\": {:.2}, \
             \"overhead_ratio\": {:.4}, \"completed_ops\": {}, \
             \"get_p50_us\": {}, \"get_p90_us\": {}, \"get_p99_us\": {}, \"get_p999_us\": {}, \
             \"put_p50_us\": {}, \"put_p90_us\": {}, \"put_p99_us\": {}, \"put_p999_us\": {}, \
             \"metrics\": {}}}",
            OBS_WRITE_FRACTION,
            self.baseline_ops_per_sec,
            self.instrumented_ops_per_sec,
            cpu(self.baseline_cpu_ns_per_op),
            cpu(self.instrumented_cpu_ns_per_op),
            self.gate_basis(),
            self.priced_overhead_ns_per_op(),
            self.flight_events_per_op,
            self.hist_samples_per_op,
            self.counter_incs_per_op,
            self.overhead_ratio(),
            self.completed_ops,
            self.get_percentiles_us[0],
            self.get_percentiles_us[1],
            self.get_percentiles_us[2],
            self.get_percentiles_us[3],
            self.put_percentiles_us[0],
            self.put_percentiles_us[1],
            self.put_percentiles_us[2],
            self.put_percentiles_us[3],
            self.metrics.to_json(),
        )
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rmem-obsbench-{tag}-{}", std::process::id()))
}

/// Runs the scenario: `OBS_TRIALS` interleaved baseline/instrumented
/// pairs of the closed-loop Zipf workload on a WAL-backed UDP cluster;
/// each side keeps its best trial. `smoke` shortens the window for CI.
///
/// # Panics
///
/// Panics if an operation errors terminally or a node's log fails.
pub fn obs_scenario(smoke: bool) -> ObsReport {
    obs_scenario_with(smoke, None)
}

/// [`obs_scenario`] with an optional **pipelined** workload: with
/// `pipeline_depth = Some(d)`, every worker drives batches of `d`
/// distinct-shard keys through the pipelined `multi_get`/`multi_put`
/// path instead of single blocking ops, so the reactor's own instruments
/// (`kv.inflight` gauge, `kv.pipeline_depth` histogram) fire and are
/// priced by the same ≤3% gate.
///
/// # Panics
///
/// As for [`obs_scenario`].
pub fn obs_scenario_with(smoke: bool, pipeline_depth: Option<usize>) -> ObsReport {
    obs_scenario_impl(smoke, pipeline_depth, 0)
}

/// [`obs_scenario`] with **tag leases armed on both sides**: replicas
/// grant [`OBS_LEASE_MICROS`] leases, every client carries a lease
/// cache, and the zero-round path serves hot-key gets in baseline and
/// instrumented trials alike — so the priced ≤3% gate stays a fair A/B
/// while the lease instruments fire and are priced with everything
/// else.
///
/// # Panics
///
/// As for [`obs_scenario`].
pub fn obs_scenario_leased(smoke: bool) -> ObsReport {
    obs_scenario_impl(smoke, None, OBS_LEASE_MICROS)
}

fn obs_scenario_impl(smoke: bool, pipeline_depth: Option<usize>, lease_micros: u64) -> ObsReport {
    let window = if smoke {
        Duration::from_millis(250)
    } else {
        Duration::from_millis(1_000)
    };
    let mut baseline: Option<Trial> = None;
    let mut instrumented: Option<Trial> = None;
    // Per side: (total CPU ns, total completed ops) across every trial —
    // the gate's numerator and denominator. One failed `/proc` read
    // poisons the side to `None` (fall back to wall clock).
    let mut cpu_totals: [Option<(u64, u64)>; 2] = [Some((0, 0)), Some((0, 0))];
    // The instrument firing rates, totalled across every instrumented
    // trial: (ops, flight events, histogram samples, counter incs).
    let mut rates = (0u64, 0u64, 0u64, 0u64);
    for trial in 0..OBS_TRIALS {
        // The in-pair order alternates: the second trial of a pair runs
        // in the teardown shadow of the first (thread exits, WAL-dir
        // removal, socket close — real CPU on a small host), so a fixed
        // order would charge that shadow to one side systematically.
        // Alternating lands it on both sides equally, and the even trial
        // count gives each side the same number of first-position runs.
        let order = if trial % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for enabled in order {
            let t = run_trial(trial, enabled, window, pipeline_depth, lease_micros);
            let totals = &mut cpu_totals[enabled as usize];
            *totals = match (*totals, t.cpu_ns) {
                (Some((ns, ops)), Some(cpu)) => Some((ns + cpu, ops + t.completed_ops)),
                _ => None,
            };
            if enabled {
                rates.0 += t.completed_ops;
                rates.1 += t.flight_events;
                rates.2 += t.hist_samples;
                rates.3 += t.counter_incs;
            }
            let best = if enabled {
                &mut instrumented
            } else {
                &mut baseline
            };
            if best.as_ref().is_none_or(|b| t.ops_per_sec > b.ops_per_sec) {
                *best = Some(t);
            }
        }
    }
    let cpu_per_op = |side: usize| -> Option<f64> {
        let (ns, ops) = cpu_totals[side]?;
        (ops > 0).then(|| ns as f64 / ops as f64)
    };
    let per_op = |n: u64| n as f64 / rates.0.max(1) as f64;
    let baseline = baseline.expect("baseline trials ran");
    let instrumented = instrumented.expect("instrumented trials ran");
    let metrics = instrumented
        .metrics
        .expect("instrumented trials carry a snapshot");
    let percentiles = |name: &str| -> [u64; 4] {
        let h = metrics.histogram(name);
        [
            h.percentile(0.50),
            h.percentile(0.90),
            h.percentile(0.99),
            h.percentile(0.999),
        ]
    };
    ObsReport {
        baseline_ops_per_sec: baseline.ops_per_sec,
        instrumented_ops_per_sec: instrumented.ops_per_sec,
        baseline_cpu_ns_per_op: cpu_per_op(0),
        instrumented_cpu_ns_per_op: cpu_per_op(1),
        flight_events_per_op: per_op(rates.1),
        hist_samples_per_op: per_op(rates.2),
        counter_incs_per_op: per_op(rates.3),
        unit_costs: measure_unit_costs(),
        completed_ops: instrumented.completed_ops,
        get_percentiles_us: percentiles("kv.get_micros"),
        put_percentiles_us: percentiles("kv.put_micros"),
        metrics,
    }
}

/// One trial: fresh WAL-backed UDP cluster and client family, both with
/// observability `enabled` or disabled, driven closed-loop for `window` —
/// by single blocking ops, or by pipelined batches of `pipeline_depth`
/// distinct-shard keys.
fn run_trial(
    trial: usize,
    enabled: bool,
    window: Duration,
    pipeline_depth: Option<usize>,
    lease_micros: u64,
) -> Trial {
    // Let the previous trial's teardown drain before the clock starts:
    // its node threads, syncers and sockets release the CPU they still
    // hold, so their shutdown cost is not charged to this trial's window.
    std::thread::sleep(Duration::from_millis(100));
    let tag = format!("{trial}-{}", if enabled { "obs" } else { "base" });
    let dir = scratch_dir(&tag);
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = LocalCluster::udp_with_disk_obs(
        3,
        SharedMemory::factory(Transient::flavor().with_lease(lease_micros)),
        &dir,
        DiskMode::Wal,
        enabled,
    )
    .expect("cluster");
    let handle = if enabled {
        ObsHandle::new()
    } else {
        ObsHandle::disabled()
    };
    let mut kv = KvClient::new(cluster.clients(), ShardRouter::new(OBS_SHARDS))
        .expect("kv client")
        .with_obs(handle);
    if lease_micros > 0 {
        kv = kv.with_lease_cache(16);
    }
    let keys = ShardRouter::new(OBS_SHARDS).covering_keys("obs-");
    for (i, key) in keys.iter().enumerate() {
        kv.put(key, vec![0, i as u8]).expect("seed put");
    }

    let stop = AtomicBool::new(false);
    let completed = AtomicU64::new(0);
    // Workers add their own lifetime CPU here on exit: they are born and
    // die inside the window, so the live-thread sums below never see
    // them.
    let worker_cpu_ns = AtomicU64::new(0);
    let worker_cpu_failed = AtomicBool::new(false);
    // The long-lived threads (main + the cluster's event loops and
    // syncers) are sampled before and after the window; the delta plus
    // the workers' self-reports is the trial's total CPU.
    let cpu_before = live_threads_cpu_ns();
    // First spawn to last join (as in the disk scenario): in-flight
    // operations completing after the stop flag count, so the divisor
    // must be the real elapsed time.
    let start = Instant::now();
    std::thread::scope(|scope| {
        let stop = &stop;
        let completed = &completed;
        let worker_cpu_ns = &worker_cpu_ns;
        let worker_cpu_failed = &worker_cpu_failed;
        let keys = &keys;
        for t in 0..OBS_WORKERS {
            let client = kv.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(71 + t);
                let dist = KeyDistribution::zipf(keys.len(), 0.99);
                let mut counter = 0u64;
                let mut round = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    match pipeline_depth {
                        // Pipelined batches: a rotating window of
                        // distinct-shard keys (staggered per worker), so
                        // each batch occupies `depth` distinct registers
                        // and the reactor sustains real depth.
                        Some(depth) => {
                            let depth = depth.min(keys.len());
                            let start = (t as usize + round * depth) % keys.len();
                            let picked: Vec<&str> = (0..depth)
                                .map(|j| keys[(start + j) % keys.len()].as_str())
                                .collect();
                            if rng.gen_bool(OBS_WRITE_FRACTION) {
                                let puts: Vec<(&str, bytes::Bytes)> = picked
                                    .iter()
                                    .map(|k| {
                                        counter += 1;
                                        let value =
                                            ((t + 1) << 32 | counter).to_be_bytes().to_vec();
                                        (*k, bytes::Bytes::from(value))
                                    })
                                    .collect();
                                client.multi_put(&puts).expect("pipelined put batch");
                            } else {
                                client.multi_get(&picked).expect("pipelined get batch");
                            }
                            completed.fetch_add(depth as u64, Ordering::Relaxed);
                            round += 1;
                        }
                        None => {
                            let key = &keys[dist.sample(&mut rng)];
                            if rng.gen_bool(OBS_WRITE_FRACTION) {
                                counter += 1;
                                let value = ((t + 1) << 32 | counter).to_be_bytes().to_vec();
                                client.put(key, value).expect("put");
                            } else {
                                client.get(key).expect("get");
                            }
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                match my_cpu_ns() {
                    Some(ns) => {
                        worker_cpu_ns.fetch_add(ns, Ordering::Relaxed);
                    }
                    None => worker_cpu_failed.store(true, Ordering::Relaxed),
                }
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed();
    let cpu_after = live_threads_cpu_ns();
    let cpu_ns = match (
        cpu_before,
        cpu_after,
        worker_cpu_failed.load(Ordering::Relaxed),
    ) {
        (Some(before), Some(after), false) => {
            Some(after.saturating_sub(before) + worker_cpu_ns.load(Ordering::Relaxed))
        }
        _ => None,
    };
    let completed_ops = completed.load(Ordering::Relaxed);
    if std::env::var_os("RMEM_OBS_TRACE").is_some() {
        eprintln!(
            "trial {trial} enabled={enabled}: {completed_ops} ops in {:?} = {:.0} ops/s, \
             cpu/op = {}",
            elapsed,
            completed_ops as f64 / elapsed.as_secs_f64(),
            match cpu_ns {
                Some(ns) if completed_ops > 0 =>
                    format!("{:.0} ns", ns as f64 / completed_ops as f64),
                _ => "n/a".to_string(),
            }
        );
    }

    let metrics = enabled.then(|| {
        // One snapshot covering the stack: the client family's registry
        // plus every node's, merged per name (counters/histograms add,
        // gauges keep the max).
        let mut merged = kv.metrics();
        for pid in rmem_types::ProcessId::all(3) {
            merged.merge(&cluster.metrics(pid));
        }
        merged
    });
    // How often each primitive fired, for the gate's pricing. Recorder
    // tickets count lapped events too; counter values and histogram
    // counts come straight off the snapshot.
    let flight_events = if enabled {
        kv.flight_recorder().total_recorded()
            + rmem_types::ProcessId::all(3)
                .map(|pid| cluster.flight_recorder(pid).total_recorded())
                .sum::<u64>()
    } else {
        0
    };
    let (hist_samples, counter_incs) = metrics
        .as_ref()
        .map(|m| {
            // The pipelined driver's `kv.inflight` gauge writes are not
            // visible in the snapshot (gauges store values, not counts),
            // but each `kv.pipeline_depth` sample is bracketed by at most
            // two of them (set + zero). A gauge set is the same primitive
            // as a counter increment (one relaxed store), so price them
            // as two extra increments per depth sample — the gate's usual
            // deliberate overestimate.
            let gauge_sets = 2 * m.histogram("kv.pipeline_depth").count;
            (
                m.histograms.values().map(|h| h.count).sum(),
                m.counters.values().sum::<u64>() + gauge_sets,
            )
        })
        .unwrap_or((0, 0));
    drop(kv);
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
    Trial {
        ops_per_sec: completed_ops as f64 / elapsed.as_secs_f64(),
        completed_ops,
        cpu_ns,
        flight_events,
        hist_samples,
        counter_incs,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_reports_wall_clock_percentiles_and_a_snapshot() {
        let report = obs_scenario(true);
        assert!(report.baseline_ops_per_sec > 0.0);
        assert!(report.instrumented_ops_per_sec > 0.0);
        assert!(report.completed_ops > 0);
        // The instrumented trial's clocks ran: percentile floors are
        // monotone and non-degenerate.
        assert!(report.get_percentiles_us[0] > 0, "get p50 must be real");
        assert!(report.put_percentiles_us[0] > 0, "put p50 must be real");
        for w in report.get_percentiles_us.windows(2) {
            assert!(w[0] <= w[1], "percentiles must be monotone");
        }
        // The merged snapshot spans every layer.
        assert!(report.metrics.counter("kv.reads") > 0);
        assert!(report.metrics.counter("runner.ops_completed") > 0);
        assert!(report.metrics.counter("syncer.commits") > 0);
        assert!(report.metrics.gauge("storage.stores") > 0);
        assert_eq!(
            report.metrics.histogram("kv.get_micros").count
                + report.metrics.histogram("kv.put_micros").count,
            report.metrics.counter("kv.reads") + report.metrics.counter("kv.writes"),
            "every logical op must carry one wall-clock sample"
        );
        // The priced gate's inputs are real: every instrument fired, and
        // the microbenched unit costs are positive and sane (well under
        // a microsecond each).
        assert!(report.flight_events_per_op > 0.0);
        assert!(report.hist_samples_per_op > 0.0);
        assert!(report.counter_incs_per_op > 0.0);
        for cost in [
            report.unit_costs.flight_record_ns,
            report.unit_costs.counter_inc_ns,
            report.unit_costs.histogram_record_ns,
            report.unit_costs.clock_sample_ns,
        ] {
            assert!(
                cost > 0.0 && cost < 1_000.0,
                "unit cost {cost} ns out of range"
            );
        }
        assert!(report.priced_overhead_ns_per_op() > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"scenario\": \"obs\""));
        assert!(json.contains("\"time\": \"wall\""));
        assert!(json.contains("\"kv.get_micros\""));
        assert!(json.contains("\"gate_basis\""));
        // No throughput-gate assertion here: the bin applies the priced
        // gate (and CI runs the bin); this test only pins that its
        // inputs are populated.
    }
}
