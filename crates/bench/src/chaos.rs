//! The `--chaos` scenario: the combined chaos matrix
//! ([`rmem_kv::run_chaos`]) as a benchmark/CI gate.
//!
//! Each seed runs the full experiment — seeded node kill/recover windows
//! with torn-WAL-tail recoveries, a live shard-split chain, client
//! crashes at every write phase — on a real-threaded cluster, then
//! certifies every surviving history (including the exactly-once
//! duplicate-application check) and resolves every crashed client's ops
//! to a definite verdict. The smoke variant shrinks the cluster and the
//! horizon for CI; the full variant runs the 50-node default config.
//!
//! On a failed oracle the scenario surfaces the seed plus the
//! flight-recorder dumps and stitched causal trace carried by
//! [`rmem_kv::ChaosFailure`] — the bin writes them to the artifact path
//! so CI can upload the postmortem.

use std::time::Duration;

use rmem_kv::{run_chaos, ChaosConfig, ChaosFailure, ChaosReport};

/// Seeds the scenario sweeps (both variants).
pub const CHAOS_SEEDS: std::ops::Range<u64> = 0..3;

/// The per-variant chaos configuration for `seed`.
///
/// The smoke variant: a 12-node cluster, one live split, a 350 ms fault
/// horizon — sized for a CI runner. The full variant is the matrix's
/// 50-node default (split chain 4 → 8 → 16).
pub fn chaos_config(seed: u64, smoke: bool) -> ChaosConfig {
    let scratch = std::env::temp_dir().join(format!("rmem-chaosbench-{}", std::process::id()));
    if smoke {
        ChaosConfig {
            seed,
            nodes: 12,
            wal_every: 3,
            shard_path: vec![4, 8],
            writers: 2,
            ops_per_writer: 8,
            crashers: 3,
            windows: 3,
            max_concurrent_down: 2,
            horizon: Duration::from_millis(350),
            scratch,
            ..ChaosConfig::default()
        }
    } else {
        ChaosConfig {
            seed,
            scratch,
            ..ChaosConfig::default()
        }
    }
}

/// One seed's row of the scenario output.
#[derive(Debug)]
pub struct ChaosRow {
    /// The underlying run report.
    pub report: ChaosReport,
    /// Nodes in the run's cluster (from the config, for the row).
    pub nodes: usize,
    /// The run's split chain.
    pub shard_path: Vec<u16>,
}

impl ChaosRow {
    /// The row's JSON object for the benchmark output.
    pub fn to_json(&self) -> String {
        let path: Vec<String> = self.shard_path.iter().map(u16::to_string).collect();
        format!(
            "  {{\"scenario\": \"chaos\", \"time\": \"wall\", \"seed\": {}, \"nodes\": {}, \
             \"shard_path\": [{}], \"completed\": {}, \"ambiguous\": {}, \"faults\": {}, \
             \"torn_tails\": {}, \"verdicts\": {}, \"certified_keys\": {}, \"retries\": {}}}",
            self.report.seed,
            self.nodes,
            path.join(", "),
            self.report.completed,
            self.report.ambiguous,
            self.report.faults_applied,
            self.report.torn_tails,
            self.report.verdicts.len(),
            self.report.certified_keys,
            self.report.retries,
        )
    }
}

/// Runs the scenario's seed sweep. Every seed must pass its oracle; the
/// first failure aborts the sweep and carries the postmortem evidence.
///
/// # Errors
///
/// The failing seed's [`ChaosFailure`] (message + flight-recorder dumps
/// + stitched trace).
pub fn chaos_scenario(smoke: bool) -> Result<Vec<ChaosRow>, Box<ChaosFailure>> {
    CHAOS_SEEDS
        .map(|seed| {
            let cfg = chaos_config(seed, smoke);
            run_chaos(&cfg).map(|report| ChaosRow {
                report,
                nodes: cfg.nodes,
                shard_path: cfg.shard_path,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_chaos_seed_certifies_and_serializes() {
        let cfg = chaos_config(1, true);
        let report = run_chaos(&cfg).unwrap_or_else(|f| panic!("{f}\n{}", f.dumps));
        assert!(report.completed > 0);
        assert_eq!(report.certified_keys, 4);
        let row = ChaosRow {
            report,
            nodes: cfg.nodes,
            shard_path: cfg.shard_path,
        };
        let json = row.to_json();
        assert!(json.contains("\"scenario\": \"chaos\""));
        assert!(json.contains("\"shard_path\": [4, 8]"));
    }
}
