//! The `kv_throughput` scenario: store throughput per register flavor,
//! key-popularity shape and batching mode, measured on the simulated
//! testbed.
//!
//! Each cell runs the same closed-loop store workload (`rmem-kv`'s
//! generator) against a shared memory of one flavor, in deterministic
//! virtual time, and reports completed operations per virtual second plus
//! latency percentiles. Because virtual time eliminates measurement
//! noise, differences between rows are purely algorithmic: the persistent
//! flavor pays 2 causal logs per put, the transient flavor 1, and the
//! regular flavor (single writer per key) skips the query round entirely.
//!
//! The **mode** column compares the unbatched path (every store operation
//! is its own two-round register operation) against `rmem-batch`-style
//! per-shard batching (each client's stream grouped into rounds of 8,
//! coalesced per shard: one `Read` round serves the round's gets on a
//! shard, one write round carries its coalesced puts). Both modes report
//! **logical** (store-level) throughput over the same workload, so the
//! batched gain is real amortization, not bookkeeping: under Zipf skew
//! the hot shard absorbs many ops per round at the cost of one.
//!
//! Every run is also certified per key before its row is reported — a
//! throughput number for a run that broke atomicity would be
//! meaningless, and for batched runs the per-key certifier is the
//! subsystem's correctness oracle. The regular flavor is exercised with
//! single-writer key ownership (its model) and skips certification:
//! regularity, not atomicity, is its criterion.

use rmem_consistency::Criterion;
use rmem_core::{Flavor, SharedMemory};
use rmem_kv::history::certify_per_key;
use rmem_kv::workload::{generate, KeyDist, KvWorkloadSpec};
use rmem_sim::{ClusterConfig, LatencyStats, Simulation};
use rmem_types::OpKind;

use crate::table::Table;

/// Round size of the batched mode (the `FlushPolicy::max_batch` analogue).
pub const BATCH_ROUND: usize = 8;

/// Which flavors the scenario compares.
fn flavors() -> Vec<(Flavor, Option<Criterion>, bool)> {
    vec![
        (Flavor::persistent(), Some(Criterion::Persistent), false),
        (Flavor::transient(), Some(Criterion::Transient), false),
        // Single-writer regular registers: no atomicity certification
        // (regularity is the criterion), writes partitioned by ownership.
        (Flavor::regular(), None, true),
    ]
}

/// One measured cell of the scenario.
#[derive(Debug, Clone)]
pub struct KvThroughputRow {
    /// Register flavor under test.
    pub flavor: &'static str,
    /// Key distribution label.
    pub distribution: String,
    /// Batching mode label (`unbatched` / `batched(k)`).
    pub mode: String,
    /// Store-level (logical) operations completed.
    pub completed: usize,
    /// Register operations executed to serve them.
    pub register_ops: usize,
    /// Virtual duration of the run, in seconds.
    pub virtual_secs: f64,
    /// Completed logical operations per virtual second.
    pub ops_per_sec: f64,
    /// Get-latency statistics (µs, per register round).
    pub get_latency: Option<LatencyStats>,
    /// Put-latency statistics (µs, per register round).
    pub put_latency: Option<LatencyStats>,
}

/// Runs the full scenario: 3 flavors × {uniform, zipf(0.99)} ×
/// {unbatched, batched}. `smoke` shrinks the workload for CI (same grid,
/// same certification, a fraction of the virtual traffic).
///
/// # Panics
///
/// Panics if an atomic flavor's run fails its per-key certification, or
/// if a crash-free run fails to complete every scheduled operation —
/// either would make the throughput numbers meaningless.
pub fn kv_throughput_with(smoke: bool) -> (Vec<KvThroughputRow>, Table) {
    let ops_per_client = if smoke { 24 } else { 60 };
    let mut rows = Vec::new();
    for (flavor, criterion, single_writer) in flavors() {
        for dist in [KeyDist::Uniform, KeyDist::Zipf(0.99)] {
            for batch in [1usize, BATCH_ROUND] {
                let spec = KvWorkloadSpec {
                    shards: 16,
                    clients: 5,
                    ops_per_client,
                    write_fraction: 0.5,
                    distribution: dist,
                    value_len: 64,
                    single_writer,
                    batch,
                    seed: 1234,
                    ..KvWorkloadSpec::default()
                };
                let run = generate(&spec);
                let mut sim = Simulation::new(
                    ClusterConfig::new(spec.clients),
                    SharedMemory::factory(flavor),
                    99,
                )
                .with_schedule(run.schedule.clone());
                for lp in &run.loops {
                    sim.add_closed_loop(lp.clone());
                }
                let report = sim.run();

                if let Some(criterion) = criterion {
                    certify_per_key(&report.trace.to_history(), &run.key_map, criterion)
                        .unwrap_or_else(|e| {
                            panic!(
                                "{} / {} / batch={batch}: run failed certification: {e}",
                                flavor.name,
                                dist.label()
                            )
                        });
                }

                let completed_registers = report
                    .trace
                    .operations()
                    .iter()
                    .filter(|o| o.is_completed())
                    .count();
                // Crash-free closed loops must drain completely; only then
                // does "completed logical ops" equal the generated count.
                assert_eq!(
                    completed_registers,
                    run.register_ops,
                    "{} / {} / batch={batch}: a crash-free run left work behind",
                    flavor.name,
                    dist.label()
                );
                let virtual_secs = report.final_time.as_micros() as f64 / 1e6;
                rows.push(KvThroughputRow {
                    flavor: flavor.name,
                    distribution: dist.label(),
                    mode: if batch == 1 {
                        "unbatched".to_string()
                    } else {
                        format!("batched({batch})")
                    },
                    completed: run.logical_ops,
                    register_ops: run.register_ops,
                    virtual_secs,
                    ops_per_sec: run.logical_ops as f64 / virtual_secs,
                    get_latency: LatencyStats::from_sample(report.trace.latencies(OpKind::Read)),
                    put_latency: LatencyStats::from_sample(report.trace.latencies(OpKind::Write)),
                });
            }
        }
    }

    let mut table = Table::new(
        "kv_throughput — sharded store, 5 clients, 16 shards, 50% puts; \
         ops/s is store-level work over the same workload per mode",
        &[
            "flavor",
            "key dist",
            "mode",
            "ops",
            "reg ops",
            "virtual s",
            "ops/s",
            "get p50µs",
            "put p50µs",
        ],
    );
    for r in &rows {
        table.row(&[
            r.flavor.to_string(),
            r.distribution.clone(),
            r.mode.clone(),
            r.completed.to_string(),
            r.register_ops.to_string(),
            format!("{:.3}", r.virtual_secs),
            format!("{:.0}", r.ops_per_sec),
            r.get_latency
                .as_ref()
                .map(|s| s.p50.to_string())
                .unwrap_or_else(|| "-".into()),
            r.put_latency
                .as_ref()
                .map(|s| s.p50.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    (rows, table)
}

/// The full scenario at its default size (see [`kv_throughput_with`]).
pub fn kv_throughput() -> (Vec<KvThroughputRow>, Table) {
    kv_throughput_with(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell<'a>(
        rows: &'a [KvThroughputRow],
        flavor: &str,
        dist: &str,
        mode_prefix: &str,
    ) -> &'a KvThroughputRow {
        rows.iter()
            .find(|r| {
                r.flavor == flavor && r.distribution == dist && r.mode.starts_with(mode_prefix)
            })
            .unwrap_or_else(|| panic!("missing cell {flavor}/{dist}/{mode_prefix}"))
    }

    #[test]
    fn scenario_produces_all_cells_and_certifies() {
        let (rows, table) = kv_throughput_with(true);
        assert_eq!(rows.len(), 12, "3 flavors × 2 distributions × 2 modes");
        assert_eq!(table.len(), 12);
        for r in &rows {
            assert!(
                r.completed > 0,
                "{}/{}/{} completed nothing",
                r.flavor,
                r.distribution,
                r.mode
            );
            assert!(r.ops_per_sec > 0.0);
        }
        // The transient flavor logs less than the persistent one on puts;
        // in noise-free virtual time that must show as cheaper puts.
        let put_p50 = |flavor: &str, dist: &str| {
            cell(&rows, flavor, dist, "unbatched")
                .put_latency
                .as_ref()
                .map(|s| s.p50)
                .unwrap()
        };
        assert!(
            put_p50("transient", "uniform") <= put_p50("persistent", "uniform"),
            "transient puts must not be slower than persistent ones"
        );
    }

    #[test]
    fn batching_beats_the_unbatched_path_under_zipf() {
        let (rows, _) = kv_throughput_with(true);
        for flavor in ["persistent", "transient"] {
            let unbatched = cell(&rows, flavor, "zipf(0.99)", "unbatched");
            let batched = cell(&rows, flavor, "zipf(0.99)", "batched");
            assert!(
                batched.register_ops < unbatched.register_ops,
                "{flavor}: batching must coalesce register ops"
            );
            assert!(
                batched.ops_per_sec > unbatched.ops_per_sec,
                "{flavor}/zipf: batched {:.0} ops/s must beat unbatched {:.0} ops/s",
                batched.ops_per_sec,
                unbatched.ops_per_sec
            );
        }
    }
}
