//! The `kv_throughput` scenario: store throughput per register flavor,
//! key-popularity shape, batching mode and read fast path, measured on
//! the simulated testbed.
//!
//! Each cell runs the same closed-loop store workload (`rmem-kv`'s
//! generator) against a shared memory of one flavor, in deterministic
//! virtual time, and reports completed operations per virtual second plus
//! latency percentiles and **per-read quorum-round counts**. Because
//! virtual time eliminates measurement noise, differences between rows
//! are purely algorithmic: the persistent flavor pays 2 causal logs per
//! put, the transient flavor 1, and the regular flavor (single writer per
//! key) skips the query round entirely.
//!
//! The **mode** column compares the unbatched path (every store operation
//! is its own two-round register operation) against `rmem-batch`-style
//! per-shard batching (each client's stream grouped into rounds of 8,
//! coalesced per shard: one `Read` round serves the round's gets on a
//! shard, one write round carries its coalesced puts). Both modes report
//! **logical** (store-level) throughput over the same workload, so the
//! batched gain is real amortization, not bookkeeping.
//!
//! The **fast** column is the read fast path (confirmed timestamps): the
//! read-heavy Zipf section runs every cell twice — fast path on vs the
//! legacy always-write-back configuration — at otherwise identical
//! settings, and the `rd rounds` columns show the mechanism: mean read
//! rounds collapse from 2.0 toward 1.0 on quiescent keys while contended
//! reads still pay their write-back.
//!
//! Every run is also certified per key before its row is reported — a
//! throughput number for a run that broke atomicity would be
//! meaningless. The regular flavor is exercised with single-writer key
//! ownership (its model) and skips certification: regularity, not
//! atomicity, is its criterion.

use rmem_consistency::Criterion;
use rmem_core::{Flavor, SharedMemory};
use rmem_kv::history::certify_per_key;
use rmem_kv::workload::{generate, KeyDist, KvWorkloadSpec};
use rmem_sim::{ClusterConfig, LatencyStats, Simulation};
use rmem_types::{Micros, OpKind};

use crate::table::Table;

/// Round size of the batched mode (the `FlushPolicy::max_batch` analogue).
pub const BATCH_ROUND: usize = 8;

/// Write fraction of the mixed (default) section.
pub const MIXED_WRITE_FRACTION: f64 = 0.5;

/// Write fraction of the read-heavy fast-path section.
pub const READ_HEAVY_WRITE_FRACTION: f64 = 0.1;

/// Write fraction of the read-mostly lease section: hot keys are read
/// over and over with only the occasional put, which is the regime tag
/// leases exist for. Every put to a leased key freezes that register for
/// the fence term (~1.25× the horizon) — the price of zero-round reads —
/// so the section keeps puts rare enough that the reads' savings, not
/// the puts' fences, decide the headline ratio.
pub const LEASE_WRITE_FRACTION: f64 = 0.007;

/// Key universe of the lease section: fewer, hotter keys than the main
/// grid — the regime leases target (Zipf-hot keys re-read many times per
/// grant term). Every key's inter-touch gap must fit inside the lease
/// horizon, or it re-earns a quorum round per touch.
pub const LEASE_SHARDS: u16 = 4;

/// Full-size ops per client of the lease section (see `Cell::full_ops`).
pub const LEASE_FULL_OPS: usize = 48;

/// Lease horizon of the leased cells (virtual µs). Long enough that
/// every key's inter-touch gap fits inside one grant term (each client
/// pays one quorum re-earn per key per horizon; the rest are zero-round
/// hits), short enough that the replica-side write fence (horizon + ¼
/// slack, during which the written register freezes) stays a bounded,
/// not run-dominating, put cost.
pub const LEASE_SECTION_MICROS: u64 = 1_200;

/// Closed-loop think time of the lease section (both twins), in virtual
/// µs. The main grid's 200µs default hides the read-latency win — the
/// loop spends its life thinking, not waiting on quorums — so the lease
/// section runs fully latency-dominated loops (zero think), the regime a
/// zero-round read actually accelerates.
pub const LEASE_THINK_MICROS: u64 = 0;

/// Closed-loop think time of the main grid (the workload generator's
/// default, restated here so grid cells can say it explicitly).
pub const GRID_THINK_MICROS: u64 = 200;

/// Which flavors the scenario compares.
fn flavors() -> Vec<(Flavor, Option<Criterion>, bool)> {
    vec![
        (Flavor::persistent(), Some(Criterion::Persistent), false),
        (Flavor::transient(), Some(Criterion::Transient), false),
        // Single-writer regular registers: no atomicity certification
        // (regularity is the criterion), writes partitioned by ownership.
        (Flavor::regular(), None, true),
    ]
}

/// One measured cell of the scenario.
#[derive(Debug, Clone)]
pub struct KvThroughputRow {
    /// Register flavor under test.
    pub flavor: &'static str,
    /// Key distribution label.
    pub distribution: String,
    /// Batching mode label (`unbatched` / `batched(k)`).
    pub mode: String,
    /// Fraction of store operations that are puts.
    pub write_fraction: f64,
    /// Whether the read fast path was enabled for this cell.
    pub fastpath: bool,
    /// Whether tag leases were enabled for this cell (zero-round reads).
    pub lease: bool,
    /// Store-level (logical) operations completed.
    pub completed: usize,
    /// Register operations executed to serve them.
    pub register_ops: usize,
    /// Virtual duration of the run, in seconds.
    pub virtual_secs: f64,
    /// Completed logical operations per virtual second.
    pub ops_per_sec: f64,
    /// Mean quorum rounds per register read (2.0 = every read wrote back,
    /// 1.0 = every read took the fast path; 0.0 with no reads).
    pub read_rounds_mean: f64,
    /// 99th-percentile quorum rounds per register read.
    pub read_rounds_p99: u32,
    /// Get-latency statistics (µs, per register round).
    pub get_latency: Option<LatencyStats>,
    /// Put-latency statistics (µs, per register round).
    pub put_latency: Option<LatencyStats>,
}

struct Cell {
    flavor: Flavor,
    criterion: Option<Criterion>,
    single_writer: bool,
    dist: KeyDist,
    batch: usize,
    write_fraction: f64,
    fastpath: bool,
    /// Lease horizon in virtual µs; `0` disables leases for the cell.
    lease_micros: u64,
    /// Closed-loop think time in virtual µs.
    think_micros: u64,
    /// Key/shard universe (the main grid uses 16; the lease section a
    /// hotter 4 so grants are re-served, not constantly re-earned).
    shards: u16,
    /// Full-size ops per client (smoke always runs 24). The lease
    /// section caps this at 48: with 4 shards the Zipf(0.99) hot key
    /// draws ~48% of all operations onto one register, and the
    /// linearization certifier is exponential past ~128 ops/register.
    full_ops: usize,
}

fn run_cell(cell: &Cell, smoke: bool) -> KvThroughputRow {
    let ops_per_client = if smoke { 24 } else { cell.full_ops };
    let flavor = cell
        .flavor
        .with_read_fast_path(
            // `fastpath: true` means "the flavor's own default"; forcing it on
            // for flavors that never had it (regular, crash-stop) would be a
            // different algorithm, not a knob.
            cell.fastpath && cell.flavor.read_fast_path,
        )
        // Leases ride on the fast path; `with_lease` on a non-fast-path
        // cell is inert by construction (`Flavor::leases` gates on it).
        .with_lease(cell.lease_micros);
    let spec = KvWorkloadSpec {
        shards: cell.shards,
        clients: 5,
        ops_per_client,
        write_fraction: cell.write_fraction,
        distribution: cell.dist,
        value_len: 64,
        single_writer: cell.single_writer,
        batch: cell.batch,
        seed: 1234,
        think: Micros(cell.think_micros),
        ..KvWorkloadSpec::default()
    };
    let run = generate(&spec);
    let mut sim = Simulation::new(
        ClusterConfig::new(spec.clients),
        SharedMemory::factory(flavor),
        99,
    )
    .with_schedule(run.schedule.clone());
    for lp in &run.loops {
        sim.add_closed_loop(lp.clone());
    }
    let report = sim.run();

    if let Some(criterion) = cell.criterion {
        certify_per_key(&report.trace.to_history(), &run.key_map, criterion).unwrap_or_else(|e| {
            panic!(
                "{} / {} / batch={} / fastpath={}: run failed certification: {e}",
                flavor.name,
                cell.dist.label(),
                cell.batch,
                cell.fastpath,
            )
        });
    }

    let completed_registers = report
        .trace
        .operations()
        .iter()
        .filter(|o| o.is_completed())
        .count();
    // Crash-free closed loops must drain completely; only then does
    // "completed logical ops" equal the generated count.
    assert_eq!(
        completed_registers,
        run.register_ops,
        "{} / {} / batch={}: a crash-free run left work behind",
        flavor.name,
        cell.dist.label(),
        cell.batch,
    );
    // Round counts are just another sample; the shared stats helper
    // supplies the same mean/nearest-rank-p99 the latency columns use.
    let rounds = LatencyStats::from_sample(
        report
            .trace
            .rounds(OpKind::Read)
            .into_iter()
            .map(u64::from)
            .collect(),
    );
    let (rounds_mean, rounds_p99) = rounds
        .as_ref()
        .map(|s| (s.mean, s.p99 as u32))
        .unwrap_or((0.0, 0));
    let virtual_secs = report.final_time.as_micros() as f64 / 1e6;
    KvThroughputRow {
        flavor: cell.flavor.name,
        distribution: cell.dist.label(),
        mode: if cell.batch == 1 {
            "unbatched".to_string()
        } else {
            format!("batched({})", cell.batch)
        },
        write_fraction: cell.write_fraction,
        fastpath: flavor.read_fast_path,
        lease: flavor.leases(),
        completed: run.logical_ops,
        register_ops: run.register_ops,
        virtual_secs,
        ops_per_sec: run.logical_ops as f64 / virtual_secs,
        read_rounds_mean: rounds_mean,
        read_rounds_p99: rounds_p99,
        get_latency: LatencyStats::from_sample(report.trace.latencies(OpKind::Read)),
        put_latency: LatencyStats::from_sample(report.trace.latencies(OpKind::Write)),
    }
}

/// Runs the full scenario. The mixed section: 3 flavors × {uniform,
/// zipf(0.99)} × {unbatched, batched} at 50% puts. The read-heavy
/// fast-path section: persistent/transient × zipf(0.99) × {unbatched,
/// batched} × {fast path, legacy} at 10% puts. `smoke` shrinks the
/// workload for CI (same grid, same certification); `fastpath_default =
/// false` forces *every* cell onto the legacy two-round read path, so CI
/// can exercise the fallback end to end.
///
/// # Panics
///
/// Panics if an atomic flavor's run fails its per-key certification, or
/// if a crash-free run fails to complete every scheduled operation —
/// either would make the throughput numbers meaningless.
pub fn kv_throughput_with_mode(
    smoke: bool,
    fastpath_default: bool,
) -> (Vec<KvThroughputRow>, Table) {
    let mut cells = Vec::new();
    for (flavor, criterion, single_writer) in flavors() {
        for dist in [KeyDist::Uniform, KeyDist::Zipf(0.99)] {
            for batch in [1usize, BATCH_ROUND] {
                cells.push(Cell {
                    flavor,
                    criterion,
                    single_writer,
                    dist,
                    batch,
                    write_fraction: MIXED_WRITE_FRACTION,
                    fastpath: fastpath_default,
                    lease_micros: 0,
                    think_micros: GRID_THINK_MICROS,
                    shards: 16,
                    full_ops: 60,
                });
            }
        }
    }
    // The fast-path section: the atomic flavors under a read-heavy Zipf
    // load, each cell twice — optimised vs legacy — at otherwise
    // identical settings.
    for (flavor, criterion, single_writer) in flavors() {
        if !flavor.read_fast_path {
            continue;
        }
        for batch in [1usize, BATCH_ROUND] {
            for fastpath in [fastpath_default, false] {
                cells.push(Cell {
                    flavor,
                    criterion,
                    single_writer,
                    dist: KeyDist::Zipf(0.99),
                    batch,
                    write_fraction: READ_HEAVY_WRITE_FRACTION,
                    fastpath,
                    lease_micros: 0,
                    think_micros: GRID_THINK_MICROS,
                    shards: 16,
                    full_ops: 60,
                });
            }
        }
    }
    // Forcing legacy everywhere makes the fast/legacy pairs identical;
    // drop the duplicates so every row stays a distinct cell.
    if !fastpath_default {
        let mut seen = std::collections::BTreeSet::new();
        cells.retain(|c| {
            seen.insert((
                c.flavor.name,
                c.dist.label(),
                c.batch,
                (c.write_fraction * 100.0) as u32,
            ))
        });
    }

    let rows: Vec<KvThroughputRow> = cells.iter().map(|c| run_cell(c, smoke)).collect();
    let table = build_table(
        "kv_throughput — sharded store, 5 clients, 16 shards; wf = put \
         fraction, fast = read fast path, lease = tag leases; ops/s is \
         store-level work over the same workload per mode; time = virtual: \
         latencies are simulated µs, not wall clock (wall-clock \
         percentiles come from the --obs scenario)",
        &rows,
    );
    (rows, table)
}

/// Renders rows in the scenario's shared column layout.
fn build_table(title: &str, rows: &[KvThroughputRow]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "flavor",
            "key dist",
            "mode",
            "time",
            "wf",
            "fast",
            "lease",
            "ops",
            "reg ops",
            "virtual s",
            "ops/s",
            "rd rounds",
            "rd p99",
            "get p50µs",
            "put p50µs",
        ],
    );
    for r in rows {
        table.row(&[
            r.flavor.to_string(),
            r.distribution.clone(),
            r.mode.clone(),
            "virtual".to_string(),
            format!("{}", r.write_fraction),
            if r.fastpath { "on" } else { "off" }.to_string(),
            if r.lease { "on" } else { "off" }.to_string(),
            r.completed.to_string(),
            r.register_ops.to_string(),
            format!("{:.3}", r.virtual_secs),
            format!("{:.0}", r.ops_per_sec),
            format!("{:.2}", r.read_rounds_mean),
            r.read_rounds_p99.to_string(),
            r.get_latency
                .as_ref()
                .map(|s| s.p50.to_string())
                .unwrap_or_else(|| "-".into()),
            r.put_latency
                .as_ref()
                .map(|s| s.p50.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    table
}

/// The tag-lease section: the atomic flavors under the read-mostly
/// Zipf(0.99) load, each flavor twice — leases on vs off — at otherwise
/// identical settings (unbatched: leases serve interactive single gets;
/// batching amortises rounds by a different mechanism and would conflate
/// the two). The leased twin's reads collapse toward **zero** rounds on
/// the hot keys (the `rd rounds` column is the mechanism; the ops/s
/// ratio is the headline), while its puts pay the replica-side lease
/// fence. Every leased run is certified per key exactly like every other
/// cell.
pub fn kv_lease_section(smoke: bool) -> (Vec<KvThroughputRow>, Table) {
    let mut cells = Vec::new();
    for (flavor, criterion, single_writer) in flavors() {
        if !flavor.read_fast_path {
            continue;
        }
        for lease in [true, false] {
            cells.push(Cell {
                flavor,
                criterion,
                single_writer,
                dist: KeyDist::Zipf(0.99),
                batch: 1,
                write_fraction: LEASE_WRITE_FRACTION,
                fastpath: true,
                lease_micros: if lease { LEASE_SECTION_MICROS } else { 0 },
                think_micros: LEASE_THINK_MICROS,
                shards: LEASE_SHARDS,
                full_ops: LEASE_FULL_OPS,
            });
        }
    }
    let rows: Vec<KvThroughputRow> = cells.iter().map(|c| run_cell(c, smoke)).collect();
    let table = build_table(
        "kv_throughput --lease — read-mostly Zipf(0.99) with tag leases \
         on vs off; leased reads answer from the client-held grant with \
         zero quorum rounds (rd rounds < 1), puts pay the lease fence; \
         every run certified per key",
        &rows,
    );
    (rows, table)
}

/// [`kv_throughput_with_mode`] with the shipping fast-path defaults.
pub fn kv_throughput_with(smoke: bool) -> (Vec<KvThroughputRow>, Table) {
    kv_throughput_with_mode(smoke, true)
}

/// The full scenario at its default size (see [`kv_throughput_with`]).
pub fn kv_throughput() -> (Vec<KvThroughputRow>, Table) {
    kv_throughput_with(false)
}

/// Serializes rows as a JSON array (one object per cell) for the perf
/// trajectory file (`BENCH_kv.json`): machine-readable so future changes
/// can diff ops/s and read-round numbers against the committed baseline.
/// When a [`reshard`](crate::reshard) report rides along (`--reshard`),
/// a [`disk`](crate::disk) report (`--disk`), an [`obs`](crate::obs)
/// report (`--obs`) and/or a [`pipeline`](crate::pipeline) depth sweep
/// (`--pipeline-depth`), their objects are appended to the same array so
/// the trajectory also tracks migration cost, real-disk durability
/// throughput, wall-clock latency percentiles with the
/// instrumentation-overhead ratio, and depth-labeled pipeline scaling.
pub fn rows_to_json_with(
    rows: &[KvThroughputRow],
    reshard: Option<&crate::reshard::ReshardReport>,
    disk: Option<&crate::disk::DiskReport>,
    obs: Option<&crate::obs::ObsReport>,
    trace: Option<&crate::trace::TraceBenchReport>,
    pipeline: Option<&crate::pipeline::PipelineReport>,
) -> String {
    let mut out = rows_to_json(rows);
    let mut extras = Vec::new();
    if let Some(report) = reshard {
        extras.push(crate::reshard::reshard_to_json(report));
    }
    if let Some(report) = disk {
        extras.push(crate::disk::disk_to_json(report));
    }
    if let Some(report) = obs {
        extras.push(report.to_json());
    }
    if let Some(report) = trace {
        extras.push(report.to_json());
    }
    if let Some(report) = pipeline {
        extras.push(report.to_json());
    }
    for extra in extras {
        let closing = out.rfind("\n]").expect("rows array closes");
        out.replace_range(closing.., &format!(",\n{extra}\n]\n"));
    }
    out
}

/// [`rows_to_json_with`] without extra scenario reports.
pub fn rows_to_json(rows: &[KvThroughputRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"flavor\": \"{}\", \"distribution\": \"{}\", \"mode\": \"{}\", \
             \"time\": \"virtual\", \
             \"write_fraction\": {:.2}, \"fastpath\": {}, \"lease\": {}, \"logical_ops\": {}, \
             \"register_ops\": {}, \"virtual_secs\": {:.6}, \"ops_per_sec\": {:.1}, \
             \"read_rounds_mean\": {:.4}, \"read_rounds_p99\": {}, \
             \"get_p50_us\": {}, \"put_p50_us\": {}}}",
            r.flavor,
            r.distribution,
            r.mode,
            r.write_fraction,
            r.fastpath,
            r.lease,
            r.completed,
            r.register_ops,
            r.virtual_secs,
            r.ops_per_sec,
            r.read_rounds_mean,
            r.read_rounds_p99,
            r.get_latency
                .as_ref()
                .map(|s| s.p50.to_string())
                .unwrap_or_else(|| "null".into()),
            r.put_latency
                .as_ref()
                .map(|s| s.p50.to_string())
                .unwrap_or_else(|| "null".into()),
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell<'a>(
        rows: &'a [KvThroughputRow],
        flavor: &str,
        dist: &str,
        mode_prefix: &str,
        wf: f64,
        fastpath: bool,
    ) -> &'a KvThroughputRow {
        rows.iter()
            .find(|r| {
                r.flavor == flavor
                    && r.distribution == dist
                    && r.mode.starts_with(mode_prefix)
                    && (r.write_fraction - wf).abs() < 1e-9
                    && r.fastpath == fastpath
            })
            .unwrap_or_else(|| {
                panic!("missing cell {flavor}/{dist}/{mode_prefix}/wf={wf}/fast={fastpath}")
            })
    }

    #[test]
    fn scenario_produces_all_cells_and_certifies() {
        let (rows, table) = kv_throughput_with(true);
        // 12 mixed cells + 8 read-heavy fast/legacy cells.
        assert_eq!(rows.len(), 20, "3×2×2 mixed + 2×2×2 read-heavy");
        assert_eq!(table.len(), 20);
        for r in &rows {
            assert!(
                r.completed > 0,
                "{}/{}/{} completed nothing",
                r.flavor,
                r.distribution,
                r.mode
            );
            assert!(r.ops_per_sec > 0.0);
        }
        // The transient flavor logs less than the persistent one on puts;
        // in noise-free virtual time that must show as cheaper puts.
        let put_p50 = |flavor: &str, dist: &str| {
            cell(&rows, flavor, dist, "unbatched", MIXED_WRITE_FRACTION, true)
                .put_latency
                .as_ref()
                .map(|s| s.p50)
                .unwrap()
        };
        assert!(
            put_p50("transient", "uniform") <= put_p50("persistent", "uniform"),
            "transient puts must not be slower than persistent ones"
        );
    }

    #[test]
    fn batching_beats_the_unbatched_path_under_zipf() {
        let (rows, _) = kv_throughput_with(true);
        for flavor in ["persistent", "transient"] {
            let unbatched = cell(
                &rows,
                flavor,
                "zipf(0.99)",
                "unbatched",
                MIXED_WRITE_FRACTION,
                true,
            );
            let batched = cell(
                &rows,
                flavor,
                "zipf(0.99)",
                "batched",
                MIXED_WRITE_FRACTION,
                true,
            );
            assert!(
                batched.register_ops < unbatched.register_ops,
                "{flavor}: batching must coalesce register ops"
            );
            assert!(
                batched.ops_per_sec > unbatched.ops_per_sec,
                "{flavor}/zipf: batched {:.0} ops/s must beat unbatched {:.0} ops/s",
                batched.ops_per_sec,
                unbatched.ops_per_sec
            );
        }
    }

    #[test]
    fn fast_path_wins_the_read_heavy_zipf_rows() {
        let (rows, _) = kv_throughput_with(true);
        for flavor in ["persistent", "transient"] {
            for mode in ["unbatched", "batched"] {
                let fast = cell(
                    &rows,
                    flavor,
                    "zipf(0.99)",
                    mode,
                    READ_HEAVY_WRITE_FRACTION,
                    true,
                );
                let legacy = cell(
                    &rows,
                    flavor,
                    "zipf(0.99)",
                    mode,
                    READ_HEAVY_WRITE_FRACTION,
                    false,
                );
                let speedup = fast.ops_per_sec / legacy.ops_per_sec;
                // The full-size workload clears 1.3× on every cell (the
                // bin asserts that); the smoke grid used here is a
                // quarter the size, so the guard is slightly looser.
                assert!(
                    speedup >= 1.25,
                    "{flavor}/{mode}: fast path must win on read-heavy zipf, got {speedup:.2}×"
                );
                assert!(
                    fast.read_rounds_mean < 2.0,
                    "{flavor}/{mode}: mean read rounds must drop below 2.0, got {:.2}",
                    fast.read_rounds_mean
                );
                assert!(
                    (legacy.read_rounds_mean - 2.0).abs() < f64::EPSILON,
                    "{flavor}/{mode}: the legacy path must pay 2 rounds per read, got {:.2}",
                    legacy.read_rounds_mean
                );
            }
        }
    }

    #[test]
    fn legacy_mode_runs_the_whole_grid_without_fast_reads() {
        let (rows, _) = kv_throughput_with_mode(true, false);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(!r.fastpath, "legacy mode must disable every cell");
            if r.flavor != "regular" && r.read_rounds_mean > 0.0 {
                assert!(
                    (r.read_rounds_mean - 2.0).abs() < f64::EPSILON,
                    "{}/{}: legacy reads must pay both rounds",
                    r.flavor,
                    r.distribution
                );
            }
        }
    }

    /// Hand-run parameter probe for the lease section: sweeps the lease
    /// horizon and write fraction around the shipped operating point and
    /// prints mean read rounds and the on/off throughput ratio for both
    /// flavors at both sizes. The shipped constants sit where full-size
    /// clears the acceptance gates (mean ≤ 0.30, ≥ 1.5×) with margin:
    /// pushing the horizon up lengthens every put's fence freeze; pushing
    /// the write fraction up multiplies the freezes.
    #[test]
    #[ignore = "parameter probe, run by hand"]
    fn probe_lease_parameters() {
        for (flavor, criterion) in [
            (Flavor::persistent(), Criterion::Persistent),
            (Flavor::transient(), Criterion::Transient),
        ] {
            for lease_micros in [1_000u64, 1_200, 1_500] {
                for wf in [0.005f64, 0.007, 0.01] {
                    let mk = |lease: bool| Cell {
                        flavor,
                        criterion: Some(criterion),
                        single_writer: false,
                        dist: KeyDist::Zipf(0.99),
                        batch: 1,
                        write_fraction: wf,
                        fastpath: true,
                        lease_micros: if lease { lease_micros } else { 0 },
                        think_micros: LEASE_THINK_MICROS,
                        shards: LEASE_SHARDS,
                        full_ops: LEASE_FULL_OPS,
                    };
                    for smoke in [true, false] {
                        let on = run_cell(&mk(true), smoke);
                        let off = run_cell(&mk(false), smoke);
                        println!(
                            "{} L={lease_micros} wf={wf} smoke={smoke}: mean {:.3} (off {:.3}),                              ops/s {:.0} vs {:.0} = {:.2}x",
                            flavor.name,
                            on.read_rounds_mean,
                            off.read_rounds_mean,
                            on.ops_per_sec,
                            off.ops_per_sec,
                            on.ops_per_sec / off.ops_per_sec,
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lease_twins_hit_the_zero_round_gates() {
        let (rows, table) = kv_lease_section(true);
        assert_eq!(rows.len(), 4, "2 flavors × lease on/off");
        assert_eq!(table.len(), 4);
        for flavor in ["persistent", "transient"] {
            let pick = |lease: bool| {
                rows.iter()
                    .find(|r| r.flavor == flavor && r.lease == lease)
                    .unwrap_or_else(|| panic!("missing {flavor}/lease={lease}"))
            };
            let (on, off) = (pick(true), pick(false));
            // The full-size acceptance gates (mean read rounds ≤ 0.30,
            // ≥ 1.5× the off twin) are asserted by the bin and recorded
            // in BENCH_kv.json. The smoke run here is a fifth the
            // length, so its single put's fence window and the 20
            // cold-start grant-earning reads cover a far larger share
            // of the run — the smoke guard is correspondingly looser
            // while still proving both effects end to end.
            assert!(
                on.read_rounds_mean <= 0.5,
                "{flavor}: leased mean read rounds must be ≤ 0.5, got {:.3}",
                on.read_rounds_mean
            );
            let speedup = on.ops_per_sec / off.ops_per_sec;
            assert!(
                speedup >= 1.2,
                "{flavor}: leases must clear 1.2× the lease-off twin even at                  smoke size, got {speedup:.2}×"
            );
            assert!(
                off.read_rounds_mean >= 1.0,
                "{flavor}: the off twin must pay quorum rounds"
            );
            assert!(
                on.lease && !off.lease && on.fastpath && off.fastpath,
                "{flavor}: the twins differ in leases and nothing else"
            );
        }
    }

    #[test]
    fn json_rows_are_parseable_shape() {
        let (rows, _) = kv_throughput_with(true);
        let json = rows_to_json(&rows);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"flavor\"").count(), rows.len());
        assert!(json.contains("\"read_rounds_mean\""));
    }
}
