//! The `kv_throughput` scenario: store throughput per register flavor and
//! key-popularity shape, measured on the simulated testbed.
//!
//! Each cell runs the same closed-loop store workload (`rmem-kv`'s
//! generator) against a shared memory of one flavor, in deterministic
//! virtual time, and reports completed operations per virtual second plus
//! latency percentiles. Because virtual time eliminates measurement
//! noise, differences between rows are purely algorithmic: the persistent
//! flavor pays 2 causal logs per put, the transient flavor 1, and the
//! regular flavor (single writer per key) skips the query round entirely.
//!
//! Every run is also certified per key before its row is reported — a
//! throughput number for a run that broke atomicity would be
//! meaningless. The regular flavor is exercised with single-writer key
//! ownership (its model) and skips certification: regularity, not
//! atomicity, is its criterion.

use rmem_consistency::Criterion;
use rmem_core::{Flavor, SharedMemory};
use rmem_kv::history::certify_per_key;
use rmem_kv::workload::{generate, KeyDist, KvWorkloadSpec};
use rmem_sim::{ClusterConfig, LatencyStats, Simulation};
use rmem_types::OpKind;

use crate::table::Table;

/// Which flavors the scenario compares.
fn flavors() -> Vec<(Flavor, Option<Criterion>, bool)> {
    vec![
        (Flavor::persistent(), Some(Criterion::Persistent), false),
        (Flavor::transient(), Some(Criterion::Transient), false),
        // Single-writer regular registers: no atomicity certification
        // (regularity is the criterion), writes partitioned by ownership.
        (Flavor::regular(), None, true),
    ]
}

/// One measured cell of the scenario.
#[derive(Debug, Clone)]
pub struct KvThroughputRow {
    /// Register flavor under test.
    pub flavor: &'static str,
    /// Key distribution label.
    pub distribution: String,
    /// Operations completed.
    pub completed: usize,
    /// Virtual duration of the run, in seconds.
    pub virtual_secs: f64,
    /// Completed operations per virtual second.
    pub ops_per_sec: f64,
    /// Get-latency statistics (µs).
    pub get_latency: Option<LatencyStats>,
    /// Put-latency statistics (µs).
    pub put_latency: Option<LatencyStats>,
}

/// Runs the full scenario: 3 flavors × {uniform, zipf(0.99)}.
///
/// # Panics
///
/// Panics if an atomic flavor's run fails its per-key certification —
/// that would be a correctness bug, not a performance result.
pub fn kv_throughput() -> (Vec<KvThroughputRow>, Table) {
    let mut rows = Vec::new();
    for (flavor, criterion, single_writer) in flavors() {
        for dist in [KeyDist::Uniform, KeyDist::Zipf(0.99)] {
            let spec = KvWorkloadSpec {
                shards: 16,
                clients: 5,
                ops_per_client: 60,
                write_fraction: 0.5,
                distribution: dist,
                value_len: 64,
                single_writer,
                seed: 1234,
                ..KvWorkloadSpec::default()
            };
            let run = generate(&spec);
            let mut sim = Simulation::new(
                ClusterConfig::new(spec.clients),
                SharedMemory::factory(flavor),
                99,
            )
            .with_schedule(run.schedule.clone());
            for lp in &run.loops {
                sim.add_closed_loop(lp.clone());
            }
            let report = sim.run();

            if let Some(criterion) = criterion {
                certify_per_key(&report.trace.to_history(), &run.key_map, criterion)
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} / {}: run failed certification: {e}",
                            flavor.name,
                            dist.label()
                        )
                    });
            }

            let completed = report
                .trace
                .operations()
                .iter()
                .filter(|o| o.is_completed())
                .count();
            let virtual_secs = report.final_time.as_micros() as f64 / 1e6;
            rows.push(KvThroughputRow {
                flavor: flavor.name,
                distribution: dist.label(),
                completed,
                virtual_secs,
                ops_per_sec: completed as f64 / virtual_secs,
                get_latency: LatencyStats::from_sample(report.trace.latencies(OpKind::Read)),
                put_latency: LatencyStats::from_sample(report.trace.latencies(OpKind::Write)),
            });
        }
    }

    let mut table = Table::new(
        "kv_throughput — sharded store, 5 clients, 16 shards, 50% puts",
        &[
            "flavor",
            "key dist",
            "ops",
            "virtual s",
            "ops/s",
            "get p50µs",
            "put p50µs",
        ],
    );
    for r in &rows {
        table.row(&[
            r.flavor.to_string(),
            r.distribution.clone(),
            r.completed.to_string(),
            format!("{:.3}", r.virtual_secs),
            format!("{:.0}", r.ops_per_sec),
            r.get_latency
                .as_ref()
                .map(|s| s.p50.to_string())
                .unwrap_or_else(|| "-".into()),
            r.put_latency
                .as_ref()
                .map(|s| s.p50.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_produces_all_cells_and_certifies() {
        let (rows, table) = kv_throughput();
        assert_eq!(rows.len(), 6, "3 flavors × 2 distributions");
        assert_eq!(table.len(), 6);
        for r in &rows {
            assert!(
                r.completed > 0,
                "{}/{} completed nothing",
                r.flavor,
                r.distribution
            );
            assert!(r.ops_per_sec > 0.0);
        }
        // The transient flavor logs less than the persistent one on puts;
        // in noise-free virtual time that must show as cheaper puts.
        let put_p50 = |flavor: &str, dist: &str| {
            rows.iter()
                .find(|r| r.flavor == flavor && r.distribution == dist)
                .and_then(|r| r.put_latency.as_ref())
                .map(|s| s.p50)
                .unwrap()
        };
        assert!(
            put_p50("transient", "uniform") <= put_p50("persistent", "uniform"),
            "transient puts must not be slower than persistent ones"
        );
    }
}
