//! Minimal text-table and CSV rendering (no external dependencies).

/// A simple column-aligned table with an optional title, rendered as
/// monospace text or CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders aligned monospace text.
    pub fn to_text(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Renders CSV (header + rows; quotes are not needed for our cells).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV next to the repository under `results/<name>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, name: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(&["3".into(), "500".into()]);
        t.row(&["5".into(), "700".into()]);
        t
    }

    #[test]
    fn text_renders_aligned() {
        let text = sample().to_text();
        assert!(text.contains("== demo =="));
        assert!(text.contains("n"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn csv_renders_rows() {
        let csv = sample().to_csv();
        assert_eq!(csv, "n,value\n3,500\n5,700\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn len_and_is_empty() {
        let t = Table::new("x", &["a"]);
        assert!(t.is_empty());
        assert_eq!(sample().len(), 2);
    }
}
