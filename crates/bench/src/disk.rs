//! The `--disk` scenario: **write-heavy Zipf traffic over real disks**
//! on the real UDP runtime, `FileStorage` (the paper's fsync-per-store
//! slot files) vs `WalStorage` (the segmented group-commit write-ahead
//! log), with fsync-level accounting from the cluster's
//! [`StoreCounters`].
//!
//! Unlike the virtual-time grid of [`crate::kv`], the durability
//! pipeline's value only shows against a *real* disk: the same workload
//! runs twice — same cluster shape, same traffic mix, different
//! [`DiskMode`] — and the report carries ops/s, fsyncs per store
//! operation, the mean group-commit size and bytes per commit. The
//! expected shape: the WAL needs one fsync per *commit* (shared by every
//! store the syncer batched) where the slot files pay two per *store*,
//! so write-heavy throughput moves by multiples, not percents.
//!
//! Every backend's row is gated on a **certified witness run**: a
//! bounded, recorded run of the same shape on the same backend must pass
//! [`rmem_kv::certify_per_key_epochs`] (identity transition — no
//! migration here, the oracle is per-key atomicity) before any number is
//! reported. The split between the witness and the measured run is the
//! same volume-bounding the reshard scenario uses: the decision-procedure
//! checker caps per-register history size, a full-speed run does not.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmem_consistency::Criterion;
use rmem_core::{SharedMemory, Transient};
use rmem_kv::{certify_per_key_epochs, EpochTransition, KvClient, OpRecorder, ShardRouter};
use rmem_net::{DiskMode, LocalCluster};
use rmem_sim::KeyDistribution;

/// Shard count (and key universe) of the scenario.
pub const DISK_SHARDS: u16 = 16;

/// Put fraction of the write-heavy rows.
pub const DISK_WRITE_FRACTION: f64 = 0.9;

/// Closed-loop worker threads driving the cluster.
pub const DISK_WORKERS: u64 = 8;

/// One backend's measured row.
#[derive(Debug, Clone)]
pub struct DiskRow {
    /// Backend label (`file` / `wal`).
    pub backend: &'static str,
    /// Store operations completed in the measurement window.
    pub completed_ops: u64,
    /// Completed operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Put fraction of the workload.
    pub write_fraction: f64,
    /// Physical fsyncs per completed store operation (cluster-wide).
    pub fsyncs_per_op: f64,
    /// Mean stores per durability commit (the group-commit amortization;
    /// 1.0 = no coalescing, as with the slot files).
    pub mean_group_size: f64,
    /// Mean bytes made durable per commit.
    pub bytes_per_commit: f64,
    /// Stable-storage failures observed (must be 0).
    pub store_failures: u64,
    /// Whether the backend's witness run passed per-key certification
    /// (the scenario panics otherwise, so a row in hand means `true`).
    pub certified: bool,
}

/// The full `--disk` report: one row per backend plus the headline
/// ratio.
#[derive(Debug, Clone)]
pub struct DiskReport {
    /// Measured rows, `file` first.
    pub rows: Vec<DiskRow>,
}

impl DiskReport {
    /// The row for `backend`.
    ///
    /// # Panics
    ///
    /// Panics if the backend was not measured.
    pub fn row(&self, backend: &str) -> &DiskRow {
        self.rows
            .iter()
            .find(|r| r.backend == backend)
            .unwrap_or_else(|| panic!("no {backend} row"))
    }

    /// WAL ops/s over FileStorage ops/s on the write-heavy row.
    pub fn wal_speedup(&self) -> f64 {
        let file = self.row("file").ops_per_sec;
        if file == 0.0 {
            return 0.0;
        }
        self.row("wal").ops_per_sec / file
    }
}

fn mode_of(backend: &'static str) -> DiskMode {
    match backend {
        "file" => DiskMode::File,
        "wal" => DiskMode::Wal,
        other => panic!("unknown backend {other}"),
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rmem-diskbench-{tag}-{}", std::process::id()))
}

/// Runs the scenario: for each backend, a certified witness run then a
/// measured window of write-heavy Zipf traffic. `smoke` shortens the
/// window for CI.
///
/// # Panics
///
/// Panics if a witness run fails certification, an operation errors
/// terminally, or a node's log fails.
pub fn disk_scenario(smoke: bool) -> DiskReport {
    let window = if smoke {
        Duration::from_millis(250)
    } else {
        Duration::from_millis(1_000)
    };
    let rows = ["file", "wal"]
        .into_iter()
        .map(|backend| {
            let certified = certified_witness(backend);
            measure(backend, window, certified)
        })
        .collect();
    DiskReport { rows }
}

fn measure(backend: &'static str, window: Duration, certified: bool) -> DiskRow {
    let dir = scratch_dir(&format!("measure-{backend}"));
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = LocalCluster::udp_with_disk(
        3,
        SharedMemory::factory(Transient::flavor()),
        &dir,
        mode_of(backend),
    )
    .expect("cluster");
    let kv = KvClient::new(cluster.clients(), ShardRouter::new(DISK_SHARDS)).expect("kv client");
    let keys = ShardRouter::new(DISK_SHARDS).covering_keys("disk-");
    for (i, key) in keys.iter().enumerate() {
        kv.put(key, vec![0, i as u8]).expect("seed put");
    }
    // Count only steady-state traffic: reset what seeding logged.
    for pid in rmem_types::ProcessId::all(3) {
        cluster.storage_counters(pid).reset();
    }

    let stop = AtomicBool::new(false);
    let completed = AtomicU64::new(0);
    // Measure from first spawn to last join: workers finish their
    // in-flight operation after the stop flag flips, and those
    // completions count, so the divisor must be the real elapsed time —
    // dividing by the nominal window would credit the slower backend's
    // longer post-window tail as throughput.
    let start = Instant::now();
    std::thread::scope(|scope| {
        let stop = &stop;
        let completed = &completed;
        let keys = &keys;
        for t in 0..DISK_WORKERS {
            let client = kv.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(31 + t);
                let dist = KeyDistribution::zipf(keys.len(), 0.99);
                let mut counter = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = &keys[dist.sample(&mut rng)];
                    if rng.gen_bool(DISK_WRITE_FRACTION) {
                        counter += 1;
                        let value = ((t + 1) << 32 | counter).to_be_bytes().to_vec();
                        client.put(key, value).expect("put");
                    } else {
                        client.get(key).expect("get");
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed();

    let completed_ops = completed.load(Ordering::Relaxed);
    let (mut stores, mut bytes, mut commits, mut fsyncs, mut failures) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for pid in rmem_types::ProcessId::all(3) {
        let c = cluster.storage_counters(pid);
        stores += c.stores();
        bytes += c.bytes();
        commits += c.commits();
        fsyncs += c.fsyncs();
        failures += cluster.store_failures(pid);
    }
    assert_eq!(failures, 0, "{backend}: the log must not fail mid-bench");
    assert!(stores > 0, "{backend}: a write-heavy run must log");
    drop(kv);
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);

    DiskRow {
        backend,
        completed_ops,
        ops_per_sec: completed_ops as f64 / elapsed.as_secs_f64(),
        write_fraction: DISK_WRITE_FRACTION,
        fsyncs_per_op: fsyncs as f64 / completed_ops.max(1) as f64,
        mean_group_size: stores as f64 / commits.max(1) as f64,
        bytes_per_commit: bytes as f64 / commits.max(1) as f64,
        store_failures: failures,
        certified,
    }
}

/// The bounded recorded witness: three Zipf clients with small op
/// budgets on the same backend and cluster shape, certified per key
/// (identity epoch transition — the cross-epoch certifier doubles as the
/// plain per-key oracle when nothing moves).
///
/// # Panics
///
/// Panics if the run fails certification.
fn certified_witness(backend: &'static str) -> bool {
    let dir = scratch_dir(&format!("witness-{backend}"));
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = LocalCluster::udp_with_disk(
        3,
        SharedMemory::factory(Transient::flavor()),
        &dir,
        mode_of(backend),
    )
    .expect("cluster");
    let recorder = OpRecorder::new();
    let kv = KvClient::new(cluster.clients(), ShardRouter::new(DISK_SHARDS))
        .expect("kv client")
        .with_recorder(recorder.clone());
    let keys = ShardRouter::new(DISK_SHARDS).covering_keys("disk-");
    for (i, key) in keys.iter().enumerate() {
        kv.put(key, vec![0, i as u8]).expect("seed put");
    }
    std::thread::scope(|scope| {
        for t in 0..3u64 {
            let client = kv.recorded_clone();
            let keys = &keys;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(300 + t);
                let dist = KeyDistribution::zipf(keys.len(), 0.99);
                let mut counter = 0u64;
                for _ in 0..30 {
                    let key = &keys[dist.sample(&mut rng)];
                    if rng.gen_bool(DISK_WRITE_FRACTION) {
                        counter += 1;
                        let value = ((t + 1) << 32 | counter).to_be_bytes().to_vec();
                        client.put(key, value).expect("put");
                    } else {
                        client.get(key).expect("get");
                    }
                }
            });
        }
    });
    let transition = EpochTransition {
        old_shards: DISK_SHARDS,
        new_shards: DISK_SHARDS,
    };
    certify_per_key_epochs(
        &recorder.history(),
        keys.iter().map(String::as_str),
        &transition,
        Criterion::Transient,
    )
    .unwrap_or_else(|e| panic!("{backend}: the disk witness run must certify per key: {e}"));
    drop(kv);
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
    true
}

/// Serializes the rows as JSON objects (appended to the `BENCH_kv.json`
/// trajectory by `--json`).
pub fn disk_to_json(report: &DiskReport) -> String {
    report
        .rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"scenario\": \"disk\", \"backend\": \"{}\", \"write_fraction\": {:.2}, \
                 \"completed_ops\": {}, \"ops_per_sec\": {:.1}, \"fsyncs_per_op\": {:.3}, \
                 \"mean_group_size\": {:.2}, \"bytes_per_commit\": {:.1}, \
                 \"store_failures\": {}, \"certified\": {}}}",
                r.backend,
                r.write_fraction,
                r.completed_ops,
                r.ops_per_sec,
                r.fsyncs_per_op,
                r.mean_group_size,
                r.bytes_per_commit,
                r.store_failures,
                r.certified,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_measures_both_backends_and_certifies() {
        let report = disk_scenario(true);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert!(row.certified);
            assert_eq!(row.store_failures, 0);
            assert!(row.completed_ops > 0, "{}: no traffic", row.backend);
            assert!(row.ops_per_sec > 0.0);
            assert!(
                row.fsyncs_per_op > 0.0,
                "{}: fsyncs must be counted",
                row.backend
            );
        }
        // The mechanism, not the magnitude (asserted in the bin): slot
        // files cannot group, the WAL can.
        let file = report.row("file");
        let wal = report.row("wal");
        assert!(
            (file.mean_group_size - 1.0).abs() < f64::EPSILON,
            "slot files commit per store"
        );
        assert!(
            wal.mean_group_size >= 1.0,
            "the WAL's groups cannot be smaller than 1"
        );
        assert!(
            wal.fsyncs_per_op < file.fsyncs_per_op,
            "the WAL must spend fewer fsyncs per operation ({} vs {})",
            wal.fsyncs_per_op,
            file.fsyncs_per_op
        );
        let json = disk_to_json(&report);
        assert_eq!(json.matches("\"scenario\": \"disk\"").count(), 2);
    }
}
