//! Randomized adversary exploration: run the emulations under thousands
//! of seeded random schedules (crashes, partitions, loss, duplication,
//! mixed workloads) and certify every recorded history with the
//! appropriate checker.
//!
//! This is the repository's model-checking-lite layer: the deterministic
//! simulator makes every counterexample a replayable seed, so a violation
//! report is a complete bug reproduction. The `explore` binary drives it
//! from the command line; `tests/properties.rs` runs a smaller sweep in
//! CI.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmem_consistency::{check_persistent, check_transient, Violation};
use rmem_core::{Persistent, SharedMemory, Transient};
use rmem_sim::{ClusterConfig, NetConfig, PlannedEvent, Schedule, Simulation};
use rmem_types::{Op, ProcessId, RegisterId, Value};

/// Which criterion the explored algorithm must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// The persistent algorithm against persistent atomicity.
    Persistent,
    /// The transient algorithm against transient atomicity.
    Transient,
    /// The persistent shared memory (multi-register) against persistent
    /// atomicity.
    PersistentMemory,
}

impl Target {
    /// All targets.
    pub const ALL: [Target; 3] = [
        Target::Persistent,
        Target::Transient,
        Target::PersistentMemory,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Target::Persistent => "persistent",
            Target::Transient => "transient",
            Target::PersistentMemory => "persistent-memory",
        }
    }
}

/// Outcome of one explored run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The seed that produced the run (sufficient to replay it).
    pub seed: u64,
    /// Operations completed.
    pub completed: usize,
    /// Crash events delivered.
    pub crashes: u64,
    /// Messages dropped (loss + partitions).
    pub dropped: u64,
    /// The checker verdict.
    pub verdict: Result<(), Violation>,
    /// The recorded history (replayable evidence; feed to
    /// [`rmem_consistency::shrink`] on violation).
    pub history: rmem_consistency::History,
}

/// Generates a random adversarial run for `target` from `seed` and checks
/// it. The schedule space covers: 3–5 processes; 0–6 crash/recovery
/// cycles anywhere in time (including simultaneous ones); 0–4 temporary
/// directional partitions; loss up to 25% and duplication up to 15%;
/// 4–14 operations from random processes at random times (multi-register
/// targets spread them over 3 registers).
pub fn explore_one(target: Target, seed: u64) -> RunOutcome {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD15C0);
    let n = [3usize, 5][rng.gen_range(0..2)];

    let mut schedule = Schedule::new();

    // Crash/recovery cycles. Every crash recovers eventually, keeping the
    // liveness precondition (a majority eventually up long enough).
    for _ in 0..rng.gen_range(0..6) {
        let pid = ProcessId(rng.gen_range(0..n as u16));
        let at = rng.gen_range(2_000..150_000);
        let down = rng.gen_range(3_000..40_000);
        schedule = schedule
            .at(at, PlannedEvent::Crash(pid))
            .at(at + down, PlannedEvent::Recover(pid));
    }

    // Temporary directional partitions.
    for _ in 0..rng.gen_range(0..4) {
        let from = ProcessId(rng.gen_range(0..n as u16));
        let to = ProcessId(rng.gen_range(0..n as u16));
        let at = rng.gen_range(2_000..120_000);
        let heal = rng.gen_range(5_000..50_000);
        schedule = schedule
            .at(at, PlannedEvent::Block(from, to))
            .at(at + heal, PlannedEvent::Unblock(from, to));
    }

    // Operations.
    let ops = rng.gen_range(4..14);
    for i in 0..ops {
        let pid = ProcessId(rng.gen_range(0..n as u16));
        let at = rng.gen_range(1_000..200_000);
        let value = Value::from_u32(1_000 * seed as u32 + i);
        let op = match target {
            Target::PersistentMemory => {
                let reg = RegisterId(rng.gen_range(0..3));
                if rng.gen_bool(0.5) {
                    Op::WriteAt(reg, value)
                } else {
                    Op::ReadAt(reg)
                }
            }
            _ => {
                if rng.gen_bool(0.5) {
                    Op::Write(value)
                } else {
                    Op::Read
                }
            }
        };
        schedule = schedule.at(at, PlannedEvent::Invoke(pid, op));
    }

    let net = NetConfig::lossy(rng.gen_range(0.0..0.25), rng.gen_range(0.0..0.15));
    let config = ClusterConfig::new(n).with_net(net);
    let factory: std::sync::Arc<dyn rmem_types::AutomatonFactory> = match target {
        Target::Persistent => Persistent::factory(),
        Target::Transient => Transient::factory(),
        Target::PersistentMemory => SharedMemory::factory(Persistent::flavor()),
    };
    let mut sim = Simulation::new(config, factory, seed).with_schedule(schedule);
    let report = sim.run();

    let history = report.trace.to_history();
    let verdict = match target {
        Target::Persistent | Target::PersistentMemory => check_persistent(&history).map(|_| ()),
        Target::Transient => check_transient(&history).map(|_| ()),
    };
    RunOutcome {
        seed,
        completed: report
            .trace
            .operations()
            .iter()
            .filter(|o| o.is_completed())
            .count(),
        crashes: report.trace.crashes,
        dropped: report.messages_dropped,
        verdict,
        history,
    }
}

/// Sweep summary.
#[derive(Debug, Default)]
pub struct SweepSummary {
    /// Runs executed.
    pub runs: usize,
    /// Operations completed across all runs.
    pub completed_ops: usize,
    /// Crash events across all runs.
    pub crashes: u64,
    /// Messages dropped across all runs.
    pub dropped: u64,
    /// Seeds whose runs violated the criterion.
    pub violations: Vec<u64>,
}

/// Replays a violating seed and returns the shrunk minimal counterexample
/// (`None` if the seed does not actually violate). Used by the `explore`
/// binary to turn a failing seed into a readable bug report.
pub fn minimal_counterexample(target: Target, seed: u64) -> Option<rmem_consistency::History> {
    let outcome = explore_one(target, seed);
    outcome.verdict.is_err().then(|| {
        let is_violating = |h: &rmem_consistency::History| match target {
            Target::Persistent | Target::PersistentMemory => check_persistent(h).is_err(),
            Target::Transient => check_transient(h).is_err(),
        };
        rmem_consistency::shrink(&outcome.history, is_violating)
    })
}

/// Runs `count` seeds starting at `base` against `target`.
pub fn sweep(target: Target, base: u64, count: usize) -> SweepSummary {
    let mut summary = SweepSummary::default();
    for seed in base..base + count as u64 {
        let outcome = explore_one(target, seed);
        summary.runs += 1;
        summary.completed_ops += outcome.completed;
        summary.crashes += outcome.crashes;
        summary.dropped += outcome.dropped;
        if outcome.verdict.is_err() {
            summary.violations.push(seed);
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_sweeps_find_no_violations() {
        for target in Target::ALL {
            let summary = sweep(target, 1_000, 15);
            assert_eq!(summary.runs, 15);
            assert!(
                summary.violations.is_empty(),
                "{}: violating seeds {:?}",
                target.name(),
                summary.violations
            );
        }
    }

    #[test]
    fn explore_is_deterministic_per_seed() {
        let a = explore_one(Target::Transient, 42);
        let b = explore_one(Target::Transient, 42);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.verdict.is_ok(), b.verdict.is_ok());
    }
}
