//! The `--pipeline-depth` scenario: **ops/s scaling with pipeline depth**
//! on the real-threaded runtime — one client thread keeping up to `depth`
//! operations in flight through the event-driven reactor, measured on
//! wall clocks against a 3-node channel cluster.
//!
//! Each row runs the same uniform write-heavy workload (batches of
//! `depth` distinct-shard keys rotating over a 64-shard covering set, 90%
//! puts) at one depth; the depth-1 row **is** the single-thread blocking
//! baseline — the pipelined driver degenerates to submit-then-wait — so
//! the column reads directly as "what pipelining buys one thread".
//! Throughput divides completed logical ops by the loop's **real elapsed
//! time** (first submit to last completion), never a nominal window.
//!
//! Like [`crate::reshard`], the scenario splits measurement from
//! certification: a full-speed unrecorded run produces the numbers (and,
//! with no recorder attached, exercises the zero-copy submission path),
//! while a bounded recorded twin of the same shape must pass per-key
//! certification before the row is reported — the decision-procedure
//! checker caps a register's history, so the certified witness is
//! volume-bounded while the measured run is not.
//!
//! Every measured run asserts its own hygiene: the `kv.inflight` gauge
//! must read zero after the loop (a leaked or wedged slot would hold it
//! up), and the `kv.pipeline_depth` histogram's sample count and mean are
//! reported so the row shows the depth the reactor actually sustained,
//! not just the one requested.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmem_consistency::Criterion;
use rmem_core::{SharedMemory, Transient};
use rmem_kv::{certify_per_key_epoch_path, KvClient, OpRecorder, ShardRouter};
use rmem_net::LocalCluster;

/// Shard (and register) universe of the sweep: large enough that a
/// depth-64 batch occupies 64 distinct registers, so per-register
/// sequentiality never caps the requested depth.
pub const PIPELINE_SHARDS: u16 = 64;

/// Put fraction of the workload (the "uniform write-heavy row").
pub const PIPELINE_WRITE_FRACTION: f64 = 0.9;

/// The depth axis: powers of four, clipped to the requested maximum.
pub fn depth_axis(max_depth: usize) -> Vec<usize> {
    let mut depths: Vec<usize> = [1usize, 4, 16, 64]
        .into_iter()
        .filter(|&d| d <= max_depth)
        .collect();
    if *depths.last().expect("depth 1 always present") != max_depth {
        depths.push(max_depth);
    }
    depths
}

/// One depth's measurement.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// Requested pipeline depth (batch size; distinct shards per batch).
    pub depth: usize,
    /// Logical store operations completed.
    pub completed_ops: u64,
    /// Real elapsed seconds of the measured loop.
    pub elapsed_secs: f64,
    /// Completed logical operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Mean in-flight depth the reactor actually sustained, from the
    /// `kv.pipeline_depth` histogram (0.0 at depth 1: the depth-1 driver
    /// never has more than one op to report).
    pub observed_mean_depth: f64,
    /// Whether the bounded recorded twin of this shape passed per-key
    /// certification (the scenario panics otherwise, so a row in hand
    /// means `true`).
    pub certified: bool,
}

/// The full `--pipeline-depth` report.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// One row per depth, in sweep order (depth 1 first).
    pub rows: Vec<PipelineRow>,
}

impl PipelineReport {
    /// The row measured at `depth`.
    ///
    /// # Panics
    ///
    /// Panics if the sweep did not include `depth`.
    pub fn row(&self, depth: usize) -> &PipelineRow {
        self.rows
            .iter()
            .find(|r| r.depth == depth)
            .unwrap_or_else(|| panic!("no pipeline row at depth {depth}"))
    }

    /// Deepest row's ops/s over the depth-1 row's — the headline
    /// "what pipelining buys one thread" number.
    pub fn speedup(&self) -> f64 {
        let base = self.row(1).ops_per_sec;
        let deepest = self.rows.last().expect("sweep is non-empty");
        if base == 0.0 {
            return 0.0;
        }
        deepest.ops_per_sec / base
    }

    /// Serializes the sweep as one JSON object whose `rows` array labels
    /// every row with its depth (appended to the `BENCH_kv.json`
    /// trajectory next to the virtual-time grid).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"depth\": {}, \"completed_ops\": {}, \"elapsed_secs\": {:.6}, \
                     \"ops_per_sec\": {:.1}, \"observed_mean_depth\": {:.2}, \
                     \"certified\": {}}}",
                    r.depth,
                    r.completed_ops,
                    r.elapsed_secs,
                    r.ops_per_sec,
                    r.observed_mean_depth,
                    r.certified,
                )
            })
            .collect();
        format!(
            "  {{\"scenario\": \"pipeline\", \"time\": \"wall\", \"shards\": {}, \
             \"write_fraction\": {:.2}, \"speedup\": {:.2}, \"rows\": [\n{}\n  ]}}",
            PIPELINE_SHARDS,
            PIPELINE_WRITE_FRACTION,
            self.speedup(),
            rows.join(",\n"),
        )
    }
}

/// One batch of `depth` distinct-shard keys: a rotating window over the
/// covering set, so the load is uniform across shards and every batch
/// occupies `depth` distinct registers.
fn batch_at(keys: &[String], round: usize, depth: usize) -> Vec<&str> {
    let start = (round * depth) % keys.len();
    (0..depth)
        .map(|j| keys[(start + j) % keys.len()].as_str())
        .collect()
}

/// Drives `batches` rounds of the workload through `kv` at `depth`,
/// returning completed logical ops. `None` batches means "run until
/// `deadline`".
fn drive(
    kv: &KvClient,
    keys: &[String],
    depth: usize,
    batches: Option<usize>,
    deadline: Option<Instant>,
    rng: &mut StdRng,
) -> u64 {
    let mut completed = 0u64;
    let mut counter = 0u64;
    let mut round = 0usize;
    loop {
        match (batches, deadline) {
            (Some(n), _) if round >= n => break,
            (_, Some(t)) if Instant::now() >= t => break,
            _ => {}
        }
        let picked = batch_at(keys, round, depth);
        if rng.gen_bool(PIPELINE_WRITE_FRACTION) {
            let puts: Vec<(&str, bytes::Bytes)> = picked
                .iter()
                .map(|k| {
                    counter += 1;
                    (*k, bytes::Bytes::from(counter.to_be_bytes().to_vec()))
                })
                .collect();
            kv.multi_put(&puts).expect("pipelined put batch");
        } else {
            kv.multi_get(&picked).expect("pipelined get batch");
        }
        completed += picked.len() as u64;
        round += 1;
    }
    completed
}

/// The bounded recorded twin: same cluster shape, same batching, small
/// op budget, full per-key certification.
///
/// # Panics
///
/// Panics if the recorded history fails certification.
fn certified_witness(depth: usize) -> bool {
    let mut cluster = LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap();
    let recorder = OpRecorder::new();
    let kv = KvClient::new(cluster.clients(), ShardRouter::new(PIPELINE_SHARDS))
        .unwrap()
        .with_recorder(recorder.clone());
    let keys = kv.router().covering_keys("pl-");
    let seed: Vec<(&str, bytes::Bytes)> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k.as_str(), bytes::Bytes::from(vec![0, i as u8])))
        .collect();
    kv.multi_put(&seed).expect("witness preload");
    let mut rng = StdRng::seed_from_u64(depth as u64);
    drive(&kv, &keys, depth, Some(6), None, &mut rng);
    certify_per_key_epoch_path(
        &recorder.history(),
        keys.iter().map(String::as_str),
        &[PIPELINE_SHARDS],
        Criterion::Transient,
    )
    .unwrap_or_else(|e| {
        eprintln!("{}", cluster.dump_flight_recorders(120));
        panic!("pipeline witness at depth {depth} failed certification: {e}")
    });
    cluster.shutdown();
    true
}

/// One measured row: a fresh cluster, an instrumented unrecorded client
/// (zero-copy submissions), one thread driving batches of `depth` for
/// `window` of real time.
fn measure(depth: usize, window: Duration) -> PipelineRow {
    let certified = certified_witness(depth);
    let mut cluster = LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap();
    // Preload through a separate client family so the depth-64 seeding
    // batch doesn't pollute the measured client's `kv.pipeline_depth`
    // histogram (each family has its own registry).
    let loader = KvClient::new(cluster.clients(), ShardRouter::new(PIPELINE_SHARDS)).unwrap();
    let keys = loader.router().covering_keys("pl-");
    let seed: Vec<(&str, bytes::Bytes)> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k.as_str(), bytes::Bytes::from(vec![0, i as u8])))
        .collect();
    loader.multi_put(&seed).expect("measured preload");
    let kv = KvClient::new(cluster.clients(), ShardRouter::new(PIPELINE_SHARDS)).unwrap();

    let mut rng = StdRng::seed_from_u64(42 + depth as u64);
    let start = Instant::now();
    let completed = drive(&kv, &keys, depth, None, Some(start + window), &mut rng);
    // Real elapsed time, not the nominal window: the last batch runs to
    // completion past the deadline and its ops are counted, so the
    // divisor must cover them too.
    let elapsed = start.elapsed();

    let metrics = kv.metrics();
    assert_eq!(
        metrics.gauge("kv.inflight"),
        0,
        "depth {depth}: the in-flight gauge must settle to zero — a leaked \
         or wedged op-table slot would hold it up"
    );
    let depth_hist = metrics.histogram("kv.pipeline_depth");
    cluster.shutdown();
    let elapsed_secs = elapsed.as_secs_f64();
    PipelineRow {
        depth,
        completed_ops: completed,
        elapsed_secs,
        ops_per_sec: completed as f64 / elapsed_secs,
        observed_mean_depth: if depth_hist.count > 0 {
            depth_hist.mean()
        } else {
            0.0
        },
        certified,
    }
}

/// Runs the sweep: one certified, measured row per depth on the axis up
/// to `max_depth`. `smoke` shortens the per-row window for CI.
///
/// # Panics
///
/// Panics if any witness run fails certification or a measured run
/// leaves the in-flight gauge nonzero.
pub fn pipeline_scenario(smoke: bool, max_depth: usize) -> PipelineReport {
    let window = if smoke {
        Duration::from_millis(150)
    } else {
        Duration::from_millis(600)
    };
    let rows = depth_axis(max_depth)
        .into_iter()
        .map(|depth| measure(depth, window))
        .collect();
    PipelineReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_axis_clips_and_includes_the_maximum() {
        assert_eq!(depth_axis(64), vec![1, 4, 16, 64]);
        assert_eq!(depth_axis(16), vec![1, 4, 16]);
        assert_eq!(depth_axis(8), vec![1, 4, 8]);
        assert_eq!(depth_axis(1), vec![1]);
    }

    #[test]
    fn smoke_sweep_certifies_scales_and_serializes() {
        let report = pipeline_scenario(true, 4);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert!(row.certified);
            assert!(row.completed_ops > 0, "depth {} ran nothing", row.depth);
            assert!(row.ops_per_sec > 0.0);
        }
        // Depth 4 keeps more than one op in flight where depth 1 cannot.
        assert!(
            report.row(4).observed_mean_depth > 1.0,
            "the reactor must actually sustain depth (got {:.2})",
            report.row(4).observed_mean_depth
        );
        let json = report.to_json();
        assert!(json.contains("\"scenario\": \"pipeline\""));
        assert!(json.contains("\"depth\": 4"));
        assert!(json.contains("\"speedup\""));
    }
}
