//! The `--reshard` scenario: a **live 4 → 8 shard split under concurrent
//! Zipf traffic** on the real-threaded runtime, reporting the throughput
//! dip during migration, the recovery after it, and the migration cost —
//! with the whole run certified across epochs before any number is
//! reported.
//!
//! Unlike the virtual-time grid of [`crate::kv`], this scenario runs on
//! wall clocks: live migration is a *real-time* protocol (write barriers,
//! seal polls, map refreshes), so its cost only means something measured
//! against real concurrency. Three phases share one continuous workload:
//!
//! 1. **pre** — steady state at 4 shards;
//! 2. **during** — `KvClient::grow(8)` runs on a driver thread while the
//!    workload keeps going (barriered writers, old-home-then-new-home
//!    readers);
//! 3. **post** — steady state at 8 shards, epoch 1.
//!
//! The scenario runs **two** live splits: a full-speed unrecorded run for
//! the throughput numbers, and a bounded recorded run — same cluster
//! shape, same traffic mix — that must pass
//! [`rmem_kv::certify_per_key_epochs`] before anything is reported (a
//! throughput number for a migration protocol that breaks atomicity would
//! be meaningless). The split is because the decision-procedure checker
//! caps a register's history at 128 operations: a full-speed Zipf run
//! piles thousands of operations onto the hot key, so the certified
//! witness is volume-bounded while the measured run is not. The
//! exhaustive certification sweep (crash schedules included) lives in
//! `crates/kv/tests/reshard_races.rs`.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmem_consistency::Criterion;
use rmem_core::{SharedMemory, Transient};
use rmem_kv::{certify_per_key_epochs, EpochTransition, KvClient, OpRecorder, ShardRouter};
use rmem_net::LocalCluster;
use rmem_sim::KeyDistribution;

/// Shard count before the split.
pub const FROM_SHARDS: u16 = 4;

/// Shard count after the split.
pub const TO_SHARDS: u16 = 8;

/// What the reshard scenario measured.
#[derive(Debug, Clone)]
pub struct ReshardReport {
    /// Shard count before the split.
    pub from_shards: u16,
    /// Shard count after the split.
    pub to_shards: u16,
    /// The committed epoch.
    pub epoch: u64,
    /// Steady-state throughput before the split (ops/s, wall clock).
    pub pre_ops_per_sec: f64,
    /// Throughput while the migration ran.
    pub during_ops_per_sec: f64,
    /// Steady-state throughput after the split.
    pub post_ops_per_sec: f64,
    /// Wall-clock duration of `grow` (publish → commit), in milliseconds.
    pub migration_ms: f64,
    /// Entries copied to a new home register.
    pub entries_moved: usize,
    /// Source shards sealed.
    pub sources_sealed: usize,
    /// Writes that actually waited on the migration barrier.
    pub barrier_waits: u64,
    /// Seal polls those waits performed in total.
    pub barrier_polls: u64,
    /// Store operations completed across all phases.
    pub completed_ops: u64,
    /// Whether the run passed cross-epoch per-key certification (the
    /// scenario panics otherwise, so a report in hand means `true`).
    pub certified: bool,
}

impl ReshardReport {
    /// Throughput retained during migration, relative to the pre-split
    /// steady state (1.0 = no dip).
    pub fn dip_ratio(&self) -> f64 {
        if self.pre_ops_per_sec == 0.0 {
            return 0.0;
        }
        self.during_ops_per_sec / self.pre_ops_per_sec
    }

    /// Post-split throughput relative to the pre-split steady state.
    pub fn recovery_ratio(&self) -> f64 {
        if self.pre_ops_per_sec == 0.0 {
            return 0.0;
        }
        self.post_ops_per_sec / self.pre_ops_per_sec
    }
}

const PHASE_PRE: u8 = 0;
const PHASE_DURING: u8 = 1;
const PHASE_POST: u8 = 2;
const PHASE_DONE: u8 = 3;

/// Runs the scenario: 3-node channel cluster, transient flavor, 4
/// workers of 50%-put Zipf(0.99) traffic, a live 4 → 8 split mid-run.
/// `smoke` shortens the steady-state windows for CI.
///
/// # Panics
///
/// Panics if the split fails, an operation errors terminally, or the run
/// fails cross-epoch certification.
pub fn reshard_scenario(smoke: bool) -> ReshardReport {
    // Certified witness first: a bounded recorded split of the same
    // shape must pass the cross-epoch oracle before any measurement is
    // taken, let alone reported.
    let certified = certified_witness_split();

    let window = if smoke {
        Duration::from_millis(120)
    } else {
        Duration::from_millis(600)
    };
    let cluster = LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap();
    let kv = KvClient::new(cluster.clients(), ShardRouter::new(FROM_SHARDS)).unwrap();
    let keys = ShardRouter::new(FROM_SHARDS).covering_keys("bench-");
    for (i, key) in keys.iter().enumerate() {
        kv.put(key, vec![0, i as u8]).unwrap();
    }

    let phase = AtomicU8::new(PHASE_PRE);
    // Completed-op counters per phase.
    let counts = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
    let phase_ref = &phase;
    let counts_ref = &counts;
    let moved = AtomicUsize::new(0);
    let sealed = AtomicUsize::new(0);
    let epoch = AtomicU64::new(0);
    let migration_ns = AtomicU64::new(0);
    let mut durations = [Duration::ZERO; 3];
    let mut post_start = None;

    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let client = kv.clone();
            let keys = &keys;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(7 + t);
                let dist = KeyDistribution::zipf(keys.len(), 0.99);
                let mut counter = 0u64;
                loop {
                    let p = phase_ref.load(Ordering::Relaxed);
                    if p == PHASE_DONE {
                        break;
                    }
                    let key = &keys[dist.sample(&mut rng)];
                    if rng.gen_bool(0.5) {
                        counter += 1;
                        let value = ((t + 1) << 32 | counter).to_be_bytes().to_vec();
                        client.put(key, value).unwrap();
                    } else {
                        client.get(key).unwrap();
                    }
                    counts_ref[p.min(2) as usize].fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // The conductor: pre window → grow (timed) → post window → stop.
        let grower = kv.clone();
        let pre_start = Instant::now();
        std::thread::sleep(window);
        durations[0] = pre_start.elapsed();

        phase.store(PHASE_DURING, Ordering::Relaxed);
        let grow_start = Instant::now();
        let report = grower.grow(TO_SHARDS).expect("the live split must commit");
        let grow_elapsed = grow_start.elapsed();
        // Keep the "during" label on the window the migration actually
        // occupied; a sub-millisecond migration still gets a measurable
        // window by padding with post-commit settle time.
        let settle = Duration::from_millis(if smoke { 10 } else { 40 });
        std::thread::sleep(settle);
        durations[1] = grow_start.elapsed();
        moved.store(report.entries_moved, Ordering::Relaxed);
        sealed.store(report.sources_sealed, Ordering::Relaxed);
        epoch.store(report.epoch, Ordering::Relaxed);
        migration_ns.store(grow_elapsed.as_nanos() as u64, Ordering::Relaxed);

        phase.store(PHASE_POST, Ordering::Relaxed);
        post_start = Some(Instant::now());
        std::thread::sleep(window);
        phase.store(PHASE_DONE, Ordering::Relaxed);
    });
    // The post window's divisor is measured *after* the workers join:
    // operations in flight when the stop flag went up still complete and
    // count, so clocking the phase at the flag (the nominal window) would
    // inflate its ops/s.
    durations[2] = post_start.expect("conductor ran").elapsed();

    let stats = kv.stats();
    let per_sec = |i: usize| counts[i].load(Ordering::Relaxed) as f64 / durations[i].as_secs_f64();
    ReshardReport {
        from_shards: FROM_SHARDS,
        to_shards: TO_SHARDS,
        epoch: epoch.load(Ordering::Relaxed),
        pre_ops_per_sec: per_sec(0),
        during_ops_per_sec: per_sec(1),
        post_ops_per_sec: per_sec(2),
        migration_ms: migration_ns.load(Ordering::Relaxed) as f64 / 1e6,
        entries_moved: moved.load(Ordering::Relaxed),
        sources_sealed: sealed.load(Ordering::Relaxed),
        barrier_waits: stats.barrier_waits,
        barrier_polls: stats.barrier_polls,
        completed_ops: counts.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
        certified,
    }
}

/// The bounded, recorded witness split: three concurrent Zipf clients
/// (small op budgets, so every per-key history fits the checker), a live
/// 4 → 8 grow mid-run, full cross-epoch per-key certification.
///
/// # Panics
///
/// Panics if the split or the certification fails.
fn certified_witness_split() -> bool {
    let cluster = LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap();
    let recorder = OpRecorder::new();
    let kv = KvClient::new(cluster.clients(), ShardRouter::new(FROM_SHARDS))
        .unwrap()
        .with_recorder(recorder.clone());
    let keys = ShardRouter::new(FROM_SHARDS).covering_keys("bench-");
    for (i, key) in keys.iter().enumerate() {
        kv.put(key, vec![0, i as u8]).unwrap();
    }
    std::thread::scope(|scope| {
        for t in 0..3u64 {
            let client = kv.recorded_clone();
            let keys = &keys;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + t);
                let dist = KeyDistribution::zipf(keys.len(), 0.99);
                let mut counter = 0u64;
                for _ in 0..40 {
                    let key = &keys[dist.sample(&mut rng)];
                    if rng.gen_bool(0.5) {
                        counter += 1;
                        let value = ((t + 1) << 32 | counter).to_be_bytes().to_vec();
                        client.put(key, value).unwrap();
                    } else {
                        client.get(key).unwrap();
                    }
                    std::thread::sleep(Duration::from_micros(rng.gen_range(0..200)));
                }
            });
        }
        let grower = kv.recorded_clone();
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(4));
            let report = grower.grow(TO_SHARDS).expect("witness split must commit");
            assert_eq!(report.epoch, 1);
        });
    });
    let transition = EpochTransition {
        old_shards: FROM_SHARDS,
        new_shards: TO_SHARDS,
    };
    certify_per_key_epochs(
        &recorder.history(),
        keys.iter().map(String::as_str),
        &transition,
        Criterion::Transient,
    )
    .expect("the resharding witness run must certify per key across epochs");
    true
}

/// Serializes the report as one JSON object (appended to the
/// `BENCH_kv.json` rows so the perf trajectory tracks migration cost).
pub fn reshard_to_json(r: &ReshardReport) -> String {
    format!(
        "  {{\"scenario\": \"reshard\", \"from_shards\": {}, \"to_shards\": {}, \
         \"epoch\": {}, \"pre_ops_per_sec\": {:.1}, \"during_ops_per_sec\": {:.1}, \
         \"post_ops_per_sec\": {:.1}, \"dip_ratio\": {:.3}, \"recovery_ratio\": {:.3}, \
         \"migration_ms\": {:.3}, \"entries_moved\": {}, \"sources_sealed\": {}, \
         \"barrier_waits\": {}, \"barrier_polls\": {}, \"completed_ops\": {}, \
         \"certified\": {}}}",
        r.from_shards,
        r.to_shards,
        r.epoch,
        r.pre_ops_per_sec,
        r.during_ops_per_sec,
        r.post_ops_per_sec,
        r.dip_ratio(),
        r.recovery_ratio(),
        r.migration_ms,
        r.entries_moved,
        r.sources_sealed,
        r.barrier_waits,
        r.barrier_polls,
        r.completed_ops,
        r.certified,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_splits_and_certifies() {
        let report = reshard_scenario(true);
        assert_eq!(report.epoch, 1);
        assert_eq!(report.from_shards, 4);
        assert_eq!(report.to_shards, 8);
        assert_eq!(report.sources_sealed, 4);
        assert!(report.certified);
        assert!(report.completed_ops > 0);
        assert!(report.pre_ops_per_sec > 0.0);
        assert!(report.post_ops_per_sec > 0.0);
        assert!(report.migration_ms > 0.0);
        let json = reshard_to_json(&report);
        assert!(json.contains("\"scenario\": \"reshard\""));
        assert!(json.contains("\"certified\": true"));
    }
}
