//! Criterion microbenches of the atomicity checkers: cost of certifying
//! histories of growing size, with and without crashes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmem_consistency::{check_persistent, check_transient, History};
use rmem_types::{Op, OpResult, ProcessId, Value};

/// A legal sequential history of `ops` alternating writes and reads
/// across three processes.
fn sequential_history(ops: usize) -> History {
    let mut h = History::new();
    let mut latest = Value::bottom();
    for i in 0..ops {
        let pid = ProcessId((i % 3) as u16);
        if i % 2 == 0 {
            let v = Value::from_u32(i as u32);
            h.complete_write(pid, v.clone());
            latest = v;
        } else {
            h.complete_read(pid, latest.clone());
        }
    }
    h
}

/// A history with concurrency: `writers` overlapping writes then reads
/// that all agree on one of them.
fn concurrent_history(writers: usize) -> History {
    let mut h = History::new();
    let mut pending = Vec::new();
    for i in 0..writers {
        let pid = ProcessId(i as u16);
        pending.push(h.invoke(pid, Op::Write(Value::from_u32(i as u32))));
    }
    for op in pending {
        h.reply(op, OpResult::Written);
    }
    let winner = Value::from_u32((writers - 1) as u32);
    for _ in 0..4 {
        h.complete_read(ProcessId(writers as u16), winner.clone());
    }
    h
}

/// A crashy history: a writer crashes mid-write per round, recovers,
/// writes again; reads observe the finished values.
fn crashy_history(rounds: usize) -> History {
    let mut h = History::new();
    let w = ProcessId(0);
    let r = ProcessId(1);
    let mut v = 1u32;
    for _ in 0..rounds {
        h.complete_write(w, Value::from_u32(v));
        let _pending = h.invoke(w, Op::Write(Value::from_u32(v + 1)));
        h.crash(w);
        h.recover(w);
        h.complete_read(r, Value::from_u32(v));
        v += 2;
    }
    h
}

fn bench_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker");
    for ops in [10usize, 30, 60] {
        let h = sequential_history(ops);
        group.bench_with_input(BenchmarkId::new("sequential", ops), &h, |b, h| {
            b.iter(|| check_persistent(h).expect("atomic"))
        });
    }
    for writers in [4usize, 8, 12] {
        let h = concurrent_history(writers);
        group.bench_with_input(
            BenchmarkId::new("concurrent_writers", writers),
            &h,
            |b, h| b.iter(|| check_persistent(h).expect("atomic")),
        );
    }
    for rounds in [2usize, 4, 6] {
        let h = crashy_history(rounds);
        group.bench_with_input(BenchmarkId::new("crashy_persistent", rounds), &h, |b, h| {
            b.iter(|| check_persistent(h).expect("atomic"))
        });
        group.bench_with_input(BenchmarkId::new("crashy_transient", rounds), &h, |b, h| {
            b.iter(|| check_transient(h).expect("atomic"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checkers);
criterion_main!(benches);
