//! Criterion bench over simulated write operations — one group per
//! algorithm and cluster size, reproducing the Fig. 6 (top) measurement
//! loop under Criterion's statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmem_bench::AlgoChoice;
use rmem_sim::workload::ClosedLoop;
use rmem_sim::{ClusterConfig, Simulation};
use rmem_types::{Micros, OpKind, ProcessId, Value};

/// One full 50-write run (virtual time); Criterion measures the wall cost
/// of simulating it, while the returned number is the mean *virtual*
/// latency — the figure's quantity — asserted against the expected band.
fn run_once(algo: AlgoChoice, n: usize, seed: u64) -> f64 {
    let mut sim = Simulation::new(ClusterConfig::new(n), algo.factory(), seed);
    sim.add_closed_loop(
        ClosedLoop::writes(ProcessId(0), Value::from_u32(7), 50).with_think(Micros(50)),
    );
    let report = sim.run();
    let lats = report.trace.latencies(OpKind::Write);
    lats.iter().sum::<u64>() as f64 / lats.len() as f64
}

fn bench_write_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_top_write_latency");
    for algo in AlgoChoice::FIG6 {
        for n in [3usize, 5, 9] {
            group.bench_with_input(
                BenchmarkId::new(algo.name().replace(' ', "_"), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        let mean = run_once(algo, n, 42);
                        assert!(mean > 300.0, "implausible virtual latency {mean}");
                        mean
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_write_latency);
criterion_main!(benches);
