//! Criterion microbenches of the stable-storage substrate: in-memory
//! stores, fsync-backed file stores (the paper's λ on this machine), and
//! record encode/decode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rmem_storage::records::{WrittenRecord, KEY_WRITTEN};
use rmem_storage::{FileStorage, MemStorage, StableStorage};
use rmem_types::{ProcessId, Timestamp, Value};

fn bench_mem_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem_store");
    for size in [4usize, 1024, 65536] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut storage = MemStorage::new();
            let payload = bytes::Bytes::from(vec![0u8; size]);
            b.iter(|| storage.store(KEY_WRITTEN, payload.clone()).unwrap());
        });
    }
    group.finish();
}

fn bench_file_store_fsync(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("rmem-bench-fs-{}", std::process::id()));
    let mut group = c.benchmark_group("file_store_fsync");
    group.sample_size(20); // fsync is slow; keep the run short
    for size in [4usize, 4096] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut storage = FileStorage::open(&dir).unwrap();
            let payload = bytes::Bytes::from(vec![0u8; size]);
            b.iter(|| storage.store(KEY_WRITTEN, payload.clone()).unwrap());
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(dir);
}

fn bench_record_codec(c: &mut Criterion) {
    let record = WrittenRecord {
        ts: Timestamp::new(123456, ProcessId(3)),
        value: Value::new(vec![0xCD; 1024]),
    };
    c.bench_function("written_record_encode_1k", |b| b.iter(|| record.encode()));
    let bytes = record.encode();
    c.bench_function("written_record_decode_1k", |b| {
        b.iter(|| WrittenRecord::decode(&bytes).unwrap())
    });
}

criterion_group!(
    benches,
    bench_mem_store,
    bench_file_store_fsync,
    bench_record_codec
);
criterion_main!(benches);
