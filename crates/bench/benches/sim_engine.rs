//! Criterion microbenches of the simulator engine: end-to-end events per
//! second for representative workloads, and codec throughput on the
//! message hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rmem_bench::AlgoChoice;
use rmem_sim::workload::ClosedLoop;
use rmem_sim::{ClusterConfig, NetConfig, Simulation};
use rmem_types::codec::{decode_message, encode_message};
use rmem_types::{Message, Micros, OpKind, ProcessId, RequestId, Timestamp, Value};

fn bench_sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    for (label, net) in [
        ("reliable", NetConfig::default()),
        ("lossy", NetConfig::lossy(0.1, 0.05)),
    ] {
        group.bench_with_input(BenchmarkId::new("50_writes_n5", label), &net, |b, net| {
            b.iter(|| {
                let config = ClusterConfig::new(5).with_net(net.clone());
                let mut sim = Simulation::new(config, AlgoChoice::Persistent.factory(), 7);
                sim.add_closed_loop(
                    ClosedLoop::writes(ProcessId(0), Value::from_u32(1), 50).with_think(Micros(50)),
                );
                let report = sim.run();
                assert_eq!(report.trace.latencies(OpKind::Write).len(), 50);
                report.events_processed
            })
        });
    }
    group.finish();
}

fn bench_message_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_codec");
    for size in [4usize, 1024, 65536] {
        let msg = Message::Write {
            req: RequestId::new(ProcessId(1), 77),
            ts: Timestamp::new(9, ProcessId(1)),
            value: Value::new(vec![0xEE; size]),
        };
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("encode", size), &msg, |b, msg| {
            b.iter(|| encode_message(msg))
        });
        let bytes = encode_message(&msg);
        group.bench_with_input(BenchmarkId::new("decode", size), &bytes, |b, bytes| {
            b.iter(|| decode_message(bytes).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_throughput, bench_message_codec);
criterion_main!(benches);
