//! End-to-end tests: the register algorithms under the deterministic
//! simulator, with histories certified by the atomicity checkers and
//! causal-log counts checked against the paper's bounds.

use rmem_consistency::{check_linearizable, check_persistent, check_transient};
use rmem_core::{CrashStop, Persistent, Regular, Transient};
use rmem_sim::workload::ClosedLoop;
use rmem_sim::{ClusterConfig, PlannedEvent, Schedule, Simulation};
use rmem_types::{AutomatonFactory, Op, OpKind, ProcessId, Value};

fn p(i: u16) -> ProcessId {
    ProcessId(i)
}

fn v(x: u32) -> Value {
    Value::from_u32(x)
}

#[test]
fn persistent_sequential_writes_and_reads() {
    let mut sim = Simulation::new(ClusterConfig::new(3), Persistent::factory(), 1).with_schedule(
        Schedule::new()
            .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(1))))
            .at(10_000, PlannedEvent::Invoke(p(1), Op::Read))
            .at(20_000, PlannedEvent::Invoke(p(0), Op::Write(v(2))))
            .at(30_000, PlannedEvent::Invoke(p(2), Op::Read)),
    );
    let report = sim.run();
    let ops = report.trace.operations();
    assert_eq!(ops.len(), 4);
    assert!(
        ops.iter().all(|o| o.is_completed()),
        "all ops complete: {ops:#?}"
    );
    // Reads see the latest completed writes.
    assert_eq!(
        ops[1]
            .result
            .as_ref()
            .unwrap()
            .read_value()
            .unwrap()
            .as_u32(),
        Some(1)
    );
    assert_eq!(
        ops[3]
            .result
            .as_ref()
            .unwrap()
            .read_value()
            .unwrap()
            .as_u32(),
        Some(2)
    );
    // Crash-free run: plain linearizability holds.
    let h = report.trace.to_history();
    check_linearizable(&h).expect("crash-free persistent run must linearize");
}

#[test]
fn all_flavors_complete_a_mixed_workload() {
    for (factory, name) in [
        (Persistent::factory(), "persistent"),
        (Transient::factory(), "transient"),
        (CrashStop::factory(), "crash-stop"),
    ] {
        let config = ClusterConfig::new(5);
        let mut sim = Simulation::new(config, factory, 7);
        sim.add_closed_loop(ClosedLoop::writes(p(0), v(11), 10));
        sim.add_closed_loop(ClosedLoop::writes(p(1), v(22), 10));
        sim.add_closed_loop(ClosedLoop::reads(p(2), 10));
        sim.add_closed_loop(ClosedLoop::reads(p(3), 10));
        let report = sim.run();
        let completed = report
            .trace
            .operations()
            .iter()
            .filter(|o| o.is_completed())
            .count();
        assert_eq!(completed, 40, "{name}: all 40 ops complete");
        let h = report.trace.to_history();
        check_linearizable(&h)
            .unwrap_or_else(|e| panic!("{name}: crash-free run not linearizable: {e}"));
    }
}

#[test]
fn causal_log_counts_match_the_paper_uncontended() {
    // Sequential (uncontended) workload: the table of §IV —
    //   persistent: W=2, R=0 (no concurrency ⇒ read write-back adopts
    //   nothing and no replica logs);
    //   transient: W=1, R=0; crash-stop: 0/0; regular: W=1, R=0.
    let cases = [
        (Persistent::factory(), 2u32, 0u32),
        (Transient::factory(), 1, 0),
        (CrashStop::factory(), 0, 0),
        (Regular::factory(), 1, 0),
    ];
    for (factory, expect_w, expect_r) in cases {
        let name = factory.algorithm();
        let mut sim = Simulation::new(ClusterConfig::new(5), factory, 3).with_schedule(
            Schedule::new()
                .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(1))))
                .at(20_000, PlannedEvent::Invoke(p(1), Op::Read))
                .at(40_000, PlannedEvent::Invoke(p(0), Op::Write(v(2))))
                .at(60_000, PlannedEvent::Invoke(p(2), Op::Read)),
        );
        let report = sim.run();
        let ops = report.trace.operations();
        assert!(ops.iter().all(|o| o.is_completed()), "{name}");
        for op in ops {
            let expect = match op.kind {
                OpKind::Write => expect_w,
                OpKind::Read => expect_r,
            };
            assert_eq!(
                op.causal_logs, expect,
                "{name}: {} expected {expect} causal logs, measured {}",
                op.op, op.causal_logs
            );
        }
    }
}

#[test]
fn concurrent_read_pays_one_causal_log() {
    // A read overlapping a write must write back a value some replicas
    // have not logged yet → its write-back round logs → 1 causal log.
    // Steering: writer at p0 starts at t=0; reader at p1 starts mid-write
    // (after the writer's query round, before propagation finishes).
    let mut sim = Simulation::new(ClusterConfig::new(5), Persistent::factory(), 5).with_schedule(
        Schedule::new()
            .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(9))))
            // The write's query round takes ~200µs; its pre-log ~200µs;
            // propagation starts ~1400µs in. Read at 1450µs races it.
            .at(1_450, PlannedEvent::Invoke(p(1), Op::Read)),
    );
    let report = sim.run();
    let ops = report.trace.operations();
    assert!(ops.iter().all(|o| o.is_completed()));
    let read = ops.iter().find(|o| o.kind == OpKind::Read).unwrap();
    assert!(
        read.causal_logs <= 1,
        "persistent read exceeds Theorem 2's matching bound: {}",
        read.causal_logs
    );
    let h = report.trace.to_history();
    check_persistent(&h).expect("run must stay persistent atomic");
}

#[test]
fn persistent_survives_writer_crash_mid_write() {
    // Writer p0 crashes 1.3ms into a write (after pre-log, likely before
    // the propagation quorum), recovers, and the recovery round finishes
    // the write. A later read must then see it (or the checker must
    // otherwise be satisfied).
    let mut sim = Simulation::new(ClusterConfig::new(3), Persistent::factory(), 11).with_schedule(
        Schedule::new()
            .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(1))))
            .at(10_000, PlannedEvent::Invoke(p(0), Op::Write(v(2))))
            .at(11_300, PlannedEvent::Crash(p(0)))
            .at(15_000, PlannedEvent::Recover(p(0)))
            .at(25_000, PlannedEvent::Invoke(p(1), Op::Read))
            .at(35_000, PlannedEvent::Invoke(p(2), Op::Read)),
    );
    let report = sim.run();
    let h = report.trace.to_history();
    check_persistent(&h)
        .unwrap_or_else(|e| panic!("persistent atomicity violated: {e}\nhistory: {h:#?}"));
    // The recovery round re-propagated the pre-logged value: both reads
    // return v2 (the interrupted write was completed by recovery).
    let reads: Vec<_> = report
        .trace
        .operations()
        .iter()
        .filter(|o| o.kind == OpKind::Read && o.is_completed())
        .collect();
    assert_eq!(reads.len(), 2);
    for r in reads {
        assert_eq!(
            r.result.as_ref().unwrap().read_value().unwrap().as_u32(),
            Some(2),
            "recovery must have finished W(v2)"
        );
    }
}

#[test]
fn transient_survives_writer_crash_mid_write() {
    let mut sim = Simulation::new(ClusterConfig::new(3), Transient::factory(), 13).with_schedule(
        Schedule::new()
            .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(1))))
            .at(10_000, PlannedEvent::Invoke(p(0), Op::Write(v(2))))
            .at(10_450, PlannedEvent::Crash(p(0))) // mid-query-round
            .at(15_000, PlannedEvent::Recover(p(0)))
            .at(20_000, PlannedEvent::Invoke(p(0), Op::Write(v(3))))
            .at(30_000, PlannedEvent::Invoke(p(1), Op::Read))
            .at(40_000, PlannedEvent::Invoke(p(2), Op::Read)),
    );
    let report = sim.run();
    let h = report.trace.to_history();
    check_transient(&h)
        .unwrap_or_else(|e| panic!("transient atomicity violated: {e}\nhistory: {h:#?}"));
}

#[test]
fn all_processes_crash_and_majority_recovers() {
    // The paper's robustness claim explicitly covers total simultaneous
    // crashes as long as a majority eventually recovers (§I-D).
    let mut sim = Simulation::new(ClusterConfig::new(3), Persistent::factory(), 17).with_schedule(
        Schedule::new()
            .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(7))))
            .at(10_000, PlannedEvent::Crash(p(0)))
            .at(10_000, PlannedEvent::Crash(p(1)))
            .at(10_000, PlannedEvent::Crash(p(2)))
            .at(20_000, PlannedEvent::Recover(p(0)))
            .at(20_000, PlannedEvent::Recover(p(1)))
            // p2 never recovers; majority {p0, p1} suffices.
            .at(40_000, PlannedEvent::Invoke(p(1), Op::Read)),
    );
    let report = sim.run();
    let read = report
        .trace
        .operations()
        .iter()
        .find(|o| o.kind == OpKind::Read)
        .expect("read recorded");
    assert!(
        read.is_completed(),
        "read must terminate with a majority up"
    );
    assert_eq!(
        read.result.as_ref().unwrap().read_value().unwrap().as_u32(),
        Some(7),
        "the completed write must survive the total crash"
    );
    check_persistent(&report.trace.to_history()).expect("persistent atomicity");
}

#[test]
fn crash_stop_baseline_forgets_values_after_total_crash() {
    // The same schedule against the no-logging baseline: the write is
    // forgotten — the anomaly that motivates logging (§IV-A).
    let mut sim = Simulation::new(ClusterConfig::new(3), CrashStop::factory(), 17).with_schedule(
        Schedule::new()
            .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(7))))
            .at(10_000, PlannedEvent::Crash(p(0)))
            .at(10_000, PlannedEvent::Crash(p(1)))
            .at(10_000, PlannedEvent::Crash(p(2)))
            .at(20_000, PlannedEvent::Recover(p(0)))
            .at(20_000, PlannedEvent::Recover(p(1)))
            .at(20_000, PlannedEvent::Recover(p(2)))
            .at(40_000, PlannedEvent::Invoke(p(1), Op::Read)),
    );
    let report = sim.run();
    let read = report
        .trace
        .operations()
        .iter()
        .find(|o| o.kind == OpKind::Read)
        .unwrap();
    assert!(read.is_completed());
    assert!(
        read.result
            .as_ref()
            .unwrap()
            .read_value()
            .unwrap()
            .is_bottom(),
        "the baseline must forget the value"
    );
    // And the checker certifies the violation.
    assert!(
        check_persistent(&report.trace.to_history()).is_err(),
        "forgotten value must fail persistent atomicity"
    );
}

#[test]
fn operations_stall_without_a_majority_and_resume_with_one() {
    // p1 and p2 crash; p0's write cannot terminate (robustness requires a
    // majority). After recovery it completes.
    let mut sim = Simulation::new(ClusterConfig::new(3), Persistent::factory(), 23).with_schedule(
        Schedule::new()
            .at(1_000, PlannedEvent::Crash(p(1)))
            .at(1_000, PlannedEvent::Crash(p(2)))
            .at(2_000, PlannedEvent::Invoke(p(0), Op::Write(v(5))))
            .at(50_000, PlannedEvent::Recover(p(1))),
    );
    let report = sim.run();
    let w = &report.trace.operations()[0];
    assert!(w.is_completed(), "write completes once a majority is back");
    assert!(
        w.latency().unwrap().0 > 48_000,
        "completion must wait for the recovery at t=50ms, got {:?}",
        w.latency()
    );
}

#[test]
fn lossy_network_is_survived_by_retransmission() {
    let config = ClusterConfig::new(5).with_net(rmem_sim::NetConfig::lossy(0.25, 0.10));
    let mut sim = Simulation::new(config, Persistent::factory(), 31);
    sim.add_closed_loop(ClosedLoop::writes(p(0), v(1), 15));
    sim.add_closed_loop(ClosedLoop::reads(p(1), 15));
    let report = sim.run();
    let completed = report
        .trace
        .operations()
        .iter()
        .filter(|o| o.is_completed())
        .count();
    assert_eq!(
        completed, 30,
        "fair-lossy loss must not prevent termination"
    );
    assert!(
        report.messages_dropped > 0,
        "the lossy net must actually drop"
    );
    check_linearizable(&report.trace.to_history()).expect("loss must not break atomicity");
}

#[test]
fn regular_register_satisfies_regularity_under_crashes() {
    let mut sim = Simulation::new(ClusterConfig::new(3), Regular::factory(), 37).with_schedule(
        Schedule::new()
            .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(1))))
            .at(5_000, PlannedEvent::Invoke(p(1), Op::Read))
            .at(8_000, PlannedEvent::Invoke(p(0), Op::Write(v(2))))
            .at(8_300, PlannedEvent::Crash(p(0)))
            .at(12_000, PlannedEvent::Recover(p(0)))
            .at(16_000, PlannedEvent::Invoke(p(0), Op::Write(v(3))))
            .at(25_000, PlannedEvent::Invoke(p(1), Op::Read))
            .at(35_000, PlannedEvent::Invoke(p(2), Op::Read)),
    );
    let report = sim.run();
    let h = report.trace.to_history();
    rmem_consistency::check_regular_swmr(&h)
        .unwrap_or_else(|e| panic!("regularity violated: {e}\n{h:#?}"));
}

#[test]
fn same_seed_same_run() {
    let run = |seed: u64| {
        let mut sim = Simulation::new(
            ClusterConfig::new(5).with_net(rmem_sim::NetConfig::lossy(0.1, 0.1)),
            Transient::factory(),
            seed,
        );
        sim.add_closed_loop(ClosedLoop::writes(p(0), v(1), 10));
        sim.add_closed_loop(ClosedLoop::reads(p(1), 10));
        let report = sim.run();
        (
            report.final_time,
            report.events_processed,
            report.trace.latencies(OpKind::Write),
            report.trace.latencies(OpKind::Read),
        )
    };
    assert_eq!(run(99), run(99), "identical seeds must replay identically");
    assert_ne!(
        run(99).1,
        run(100).1,
        "different seeds should differ (event counts)"
    );
}

#[test]
fn latency_composition_matches_paper_model() {
    // δ=100µs, λ=200µs, no jitter ⇒ write latencies ≈
    //   crash-stop: 2 round-trips = 4δ ≈ 400µs
    //   transient: 4δ + λ ≈ 600µs
    //   persistent: 4δ + 2λ ≈ 800µs
    // (small constants on top: loopback self-delivery, scheduling).
    let measure = |factory: std::sync::Arc<rmem_core::FlavorFactory>| -> f64 {
        let mut sim = Simulation::new(ClusterConfig::new(5), factory, 41);
        sim.add_closed_loop(ClosedLoop::writes(p(0), v(1), 20));
        let report = sim.run();
        let lat = report.trace.latencies(OpKind::Write);
        lat.iter().sum::<u64>() as f64 / lat.len() as f64
    };
    let cs = measure(CrashStop::factory());
    let tr = measure(Transient::factory());
    let pe = measure(Persistent::factory());
    assert!(
        (380.0..480.0).contains(&cs),
        "crash-stop ≈ 4δ, measured {cs}"
    );
    assert!(
        (580.0..700.0).contains(&tr),
        "transient ≈ 4δ+λ, measured {tr}"
    );
    assert!(
        (780.0..920.0).contains(&pe),
        "persistent ≈ 4δ+2λ, measured {pe}"
    );
    // The paper's headline: the transient→persistent gap is another λ.
    assert!(pe > tr && tr > cs);
}
