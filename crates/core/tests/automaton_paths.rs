//! Hand-driven state-machine tests of the register automaton: each test
//! plays both sides of the protocol against a single automaton instance,
//! checking phase transitions, idempotence and stale-message filtering
//! without any runtime in between.

use rmem_core::{Flavor, RegisterAutomaton};
use rmem_types::{
    Action, Automaton, EmptySnapshot, Input, Message, Micros, Op, OpId, OpResult, ProcessId,
    RequestId, TimerToken, Timestamp, Value,
};

fn p(i: u16) -> ProcessId {
    ProcessId(i)
}

fn started(flavor: Flavor) -> RegisterAutomaton {
    let mut a = RegisterAutomaton::fresh(p(0), 3, flavor, Micros(1_000));
    let mut out = Vec::new();
    a.on_input(Input::Start, &mut out);
    // Complete any initialisation stores so the replica is durable.
    for action in out.clone() {
        if let Action::Store { token, .. } = action {
            a.on_input(Input::StoreDone(token), &mut Vec::new());
        }
    }
    a
}

fn sends(out: &[Action]) -> Vec<&Message> {
    out.iter()
        .filter_map(|a| match a {
            Action::Send { msg, .. } => Some(msg),
            _ => None,
        })
        .collect()
}

fn first_req(out: &[Action]) -> RequestId {
    sends(out)[0].request_id()
}

fn completion(out: &[Action]) -> Option<&OpResult> {
    out.iter().find_map(|a| match a {
        Action::Complete { result, .. } => Some(result),
        _ => None,
    })
}

/// Drives a full transient write by hand: query round, then propagation,
/// checking the message sequence and the final completion.
#[test]
fn transient_write_full_exchange() {
    let mut a = started(Flavor::transient());
    let mut out = Vec::new();
    a.on_input(
        Input::Invoke {
            op: OpId::new(p(0), 0),
            operation: Op::Write(Value::from_u32(9)),
        },
        &mut out,
    );
    let query_req = first_req(&out);
    out.clear();

    // Majority of SN acks (p1 and p2; dedup tested by repeating p1).
    a.on_input(
        Input::Message {
            from: p(1),
            msg: Message::SnAck {
                req: query_req,
                seq: 4,
            },
        },
        &mut out,
    );
    assert!(out.is_empty(), "one ack is not a majority of 3");
    a.on_input(
        Input::Message {
            from: p(1),
            msg: Message::SnAck {
                req: query_req,
                seq: 4,
            },
        },
        &mut out,
    );
    assert!(out.is_empty(), "duplicate acks must not count");
    a.on_input(
        Input::Message {
            from: p(2),
            msg: Message::SnAck {
                req: query_req,
                seq: 6,
            },
        },
        &mut out,
    );
    // Propagation begins: W with seq = max(4,6) + rec(0) + 1 = 7.
    let w_sends = sends(&out);
    assert_eq!(w_sends.len(), 3);
    let Message::Write {
        req: prop_req,
        ts,
        value,
    } = w_sends[0]
    else {
        panic!("expected W, got {}", w_sends[0])
    };
    assert_eq!(*ts, Timestamp::new(7, p(0)));
    assert_eq!(value.as_u32(), Some(9));
    assert_ne!(*prop_req, query_req, "each round gets a fresh request id");
    let prop_req = *prop_req;
    out.clear();

    // A stale SN ack from the finished round must be ignored now.
    a.on_input(
        Input::Message {
            from: p(1),
            msg: Message::SnAck {
                req: query_req,
                seq: 99,
            },
        },
        &mut out,
    );
    assert!(out.is_empty(), "stale SN ack changed state: {out:?}");

    // Majority of write acks completes the operation exactly once.
    a.on_input(
        Input::Message {
            from: p(1),
            msg: Message::WriteAck { req: prop_req },
        },
        &mut out,
    );
    assert!(completion(&out).is_none());
    a.on_input(
        Input::Message {
            from: p(2),
            msg: Message::WriteAck { req: prop_req },
        },
        &mut out,
    );
    assert_eq!(completion(&out), Some(&OpResult::Written));
    out.clear();
    a.on_input(
        Input::Message {
            from: p(0),
            msg: Message::WriteAck { req: prop_req },
        },
        &mut out,
    );
    assert!(
        completion(&out).is_none(),
        "late acks must not double-complete"
    );
}

/// A read picks the maximum-timestamp value among its quorum and writes
/// it back under a fresh request id before returning it.
#[test]
fn read_selects_max_and_writes_back() {
    let mut a = started(Flavor::persistent());
    let mut out = Vec::new();
    a.on_input(
        Input::Invoke {
            op: OpId::new(p(0), 0),
            operation: Op::Read,
        },
        &mut out,
    );
    let read_req = first_req(&out);
    out.clear();

    let old = (Timestamp::new(3, p(1)), Value::from_u32(30));
    let new = (Timestamp::new(5, p(2)), Value::from_u32(50));
    a.on_input(
        Input::Message {
            from: p(1),
            msg: Message::ReadAck {
                req: read_req,
                ts: old.0,
                value: old.1,
                durable: true,
                grant: 0,
            },
        },
        &mut out,
    );
    assert!(out.is_empty());
    a.on_input(
        Input::Message {
            from: p(2),
            msg: Message::ReadAck {
                req: read_req,
                ts: new.0,
                value: new.1.clone(),
                durable: true,
                grant: 0,
            },
        },
        &mut out,
    );
    // Write-back of the *newest* value.
    let wb = sends(&out);
    assert_eq!(wb.len(), 3);
    let Message::Write {
        req: wb_req,
        ts,
        value,
    } = wb[0]
    else {
        panic!("{}", wb[0])
    };
    assert_eq!(*ts, new.0);
    assert_eq!(value.as_u32(), Some(50));
    assert_ne!(*wb_req, read_req);
    let wb_req = *wb_req;
    out.clear();

    // Majority of write-back acks returns the value.
    a.on_input(
        Input::Message {
            from: p(1),
            msg: Message::WriteAck { req: wb_req },
        },
        &mut out,
    );
    a.on_input(
        Input::Message {
            from: p(2),
            msg: Message::WriteAck { req: wb_req },
        },
        &mut out,
    );
    let Some(OpResult::ReadValue(v)) = completion(&out) else {
        panic!("read must complete: {out:?}")
    };
    assert_eq!(v.as_u32(), Some(50));
}

/// The fast path: a read quorum unanimous on one durable tag completes in
/// a single round — no write-back round is broadcast, and the completion
/// reports 1 round.
#[test]
fn unanimous_durable_read_completes_in_one_round() {
    let mut a = started(Flavor::persistent());
    let mut out = Vec::new();
    a.on_input(
        Input::Invoke {
            op: OpId::new(p(0), 0),
            operation: Op::Read,
        },
        &mut out,
    );
    let read_req = first_req(&out);
    out.clear();
    for replier in [1u16, 2] {
        a.on_input(
            Input::Message {
                from: p(replier),
                msg: Message::ReadAck {
                    req: read_req,
                    ts: Timestamp::new(4, p(1)),
                    value: Value::from_u32(44),
                    durable: true,
                    grant: 0,
                },
            },
            &mut out,
        );
    }
    let Some(OpResult::ReadValue(v)) = completion(&out) else {
        panic!("fast-path read must complete: {out:?}")
    };
    assert_eq!(v.as_u32(), Some(44));
    assert!(
        sends(&out).is_empty(),
        "the write-back round must be suppressed: {out:?}"
    );
    let rounds = out
        .iter()
        .find_map(|x| match x {
            Action::Complete { rounds, .. } => Some(*rounds),
            _ => None,
        })
        .unwrap();
    assert_eq!(rounds, 1, "the completion must report the single round");
}

/// The race guard: unanimous tags that are **not** durable everywhere
/// must not trigger the fast path — a volatile tag could be forgotten by
/// a total crash, re-enabling the new-old inversion. The read falls back
/// to the full write-back.
#[test]
fn contended_volatile_tags_fall_back_to_the_write_back() {
    let mut a = started(Flavor::persistent());
    let mut out = Vec::new();
    a.on_input(
        Input::Invoke {
            op: OpId::new(p(0), 0),
            operation: Op::Read,
        },
        &mut out,
    );
    let read_req = first_req(&out);
    out.clear();
    // Both repliers agree on the tag, but one is still logging it (a
    // write races this read): no fast path.
    a.on_input(
        Input::Message {
            from: p(1),
            msg: Message::ReadAck {
                req: read_req,
                ts: Timestamp::new(4, p(1)),
                value: Value::from_u32(44),
                durable: true,
                grant: 0,
            },
        },
        &mut out,
    );
    a.on_input(
        Input::Message {
            from: p(2),
            msg: Message::ReadAck {
                req: read_req,
                ts: Timestamp::new(4, p(1)),
                value: Value::from_u32(44),
                durable: false,
                grant: 0,
            },
        },
        &mut out,
    );
    assert!(completion(&out).is_none(), "must not complete in one round");
    let wb = sends(&out);
    assert_eq!(wb.len(), 3, "the write-back must be broadcast");
    assert!(matches!(wb[0], Message::Write { .. }));
    // The write-back quorum then completes the read with 2 rounds.
    let wb_req = wb[0].request_id();
    out.clear();
    for replier in [1u16, 2] {
        a.on_input(
            Input::Message {
                from: p(replier),
                msg: Message::WriteAck { req: wb_req },
            },
            &mut out,
        );
    }
    let Some(OpResult::ReadValue(v)) = completion(&out) else {
        panic!("fallback read must complete: {out:?}")
    };
    assert_eq!(v.as_u32(), Some(44));
    let rounds = out
        .iter()
        .find_map(|x| match x {
            Action::Complete { rounds, .. } => Some(*rounds),
            _ => None,
        })
        .unwrap();
    assert_eq!(rounds, 2);
}

/// With the fast path disabled (legacy mode / crash-stop baseline), even
/// a unanimous durable quorum pays the write-back.
#[test]
fn legacy_mode_always_writes_back() {
    for flavor in [
        Flavor::persistent().with_read_fast_path(false),
        Flavor::crash_stop(),
    ] {
        let mut a = started(flavor);
        let mut out = Vec::new();
        a.on_input(
            Input::Invoke {
                op: OpId::new(p(0), 0),
                operation: Op::Read,
            },
            &mut out,
        );
        let read_req = first_req(&out);
        out.clear();
        for replier in [1u16, 2] {
            a.on_input(
                Input::Message {
                    from: p(replier),
                    msg: Message::ReadAck {
                        req: read_req,
                        ts: Timestamp::new(4, p(1)),
                        value: Value::from_u32(44),
                        durable: true,
                        grant: 0,
                    },
                },
                &mut out,
            );
        }
        assert!(
            completion(&out).is_none(),
            "{}: legacy read must not fast-complete",
            flavor.name
        );
        assert!(
            sends(&out)
                .iter()
                .all(|m| matches!(m, Message::Write { .. })),
            "{}: the write-back must run",
            flavor.name
        );
    }
}

/// Never-written registers agree by seq: the initial tags differ in the
/// pid component across replicas, but a unanimous seq-0/⊥ quorum is just
/// as safe (⊥ cannot be new-old inverted) and completes in one round.
#[test]
fn unanimous_bottom_read_takes_the_fast_path() {
    let mut a = started(Flavor::transient());
    let mut out = Vec::new();
    a.on_input(
        Input::Invoke {
            op: OpId::new(p(0), 0),
            operation: Op::Read,
        },
        &mut out,
    );
    let read_req = first_req(&out);
    out.clear();
    for replier in [1u16, 2] {
        a.on_input(
            Input::Message {
                from: p(replier),
                msg: Message::ReadAck {
                    req: read_req,
                    // Initial tags: same seq 0, different pids.
                    ts: Timestamp::new(0, p(replier)),
                    value: Value::bottom(),
                    durable: true,
                    grant: 0,
                },
            },
            &mut out,
        );
    }
    let Some(OpResult::ReadValue(v)) = completion(&out) else {
        panic!("⊥ fast-path read must complete: {out:?}")
    };
    assert!(v.is_bottom());
    assert!(sends(&out).is_empty(), "no write-back for unanimous ⊥");
}

/// The regular register's single-round read returns straight from the
/// query quorum, with no write-back and no logging anywhere.
#[test]
fn regular_read_is_single_round() {
    let mut a = started(Flavor::regular());
    let mut out = Vec::new();
    a.on_input(
        Input::Invoke {
            op: OpId::new(p(0), 0),
            operation: Op::Read,
        },
        &mut out,
    );
    let read_req = first_req(&out);
    out.clear();
    a.on_input(
        Input::Message {
            from: p(1),
            msg: Message::ReadAck {
                req: read_req,
                ts: Timestamp::new(2, p(1)),
                value: Value::from_u32(7),
                durable: true,
                grant: 0,
            },
        },
        &mut out,
    );
    a.on_input(
        Input::Message {
            from: p(2),
            msg: Message::ReadAck {
                req: read_req,
                ts: Timestamp::new(1, p(2)),
                value: Value::from_u32(6),
                durable: true,
                grant: 0,
            },
        },
        &mut out,
    );
    let Some(OpResult::ReadValue(v)) = completion(&out) else {
        panic!("single-round read must complete: {out:?}")
    };
    assert_eq!(v.as_u32(), Some(7));
    assert!(
        !out.iter().any(|a| matches!(a, Action::Store { .. })),
        "regular reads never log"
    );
    assert!(sends(&out).is_empty(), "no write-back round");
}

/// The regular register's recovery queries a majority and re-seeds its
/// local write counter above everything seen plus the crash allowance.
#[test]
fn regular_recovery_reseeds_the_write_counter() {
    let mut a = RegisterAutomaton::recovered(
        p(0),
        3,
        Flavor::regular(),
        Micros(1_000),
        2, // third incarnation
        &EmptySnapshot,
    );
    let mut out = Vec::new();
    a.on_input(Input::Start, &mut out);
    // Phase 1: store the bumped rec counter.
    let rec_token = out
        .iter()
        .find_map(|x| match x {
            Action::Store { token, key, .. } if key == "recovered" => Some(*token),
            _ => None,
        })
        .expect("rec store");
    out.clear();
    a.on_input(Input::StoreDone(rec_token), &mut out);
    // Phase 2: SN query round.
    let q = sends(&out);
    assert_eq!(q.len(), 3);
    assert!(matches!(q[0], Message::SnReq { .. }));
    let req = q[0].request_id();
    out.clear();
    assert!(!a.is_ready());
    a.on_input(
        Input::Message {
            from: p(1),
            msg: Message::SnAck { req, seq: 10 },
        },
        &mut out,
    );
    a.on_input(
        Input::Message {
            from: p(2),
            msg: Message::SnAck { req, seq: 41 },
        },
        &mut out,
    );
    assert!(a.is_ready(), "majority of SN acks completes recovery");

    // The next write must start above 41 + rec(1) → seq ≥ 43.
    out.clear();
    a.on_input(
        Input::Invoke {
            op: OpId::new(p(0), 0),
            operation: Op::Write(Value::from_u32(1)),
        },
        &mut out,
    );
    let Message::Write { ts, .. } = sends(&out)[0] else {
        panic!()
    };
    assert!(
        ts.seq >= 43,
        "write counter must clear the observed frontier, got {}",
        ts.seq
    );
}

/// Acks addressed to someone else's rounds are ignored even when phases
/// line up — request-id origins must match.
#[test]
fn foreign_acks_are_ignored() {
    let mut a = started(Flavor::transient());
    let mut out = Vec::new();
    a.on_input(
        Input::Invoke {
            op: OpId::new(p(0), 0),
            operation: Op::Write(Value::from_u32(1)),
        },
        &mut out,
    );
    out.clear();
    // Acks with a different origin/nonce: nothing may happen.
    let foreign = RequestId::new(p(1), 12345);
    a.on_input(
        Input::Message {
            from: p(1),
            msg: Message::SnAck {
                req: foreign,
                seq: 9,
            },
        },
        &mut out,
    );
    a.on_input(
        Input::Message {
            from: p(2),
            msg: Message::SnAck {
                req: foreign,
                seq: 9,
            },
        },
        &mut out,
    );
    assert!(
        out.is_empty(),
        "foreign acks advanced the state machine: {out:?}"
    );
}

/// While an operation runs, the automaton keeps serving its replica role:
/// queries from peers get answered mid-operation.
#[test]
fn replica_role_keeps_serving_mid_operation() {
    let mut a = started(Flavor::persistent());
    let mut out = Vec::new();
    a.on_input(
        Input::Invoke {
            op: OpId::new(p(0), 0),
            operation: Op::Read,
        },
        &mut out,
    );
    out.clear();
    // A peer's own query arrives while our read is in flight.
    let peer_req = RequestId::new(p(2), 7);
    a.on_input(
        Input::Message {
            from: p(2),
            msg: Message::SnReq { req: peer_req },
        },
        &mut out,
    );
    let replies = sends(&out);
    assert_eq!(replies.len(), 1);
    assert!(matches!(replies[0], Message::SnAck { .. }));
}

/// The retransmission timer of an in-flight round rebroadcasts the same
/// request id (idempotent at replicas) and re-arms; after the round
/// completes, the stale timer does nothing.
#[test]
fn retransmission_reuses_the_request_id() {
    let mut a = started(Flavor::transient());
    let mut out = Vec::new();
    a.on_input(
        Input::Invoke {
            op: OpId::new(p(0), 0),
            operation: Op::Write(Value::from_u32(1)),
        },
        &mut out,
    );
    let req = first_req(&out);
    let timer = out
        .iter()
        .find_map(|x| match x {
            Action::SetTimer { token, .. } => Some(*token),
            _ => None,
        })
        .unwrap();
    out.clear();
    a.on_input(Input::Timer(timer), &mut out);
    let re = sends(&out);
    assert_eq!(re.len(), 3);
    assert_eq!(
        re[0].request_id(),
        req,
        "retransmission must reuse the round id"
    );
    assert!(
        out.iter().any(|x| matches!(x, Action::SetTimer { .. })),
        "must re-arm"
    );
    // An unknown/stale timer is silent.
    out.clear();
    a.on_input(Input::Timer(TimerToken(999_999)), &mut out);
    assert!(out.is_empty());
}
