//! The shared register machinery, configured by a [`Flavor`].
//!
//! One automaton implements every register in the family; the flavor
//! flags select which logs and rounds exist, mirroring how the paper
//! derives Fig. 5 from Fig. 4 "with a few minor changes". The code
//! comments cite pseudocode line numbers from the paper throughout.

use std::collections::VecDeque;

use rmem_storage::records::{
    RecoveredRecord, WritingRecord, WrittenRecord, KEY_RECOVERED, KEY_WRITING, KEY_WRITTEN,
};
use rmem_types::{
    Action, Automaton, AutomatonFactory, Input, LeaseGrant, Message, Micros, Op, OpId, OpResult,
    ProcessId, RejectReason, RequestId, Seq, StableSnapshot, StoreToken, TimerToken, Timestamp,
    Value,
};

use crate::flavor::{Flavor, RecoveryPolicy};
use crate::quorum::QuorumCall;
use crate::replica::Replica;

/// The in-flight phase of a client operation.
#[derive(Debug)]
enum OpPhase {
    /// Write, round 1: collecting sequence numbers (Fig. 4 lines 7–10).
    WriteQuery {
        value: Value,
        call: QuorumCall,
        max_seq: Seq,
        timer: TimerToken,
    },
    /// Persistent write, between rounds: waiting for the `writing` pre-log
    /// (Fig. 4 line 12).
    WritePreLog {
        ts: Timestamp,
        value: Value,
        token: StoreToken,
    },
    /// Write, round 2: propagating the tagged value (Fig. 4 lines 13–15).
    WritePropagate {
        ts: Timestamp,
        value: Value,
        call: QuorumCall,
        timer: TimerToken,
    },
    /// Read, round 1: collecting tagged values (Fig. 4 lines 32–35).
    ReadQuery {
        call: QuorumCall,
        best_ts: Timestamp,
        best_value: Value,
        /// Tag reported by the first ack, for the confirmed-timestamp
        /// fast path: the write-back may be skipped only if every later
        /// ack matches it (`None` until the first ack arrives).
        agreed: Option<Timestamp>,
        /// Whether every ack so far reported the agreed tag *and*
        /// attested it durable. Conservative across duplicates: a replica
        /// whose retransmitted ack carries a newer tag clears the flag
        /// even though the quorum might still be unanimous.
        all_agree: bool,
        /// Whether every ack so far carried a tag-lease grant. A lease
        /// may only be minted from a quorum that *unanimously* granted:
        /// a grant-less ack means that replica will not fence newer
        /// writes for us.
        all_granted: bool,
        /// The lease-horizon timer armed when the read was broadcast —
        /// the conservative pre-send clock stamp the minted lease
        /// expires against. `None` once the horizon fired mid-round
        /// (too slow to mint) or when the flavor does not lease.
        lease_armed: Option<TimerToken>,
        timer: TimerToken,
    },
    /// Read, round 2: writing back the freshest value (Fig. 4 lines
    /// 36–38).
    ReadWriteBack {
        ts: Timestamp,
        value: Value,
        call: QuorumCall,
        timer: TimerToken,
    },
}

/// The recovery procedure's phase (between `Start` and readiness).
#[derive(Debug)]
enum RecoveryPhase {
    /// Waiting for the `recovered` counter store (Fig. 5 lines 19–21).
    StoreRec { token: StoreToken },
    /// Re-propagating the logged `writing` record (Fig. 4 lines 43–46).
    FinishWrite {
        ts: Timestamp,
        value: Value,
        call: QuorumCall,
        timer: TimerToken,
    },
    /// Regular register only: re-learning the write frontier from a
    /// majority.
    QuerySeq {
        call: QuorumCall,
        max_seq: Seq,
        timer: TimerToken,
    },
}

/// Which path constructed the automaton (drives `Start` handling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StartMode {
    Fresh,
    Recovered,
}

/// A live coordinator-held tag lease: while it lives, reads of this
/// register are served locally in zero rounds. Minted from a fast-path
/// quorum whose acks unanimously carried grants; died by its horizon
/// timer (armed at read *broadcast* time, so it expires before any
/// granting replica releases a fenced newer write) or by any locally
/// observed newer tag.
#[derive(Debug)]
struct Lease {
    ts: Timestamp,
    value: Value,
    horizon: TimerToken,
}

/// The lease term the replica role fences with: the flavor's term when
/// it actually leases, else 0 (inert).
fn replica_lease(flavor: &Flavor) -> u64 {
    if flavor.leases() {
        flavor.lease_micros
    } else {
        0
    }
}

/// The register automaton (see [`crate`] docs for the family table).
pub struct RegisterAutomaton {
    me: ProcessId,
    n: usize,
    majority: usize,
    flavor: Flavor,
    retransmit: Micros,
    start_mode: StartMode,
    replica: Replica,
    /// Stable recovery count (transient/regular flavors).
    rec: u64,
    /// Writer-local next sequence number (regular flavor only).
    next_wsn: Seq,
    /// The `writing` record to re-finish on recovery (persistent flavor).
    writing: Option<WritingRecord>,
    op: Option<(OpId, OpPhase)>,
    recovery: Option<RecoveryPhase>,
    /// Live tag lease (leasing flavors only).
    lease: Option<Lease>,
    ready: bool,
    queued: VecDeque<(OpId, Op)>,
    token_counter: u64,
    nonce_counter: u64,
}

impl std::fmt::Debug for RegisterAutomaton {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegisterAutomaton")
            .field("me", &self.me)
            .field("flavor", &self.flavor.name)
            .field("ready", &self.ready)
            .field("busy", &self.op.is_some())
            .finish()
    }
}

impl RegisterAutomaton {
    /// Builds a fresh automaton (first boot, empty stable storage).
    pub fn fresh(me: ProcessId, n: usize, flavor: Flavor, retransmit: Micros) -> Self {
        RegisterAutomaton {
            me,
            n,
            majority: rmem_types::process::majority(n),
            flavor,
            retransmit,
            start_mode: StartMode::Fresh,
            replica: Replica::new(me, flavor.replica_logs).with_lease(replica_lease(&flavor)),
            rec: 0,
            next_wsn: 1,
            writing: None,
            op: None,
            recovery: None,
            lease: None,
            ready: false,
            queued: VecDeque::new(),
            token_counter: 0,
            nonce_counter: 0,
        }
    }

    /// Rebuilds an automaton from its stable snapshot after a crash.
    ///
    /// `incarnation` feeds the request-nonce space (see
    /// [`AutomatonFactory::recover`]).
    pub fn recovered(
        me: ProcessId,
        n: usize,
        flavor: Flavor,
        retransmit: Micros,
        incarnation: u64,
        stable: &dyn StableSnapshot,
    ) -> Self {
        // Fig. 4 lines 41–42 / Fig. 5 lines 17–18: restore the replica.
        let replica = match stable.get(KEY_WRITTEN) {
            Some(bytes) => match WrittenRecord::decode(&bytes) {
                Ok(rec) => Replica::restored(me, flavor.replica_logs, &rec),
                Err(_) => Replica::new(me, flavor.replica_logs),
            },
            None => Replica::new(me, flavor.replica_logs),
        }
        .with_lease(replica_lease(&flavor));
        let rec = stable
            .get(KEY_RECOVERED)
            .and_then(|b| RecoveredRecord::decode(&b).ok())
            .map(|r| r.count)
            .unwrap_or(0);
        let writing = stable
            .get(KEY_WRITING)
            .and_then(|b| WritingRecord::decode(&b).ok());
        let next_wsn = replica.timestamp().seq + 1;
        RegisterAutomaton {
            me,
            n,
            majority: rmem_types::process::majority(n),
            flavor,
            retransmit,
            start_mode: StartMode::Recovered,
            replica,
            rec,
            next_wsn,
            writing,
            op: None,
            recovery: None,
            lease: None,
            ready: false,
            queued: VecDeque::new(),
            token_counter: 0,
            // Nonces from different incarnations must never collide; acks
            // can straddle a crash/recovery.
            nonce_counter: (incarnation + 1) << 32,
        }
    }

    /// The replica-held tag (exposed for tests and diagnostics).
    pub fn replica_timestamp(&self) -> Timestamp {
        self.replica.timestamp()
    }

    /// The replica-held value (exposed for tests and diagnostics).
    pub fn replica_value(&self) -> &Value {
        self.replica.value()
    }

    fn next_token(&mut self) -> StoreToken {
        let t = StoreToken(self.token_counter);
        self.token_counter += 1;
        t
    }

    fn next_timer(&mut self) -> TimerToken {
        let t = TimerToken(self.token_counter);
        self.token_counter += 1;
        t
    }

    fn next_req(&mut self) -> RequestId {
        let r = RequestId::new(self.me, self.nonce_counter);
        self.nonce_counter += 1;
        r
    }

    fn broadcast(&self, msg: &Message, out: &mut Vec<Action>) {
        out.extend(Action::broadcast(self.n, msg));
    }

    fn arm_timer(&mut self, out: &mut Vec<Action>) -> TimerToken {
        let timer = self.next_timer();
        out.push(Action::SetTimer {
            token: timer,
            after: self.retransmit,
        });
        timer
    }

    // -- Start / recovery -------------------------------------------------

    fn on_start(&mut self, out: &mut Vec<Action>) {
        match self.start_mode {
            StartMode::Fresh => {
                // Fig. 4 lines 1–5 / Fig. 5 lines 1–5: initial records.
                // Not ack-gated; the automaton is immediately ready.
                {
                    let counter = &mut self.token_counter;
                    let mut gen = move || {
                        let t = *counter;
                        *counter += 1;
                        t
                    };
                    self.replica.initial_store(&mut gen, out);
                }
                if self.flavor.write_pre_log {
                    let token = self.next_token();
                    let record = WritingRecord {
                        ts: Timestamp::new(0, self.me),
                        value: Value::bottom(),
                    };
                    self.writing = Some(record.clone());
                    out.push(Action::Store {
                        token,
                        key: KEY_WRITING.to_string(),
                        bytes: record.encode(),
                    });
                }
                if self.flavor.rec_in_timestamp {
                    let token = self.next_token();
                    let record = RecoveredRecord { count: 0 };
                    out.push(Action::Store {
                        token,
                        key: KEY_RECOVERED.to_string(),
                        bytes: record.encode(),
                    });
                }
                self.ready = true;
            }
            StartMode::Recovered => {
                // A recovered leasing replica cannot know which grants its
                // previous incarnation issued: fence every write ack for
                // one full hold term before trusting quiescence.
                {
                    let counter = &mut self.token_counter;
                    let mut gen = move || {
                        let t = *counter;
                        *counter += 1;
                        t
                    };
                    self.replica.boot_hold(&mut gen, out);
                }
                self.start_recovery(out)
            }
        }
    }

    fn start_recovery(&mut self, out: &mut Vec<Action>) {
        match self.flavor.recovery {
            RecoveryPolicy::Nothing => {
                self.ready = true;
            }
            RecoveryPolicy::FinishWrite => {
                // Fig. 4 lines 43–46: re-run the propagation round for the
                // logged writing record (harmless if that write in fact
                // completed — older tags are rejected everywhere).
                match self.writing.clone() {
                    Some(rec) => {
                        let req = self.next_req();
                        let call = QuorumCall::new(req, self.majority);
                        self.broadcast(
                            &Message::Write {
                                req,
                                ts: rec.ts,
                                value: rec.value.clone(),
                            },
                            out,
                        );
                        let timer = self.arm_timer(out);
                        self.recovery = Some(RecoveryPhase::FinishWrite {
                            ts: rec.ts,
                            value: rec.value,
                            call,
                            timer,
                        });
                    }
                    None => {
                        // Crashed before Initialize finished: nothing to
                        // re-finish.
                        self.ready = true;
                    }
                }
            }
            RecoveryPolicy::RecCounter | RecoveryPolicy::RecCounterAndQuery => {
                // Fig. 5 lines 19–21: bump and store the recovery counter
                // before serving anything.
                self.rec += 1;
                let token = self.next_token();
                let record = RecoveredRecord { count: self.rec };
                out.push(Action::Store {
                    token,
                    key: KEY_RECOVERED.to_string(),
                    bytes: record.encode(),
                });
                self.recovery = Some(RecoveryPhase::StoreRec { token });
            }
        }
    }

    fn recovery_store_done(&mut self, out: &mut Vec<Action>) {
        if self.flavor.recovery == RecoveryPolicy::RecCounterAndQuery {
            let req = self.next_req();
            let call = QuorumCall::new(req, self.majority);
            self.broadcast(&Message::SnReq { req }, out);
            let timer = self.arm_timer(out);
            self.recovery = Some(RecoveryPhase::QuerySeq {
                call,
                max_seq: 0,
                timer,
            });
        } else {
            self.finish_recovery(out);
        }
    }

    fn finish_recovery(&mut self, out: &mut Vec<Action>) {
        self.recovery = None;
        self.ready = true;
        self.drain_queue(out);
    }

    fn drain_queue(&mut self, out: &mut Vec<Action>) {
        if self.op.is_none() && self.ready {
            if let Some((op, operation)) = self.queued.pop_front() {
                self.begin_op(op, operation, out);
            }
        }
    }

    // -- Client operations ------------------------------------------------

    fn on_invoke(&mut self, op: OpId, operation: Op, out: &mut Vec<Action>) {
        if self.op.is_some() {
            // The runtime normally prevents this (§III-A sequential
            // processes); refuse rather than corrupt state.
            out.push(Action::Complete {
                op,
                result: OpResult::Rejected(RejectReason::Busy),
                rounds: 0,
                lease: None,
            });
            return;
        }
        if !self.ready {
            self.queued.push_back((op, operation));
            return;
        }
        self.begin_op(op, operation, out);
    }

    fn begin_op(&mut self, op: OpId, operation: Op, out: &mut Vec<Action>) {
        // A bare register automaton serves the default register only; the
        // shared-memory layer (`crate::memory`) strips addresses before
        // they get here.
        match operation.normalized() {
            Op::Write(value) => {
                if self.flavor.write_query_round {
                    // Fig. 4 lines 7–10: query a majority for sequence
                    // numbers.
                    let req = self.next_req();
                    let call = QuorumCall::new(req, self.majority);
                    self.broadcast(&Message::SnReq { req }, out);
                    let timer = self.arm_timer(out);
                    self.op = Some((
                        op,
                        OpPhase::WriteQuery {
                            value,
                            call,
                            max_seq: 0,
                            timer,
                        },
                    ));
                } else {
                    // Regular register: the single writer numbers writes
                    // locally.
                    let ts = Timestamp::new(self.next_wsn, self.me);
                    self.next_wsn += 1;
                    self.start_propagate(op, ts, value, out);
                }
            }
            Op::Read => {
                // Zero-round path: a live lease proves no write newer than
                // the leased tag can have completed yet (every granting
                // replica still fences its ack), so serving the leased
                // value locally linearizes before any such write.
                if let Some(l) = &self.lease {
                    out.push(Action::Complete {
                        op,
                        result: OpResult::ReadValue(l.value.clone()),
                        rounds: 0,
                        lease: None,
                    });
                    self.drain_queue(out);
                    return;
                }
                // Fig. 4 lines 32–35.
                let req = self.next_req();
                let call = QuorumCall::new(req, self.majority);
                self.broadcast(&Message::Read { req }, out);
                // Leasing flavors stamp the lease horizon *before* any
                // replica can have seen the query: the minted lease then
                // provably dies before a granting replica releases a
                // fenced newer write.
                let lease_armed = if self.flavor.leases() {
                    let horizon = self.next_timer();
                    out.push(Action::SetTimer {
                        token: horizon,
                        after: Micros(self.flavor.lease_micros),
                    });
                    Some(horizon)
                } else {
                    None
                };
                let timer = self.arm_timer(out);
                self.op = Some((
                    op,
                    OpPhase::ReadQuery {
                        call,
                        best_ts: Timestamp::new(0, self.me),
                        best_value: Value::bottom(),
                        agreed: None,
                        all_agree: true,
                        all_granted: true,
                        lease_armed,
                        timer,
                    },
                ));
            }
            // `normalized()` maps the addressed forms onto the two above.
            Op::ReadAt(_) | Op::WriteAt(..) => unreachable!("normalized() strips addresses"),
        }
    }

    fn start_propagate(&mut self, op: OpId, ts: Timestamp, value: Value, out: &mut Vec<Action>) {
        // Fig. 4 lines 13–15 (and Fig. 5 lines 12–14).
        let req = self.next_req();
        let call = QuorumCall::new(req, self.majority);
        self.broadcast(
            &Message::Write {
                req,
                ts,
                value: value.clone(),
            },
            out,
        );
        let timer = self.arm_timer(out);
        self.op = Some((
            op,
            OpPhase::WritePropagate {
                ts,
                value,
                call,
                timer,
            },
        ));
    }

    fn query_majority_reached(
        &mut self,
        op: OpId,
        value: Value,
        max_seq: Seq,
        out: &mut Vec<Action>,
    ) {
        // Fig. 4 line 11: sn := sn + 1 — Fig. 5 line 11: sn := sn + rec + 1.
        let rec_component = if self.flavor.rec_in_timestamp {
            self.rec
        } else {
            0
        };
        let ts = Timestamp::new(max_seq + rec_component + 1, self.me);
        if self.flavor.write_pre_log {
            // Fig. 4 line 12: the pre-log — the first causal log of a
            // persistent write. The propagation round waits for it.
            let token = self.next_token();
            let record = WritingRecord {
                ts,
                value: value.clone(),
            };
            self.writing = Some(record.clone());
            out.push(Action::Store {
                token,
                key: KEY_WRITING.to_string(),
                bytes: record.encode(),
            });
            self.op = Some((op, OpPhase::WritePreLog { ts, value, token }));
        } else {
            self.start_propagate(op, ts, value, out);
        }
    }

    // -- Input dispatch ----------------------------------------------------

    fn on_message(&mut self, from: ProcessId, msg: Message, out: &mut Vec<Action>) {
        // Replica role first: requests are fully handled there.
        {
            let counter = &mut self.token_counter;
            let mut gen = move || {
                let t = *counter;
                *counter += 1;
                t
            };
            if self.replica.on_message(from, &msg, &mut gen, out) {
                // Any locally adopted newer tag kills the lease on the
                // spot: the leased value is provably no longer freshest.
                self.invalidate_lease_if_older_than(self.replica.timestamp());
                return;
            }
        }

        // Acks: route to the recovery phase or the running operation.
        match msg {
            Message::SnAck { req, seq } => self.on_sn_ack(from, req, seq, out),
            Message::WriteAck { req } => self.on_write_ack(from, req, out),
            Message::ReadAck {
                req,
                ts,
                value,
                durable,
                grant,
            } => self.on_read_ack(from, req, ts, value, durable, grant, out),
            _ => {}
        }
    }

    /// Drops the lease if a tag strictly newer than the leased one has
    /// been observed (the grant fence only covers writes *newer* than
    /// the minimum granted tag, so equality keeps the lease).
    fn invalidate_lease_if_older_than(&mut self, observed: Timestamp) {
        if self.lease.as_ref().is_some_and(|l| observed > l.ts) {
            self.lease = None;
        }
    }

    fn on_sn_ack(&mut self, from: ProcessId, req: RequestId, seq: Seq, out: &mut Vec<Action>) {
        // Recovery-time frontier query (regular flavor).
        let mut recovery_done: Option<Seq> = None;
        if let Some(RecoveryPhase::QuerySeq { call, max_seq, .. }) = &mut self.recovery {
            if call.matches(req) {
                *max_seq = (*max_seq).max(seq);
                if call.record(from) {
                    recovery_done = Some(*max_seq);
                } else {
                    return;
                }
            }
        }
        if let Some(max_seq) = recovery_done {
            // Re-seed the writer-local counter beyond anything a majority
            // has seen, plus one slot per past crash for in-flight writes
            // nobody logged.
            self.next_wsn = self.next_wsn.max(max_seq + self.rec + 1);
            self.finish_recovery(out);
            return;
        }

        // Write query round.
        let mut reached: Option<(OpId, Value, Seq)> = None;
        if let Some((
            op,
            OpPhase::WriteQuery {
                value,
                call,
                max_seq,
                ..
            },
        )) = &mut self.op
        {
            if call.matches(req) {
                *max_seq = (*max_seq).max(seq);
                if call.record(from) {
                    reached = Some((*op, value.clone(), *max_seq));
                }
            }
        }
        if let Some((op, value, max_seq)) = reached {
            self.op = None;
            self.query_majority_reached(op, value, max_seq, out);
        }
    }

    fn on_write_ack(&mut self, from: ProcessId, req: RequestId, out: &mut Vec<Action>) {
        // Recovery-time write completion (persistent flavor).
        let mut recovery_done = false;
        if let Some(RecoveryPhase::FinishWrite { call, .. }) = &mut self.recovery {
            if call.matches(req) {
                if call.record(from) {
                    recovery_done = true;
                } else {
                    return;
                }
            }
        }
        if recovery_done {
            self.finish_recovery(out);
            return;
        }

        enum Done {
            No,
            Write(OpId, Timestamp),
            Read(OpId, Timestamp, Value),
        }
        let mut done = Done::No;
        // Nested `if` rather than `&&` in the guards: `record` mutates the
        // call, which pattern guards may not.
        #[allow(clippy::collapsible_match)]
        match &mut self.op {
            Some((op, OpPhase::WritePropagate { ts, call, .. })) if call.matches(req) => {
                if call.record(from) {
                    done = Done::Write(*op, *ts);
                }
            }
            Some((
                op,
                OpPhase::ReadWriteBack {
                    ts, value, call, ..
                },
            )) if call.matches(req) => {
                if call.record(from) {
                    done = Done::Read(*op, *ts, value.clone());
                }
            }
            _ => {}
        }
        match done {
            Done::No => {}
            Done::Write(op, ts) => {
                self.op = None;
                // Our own completed write supersedes any older lease.
                self.invalidate_lease_if_older_than(ts);
                // Fig. 4 line 16: the write returns (after its query and
                // propagation rounds; the regular writer skips the query).
                let rounds = if self.flavor.write_query_round { 2 } else { 1 };
                out.push(Action::Complete {
                    op,
                    result: OpResult::Written,
                    rounds,
                    lease: None,
                });
                self.drain_queue(out);
            }
            Done::Read(op, ts, value) => {
                self.op = None;
                self.invalidate_lease_if_older_than(ts);
                // Fig. 4 line 39: the read returns the written-back value.
                out.push(Action::Complete {
                    op,
                    result: OpResult::ReadValue(value),
                    rounds: 2,
                    lease: None,
                });
                self.drain_queue(out);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_read_ack(
        &mut self,
        from: ProcessId,
        req: RequestId,
        ts: Timestamp,
        value: Value,
        durable: bool,
        grant: u32,
        out: &mut Vec<Action>,
    ) {
        let mut reached: Option<(OpId, Timestamp, Value, bool, bool, Option<TimerToken>)> = None;
        if let Some((
            op,
            OpPhase::ReadQuery {
                call,
                best_ts,
                best_value,
                agreed,
                all_agree,
                all_granted,
                lease_armed,
                ..
            },
        )) = &mut self.op
        {
            if call.matches(req) {
                // Confirmed-timestamp bookkeeping: unanimity requires
                // every ack to carry the agreed tag and attest it durable.
                // Two never-written replicas "agree" even though their
                // initial tags differ in the pid component — both report
                // seq 0 and ⊥, and ⊥ cannot be new-old inverted.
                match agreed {
                    None => *agreed = Some(ts),
                    Some(first) => {
                        let both_initial = ts.seq == 0 && first.seq == 0;
                        if ts != *first && !both_initial {
                            *all_agree = false;
                        }
                    }
                }
                if !durable {
                    *all_agree = false;
                }
                // A lease needs every replier fencing for us.
                if grant == 0 {
                    *all_granted = false;
                }
                // Fig. 4 line 35: select the value with the highest tag.
                if ts > *best_ts {
                    *best_ts = ts;
                    *best_value = value;
                }
                if call.record(from) {
                    reached = Some((
                        *op,
                        *best_ts,
                        best_value.clone(),
                        *all_agree,
                        *all_granted,
                        *lease_armed,
                    ));
                }
            }
        }
        let Some((op, ts, value, all_agree, all_granted, lease_armed)) = reached else {
            return;
        };
        self.op = None;
        // The fast path: a unanimous quorum of durable tags proves a
        // majority already stably holds `ts`, so the write-back (Fig. 4
        // lines 36–38) would be redundant — every later quorum intersects
        // this one in a replica that can never again report less than `ts`.
        let fast = self.flavor.read_fast_path && all_agree;
        if self.flavor.read_write_back && !fast {
            // Fig. 4 lines 36–38: write back before returning.
            let req = self.next_req();
            let call = QuorumCall::new(req, self.majority);
            self.broadcast(
                &Message::Write {
                    req,
                    ts,
                    value: value.clone(),
                },
                out,
            );
            let timer = self.arm_timer(out);
            self.op = Some((
                op,
                OpPhase::ReadWriteBack {
                    ts,
                    value,
                    call,
                    timer,
                },
            ));
        } else {
            // Single-round read: the regular register always, the atomic
            // flavors when the fast path fired.
            //
            // Lease minting: every replier granted, and the horizon timer
            // armed at broadcast has not fired yet — the whole quorum has
            // promised to fence any newer write past that horizon, so
            // until then this tag *is* the register.
            let minted = if fast && all_granted && !self.replica_newer_than(ts) {
                lease_armed.map(|horizon| {
                    self.lease = Some(Lease {
                        ts,
                        value: value.clone(),
                        horizon,
                    });
                    LeaseGrant {
                        ts,
                        micros: u32::try_from(self.flavor.lease_micros).unwrap_or(u32::MAX),
                    }
                })
            } else {
                None
            };
            out.push(Action::Complete {
                op,
                result: OpResult::ReadValue(value),
                rounds: 1,
                lease: minted,
            });
            self.drain_queue(out);
        }
    }

    /// Whether the local replica already holds a tag strictly newer than
    /// `ts` — minting a lease on an older tag would serve stale reads.
    fn replica_newer_than(&self, ts: Timestamp) -> bool {
        self.replica.timestamp() > ts
    }

    fn on_store_done(&mut self, token: StoreToken, out: &mut Vec<Action>) {
        if self.replica.on_store_done(token, out) {
            return;
        }
        if let Some(RecoveryPhase::StoreRec { token: t }) = &self.recovery {
            if *t == token {
                self.recovery_store_done(out);
                return;
            }
        }
        let mut prelogged: Option<(OpId, Timestamp, Value)> = None;
        if let Some((
            op,
            OpPhase::WritePreLog {
                ts,
                value,
                token: t,
            },
        )) = &self.op
        {
            if *t == token {
                prelogged = Some((*op, *ts, value.clone()));
            }
        }
        if let Some((op, ts, value)) = prelogged {
            self.op = None;
            // Pre-log durable: the second round may begin.
            self.start_propagate(op, ts, value, out);
        }
    }

    fn on_timer(&mut self, token: TimerToken, out: &mut Vec<Action>) {
        // A minted lease's horizon: the lease dies, reads go back to the
        // quorum (and may mint afresh).
        if self.lease.as_ref().is_some_and(|l| l.horizon == token) {
            self.lease = None;
            return;
        }
        // A horizon that fires while its read is still collecting acks:
        // too slow to mint — the replicas' fences may open before a
        // lease clocked from this stamp would expire.
        if let Some((_, OpPhase::ReadQuery { lease_armed, .. })) = &mut self.op {
            if *lease_armed == Some(token) {
                *lease_armed = None;
                return;
            }
        }
        // The replica role's grant-fence horizon.
        {
            let counter = &mut self.token_counter;
            let mut gen = move || {
                let t = *counter;
                *counter += 1;
                t
            };
            if self.replica.on_timer(token, &mut gen, out) {
                return;
            }
        }
        // Retransmit whatever round is still waiting for acks, then
        // re-arm. Stale timers (from completed rounds) match nothing and
        // die silently.
        let resend: Option<Message> = {
            let from_recovery = self.recovery.as_ref().and_then(|phase| match phase {
                RecoveryPhase::FinishWrite {
                    ts,
                    value,
                    call,
                    timer,
                } if *timer == token => Some(Message::Write {
                    req: call.request_id(),
                    ts: *ts,
                    value: value.clone(),
                }),
                RecoveryPhase::QuerySeq { call, timer, .. } if *timer == token => {
                    Some(Message::SnReq {
                        req: call.request_id(),
                    })
                }
                _ => None,
            });
            let from_op = self.op.as_ref().and_then(|(_, phase)| match phase {
                OpPhase::WriteQuery { call, timer, .. } if *timer == token => {
                    Some(Message::SnReq {
                        req: call.request_id(),
                    })
                }
                OpPhase::WritePropagate {
                    ts,
                    value,
                    call,
                    timer,
                } if *timer == token => Some(Message::Write {
                    req: call.request_id(),
                    ts: *ts,
                    value: value.clone(),
                }),
                OpPhase::ReadQuery { call, timer, .. } if *timer == token => Some(Message::Read {
                    req: call.request_id(),
                }),
                OpPhase::ReadWriteBack {
                    ts,
                    value,
                    call,
                    timer,
                } if *timer == token => Some(Message::Write {
                    req: call.request_id(),
                    ts: *ts,
                    value: value.clone(),
                }),
                _ => None,
            });
            from_recovery.or(from_op)
        };

        let Some(msg) = resend else { return };
        self.broadcast(&msg, out);
        let new_timer = self.arm_timer(out);
        if let Some(phase) = &mut self.recovery {
            match phase {
                RecoveryPhase::FinishWrite { timer, .. }
                | RecoveryPhase::QuerySeq { timer, .. }
                    if *timer == token =>
                {
                    *timer = new_timer;
                    return;
                }
                _ => {}
            }
        }
        if let Some((_, phase)) = &mut self.op {
            match phase {
                OpPhase::WriteQuery { timer, .. }
                | OpPhase::WritePropagate { timer, .. }
                | OpPhase::ReadQuery { timer, .. }
                | OpPhase::ReadWriteBack { timer, .. }
                    if *timer == token =>
                {
                    *timer = new_timer;
                }
                _ => {}
            }
        }
    }
}

impl Automaton for RegisterAutomaton {
    fn on_input(&mut self, input: Input, out: &mut Vec<Action>) {
        match input {
            Input::Start => self.on_start(out),
            Input::Invoke { op, operation } => self.on_invoke(op, operation, out),
            Input::Message { from, msg } => self.on_message(from, msg, out),
            Input::StoreDone(token) => self.on_store_done(token, out),
            Input::Timer(token) => self.on_timer(token, out),
        }
    }

    fn is_ready(&self) -> bool {
        self.ready
    }

    fn algorithm(&self) -> &'static str {
        self.flavor.name
    }
}

/// Factory producing [`RegisterAutomaton`]s of one flavor.
#[derive(Debug, Clone)]
pub struct FlavorFactory {
    flavor: Flavor,
    retransmit: Micros,
}

impl FlavorFactory {
    /// Creates a factory for `flavor` with the given retransmission
    /// period.
    pub fn new(flavor: Flavor, retransmit: Micros) -> Self {
        FlavorFactory { flavor, retransmit }
    }

    /// The flavor this factory builds.
    pub fn flavor(&self) -> Flavor {
        self.flavor
    }
}

impl AutomatonFactory for FlavorFactory {
    fn fresh(&self, me: ProcessId, n: usize) -> Box<dyn Automaton> {
        Box::new(RegisterAutomaton::fresh(
            me,
            n,
            self.flavor,
            self.retransmit,
        ))
    }

    fn recover(
        &self,
        me: ProcessId,
        n: usize,
        incarnation: u64,
        stable: &dyn StableSnapshot,
    ) -> Box<dyn Automaton> {
        Box::new(RegisterAutomaton::recovered(
            me,
            n,
            self.flavor,
            self.retransmit,
            incarnation,
            stable,
        ))
    }

    fn algorithm(&self) -> &'static str {
        self.flavor.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_types::EmptySnapshot;

    fn fresh(flavor: Flavor) -> RegisterAutomaton {
        let mut a = RegisterAutomaton::fresh(ProcessId(0), 3, flavor, Micros(1_000));
        let mut out = Vec::new();
        a.on_input(Input::Start, &mut out);
        a
    }

    fn sends_of(out: &[Action]) -> Vec<&Message> {
        out.iter()
            .filter_map(|a| match a {
                Action::Send { msg, .. } => Some(msg),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn fresh_boot_initialises_and_is_ready() {
        let mut a = RegisterAutomaton::fresh(ProcessId(0), 3, Flavor::persistent(), Micros(1_000));
        assert!(!a.is_ready());
        let mut out = Vec::new();
        a.on_input(Input::Start, &mut out);
        assert!(a.is_ready());
        // Initial written + writing records.
        let stores = out
            .iter()
            .filter(|a| matches!(a, Action::Store { .. }))
            .count();
        assert_eq!(stores, 2);
    }

    #[test]
    fn crash_stop_boot_stores_nothing() {
        let mut a = RegisterAutomaton::fresh(ProcessId(0), 3, Flavor::crash_stop(), Micros(1_000));
        let mut out = Vec::new();
        a.on_input(Input::Start, &mut out);
        assert!(out.iter().all(|a| !matches!(a, Action::Store { .. })));
        assert!(a.is_ready());
    }

    #[test]
    fn write_starts_with_sn_query_broadcast() {
        let mut a = fresh(Flavor::persistent());
        let mut out = Vec::new();
        a.on_input(
            Input::Invoke {
                op: OpId::new(ProcessId(0), 0),
                operation: Op::Write(Value::from_u32(1)),
            },
            &mut out,
        );
        let sends = sends_of(&out);
        assert_eq!(sends.len(), 3, "broadcast to all 3 processes");
        assert!(sends.iter().all(|m| matches!(m, Message::SnReq { .. })));
        assert!(out.iter().any(|a| matches!(a, Action::SetTimer { .. })));
    }

    #[test]
    fn regular_write_skips_query_round() {
        let mut a = fresh(Flavor::regular());
        let mut out = Vec::new();
        a.on_input(
            Input::Invoke {
                op: OpId::new(ProcessId(0), 0),
                operation: Op::Write(Value::from_u32(1)),
            },
            &mut out,
        );
        let sends = sends_of(&out);
        assert!(sends.iter().all(|m| matches!(m, Message::Write { .. })));
        // First write is numbered 1 by the local counter.
        if let Message::Write { ts, .. } = sends[0] {
            assert_eq!(*ts, Timestamp::new(1, ProcessId(0)));
        }
    }

    #[test]
    fn busy_invocation_is_rejected() {
        let mut a = fresh(Flavor::persistent());
        let mut out = Vec::new();
        a.on_input(
            Input::Invoke {
                op: OpId::new(ProcessId(0), 0),
                operation: Op::Read,
            },
            &mut out,
        );
        out.clear();
        a.on_input(
            Input::Invoke {
                op: OpId::new(ProcessId(0), 1),
                operation: Op::Read,
            },
            &mut out,
        );
        assert!(matches!(
            out[0],
            Action::Complete {
                result: OpResult::Rejected(RejectReason::Busy),
                ..
            }
        ));
    }

    #[test]
    fn invocation_during_recovery_is_queued() {
        // A recovered transient automaton is not ready until its rec
        // counter is durable.
        let mut a = RegisterAutomaton::recovered(
            ProcessId(0),
            3,
            Flavor::transient(),
            Micros(1_000),
            1,
            &EmptySnapshot,
        );
        let mut out = Vec::new();
        a.on_input(Input::Start, &mut out);
        assert!(!a.is_ready());
        let store_token = out
            .iter()
            .find_map(|a| match a {
                Action::Store { token, key, .. } if *key == KEY_RECOVERED => Some(*token),
                _ => None,
            })
            .expect("recovery must store the rec counter");
        out.clear();
        a.on_input(
            Input::Invoke {
                op: OpId::new(ProcessId(0), 0),
                operation: Op::Read,
            },
            &mut out,
        );
        assert!(out.is_empty(), "queued, not started: {out:?}");
        // Completing the store makes it ready and starts the queued read.
        a.on_input(Input::StoreDone(store_token), &mut out);
        assert!(a.is_ready());
        assert!(
            out.iter().any(|x| matches!(
                x,
                Action::Send {
                    msg: Message::Read { .. },
                    ..
                }
            )),
            "queued read must start: {out:?}"
        );
    }

    #[test]
    fn transient_recovery_bumps_rec_counter() {
        let mut a = RegisterAutomaton::recovered(
            ProcessId(0),
            3,
            Flavor::transient(),
            Micros(1_000),
            3,
            &EmptySnapshot,
        );
        let mut out = Vec::new();
        a.on_input(Input::Start, &mut out);
        let rec_bytes = out
            .iter()
            .find_map(|a| match a {
                Action::Store { key, bytes, .. } if *key == KEY_RECOVERED => Some(bytes.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(RecoveredRecord::decode(&rec_bytes).unwrap().count, 1);
    }

    #[test]
    fn persistent_recovery_rebroadcasts_writing_record() {
        let mut stable = std::collections::HashMap::new();
        let writing = WritingRecord {
            ts: Timestamp::new(7, ProcessId(0)),
            value: Value::from_u32(42),
        };
        stable.insert("writing".to_string(), writing.encode());
        let mut a = RegisterAutomaton::recovered(
            ProcessId(0),
            3,
            Flavor::persistent(),
            Micros(1_000),
            1,
            &stable,
        );
        let mut out = Vec::new();
        a.on_input(Input::Start, &mut out);
        assert!(!a.is_ready());
        let sends = sends_of(&out);
        assert_eq!(sends.len(), 3);
        for m in sends {
            let Message::Write { ts, value, .. } = m else {
                panic!("expected W, got {m}")
            };
            assert_eq!(*ts, Timestamp::new(7, ProcessId(0)));
            assert_eq!(value.as_u32(), Some(42));
        }
        // Majority of acks completes recovery.
        let req = match &out[0] {
            Action::Send { msg, .. } => msg.request_id(),
            _ => panic!(),
        };
        let mut out2 = Vec::new();
        a.on_input(
            Input::Message {
                from: ProcessId(1),
                msg: Message::WriteAck { req },
            },
            &mut out2,
        );
        assert!(!a.is_ready());
        a.on_input(
            Input::Message {
                from: ProcessId(2),
                msg: Message::WriteAck { req },
            },
            &mut out2,
        );
        assert!(a.is_ready());
    }

    #[test]
    fn recovered_nonces_do_not_collide_with_fresh_ones() {
        let mut fresh_a = fresh(Flavor::transient());
        let mut out = Vec::new();
        fresh_a.on_input(
            Input::Invoke {
                op: OpId::new(ProcessId(0), 0),
                operation: Op::Read,
            },
            &mut out,
        );
        let fresh_req = match sends_of(&out)[0] {
            Message::Read { req } => *req,
            m => panic!("{m}"),
        };

        let mut rec_a = RegisterAutomaton::recovered(
            ProcessId(0),
            3,
            Flavor::transient(),
            Micros(1_000),
            0,
            &EmptySnapshot,
        );
        let mut out2 = Vec::new();
        rec_a.on_input(Input::Start, &mut out2);
        let Some(Action::Store { token, .. }) = out2.first().cloned() else {
            panic!()
        };
        out2.clear();
        rec_a.on_input(Input::StoreDone(token), &mut out2);
        out2.clear();
        rec_a.on_input(
            Input::Invoke {
                op: OpId::new(ProcessId(0), 1),
                operation: Op::Read,
            },
            &mut out2,
        );
        let rec_req = match sends_of(&out2)[0] {
            Message::Read { req } => *req,
            m => panic!("{m}"),
        };
        assert_ne!(
            fresh_req, rec_req,
            "nonce spaces of incarnations must be disjoint"
        );
    }

    #[test]
    fn timer_retransmits_current_round_only() {
        let mut a = fresh(Flavor::persistent());
        let mut out = Vec::new();
        a.on_input(
            Input::Invoke {
                op: OpId::new(ProcessId(0), 0),
                operation: Op::Read,
            },
            &mut out,
        );
        let timer = out
            .iter()
            .find_map(|x| match x {
                Action::SetTimer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        out.clear();
        a.on_input(Input::Timer(timer), &mut out);
        // Rebroadcast of the read + a fresh timer.
        assert_eq!(sends_of(&out).len(), 3);
        assert!(out.iter().any(|x| matches!(x, Action::SetTimer { .. })));
        // A stale timer does nothing.
        out.clear();
        a.on_input(Input::Timer(timer), &mut out);
        assert!(out.is_empty());
    }
}
