//! Deliberately weakened flavors realising the anomalies from the paper's
//! lower-bound proofs (§IV-A).
//!
//! These exist so the repository can *demonstrate* the lower bounds, not
//! just cite them: integration tests drive each ablation through the
//! adversary schedule of the corresponding proof run (Figs. 2–3) and show
//! the atomicity checkers certify a violation — while the unablated
//! algorithm sails through the same schedule.
//!
//! | ablation | removes | anomaly it re-enables | proof run |
//! |---|---|---|---|
//! | [`no_pre_log`] | the writer's `writing` pre-log, the recovery write-completion, *and* the `rec` counter | confused-values / orphan-value: a recovered writer reuses a timestamp, or leaves a half-written value indistinguishable from a finished one | ρ1 (Fig. 2, Theorem 1) |
//! | [`no_rec_counter`] | only the `rec` bump from the transient algorithm | confused-values: two different values under the same tag | ρ1 variant |
//! | [`no_read_write_back`] | the read's second round | new-old inversion across a reader crash (reads become log-free) | ρ2–ρ4 (Fig. 3, Theorem 2) |

use crate::flavor::{Flavor, RecoveryPolicy};

/// The persistent algorithm with the writer pre-log **and** the recovery
/// write-completion removed (one causal log per write, like transient, but
/// *without* the compensating `rec` counter).
///
/// Theorem 1's run ρ1 breaks it: the writer crashes mid-write having
/// logged nothing, recovers, queries a majority that never saw the
/// interrupted write, and reuses its timestamp for a different value —
/// two values under one tag.
pub const fn no_pre_log() -> Flavor {
    Flavor {
        name: "ablation:no-pre-log",
        replica_logs: true,
        write_query_round: true,
        write_pre_log: false,
        rec_in_timestamp: false,
        read_write_back: true,
        // Ablations run the unoptimised paper rounds so the proof-run
        // schedules keep their timing.
        read_fast_path: false,
        lease_micros: 0,
        recovery: RecoveryPolicy::Nothing,
    }
}

/// The transient algorithm minus the stable recovery counter (Fig. 5
/// lines 19–21 removed).
///
/// Identical to [`no_pre_log`] except it still restores nothing extra on
/// recovery — listed separately so tests can speak the paper's language:
/// "the `rec` variable … guarantees that sequence numbers always increase
/// monotonically"; without it they do not.
pub const fn no_rec_counter() -> Flavor {
    Flavor {
        name: "ablation:no-rec-counter",
        ..no_pre_log()
    }
}

/// The persistent algorithm with the read's write-back round removed:
/// reads return after the query round and never cause a log.
///
/// Theorem 2's runs ρ2–ρ4 break it: a reader that returns a freshly
/// written value, crashes, recovers and reads again can return the *older*
/// value, because nothing forced the fresh value into a majority before
/// the first read returned.
pub const fn no_read_write_back() -> Flavor {
    Flavor {
        name: "ablation:no-read-write-back",
        replica_logs: true,
        write_query_round: true,
        write_pre_log: true,
        rec_in_timestamp: false,
        read_write_back: false,
        read_fast_path: false,
        lease_micros: 0,
        recovery: RecoveryPolicy::FinishWrite,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_differ_from_published_flavors_in_one_dimension() {
        let p = Flavor::persistent();
        let a = no_pre_log();
        assert_eq!(a.replica_logs, p.replica_logs);
        assert_eq!(a.write_query_round, p.write_query_round);
        assert!(!a.write_pre_log);
        assert_eq!(
            a.causal_logs_per_write(),
            1,
            "exactly the saving Theorem 1 forbids"
        );

        let b = no_read_write_back();
        assert!(b.write_pre_log);
        assert_eq!(
            b.causal_logs_per_read(),
            0,
            "exactly the saving Theorem 2 forbids"
        );
    }

    #[test]
    fn ablation_names_are_marked() {
        for f in [no_pre_log(), no_rec_counter(), no_read_write_back()] {
            assert!(f.name.starts_with("ablation:"), "{}", f.name);
        }
    }
}
