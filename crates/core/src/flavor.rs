//! Flavor: the configuration space of the shared register machinery.

/// What a process does on recovery, beyond restoring its replica state
/// from the `written` record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Restore volatile state only (crash-stop baseline and ablations).
    Nothing,
    /// Re-run the propagation round for the logged `writing` record before
    /// serving (persistent, Fig. 4 lines 40–47).
    FinishWrite,
    /// Increment and log the stable recovery counter before serving
    /// (transient, Fig. 5 lines 16–22).
    RecCounter,
    /// As [`RecCounter`](RecoveryPolicy::RecCounter), then query a majority
    /// for the highest sequence number to re-seed the writer-local counter
    /// (regular register: its writes skip the query round, so recovery
    /// must re-learn the write frontier).
    RecCounterAndQuery,
}

/// Configuration of one register algorithm over the shared machinery.
///
/// The four published flavors are [`persistent`](Flavor::persistent),
/// [`transient`](Flavor::transient), [`crash_stop`](Flavor::crash_stop)
/// and [`regular`](Flavor::regular); the [`crate::ablation`] module adds
/// deliberately broken ones for the lower-bound demonstrations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flavor {
    /// Algorithm name used in traces and experiment labels.
    pub name: &'static str,
    /// Replicas log adopted values (`written` record) before
    /// acknowledging. `false` only for the crash-stop baseline.
    pub replica_logs: bool,
    /// Writes start with a sequence-number query round (Fig. 4 lines
    /// 7–10). `false` for the single-writer regular register, whose writer
    /// numbers writes locally.
    pub write_query_round: bool,
    /// The writer logs the `writing` record before propagating (Fig. 4
    /// line 12) — the second causal log that buys persistent atomicity.
    pub write_pre_log: bool,
    /// Fold the stable recovery counter into new sequence numbers (Fig. 5
    /// line 11).
    pub rec_in_timestamp: bool,
    /// Reads run a second, write-back round before returning (Fig. 4
    /// lines 36–38). `false` for the regular register (and the no-read-log
    /// ablation), which returns straight after the query round.
    pub read_write_back: bool,
    /// The confirmed-timestamp read optimisation: when every replier in
    /// the read quorum reports the *same* tag **and** attests it durable,
    /// the write-back round is provably redundant (a majority already
    /// holds the tag on stable storage, so no later quorum can miss it)
    /// and the read completes after one round. Repliers that disagree —
    /// or report a volatile tag — fall back to the unmodified two-round
    /// path. Inert when [`read_write_back`](Flavor::read_write_back) is
    /// already `false`.
    pub read_fast_path: bool,
    /// Tag-lease duration in microseconds (0 = leasing disabled, the
    /// default for every published flavor). When non-zero — and the
    /// [`read_fast_path`](Flavor::read_fast_path) is on — replicas
    /// attach a lease grant of this length to durable read acks and
    /// withhold acknowledgements of newer writes until their granted
    /// horizons pass; a coordinator whose fast-path read collected a
    /// unanimous granted quorum serves repeated reads of that register
    /// locally (zero rounds) until the lease expires or a newer tag is
    /// observed. See `with_lease`.
    pub lease_micros: u64,
    /// Recovery behaviour.
    pub recovery: RecoveryPolicy,
}

impl Flavor {
    /// Paper Fig. 4: persistent atomicity, 2 causal logs per write, 1 per
    /// read.
    pub const fn persistent() -> Flavor {
        Flavor {
            name: "persistent",
            replica_logs: true,
            write_query_round: true,
            write_pre_log: true,
            rec_in_timestamp: false,
            read_write_back: true,
            read_fast_path: true,
            lease_micros: 0,
            recovery: RecoveryPolicy::FinishWrite,
        }
    }

    /// Paper Fig. 5: transient atomicity, 1 causal log per write, 1 per
    /// read.
    pub const fn transient() -> Flavor {
        Flavor {
            name: "transient",
            replica_logs: true,
            write_query_round: true,
            write_pre_log: false,
            rec_in_timestamp: true,
            read_write_back: true,
            read_fast_path: true,
            lease_micros: 0,
            recovery: RecoveryPolicy::RecCounter,
        }
    }

    /// The log-free crash-stop baseline.
    pub const fn crash_stop() -> Flavor {
        Flavor {
            name: "crash-stop",
            replica_logs: false,
            write_query_round: true,
            write_pre_log: false,
            rec_in_timestamp: false,
            read_write_back: true,
            // The baseline keeps the paper's fixed 4-step reads so the
            // logging-cost comparisons measure logs, not round counts.
            read_fast_path: false,
            lease_micros: 0,
            recovery: RecoveryPolicy::Nothing,
        }
    }

    /// The §VI single-writer regular register: 1 causal log per write,
    /// log-free single-round reads.
    pub const fn regular() -> Flavor {
        Flavor {
            name: "regular",
            replica_logs: true,
            write_query_round: false,
            write_pre_log: false,
            rec_in_timestamp: true,
            read_write_back: false,
            // Already single-round; the knob is inert.
            read_fast_path: false,
            lease_micros: 0,
            recovery: RecoveryPolicy::RecCounterAndQuery,
        }
    }

    /// Communication steps per write (each quorum round is one round-trip
    /// = 2 steps).
    pub fn write_comm_steps(&self) -> u32 {
        if self.write_query_round {
            4
        } else {
            2
        }
    }

    /// Communication steps per read — the worst case. With the fast path
    /// this is still the bound: disagreement or volatile tags fall back to
    /// the full write-back.
    pub fn read_comm_steps(&self) -> u32 {
        if self.read_write_back {
            4
        } else {
            2
        }
    }

    /// Communication steps of a *fast-path* read (quiescent register,
    /// unanimous durable tags): 2 whenever single-round completion is
    /// possible — either the flavor never writes back, or the fast path
    /// may suppress the write-back.
    pub fn fast_read_comm_steps(&self) -> u32 {
        if self.read_write_back && !self.read_fast_path {
            4
        } else {
            2
        }
    }

    /// This flavor with the read fast path switched on/off — the legacy
    /// (always-write-back) configuration used as the benchmark baseline
    /// and exercised by CI so the fallback path cannot rot.
    pub const fn with_read_fast_path(self, enabled: bool) -> Flavor {
        Flavor {
            read_fast_path: enabled,
            ..self
        }
    }

    /// This flavor with hot-key tag leasing enabled: durable read acks
    /// carry a grant of `micros` µs, and replicas fence newer writes
    /// behind outstanding grants. `0` disables leasing (the default).
    ///
    /// Leasing piggybacks on the fast path's durability attestation, so
    /// it is inert unless [`read_fast_path`](Flavor::read_fast_path) is
    /// also on — see [`leases`](Flavor::leases).
    pub const fn with_lease(self, micros: u64) -> Flavor {
        Flavor {
            lease_micros: micros,
            ..self
        }
    }

    /// Whether this flavor actually grants/honors tag leases: a non-zero
    /// term on a fast-path-capable flavor.
    pub const fn leases(&self) -> bool {
        self.lease_micros > 0 && self.read_fast_path && self.read_write_back
    }

    /// The worst-case causal logs per write this flavor performs — the
    /// quantity the paper's Theorem 1 bounds.
    pub fn causal_logs_per_write(&self) -> u32 {
        let mut logs = 0;
        if self.write_pre_log {
            logs += 1;
        }
        if self.replica_logs {
            logs += 1;
        }
        logs
    }

    /// The worst-case causal logs per read (Theorem 2's bound): the
    /// write-back's replica logs, when it adopts.
    pub fn causal_logs_per_read(&self) -> u32 {
        u32::from(self.read_write_back && self.replica_logs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_flavors_match_paper_log_counts() {
        assert_eq!(Flavor::persistent().causal_logs_per_write(), 2);
        assert_eq!(Flavor::persistent().causal_logs_per_read(), 1);
        assert_eq!(Flavor::transient().causal_logs_per_write(), 1);
        assert_eq!(Flavor::transient().causal_logs_per_read(), 1);
        assert_eq!(Flavor::crash_stop().causal_logs_per_write(), 0);
        assert_eq!(Flavor::crash_stop().causal_logs_per_read(), 0);
        assert_eq!(Flavor::regular().causal_logs_per_write(), 1);
        assert_eq!(Flavor::regular().causal_logs_per_read(), 0);
    }

    #[test]
    fn comm_steps_match_paper() {
        // "Our algorithms use the same number of communication steps as
        // [2], namely 4 for any operation."
        for f in [
            Flavor::persistent(),
            Flavor::transient(),
            Flavor::crash_stop(),
        ] {
            assert_eq!(f.write_comm_steps(), 4, "{}", f.name);
            assert_eq!(f.read_comm_steps(), 4, "{}", f.name);
        }
        // The regular register halves both.
        assert_eq!(Flavor::regular().write_comm_steps(), 2);
        assert_eq!(Flavor::regular().read_comm_steps(), 2);
    }

    #[test]
    fn fast_path_defaults_and_step_counts() {
        // On for the crash-recovery atomic flavors, inert/off elsewhere.
        assert!(Flavor::persistent().read_fast_path);
        assert!(Flavor::transient().read_fast_path);
        assert!(!Flavor::crash_stop().read_fast_path);
        assert!(!Flavor::regular().read_fast_path);
        // The fast path halves the best-case read without moving the
        // worst-case bound.
        for f in [Flavor::persistent(), Flavor::transient()] {
            assert_eq!(f.read_comm_steps(), 4, "{}", f.name);
            assert_eq!(f.fast_read_comm_steps(), 2, "{}", f.name);
            let legacy = f.with_read_fast_path(false);
            assert_eq!(legacy.fast_read_comm_steps(), 4, "{}", f.name);
            assert_eq!(legacy.with_read_fast_path(true), f);
        }
        assert_eq!(Flavor::regular().fast_read_comm_steps(), 2);
        assert_eq!(Flavor::crash_stop().fast_read_comm_steps(), 4);
    }

    #[test]
    fn leasing_is_off_by_default_and_gated_on_the_fast_path() {
        for f in [
            Flavor::persistent(),
            Flavor::transient(),
            Flavor::crash_stop(),
            Flavor::regular(),
        ] {
            assert_eq!(f.lease_micros, 0, "{}", f.name);
            assert!(!f.leases(), "{}", f.name);
        }
        let leased = Flavor::persistent().with_lease(2_000);
        assert!(leased.leases());
        assert_eq!(leased.with_lease(0), Flavor::persistent());
        // A lease term on a flavor without the fast path (or without a
        // write-back to suppress) is inert, not a different algorithm.
        assert!(!Flavor::crash_stop().with_lease(2_000).leases());
        assert!(!Flavor::regular().with_lease(2_000).leases());
        assert!(!leased.with_read_fast_path(false).leases());
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Flavor::persistent().name,
            Flavor::transient().name,
            Flavor::crash_stop().name,
            Flavor::regular().name,
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
