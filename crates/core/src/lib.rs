//! Robust shared-memory emulations for the crash-recovery model.
//!
//! This crate implements the algorithms of Guerraoui & Levy, *Robust
//! Emulations of Shared Memory in a Crash-Recovery Model* (ICDCS 2004):
//! multi-writer/multi-reader atomic register emulations over an
//! asynchronous, fair-lossy message-passing system in which any process may
//! crash, lose its volatile state, and recover with only its stable
//! storage.
//!
//! # The register family
//!
//! | register | criterion | causal logs (write / read) | read rounds (fast path) | pseudocode |
//! |---|---|---|---|---|
//! | [`CrashStop`] | atomicity, crash-stop only | 0 / 0 | 2 (baseline kept unoptimised) | Lynch–Shvartsman-style baseline the paper extends |
//! | [`Persistent`] | **persistent atomicity** | **2 / 1** (reads log-free without write concurrency) | **1** quiescent / 2 contended | Fig. 4 |
//! | [`Transient`] | **transient atomicity** | **1 / 1** | **1** quiescent / 2 contended | Fig. 5 |
//! | [`Regular`] | SWMR regularity (§VI extension) | 1 / 0 | 1 (always single-round) | — |
//!
//! Both crash-recovery emulations match the paper's lower bounds
//! (Theorems 1 and 2) — the counts above are *optimal* — and their worst
//! case uses the same number of communication steps as the crash-stop
//! baseline: two round-trips (4 steps) per operation. The
//! confirmed-timestamp read fast path ([`Flavor::read_fast_path`], on by
//! default for the atomic crash-recovery flavors) halves quiescent reads
//! to one round-trip: the write-back may be skipped **only** when every
//! replier in the read quorum reported the same tag and attested it
//! durable — then a majority stably holds the tag and no later quorum
//! can miss it; any disagreement or volatile tag falls back to the full
//! two-round read.
//!
//! All registers share one quorum-and-replica machinery
//! ([`generic::RegisterAutomaton`]), configured by a [`Flavor`] — exactly
//! how the paper presents Fig. 5 as "the same structure as the algorithm of
//! Fig. 4 but with a few minor changes". The [`ablation`] module exposes
//! deliberately weakened flavors that realise the anomalies from the
//! lower-bound proofs (runs ρ1–ρ4), so tests can demonstrate that each log
//! the paper requires is actually load-bearing.
//!
//! Algorithms are [`rmem_types::Automaton`]s: pure event-driven state
//! machines, runnable unchanged under the deterministic simulator
//! (`rmem-sim`) and the real socket runtime (`rmem-net`).
//!
//! # Example
//!
//! ```
//! use rmem_core::Persistent;
//! use rmem_types::AutomatonFactory;
//!
//! let factory = Persistent::factory();
//! let automaton = factory.fresh(rmem_types::ProcessId(0), 3);
//! assert_eq!(automaton.algorithm(), "persistent");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod flavor;
pub mod generic;
pub mod memory;
pub mod quorum;
pub mod replica;

pub use flavor::{Flavor, RecoveryPolicy};
pub use generic::{FlavorFactory, RegisterAutomaton};
pub use memory::{SharedMemory, SharedMemoryAutomaton};

use rmem_types::Micros;

/// Default retransmission period for unacknowledged quorum rounds.
///
/// 2 ms ≈ 20× the one-way LAN delay — late enough to be quiet on a healthy
/// network, early enough that lost messages only stall an operation
/// briefly.
pub const DEFAULT_RETRANSMIT: Micros = Micros(2_000);

macro_rules! register_front {
    ($(#[$doc:meta])* $name:ident, $flavor:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name;

        impl $name {
            /// The flavor configuring the shared register machinery.
            pub fn flavor() -> Flavor {
                $flavor
            }

            /// An [`rmem_types::AutomatonFactory`] producing this register's
            /// automata with the default retransmission period.
            pub fn factory() -> std::sync::Arc<FlavorFactory> {
                std::sync::Arc::new(FlavorFactory::new(Self::flavor(), DEFAULT_RETRANSMIT))
            }

            /// As [`factory`](Self::factory) with a custom retransmission
            /// period.
            pub fn factory_with_retransmit(retransmit: Micros) -> std::sync::Arc<FlavorFactory> {
                std::sync::Arc::new(FlavorFactory::new(Self::flavor(), retransmit))
            }
        }
    };
}

register_front!(
    /// The **persistent atomic** register (paper Fig. 4).
    ///
    /// Atomicity survives crashes entirely: to every observer the register
    /// behaves as if no process ever failed. Costs the optimal 2 causal
    /// logs per write (the writer's `writing` pre-log, then the replicas'
    /// `written` logs in parallel) and 1 per read (the write-back round's
    /// replica logs — skipped, hence free, when the read is not concurrent
    /// with a write). On recovery a process finishes its interrupted write
    /// before serving again (Fig. 4 lines 40–47).
    Persistent,
    Flavor::persistent()
);

register_front!(
    /// The **transient atomic** register (paper Fig. 5).
    ///
    /// One causal log per write — the writer broadcasts immediately and
    /// only the replicas log. The price (§III-C): if a writer crashes
    /// mid-write and writes again after recovering, the unfinished write
    /// may appear to overlap the new one. A stable recovery counter folded
    /// into sequence numbers (Fig. 5 line 11) keeps timestamps
    /// monotone across the writer's crashes.
    Transient,
    Flavor::transient()
);

register_front!(
    /// The crash-stop atomic register baseline (no logging at all).
    ///
    /// The multi-writer algorithm of Lynch & Shvartsman the paper builds
    /// on, included to isolate the cost of logging exactly as the paper's
    /// first experiment does. Under crashes it loses written values — the
    /// point of the comparison.
    CrashStop,
    Flavor::crash_stop()
);

register_front!(
    /// A single-writer **regular** register for the crash-recovery model
    /// (the §VI discussion made concrete).
    ///
    /// Writes cost 1 causal log and one round-trip (the single writer
    /// needs no query round); reads are one round-trip and never log —
    /// permitted because regularity tolerates new-old inversions. The §VI
    /// punchline is measurable with it: when logging dominates cost,
    /// regular memory saves *nothing* over transient atomic memory on
    /// writes, and transient reads are already log-free absent
    /// concurrency.
    Regular,
    Flavor::regular()
);
