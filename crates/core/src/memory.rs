//! Multi-register shared memory: the paper's title abstraction.
//!
//! The algorithms of Figs. 4–5 emulate one register. A *shared memory* is
//! an addressable array of them, and the emulations compose perfectly:
//! each register runs its own independent instance of the algorithm
//! (quorums, timestamps and logs per register), and by the **locality** of
//! linearizability the composed memory satisfies the criterion iff every
//! register does — which is exactly how the checkers certify it
//! (`rmem_consistency` partitions multi-register histories).
//!
//! [`SharedMemoryAutomaton`] hosts one [`RegisterAutomaton`] per
//! [`RegisterId`], created lazily on first use, and routes by:
//!
//! * the register address of invocations ([`rmem_types::Op::ReadAt`]/[`rmem_types::Op::WriteAt`]);
//! * the `reg` component of [`rmem_types::RequestId`]s on the wire;
//! * a namespace bit-field in store/timer tokens;
//! * a `@r<id>` suffix on stable-storage slot names.
//!
//! The inner automatons are entirely unaware of each other — the wrapper
//! rewrites these four coordinates at the boundary, so the single-register
//! implementation stays exactly the paper's algorithm.

use std::collections::BTreeMap;

use bytes::Bytes;
use rmem_types::{
    Action, Automaton, AutomatonFactory, Input, Message, Micros, ProcessId, RegisterId,
    StableSnapshot, StoreToken, TimerToken,
};

use crate::flavor::Flavor;
use crate::generic::RegisterAutomaton;

/// Bits reserved for the per-register token counter; the register id
/// lives above them.
const TOKEN_BITS: u32 = 40;
const TOKEN_MASK: u64 = (1 << TOKEN_BITS) - 1;

fn scope_token(reg: RegisterId, token: u64) -> u64 {
    debug_assert!(token <= TOKEN_MASK, "inner token overflow");
    ((reg.0 as u64) << TOKEN_BITS) | token
}

fn unscope_token(token: u64) -> (RegisterId, u64) {
    (RegisterId((token >> TOKEN_BITS) as u16), token & TOKEN_MASK)
}

/// Scopes a stable-slot name to a register. Register 0 keeps the bare
/// paper names, so a single-register deployment's storage is readable by
/// both the plain and the memory automaton.
fn scope_key(reg: RegisterId, key: &str) -> String {
    if reg == RegisterId::ZERO {
        key.to_string()
    } else {
        format!("{key}@r{}", reg.0)
    }
}

/// Extracts the register a scoped slot name belongs to.
fn key_register(key: &str) -> RegisterId {
    match key.rsplit_once("@r") {
        Some((_, reg)) => reg.parse().map(RegisterId).unwrap_or(RegisterId::ZERO),
        None => RegisterId::ZERO,
    }
}

/// A read-only view of one register's slice of a stable snapshot,
/// presenting scoped slot names under their bare paper names.
struct ScopedSnapshot<'a> {
    reg: RegisterId,
    inner: &'a dyn StableSnapshot,
}

impl StableSnapshot for ScopedSnapshot<'_> {
    fn get(&self, key: &str) -> Option<Bytes> {
        self.inner.get(&scope_key(self.reg, key))
    }
}

/// The multi-register shared-memory automaton (see module docs).
pub struct SharedMemoryAutomaton {
    me: ProcessId,
    n: usize,
    flavor: Flavor,
    retransmit: Micros,
    /// `None` for a fresh boot; `Some(incarnation)` for a recovered one —
    /// registers created lazily after recovery also get crash-safe
    /// construction (disjoint nonces, recovery bookkeeping).
    incarnation: Option<u64>,
    registers: BTreeMap<RegisterId, RegisterAutomaton>,
    started: bool,
}

impl std::fmt::Debug for SharedMemoryAutomaton {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMemoryAutomaton")
            .field("me", &self.me)
            .field("flavor", &self.flavor.name)
            .field("registers", &self.registers.len())
            .finish()
    }
}

impl SharedMemoryAutomaton {
    /// Builds a fresh shared memory (no registers yet; they appear on
    /// first use).
    pub fn fresh(me: ProcessId, n: usize, flavor: Flavor, retransmit: Micros) -> Self {
        SharedMemoryAutomaton {
            me,
            n,
            flavor,
            retransmit,
            incarnation: None,
            registers: BTreeMap::new(),
            started: false,
        }
    }

    /// Rebuilds a shared memory from a stable snapshot: every register
    /// with stable state is recovered eagerly (it must re-run its
    /// recovery procedure before serving).
    pub fn recovered(
        me: ProcessId,
        n: usize,
        flavor: Flavor,
        retransmit: Micros,
        incarnation: u64,
        stable: &dyn StableSnapshot,
    ) -> Self {
        let mut regs: std::collections::BTreeSet<RegisterId> = std::collections::BTreeSet::new();
        for key in stable.keys() {
            if !key.starts_with('_') {
                regs.insert(key_register(&key));
            }
        }
        let registers = regs
            .into_iter()
            .map(|reg| {
                let scoped = ScopedSnapshot { reg, inner: stable };
                let inner =
                    RegisterAutomaton::recovered(me, n, flavor, retransmit, incarnation, &scoped);
                (reg, inner)
            })
            .collect();
        SharedMemoryAutomaton {
            me,
            n,
            flavor,
            retransmit,
            incarnation: Some(incarnation),
            registers,
            started: false,
        }
    }

    /// Number of instantiated registers.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// Translates one inner action into the outer coordinate space.
    fn translate_out(reg: RegisterId, action: Action) -> Action {
        match action {
            Action::Send { to, msg } => Action::Send {
                to,
                msg: readdress(msg, reg),
            },
            Action::Store { token, key, bytes } => Action::Store {
                token: StoreToken(scope_token(reg, token.0)),
                key: scope_key(reg, &key),
                bytes,
            },
            Action::SetTimer { token, after } => Action::SetTimer {
                token: TimerToken(scope_token(reg, token.0)),
                after,
            },
            complete @ Action::Complete { .. } => complete,
        }
    }

    /// Feeds `input` to the register automaton for `reg`, creating it if
    /// this is the register's first appearance, and translates the
    /// resulting actions.
    fn feed(&mut self, reg: RegisterId, input: Input, out: &mut Vec<Action>) {
        if !self.registers.contains_key(&reg) {
            let mut inner = match self.incarnation {
                None => RegisterAutomaton::fresh(self.me, self.n, self.flavor, self.retransmit),
                // A register first seen after a crash may have had
                // volatile-only state before it; crash-safe construction
                // (recovery procedure against an empty snapshot) covers
                // the transient algorithm's rec counter and keeps nonce
                // ranges disjoint.
                Some(inc) => RegisterAutomaton::recovered(
                    self.me,
                    self.n,
                    self.flavor,
                    self.retransmit,
                    inc,
                    &rmem_types::EmptySnapshot,
                ),
            };
            if self.started {
                let mut boot = Vec::new();
                inner.on_input(Input::Start, &mut boot);
                out.extend(boot.into_iter().map(|a| Self::translate_out(reg, a)));
            }
            self.registers.insert(reg, inner);
        }
        let inner = self.registers.get_mut(&reg).expect("just ensured");
        let mut actions = Vec::new();
        inner.on_input(input, &mut actions);
        out.extend(actions.into_iter().map(|a| Self::translate_out(reg, a)));
    }
}

/// Rewrites the request id's register component of a message.
fn readdress(msg: Message, reg: RegisterId) -> Message {
    match msg {
        Message::SnReq { req } => Message::SnReq {
            req: req.with_register(reg),
        },
        Message::SnAck { req, seq } => Message::SnAck {
            req: req.with_register(reg),
            seq,
        },
        Message::Write { req, ts, value } => Message::Write {
            req: req.with_register(reg),
            ts,
            value,
        },
        Message::WriteAck { req } => Message::WriteAck {
            req: req.with_register(reg),
        },
        Message::Read { req } => Message::Read {
            req: req.with_register(reg),
        },
        Message::ReadAck {
            req,
            ts,
            value,
            durable,
            grant,
        } => Message::ReadAck {
            req: req.with_register(reg),
            ts,
            value,
            durable,
            grant,
        },
    }
}

impl Automaton for SharedMemoryAutomaton {
    fn on_input(&mut self, input: Input, out: &mut Vec<Action>) {
        match input {
            Input::Start => {
                self.started = true;
                let regs: Vec<RegisterId> = self.registers.keys().copied().collect();
                for reg in regs {
                    self.feed(reg, Input::Start, out);
                }
            }
            Input::Invoke { op, operation } => {
                let reg = operation.register();
                let normalized = operation.normalized();
                self.feed(
                    reg,
                    Input::Invoke {
                        op,
                        operation: normalized,
                    },
                    out,
                );
            }
            Input::Message { from, msg } => {
                let reg = msg.request_id().reg;
                let inner_msg = readdress(msg, RegisterId::ZERO);
                self.feed(
                    reg,
                    Input::Message {
                        from,
                        msg: inner_msg,
                    },
                    out,
                );
            }
            Input::StoreDone(token) => {
                let (reg, inner) = unscope_token(token.0);
                if self.registers.contains_key(&reg) {
                    self.feed(reg, Input::StoreDone(StoreToken(inner)), out);
                }
            }
            Input::Timer(token) => {
                let (reg, inner) = unscope_token(token.0);
                if self.registers.contains_key(&reg) {
                    self.feed(reg, Input::Timer(TimerToken(inner)), out);
                }
            }
        }
    }

    fn is_ready(&self) -> bool {
        self.registers.values().all(|r| r.is_ready())
    }

    fn algorithm(&self) -> &'static str {
        memory_name(self.flavor)
    }
}

fn memory_name(flavor: Flavor) -> &'static str {
    match flavor.name {
        "persistent" => "persistent-memory",
        "transient" => "transient-memory",
        "crash-stop" => "crash-stop-memory",
        "regular" => "regular-memory",
        _ => "memory",
    }
}

/// Factory for shared-memory automata of one flavor.
///
/// # Example
///
/// ```
/// use rmem_core::{SharedMemory, Transient};
/// use rmem_types::AutomatonFactory;
///
/// let factory = SharedMemory::factory(Transient::flavor());
/// let memory = factory.fresh(rmem_types::ProcessId(0), 3);
/// assert_eq!(memory.algorithm(), "transient-memory");
/// ```
#[derive(Debug, Clone)]
pub struct SharedMemory {
    flavor: Flavor,
    retransmit: Micros,
}

impl SharedMemory {
    /// A factory producing shared memories running `flavor` per register,
    /// with the default retransmission period.
    pub fn factory(flavor: Flavor) -> std::sync::Arc<SharedMemory> {
        std::sync::Arc::new(SharedMemory {
            flavor,
            retransmit: crate::DEFAULT_RETRANSMIT,
        })
    }

    /// As [`factory`](Self::factory) with a custom retransmission period.
    pub fn factory_with_retransmit(
        flavor: Flavor,
        retransmit: Micros,
    ) -> std::sync::Arc<SharedMemory> {
        std::sync::Arc::new(SharedMemory { flavor, retransmit })
    }

    /// The per-register flavor.
    pub fn flavor(&self) -> Flavor {
        self.flavor
    }
}

impl AutomatonFactory for SharedMemory {
    fn fresh(&self, me: ProcessId, n: usize) -> Box<dyn Automaton> {
        Box::new(SharedMemoryAutomaton::fresh(
            me,
            n,
            self.flavor,
            self.retransmit,
        ))
    }

    fn recover(
        &self,
        me: ProcessId,
        n: usize,
        incarnation: u64,
        stable: &dyn StableSnapshot,
    ) -> Box<dyn Automaton> {
        Box::new(SharedMemoryAutomaton::recovered(
            me,
            n,
            self.flavor,
            self.retransmit,
            incarnation,
            stable,
        ))
    }

    fn algorithm(&self) -> &'static str {
        memory_name(self.flavor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_types::{Op, OpId, OpResult, Value};

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    fn r(i: u16) -> RegisterId {
        RegisterId(i)
    }

    #[test]
    fn token_scoping_roundtrips() {
        for reg in [0u16, 1, 7, 65535] {
            for token in [0u64, 1, TOKEN_MASK] {
                let scoped = scope_token(r(reg), token);
                assert_eq!(unscope_token(scoped), (r(reg), token));
            }
        }
    }

    #[test]
    fn key_scoping_roundtrips_and_register_zero_is_bare() {
        assert_eq!(scope_key(r(0), "written"), "written");
        assert_eq!(scope_key(r(3), "written"), "written@r3");
        assert_eq!(key_register("written"), r(0));
        assert_eq!(key_register("written@r3"), r(3));
        assert_eq!(key_register("recovered@r12"), r(12));
    }

    #[test]
    fn invocations_create_registers_lazily() {
        let mut mem = SharedMemoryAutomaton::fresh(p(0), 3, Flavor::transient(), Micros(1_000));
        let mut out = Vec::new();
        mem.on_input(Input::Start, &mut out);
        assert_eq!(mem.register_count(), 0);
        mem.on_input(
            Input::Invoke {
                op: OpId::new(p(0), 0),
                operation: Op::WriteAt(r(5), Value::from_u32(1)),
            },
            &mut out,
        );
        assert_eq!(mem.register_count(), 1);
        // The broadcast carries the register in its request ids.
        let send_regs: Vec<RegisterId> = out
            .iter()
            .filter_map(|a| match a {
                Action::Send { msg, .. } => Some(msg.request_id().reg),
                _ => None,
            })
            .collect();
        assert!(!send_regs.is_empty());
        assert!(send_regs.iter().all(|reg| *reg == r(5)), "{send_regs:?}");
    }

    #[test]
    fn stores_are_scoped_per_register() {
        let mut mem = SharedMemoryAutomaton::fresh(p(0), 1, Flavor::transient(), Micros(1_000));
        let mut out = Vec::new();
        mem.on_input(Input::Start, &mut out);
        out.clear();
        // n=1: the write self-completes; drive the whole exchange by
        // feeding back our own sends and store completions.
        mem.on_input(
            Input::Invoke {
                op: OpId::new(p(0), 0),
                operation: Op::WriteAt(r(2), Value::from_u32(9)),
            },
            &mut out,
        );
        let mut store_keys = Vec::new();
        let mut i = 0;
        // Run the action loop to quiescence (self-delivery).
        while i < out.len() {
            let action = out[i].clone();
            i += 1;
            match action {
                Action::Send { to, msg } if to == p(0) => {
                    let mut more = Vec::new();
                    mem.on_input(Input::Message { from: p(0), msg }, &mut more);
                    out.extend(more);
                }
                Action::Store { token, key, .. } => {
                    store_keys.push(key.clone());
                    let mut more = Vec::new();
                    mem.on_input(Input::StoreDone(token), &mut more);
                    out.extend(more);
                }
                _ => {}
            }
        }
        assert!(
            store_keys.iter().any(|k| k.ends_with("@r2")),
            "stores must be scoped: {store_keys:?}"
        );
        assert!(
            out.iter().any(|a| matches!(
                a,
                Action::Complete {
                    result: OpResult::Written,
                    ..
                }
            )),
            "the single-process write must complete: {out:?}"
        );
    }

    #[test]
    fn recovery_rediscovers_registers_from_scoped_keys() {
        let mut stable = std::collections::HashMap::new();
        let record = rmem_storage::records::WrittenRecord {
            ts: rmem_types::Timestamp::new(4, p(0)),
            value: Value::from_u32(44),
        };
        stable.insert("written".to_string(), record.encode()); // register 0
        stable.insert("written@r9".to_string(), record.encode()); // register 9
        stable.insert("_boot_count".to_string(), Bytes::from_static(b"x")); // infra: ignored
        let mem = SharedMemoryAutomaton::recovered(
            p(0),
            3,
            Flavor::transient(),
            Micros(1_000),
            1,
            &stable,
        );
        assert_eq!(mem.register_count(), 2);
    }

    #[test]
    fn ready_only_when_all_registers_recovered() {
        let mut stable = std::collections::HashMap::new();
        let record = rmem_storage::records::WrittenRecord {
            ts: rmem_types::Timestamp::new(4, p(0)),
            value: Value::from_u32(44),
        };
        stable.insert("written@r1".to_string(), record.encode());
        let mut mem = SharedMemoryAutomaton::recovered(
            p(0),
            3,
            Flavor::transient(),
            Micros(1_000),
            1,
            &stable,
        );
        let mut out = Vec::new();
        mem.on_input(Input::Start, &mut out);
        // Transient recovery stores its rec counter before readiness.
        assert!(!mem.is_ready());
        let token = out
            .iter()
            .find_map(|a| match a {
                Action::Store { token, key, .. } if key.starts_with("recovered") => Some(*token),
                _ => None,
            })
            .expect("rec-counter store");
        out.clear();
        mem.on_input(Input::StoreDone(token), &mut out);
        assert!(mem.is_ready());
    }
}
