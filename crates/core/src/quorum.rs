//! Majority-acknowledgement tracking for one broadcast round.

use std::collections::HashSet;

use rmem_types::{ProcessId, RequestId};

/// Tracks which processes have acknowledged one request round and whether
/// the majority threshold has been reached.
///
/// Acks are deduplicated by sender (the fair-lossy network may duplicate
/// messages, and retransmitted rounds re-solicit every replica), so the
/// count is of *distinct* responders — the paper's
/// "until receive … from ⌈(n+1)/2⌉ processes".
#[derive(Debug, Clone)]
pub struct QuorumCall {
    req: RequestId,
    acked: HashSet<ProcessId>,
    threshold: usize,
    reached: bool,
}

impl QuorumCall {
    /// Starts tracking a round identified by `req`, needing `threshold`
    /// distinct acks.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(req: RequestId, threshold: usize) -> Self {
        assert!(threshold > 0, "a quorum threshold must be positive");
        QuorumCall {
            req,
            acked: HashSet::new(),
            threshold,
            reached: false,
        }
    }

    /// The round this call tracks.
    pub fn request_id(&self) -> RequestId {
        self.req
    }

    /// Whether `req` belongs to this round.
    pub fn matches(&self, req: RequestId) -> bool {
        self.req == req
    }

    /// Records an ack from `from`. Returns `true` exactly once: when the
    /// threshold is first reached.
    pub fn record(&mut self, from: ProcessId) -> bool {
        if self.reached {
            return false;
        }
        self.acked.insert(from);
        if self.acked.len() >= self.threshold {
            self.reached = true;
            return true;
        }
        false
    }

    /// Distinct responders so far.
    pub fn ack_count(&self) -> usize {
        self.acked.len()
    }

    /// Whether the threshold has been reached.
    pub fn is_reached(&self) -> bool {
        self.reached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> RequestId {
        RequestId::new(ProcessId(0), 1)
    }

    #[test]
    fn reaches_threshold_exactly_once() {
        let mut q = QuorumCall::new(req(), 3);
        assert!(!q.record(ProcessId(0)));
        assert!(!q.record(ProcessId(1)));
        assert!(
            q.record(ProcessId(2)),
            "third distinct ack reaches the threshold"
        );
        assert!(!q.record(ProcessId(3)), "later acks do not re-trigger");
        assert!(q.is_reached());
    }

    #[test]
    fn duplicate_acks_do_not_count() {
        let mut q = QuorumCall::new(req(), 2);
        assert!(!q.record(ProcessId(1)));
        assert!(!q.record(ProcessId(1)));
        assert!(!q.record(ProcessId(1)));
        assert_eq!(q.ack_count(), 1);
        assert!(q.record(ProcessId(2)));
    }

    #[test]
    fn matches_filters_stale_rounds() {
        let q = QuorumCall::new(req(), 1);
        assert!(q.matches(req()));
        assert!(!q.matches(RequestId::new(ProcessId(0), 2)));
        assert!(!q.matches(RequestId::new(ProcessId(1), 1)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_panics() {
        let _ = QuorumCall::new(req(), 0);
    }
}
