//! The replica (listener) role every process plays, independent of any
//! operation it may itself be running.
//!
//! Mirrors the message listeners of Fig. 4 lines 17–30: answer
//! sequence-number queries, answer read queries, and adopt propagated
//! values — logging them *before* acknowledging when the flavor logs.
//!
//! # The durable-ack discipline
//!
//! A logging replica may only acknowledge a `Write` once a record with a
//! tag ≥ the message's tag is **durably stored** (Fig. 4 line 24–26: store,
//! *then* ack). Volatile adoption happens immediately, but the ack is
//! parked in a waiter list keyed by tag until the covering store
//! completes. This matters under retransmission: a duplicate `Write`
//! arriving while the original's store is still in flight must *not* be
//! acknowledged early, or the writer could assemble a majority of acks
//! none of which is actually durable — exactly the forgotten-value anomaly
//! the log exists to prevent.
//!
//! # The lease-fence discipline
//!
//! Under a leasing flavor ([`Flavor::with_lease`](crate::Flavor::with_lease))
//! the replica extends the same parking idea to **tag leases**: every
//! durable read ack carries a grant of `lease_micros` µs, and while any
//! grant's horizon is still open the replica *withholds* the
//! acknowledgement of any write whose tag is newer than the minimum
//! granted tag — even if that write is already durable here. A write can
//! therefore only assemble its quorum after every lease its new value
//! could invalidate has provably expired (the write quorum intersects the
//! lease's read quorum, and the intersection replica holds its ack for at
//! least the full grant term measured from *after* it saw the read
//! request, while the client's lease dies at its *pre-send* stamp plus
//! the grant). The same fence gates the read side: a tag newer than the
//! minimum granted tag is reported non-durable, so no fast-path read can
//! return the new value while an older lease may still be serving — the
//! write-back those reads fall back to parks behind the same barrier.
//!
//! Grant bookkeeping is O(1): a monotone issue counter, an expiry
//! counter advanced by at most one outstanding horizon timer, and the
//! minimum granted tag (reset when every grant has expired). The fence
//! is therefore conservative — it may hold a write up to ~2 lease terms
//! — but it never blocks forever: expiry is timer-driven.

use std::collections::HashMap;

use rmem_storage::records::{WrittenRecord, KEY_WRITTEN};
use rmem_types::{
    Action, Message, Micros, ProcessId, RequestId, StoreToken, TimerToken, Timestamp, Value,
};

/// A write acknowledgement parked until its release conditions hold.
#[derive(Debug)]
struct Waiter {
    to: ProcessId,
    req: RequestId,
    /// Durability condition: ack only once the stable `written` record
    /// covers this tag (`None` = already satisfied when parked).
    need: Option<Timestamp>,
    /// Lease condition: ack only once this many grants have expired
    /// (`0` = no lease fence).
    barrier: u64,
}

/// Replica state and behaviour.
#[derive(Debug)]
pub struct Replica {
    me: ProcessId,
    /// Current (volatile) tag.
    ts: Timestamp,
    /// Current (volatile) value.
    value: Value,
    /// Whether adoptions are logged before acknowledging.
    logging: bool,
    /// Tag-lease term granted on durable read acks (0 = no leasing).
    lease_micros: u64,
    /// Highest tag known durable in the `written` slot.
    durable_ts: Timestamp,
    /// Stores in flight: token → the tag that becomes durable when it
    /// completes.
    pending_stores: HashMap<StoreToken, Timestamp>,
    /// Acks parked until a covering tag is durable and/or the lease
    /// fence opens.
    waiters: Vec<Waiter>,
    /// Grants issued so far (monotone across the incarnation).
    grants_issued: u64,
    /// Grants whose hold horizon has passed.
    grants_expired: u64,
    /// The single outstanding horizon timer, with the issue count it
    /// covers when it fires.
    lease_timer: Option<(TimerToken, u64)>,
    /// Minimum tag among grants issued since the last full quiescence
    /// (`None` once every grant expired). Writes strictly above it are
    /// fenced; reads strictly above it are reported non-durable.
    min_granted_ts: Option<Timestamp>,
}

impl Replica {
    /// A fresh replica holding `[0, me] / ⊥`.
    pub fn new(me: ProcessId, logging: bool) -> Self {
        Replica {
            me,
            ts: Timestamp::new(0, me),
            value: Value::bottom(),
            logging,
            lease_micros: 0,
            durable_ts: Timestamp::new(0, me),
            pending_stores: HashMap::new(),
            waiters: Vec::new(),
            grants_issued: 0,
            grants_expired: 0,
            lease_timer: None,
            min_granted_ts: None,
        }
    }

    /// This replica granting tag leases of `micros` µs on durable read
    /// acks (0 leaves leasing off).
    pub fn with_lease(mut self, micros: u64) -> Self {
        self.lease_micros = micros;
        self
    }

    /// A replica restored from its `written` record (recovery, Fig. 4
    /// lines 41–42).
    pub fn restored(me: ProcessId, logging: bool, record: &WrittenRecord) -> Self {
        Replica {
            ts: record.ts,
            value: record.value.clone(),
            durable_ts: record.ts,
            ..Replica::new(me, logging)
        }
    }

    /// Current tag (volatile).
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }

    /// Current value (volatile).
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// How long the replica holds fenced write acks per grant: the full
    /// advertised term plus 25% slack, so a client lease (clocked from
    /// its pre-send stamp) dies comfortably before any fenced ack is
    /// released, even across modest clock-rate or delivery jitter.
    fn hold_micros(&self) -> u64 {
        self.lease_micros + self.lease_micros / 4
    }

    /// Whether `ts` is fenced behind outstanding lease grants.
    fn lease_fenced(&self, ts: Timestamp) -> bool {
        self.min_granted_ts.is_some_and(|min| ts > min)
    }

    /// Issues one grant on the current tag, arming the horizon timer if
    /// none is pending. Returns the grant to advertise, in µs.
    fn issue_grant(&mut self, next_token: &mut impl FnMut() -> u64, out: &mut Vec<Action>) -> u32 {
        self.grants_issued += 1;
        self.min_granted_ts = Some(match self.min_granted_ts {
            Some(min) if min <= self.ts => min,
            _ => self.ts,
        });
        if self.lease_timer.is_none() {
            let token = TimerToken(next_token());
            self.lease_timer = Some((token, self.grants_issued));
            out.push(Action::SetTimer {
                token,
                after: Micros(self.hold_micros()),
            });
        }
        u32::try_from(self.lease_micros).unwrap_or(u32::MAX)
    }

    /// Releases every parked ack whose durability and lease conditions
    /// both hold.
    fn release_ready(&mut self, out: &mut Vec<Action>) {
        let durable = self.durable_ts;
        let logging = self.logging;
        let expired = self.grants_expired;
        let (ready, parked): (Vec<_>, Vec<_>) = self.waiters.drain(..).partition(|w| {
            w.need.is_none_or(|need| !logging || need <= durable) && w.barrier <= expired
        });
        self.waiters = parked;
        for w in ready {
            out.push(Action::Send {
                to: w.to,
                msg: Message::WriteAck { req: w.req },
            });
        }
    }

    /// Handles a protocol *request* aimed at the replica role. Returns
    /// `true` if the message was consumed (acks return `false` — they
    /// belong to whatever operation the process is running).
    pub fn on_message(
        &mut self,
        from: ProcessId,
        msg: &Message,
        next_token: &mut impl FnMut() -> u64,
        out: &mut Vec<Action>,
    ) -> bool {
        match msg {
            Message::SnReq { req } => {
                // Fig. 4 lines 18–20.
                out.push(Action::Send {
                    to: from,
                    msg: Message::SnAck {
                        req: *req,
                        seq: self.ts.seq,
                    },
                });
                true
            }
            Message::Read { req } => {
                // Fig. 4 lines 28–30, plus the durability attestation the
                // reader's fast path gates on: the reported tag is durable
                // when the stable `written` record covers it. A
                // non-logging replica's volatile state is as stable as its
                // (crash-stop) model gets, so it always attests. A tag
                // still fenced behind outstanding lease grants is reported
                // non-durable even when stored: returning it through the
                // fast path while an older lease may serve would invert
                // the read order.
                let durable =
                    (!self.logging || self.ts <= self.durable_ts) && !self.lease_fenced(self.ts);
                let grant = if durable && self.lease_micros > 0 {
                    self.issue_grant(next_token, out)
                } else {
                    0
                };
                out.push(Action::Send {
                    to: from,
                    msg: Message::ReadAck {
                        req: *req,
                        ts: self.ts,
                        value: self.value.clone(),
                        durable,
                        grant,
                    },
                });
                true
            }
            Message::Write { req, ts, value } => {
                // Fig. 4 lines 21–27.
                if *ts > self.ts {
                    self.ts = *ts;
                    self.value = value.clone();
                }
                // The lease fence: a write newer than the minimum granted
                // tag may not be acknowledged until every grant issued so
                // far has expired (writes at or below the minimum granted
                // tag cannot invalidate any lease — the leased value is
                // at least as new).
                let barrier = if self.lease_fenced(*ts) {
                    self.grants_issued
                } else {
                    0
                };
                let durability_ok = !self.logging || *ts <= self.durable_ts;
                if durability_ok && barrier <= self.grants_expired {
                    out.push(Action::Send {
                        to: from,
                        msg: Message::WriteAck { req: *req },
                    });
                    return true;
                }
                // Need durability first. Issue a store for the *current*
                // volatile state if none in flight covers it; park the ack.
                if !durability_ok {
                    let covered_by_pending = self
                        .pending_stores
                        .values()
                        .any(|pending| *pending >= self.ts);
                    if !covered_by_pending {
                        let token = StoreToken(next_token());
                        let record = WrittenRecord {
                            ts: self.ts,
                            value: self.value.clone(),
                        };
                        self.pending_stores.insert(token, self.ts);
                        out.push(Action::Store {
                            token,
                            key: KEY_WRITTEN.to_string(),
                            bytes: record.encode(),
                        });
                    }
                }
                self.waiters.push(Waiter {
                    to: from,
                    req: *req,
                    need: (!durability_ok).then_some(*ts),
                    barrier,
                });
                true
            }
            _ => false,
        }
    }

    /// Handles a store completion. Returns `true` if the token belonged to
    /// the replica role (parked acks may be released).
    pub fn on_store_done(&mut self, token: StoreToken, out: &mut Vec<Action>) -> bool {
        let Some(stored_ts) = self.pending_stores.remove(&token) else {
            return false;
        };
        if stored_ts > self.durable_ts {
            self.durable_ts = stored_ts;
        }
        self.release_ready(out);
        true
    }

    /// Handles a timer firing. Returns `true` if the token was the
    /// replica's lease-horizon timer (grants expired, fenced acks may be
    /// released).
    pub fn on_timer(
        &mut self,
        token: TimerToken,
        next_token: &mut impl FnMut() -> u64,
        out: &mut Vec<Action>,
    ) -> bool {
        let Some((pending, covers)) = self.lease_timer else {
            return false;
        };
        if token != pending {
            return false;
        }
        self.grants_expired = covers;
        if self.grants_issued > self.grants_expired {
            // Grants arrived while the horizon ran: cover them with one
            // more full hold (conservative — a grant never expires early).
            let fresh = TimerToken(next_token());
            self.lease_timer = Some((fresh, self.grants_issued));
            out.push(Action::SetTimer {
                token: fresh,
                after: Micros(self.hold_micros()),
            });
        } else {
            self.lease_timer = None;
            self.min_granted_ts = None;
        }
        self.release_ready(out);
        true
    }

    /// Arms the post-recovery boot hold: a recovered replica cannot know
    /// which grants its previous incarnation issued, so for one full
    /// hold term it fences *every* write ack as if a grant on the lowest
    /// possible tag were outstanding. Call once on recovery of a leasing
    /// flavor, before serving.
    pub fn boot_hold(&mut self, next_token: &mut impl FnMut() -> u64, out: &mut Vec<Action>) {
        if self.lease_micros == 0 {
            return;
        }
        self.grants_issued += 1;
        self.min_granted_ts = Some(Timestamp::ZERO);
        if self.lease_timer.is_none() {
            let token = TimerToken(next_token());
            self.lease_timer = Some((token, self.grants_issued));
            out.push(Action::SetTimer {
                token,
                after: Micros(self.hold_micros()),
            });
        }
    }

    /// The initialisation stores of a fresh boot (Fig. 4 line 4): the
    /// initial `written` record. Not ack-gated.
    pub fn initial_store(&mut self, next_token: &mut impl FnMut() -> u64, out: &mut Vec<Action>) {
        if self.logging {
            let token = StoreToken(next_token());
            let record = WrittenRecord::initial(self.me);
            self.pending_stores.insert(token, record.ts);
            out.push(Action::Store {
                token,
                key: KEY_WRITTEN.to_string(),
                bytes: record.encode(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token_gen() -> (impl FnMut() -> u64, std::rc::Rc<std::cell::Cell<u64>>) {
        let counter = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let c2 = counter.clone();
        (
            move || {
                let t = c2.get();
                c2.set(t + 1);
                t
            },
            counter,
        )
    }

    fn write_msg(seq: u64, pid: u16, v: u32, nonce: u64) -> Message {
        Message::Write {
            req: RequestId::new(ProcessId(pid), nonce),
            ts: Timestamp::new(seq, ProcessId(pid)),
            value: Value::from_u32(v),
        }
    }

    #[test]
    fn sn_and_read_queries_answer_immediately() {
        let mut r = Replica::new(ProcessId(1), true);
        let (mut gen, _) = token_gen();
        let mut out = Vec::new();
        let req = RequestId::new(ProcessId(0), 5);
        assert!(r.on_message(ProcessId(0), &Message::SnReq { req }, &mut gen, &mut out));
        assert!(r.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out));
        assert_eq!(out.len(), 2);
        assert!(matches!(
            out[0],
            Action::Send {
                msg: Message::SnAck { seq: 0, .. },
                ..
            }
        ));
        assert!(matches!(
            out[1],
            Action::Send {
                msg: Message::ReadAck { .. },
                ..
            }
        ));
    }

    #[test]
    fn non_logging_replica_acks_immediately() {
        let mut r = Replica::new(ProcessId(1), false);
        let (mut gen, _) = token_gen();
        let mut out = Vec::new();
        r.on_message(ProcessId(0), &write_msg(1, 0, 7, 1), &mut gen, &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            Action::Send {
                msg: Message::WriteAck { .. },
                ..
            }
        ));
        assert_eq!(r.timestamp().seq, 1);
        assert_eq!(r.value().as_u32(), Some(7));
    }

    #[test]
    fn logging_replica_defers_ack_until_store_done() {
        let mut r = Replica::new(ProcessId(1), true);
        let (mut gen, _) = token_gen();
        let mut out = Vec::new();
        r.on_message(ProcessId(0), &write_msg(1, 0, 7, 1), &mut gen, &mut out);
        // A store, but no ack yet.
        assert_eq!(out.len(), 1);
        let Action::Store { token, key, .. } = out[0].clone() else {
            panic!("expected a store, got {:?}", out[0])
        };
        assert_eq!(key, KEY_WRITTEN);
        out.clear();
        assert!(r.on_store_done(token, &mut out));
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            Action::Send {
                msg: Message::WriteAck { .. },
                ..
            }
        ));
    }

    #[test]
    fn read_acks_attest_durability_truthfully() {
        let mut r = Replica::new(ProcessId(1), true);
        let (mut gen, _) = token_gen();
        let mut out = Vec::new();
        let req = RequestId::new(ProcessId(0), 5);
        // Fresh replica: the initial tag counts as durable (covered by
        // the initial `written` record's tag).
        r.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out);
        assert!(matches!(
            out[0],
            Action::Send {
                msg: Message::ReadAck { durable: true, .. },
                ..
            }
        ));
        out.clear();
        // A newly adopted value is volatile until its store completes:
        // the ack must say so, or the reader's fast path would trust a
        // tag a total crash could forget.
        r.on_message(ProcessId(0), &write_msg(3, 0, 9, 7), &mut gen, &mut out);
        let Action::Store { token, .. } = out[0].clone() else {
            panic!("expected the adoption store, got {:?}", out[0]);
        };
        out.clear();
        r.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out);
        assert!(matches!(
            out[0],
            Action::Send {
                msg: Message::ReadAck { durable: false, .. },
                ..
            }
        ));
        out.clear();
        r.on_store_done(token, &mut out);
        out.clear();
        r.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out);
        assert!(matches!(
            out[0],
            Action::Send {
                msg: Message::ReadAck { durable: true, .. },
                ..
            }
        ));
        // Non-logging replicas always attest: volatile is as stable as
        // the crash-stop model gets.
        let mut cs = Replica::new(ProcessId(2), false);
        let mut out2 = Vec::new();
        cs.on_message(ProcessId(0), &write_msg(3, 0, 9, 8), &mut gen, &mut out2);
        out2.clear();
        cs.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out2);
        assert!(matches!(
            out2[0],
            Action::Send {
                msg: Message::ReadAck { durable: true, .. },
                ..
            }
        ));
    }

    #[test]
    fn duplicate_write_is_not_acked_before_durability() {
        let mut r = Replica::new(ProcessId(1), true);
        let (mut gen, _) = token_gen();
        let mut out = Vec::new();
        r.on_message(ProcessId(0), &write_msg(1, 0, 7, 1), &mut gen, &mut out);
        let Action::Store { token, .. } = out[0].clone() else {
            panic!()
        };
        out.clear();
        // Retransmission of the same write arrives before the store
        // completes: no ack, and no second store either.
        r.on_message(ProcessId(0), &write_msg(1, 0, 7, 1), &mut gen, &mut out);
        assert!(out.is_empty(), "early ack or duplicate store: {out:?}");
        // Store completes: *both* parked acks are released.
        r.on_store_done(token, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn stale_write_after_durability_acks_immediately() {
        let mut r = Replica::new(ProcessId(1), true);
        let (mut gen, _) = token_gen();
        let mut out = Vec::new();
        r.on_message(ProcessId(0), &write_msg(5, 0, 7, 1), &mut gen, &mut out);
        let Action::Store { token, .. } = out[0].clone() else {
            panic!()
        };
        out.clear();
        r.on_store_done(token, &mut out);
        out.clear();
        // An older write arrives: nothing to adopt, already durable at a
        // covering tag → immediate ack.
        r.on_message(ProcessId(2), &write_msg(3, 2, 9, 4), &mut gen, &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            Action::Send {
                msg: Message::WriteAck { .. },
                ..
            }
        ));
        // And the replica still holds the newer value.
        assert_eq!(r.value().as_u32(), Some(7));
    }

    #[test]
    fn overlapping_adoptions_share_the_covering_store() {
        let mut r = Replica::new(ProcessId(1), true);
        let (mut gen, _) = token_gen();
        let mut out = Vec::new();
        r.on_message(ProcessId(0), &write_msg(1, 0, 7, 1), &mut gen, &mut out);
        let Action::Store { token: t1, .. } = out[0].clone() else {
            panic!()
        };
        out.clear();
        // A newer write arrives while the first store is in flight: it
        // needs its own store (higher tag).
        r.on_message(ProcessId(2), &write_msg(2, 2, 8, 9), &mut gen, &mut out);
        assert_eq!(out.len(), 1, "newer tag needs a new store");
        let Action::Store { token: t2, .. } = out[0].clone() else {
            panic!()
        };
        out.clear();
        // First store completes: only the first waiter is released.
        r.on_store_done(t1, &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        // Second store completes: second waiter released.
        r.on_store_done(t2, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(r.value().as_u32(), Some(8));
    }

    #[test]
    fn restored_replica_resumes_from_record() {
        let rec = WrittenRecord {
            ts: Timestamp::new(9, ProcessId(3)),
            value: Value::from_u32(4),
        };
        let r = Replica::restored(ProcessId(1), true, &rec);
        assert_eq!(r.timestamp(), Timestamp::new(9, ProcessId(3)));
        assert_eq!(r.value().as_u32(), Some(4));
    }

    #[test]
    fn acks_are_not_consumed() {
        let mut r = Replica::new(ProcessId(1), true);
        let (mut gen, _) = token_gen();
        let mut out = Vec::new();
        let req = RequestId::new(ProcessId(1), 0);
        assert!(!r.on_message(ProcessId(0), &Message::WriteAck { req }, &mut gen, &mut out));
        assert!(!r.on_message(
            ProcessId(0),
            &Message::SnAck { req, seq: 0 },
            &mut gen,
            &mut out
        ));
        assert!(out.is_empty());
    }

    // ---------------------------------------------------------------
    // Lease-fence behaviour
    // ---------------------------------------------------------------

    const LEASE: u64 = 2_000;

    /// Drives a fresh leasing replica durable at tag [1,0]/7, returning
    /// it ready to grant.
    fn leased_replica(gen: &mut impl FnMut() -> u64) -> Replica {
        let mut r = Replica::new(ProcessId(1), true).with_lease(LEASE);
        let mut out = Vec::new();
        r.on_message(ProcessId(0), &write_msg(1, 0, 7, 1), gen, &mut out);
        let Action::Store { token, .. } = out[0].clone() else {
            panic!()
        };
        out.clear();
        r.on_store_done(token, &mut out);
        r
    }

    fn read_ack_of(out: &[Action]) -> (bool, u32) {
        out.iter()
            .find_map(|a| match a {
                Action::Send {
                    msg: Message::ReadAck { durable, grant, .. },
                    ..
                } => Some((*durable, *grant)),
                _ => None,
            })
            .expect("a read ack")
    }

    #[test]
    fn durable_reads_grant_and_arm_one_horizon_timer() {
        let (mut gen, _) = token_gen();
        let mut r = leased_replica(&mut gen);
        let mut out = Vec::new();
        let req = RequestId::new(ProcessId(0), 5);
        r.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out);
        let (durable, grant) = read_ack_of(&out);
        assert!(durable);
        assert_eq!(grant, LEASE as u32);
        let timers = out
            .iter()
            .filter(|a| matches!(a, Action::SetTimer { .. }))
            .count();
        assert_eq!(timers, 1, "first grant arms the horizon timer");
        out.clear();
        // A second grant rides the same pending timer.
        r.on_message(ProcessId(2), &Message::Read { req }, &mut gen, &mut out);
        let (_, grant) = read_ack_of(&out);
        assert_eq!(grant, LEASE as u32);
        assert!(
            !out.iter().any(|a| matches!(a, Action::SetTimer { .. })),
            "one horizon timer at a time"
        );
    }

    #[test]
    fn lease_disabled_replica_never_grants_or_arms_timers() {
        let (mut gen, _) = token_gen();
        let mut r = Replica::new(ProcessId(1), true);
        let mut out = Vec::new();
        let req = RequestId::new(ProcessId(0), 5);
        r.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out);
        let (durable, grant) = read_ack_of(&out);
        assert!(durable);
        assert_eq!(grant, 0);
        assert!(!out.iter().any(|a| matches!(a, Action::SetTimer { .. })));
    }

    #[test]
    fn newer_write_ack_is_fenced_until_grants_expire() {
        let (mut gen, _) = token_gen();
        let mut r = leased_replica(&mut gen);
        let mut out = Vec::new();
        let req = RequestId::new(ProcessId(0), 5);
        r.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out);
        let Some(Action::SetTimer { token: horizon, .. }) = out
            .iter()
            .find(|a| matches!(a, Action::SetTimer { .. }))
            .cloned()
        else {
            panic!("horizon timer armed");
        };
        out.clear();
        // A newer write: adopted and stored, but the ack must wait for
        // the grant horizon even after the store completes.
        r.on_message(ProcessId(2), &write_msg(2, 2, 9, 9), &mut gen, &mut out);
        let Action::Store { token, .. } = out[0].clone() else {
            panic!("adoption store expected, got {:?}", out[0]);
        };
        out.clear();
        r.on_store_done(token, &mut out);
        assert!(
            out.is_empty(),
            "durable but fenced: ack must stay parked, got {out:?}"
        );
        // Reads of the fenced tag must not attest durability (the fast
        // path would return the new value while the lease still serves).
        r.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out);
        let (durable, grant) = read_ack_of(&out);
        assert!(!durable, "fenced tag reported non-durable");
        assert_eq!(grant, 0);
        out.clear();
        // Horizon fires: grants expired, the fenced ack releases, and
        // reads attest again.
        assert!(r.on_timer(horizon, &mut gen, &mut out));
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Message::WriteAck { .. },
                ..
            }
        )));
        out.clear();
        r.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out);
        let (durable, grant) = read_ack_of(&out);
        assert!(durable);
        assert_eq!(grant, LEASE as u32);
    }

    #[test]
    fn write_at_or_below_min_granted_tag_is_not_fenced() {
        let (mut gen, _) = token_gen();
        let mut r = leased_replica(&mut gen);
        let mut out = Vec::new();
        let req = RequestId::new(ProcessId(0), 5);
        r.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out);
        out.clear();
        // A write at the granted tag itself (a read write-back of the
        // leased value): already durable, no newer value — acks freely.
        r.on_message(ProcessId(2), &write_msg(1, 0, 7, 3), &mut gen, &mut out);
        assert!(matches!(
            out[0],
            Action::Send {
                msg: Message::WriteAck { .. },
                ..
            }
        ));
    }

    #[test]
    fn grants_during_horizon_rearm_once_and_then_quiesce() {
        let (mut gen, _) = token_gen();
        let mut r = leased_replica(&mut gen);
        let mut out = Vec::new();
        let req = RequestId::new(ProcessId(0), 5);
        r.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out);
        let Some(Action::SetTimer { token: t1, .. }) = out
            .iter()
            .find(|a| matches!(a, Action::SetTimer { .. }))
            .cloned()
        else {
            panic!()
        };
        out.clear();
        // Another grant while the first horizon runs.
        r.on_message(ProcessId(2), &Message::Read { req }, &mut gen, &mut out);
        out.clear();
        // First horizon fires: the straggler grant is still open, so a
        // second full hold is armed.
        r.on_timer(t1, &mut gen, &mut out);
        let Some(Action::SetTimer { token: t2, .. }) = out
            .iter()
            .find(|a| matches!(a, Action::SetTimer { .. }))
            .cloned()
        else {
            panic!("re-arm expected");
        };
        out.clear();
        // Second horizon fires with no new grants: fully quiescent.
        r.on_timer(t2, &mut gen, &mut out);
        assert!(!out.iter().any(|a| matches!(a, Action::SetTimer { .. })));
        // Quiescent again: a newer write acks as soon as it is durable.
        r.on_message(ProcessId(2), &write_msg(4, 2, 9, 9), &mut gen, &mut out);
        let Action::Store { token, .. } = out.last().cloned().unwrap() else {
            panic!()
        };
        out.clear();
        r.on_store_done(token, &mut out);
        assert!(matches!(
            out[0],
            Action::Send {
                msg: Message::WriteAck { .. },
                ..
            }
        ));
    }

    #[test]
    fn boot_hold_fences_every_write_for_one_hold_term() {
        let (mut gen, _) = token_gen();
        let rec = WrittenRecord {
            ts: Timestamp::new(3, ProcessId(0)),
            value: Value::from_u32(7),
        };
        let mut r = Replica::restored(ProcessId(1), true, &rec).with_lease(LEASE);
        let mut out = Vec::new();
        r.boot_hold(&mut gen, &mut out);
        let Some(Action::SetTimer { token: horizon, .. }) = out.first().cloned() else {
            panic!("boot hold arms the horizon timer");
        };
        out.clear();
        // Any write — even one already covered by the restored durable
        // tag — is fenced: the pre-crash incarnation may have granted
        // leases this incarnation cannot see.
        r.on_message(ProcessId(2), &write_msg(2, 2, 9, 9), &mut gen, &mut out);
        assert!(out.is_empty(), "boot-held ack must park, got {out:?}");
        r.on_timer(horizon, &mut gen, &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Message::WriteAck { .. },
                ..
            }
        )));
    }
}
