//! The replica (listener) role every process plays, independent of any
//! operation it may itself be running.
//!
//! Mirrors the message listeners of Fig. 4 lines 17–30: answer
//! sequence-number queries, answer read queries, and adopt propagated
//! values — logging them *before* acknowledging when the flavor logs.
//!
//! # The durable-ack discipline
//!
//! A logging replica may only acknowledge a `Write` once a record with a
//! tag ≥ the message's tag is **durably stored** (Fig. 4 line 24–26: store,
//! *then* ack). Volatile adoption happens immediately, but the ack is
//! parked in a waiter list keyed by tag until the covering store
//! completes. This matters under retransmission: a duplicate `Write`
//! arriving while the original's store is still in flight must *not* be
//! acknowledged early, or the writer could assemble a majority of acks
//! none of which is actually durable — exactly the forgotten-value anomaly
//! the log exists to prevent.

use std::collections::HashMap;

use rmem_storage::records::{WrittenRecord, KEY_WRITTEN};
use rmem_types::{Action, Message, ProcessId, RequestId, StoreToken, Timestamp, Value};

/// Replica state and behaviour.
#[derive(Debug)]
pub struct Replica {
    me: ProcessId,
    /// Current (volatile) tag.
    ts: Timestamp,
    /// Current (volatile) value.
    value: Value,
    /// Whether adoptions are logged before acknowledging.
    logging: bool,
    /// Highest tag known durable in the `written` slot.
    durable_ts: Timestamp,
    /// Stores in flight: token → the tag that becomes durable when it
    /// completes.
    pending_stores: HashMap<StoreToken, Timestamp>,
    /// Acks parked until a covering tag is durable: (requester, round,
    /// required tag).
    waiters: Vec<(ProcessId, RequestId, Timestamp)>,
}

impl Replica {
    /// A fresh replica holding `[0, me] / ⊥`.
    pub fn new(me: ProcessId, logging: bool) -> Self {
        Replica {
            me,
            ts: Timestamp::new(0, me),
            value: Value::bottom(),
            logging,
            durable_ts: Timestamp::new(0, me),
            pending_stores: HashMap::new(),
            waiters: Vec::new(),
        }
    }

    /// A replica restored from its `written` record (recovery, Fig. 4
    /// lines 41–42).
    pub fn restored(me: ProcessId, logging: bool, record: &WrittenRecord) -> Self {
        Replica {
            me,
            ts: record.ts,
            value: record.value.clone(),
            logging,
            durable_ts: record.ts,
            pending_stores: HashMap::new(),
            waiters: Vec::new(),
        }
    }

    /// Current tag (volatile).
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }

    /// Current value (volatile).
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// Handles a protocol *request* aimed at the replica role. Returns
    /// `true` if the message was consumed (acks return `false` — they
    /// belong to whatever operation the process is running).
    pub fn on_message(
        &mut self,
        from: ProcessId,
        msg: &Message,
        next_token: &mut impl FnMut() -> StoreToken,
        out: &mut Vec<Action>,
    ) -> bool {
        match msg {
            Message::SnReq { req } => {
                // Fig. 4 lines 18–20.
                out.push(Action::Send {
                    to: from,
                    msg: Message::SnAck {
                        req: *req,
                        seq: self.ts.seq,
                    },
                });
                true
            }
            Message::Read { req } => {
                // Fig. 4 lines 28–30, plus the durability attestation the
                // reader's fast path gates on: the reported tag is durable
                // when the stable `written` record covers it. A
                // non-logging replica's volatile state is as stable as its
                // (crash-stop) model gets, so it always attests.
                out.push(Action::Send {
                    to: from,
                    msg: Message::ReadAck {
                        req: *req,
                        ts: self.ts,
                        value: self.value.clone(),
                        durable: !self.logging || self.ts <= self.durable_ts,
                    },
                });
                true
            }
            Message::Write { req, ts, value } => {
                // Fig. 4 lines 21–27.
                if *ts > self.ts {
                    self.ts = *ts;
                    self.value = value.clone();
                }
                if !self.logging {
                    out.push(Action::Send {
                        to: from,
                        msg: Message::WriteAck { req: *req },
                    });
                    return true;
                }
                if *ts <= self.durable_ts {
                    // Already durable at a covering tag: safe to ack now.
                    out.push(Action::Send {
                        to: from,
                        msg: Message::WriteAck { req: *req },
                    });
                    return true;
                }
                // Need durability first. Issue a store for the *current*
                // volatile state if none in flight covers it; park the ack.
                let covered_by_pending = self
                    .pending_stores
                    .values()
                    .any(|pending| *pending >= self.ts);
                if !covered_by_pending {
                    let token = next_token();
                    let record = WrittenRecord {
                        ts: self.ts,
                        value: self.value.clone(),
                    };
                    self.pending_stores.insert(token, self.ts);
                    out.push(Action::Store {
                        token,
                        key: KEY_WRITTEN.to_string(),
                        bytes: record.encode(),
                    });
                }
                self.waiters.push((from, *req, *ts));
                true
            }
            _ => false,
        }
    }

    /// Handles a store completion. Returns `true` if the token belonged to
    /// the replica role (parked acks may be released).
    pub fn on_store_done(&mut self, token: StoreToken, out: &mut Vec<Action>) -> bool {
        let Some(stored_ts) = self.pending_stores.remove(&token) else {
            return false;
        };
        if stored_ts > self.durable_ts {
            self.durable_ts = stored_ts;
        }
        // Release every waiter whose required tag is now durable.
        let durable = self.durable_ts;
        let (ready, parked): (Vec<_>, Vec<_>) = self
            .waiters
            .drain(..)
            .partition(|(_, _, need)| *need <= durable);
        self.waiters = parked;
        for (to, req, _) in ready {
            out.push(Action::Send {
                to,
                msg: Message::WriteAck { req },
            });
        }
        true
    }

    /// The initialisation stores of a fresh boot (Fig. 4 line 4): the
    /// initial `written` record. Not ack-gated.
    pub fn initial_store(
        &mut self,
        next_token: &mut impl FnMut() -> StoreToken,
        out: &mut Vec<Action>,
    ) {
        if self.logging {
            let token = next_token();
            let record = WrittenRecord::initial(self.me);
            self.pending_stores.insert(token, record.ts);
            out.push(Action::Store {
                token,
                key: KEY_WRITTEN.to_string(),
                bytes: record.encode(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token_gen() -> (
        impl FnMut() -> StoreToken,
        std::rc::Rc<std::cell::Cell<u64>>,
    ) {
        let counter = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let c2 = counter.clone();
        (
            move || {
                let t = c2.get();
                c2.set(t + 1);
                StoreToken(t)
            },
            counter,
        )
    }

    fn write_msg(seq: u64, pid: u16, v: u32, nonce: u64) -> Message {
        Message::Write {
            req: RequestId::new(ProcessId(pid), nonce),
            ts: Timestamp::new(seq, ProcessId(pid)),
            value: Value::from_u32(v),
        }
    }

    #[test]
    fn sn_and_read_queries_answer_immediately() {
        let mut r = Replica::new(ProcessId(1), true);
        let (mut gen, _) = token_gen();
        let mut out = Vec::new();
        let req = RequestId::new(ProcessId(0), 5);
        assert!(r.on_message(ProcessId(0), &Message::SnReq { req }, &mut gen, &mut out));
        assert!(r.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out));
        assert_eq!(out.len(), 2);
        assert!(matches!(
            out[0],
            Action::Send {
                msg: Message::SnAck { seq: 0, .. },
                ..
            }
        ));
        assert!(matches!(
            out[1],
            Action::Send {
                msg: Message::ReadAck { .. },
                ..
            }
        ));
    }

    #[test]
    fn non_logging_replica_acks_immediately() {
        let mut r = Replica::new(ProcessId(1), false);
        let (mut gen, _) = token_gen();
        let mut out = Vec::new();
        r.on_message(ProcessId(0), &write_msg(1, 0, 7, 1), &mut gen, &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            Action::Send {
                msg: Message::WriteAck { .. },
                ..
            }
        ));
        assert_eq!(r.timestamp().seq, 1);
        assert_eq!(r.value().as_u32(), Some(7));
    }

    #[test]
    fn logging_replica_defers_ack_until_store_done() {
        let mut r = Replica::new(ProcessId(1), true);
        let (mut gen, _) = token_gen();
        let mut out = Vec::new();
        r.on_message(ProcessId(0), &write_msg(1, 0, 7, 1), &mut gen, &mut out);
        // A store, but no ack yet.
        assert_eq!(out.len(), 1);
        let Action::Store { token, key, .. } = out[0].clone() else {
            panic!("expected a store, got {:?}", out[0])
        };
        assert_eq!(key, KEY_WRITTEN);
        out.clear();
        assert!(r.on_store_done(token, &mut out));
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            Action::Send {
                msg: Message::WriteAck { .. },
                ..
            }
        ));
    }

    #[test]
    fn read_acks_attest_durability_truthfully() {
        let mut r = Replica::new(ProcessId(1), true);
        let (mut gen, _) = token_gen();
        let mut out = Vec::new();
        let req = RequestId::new(ProcessId(0), 5);
        // Fresh replica: the initial tag counts as durable (covered by
        // the initial `written` record's tag).
        r.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out);
        assert!(matches!(
            out[0],
            Action::Send {
                msg: Message::ReadAck { durable: true, .. },
                ..
            }
        ));
        out.clear();
        // A newly adopted value is volatile until its store completes:
        // the ack must say so, or the reader's fast path would trust a
        // tag a total crash could forget.
        r.on_message(ProcessId(0), &write_msg(3, 0, 9, 7), &mut gen, &mut out);
        let Action::Store { token, .. } = out[0].clone() else {
            panic!("expected the adoption store, got {:?}", out[0]);
        };
        out.clear();
        r.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out);
        assert!(matches!(
            out[0],
            Action::Send {
                msg: Message::ReadAck { durable: false, .. },
                ..
            }
        ));
        out.clear();
        r.on_store_done(token, &mut out);
        out.clear();
        r.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out);
        assert!(matches!(
            out[0],
            Action::Send {
                msg: Message::ReadAck { durable: true, .. },
                ..
            }
        ));
        // Non-logging replicas always attest: volatile is as stable as
        // the crash-stop model gets.
        let mut cs = Replica::new(ProcessId(2), false);
        let mut out2 = Vec::new();
        cs.on_message(ProcessId(0), &write_msg(3, 0, 9, 8), &mut gen, &mut out2);
        out2.clear();
        cs.on_message(ProcessId(0), &Message::Read { req }, &mut gen, &mut out2);
        assert!(matches!(
            out2[0],
            Action::Send {
                msg: Message::ReadAck { durable: true, .. },
                ..
            }
        ));
    }

    #[test]
    fn duplicate_write_is_not_acked_before_durability() {
        let mut r = Replica::new(ProcessId(1), true);
        let (mut gen, _) = token_gen();
        let mut out = Vec::new();
        r.on_message(ProcessId(0), &write_msg(1, 0, 7, 1), &mut gen, &mut out);
        let Action::Store { token, .. } = out[0].clone() else {
            panic!()
        };
        out.clear();
        // Retransmission of the same write arrives before the store
        // completes: no ack, and no second store either.
        r.on_message(ProcessId(0), &write_msg(1, 0, 7, 1), &mut gen, &mut out);
        assert!(out.is_empty(), "early ack or duplicate store: {out:?}");
        // Store completes: *both* parked acks are released.
        r.on_store_done(token, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn stale_write_after_durability_acks_immediately() {
        let mut r = Replica::new(ProcessId(1), true);
        let (mut gen, _) = token_gen();
        let mut out = Vec::new();
        r.on_message(ProcessId(0), &write_msg(5, 0, 7, 1), &mut gen, &mut out);
        let Action::Store { token, .. } = out[0].clone() else {
            panic!()
        };
        out.clear();
        r.on_store_done(token, &mut out);
        out.clear();
        // An older write arrives: nothing to adopt, already durable at a
        // covering tag → immediate ack.
        r.on_message(ProcessId(2), &write_msg(3, 2, 9, 4), &mut gen, &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            Action::Send {
                msg: Message::WriteAck { .. },
                ..
            }
        ));
        // And the replica still holds the newer value.
        assert_eq!(r.value().as_u32(), Some(7));
    }

    #[test]
    fn overlapping_adoptions_share_the_covering_store() {
        let mut r = Replica::new(ProcessId(1), true);
        let (mut gen, _) = token_gen();
        let mut out = Vec::new();
        r.on_message(ProcessId(0), &write_msg(1, 0, 7, 1), &mut gen, &mut out);
        let Action::Store { token: t1, .. } = out[0].clone() else {
            panic!()
        };
        out.clear();
        // A newer write arrives while the first store is in flight: it
        // needs its own store (higher tag).
        r.on_message(ProcessId(2), &write_msg(2, 2, 8, 9), &mut gen, &mut out);
        assert_eq!(out.len(), 1, "newer tag needs a new store");
        let Action::Store { token: t2, .. } = out[0].clone() else {
            panic!()
        };
        out.clear();
        // First store completes: only the first waiter is released.
        r.on_store_done(t1, &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        // Second store completes: second waiter released.
        r.on_store_done(t2, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(r.value().as_u32(), Some(8));
    }

    #[test]
    fn restored_replica_resumes_from_record() {
        let rec = WrittenRecord {
            ts: Timestamp::new(9, ProcessId(3)),
            value: Value::from_u32(4),
        };
        let r = Replica::restored(ProcessId(1), true, &rec);
        assert_eq!(r.timestamp(), Timestamp::new(9, ProcessId(3)));
        assert_eq!(r.value().as_u32(), Some(4));
    }

    #[test]
    fn acks_are_not_consumed() {
        let mut r = Replica::new(ProcessId(1), true);
        let (mut gen, _) = token_gen();
        let mut out = Vec::new();
        let req = RequestId::new(ProcessId(1), 0);
        assert!(!r.on_message(ProcessId(0), &Message::WriteAck { req }, &mut gen, &mut out));
        assert!(!r.on_message(
            ProcessId(0),
            &Message::SnAck { req, seq: 0 },
            &mut gen,
            &mut out
        ));
        assert!(out.is_empty());
    }
}
