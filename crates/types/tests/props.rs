//! Property-based tests for the foundational types: the timestamp order is
//! a total order compatible with the paper's lexicographic comparison, and
//! the wire codec roundtrips arbitrary messages.

use proptest::prelude::*;
use rmem_types::codec::{decode_message, encode_message};
use rmem_types::{Message, ProcessId, RequestId, Timestamp, Value};

fn arb_process_id() -> impl Strategy<Value = ProcessId> {
    (0u16..64).prop_map(ProcessId)
}

fn arb_timestamp() -> impl Strategy<Value = Timestamp> {
    (any::<u64>(), arb_process_id()).prop_map(|(seq, pid)| Timestamp { seq, pid })
}

fn arb_request_id() -> impl Strategy<Value = RequestId> {
    (arb_process_id(), any::<u64>(), 0u16..8).prop_map(|(origin, nonce, reg)| {
        RequestId::for_register(origin, nonce, rmem_types::RegisterId(reg))
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::bottom()),
        proptest::collection::vec(any::<u8>(), 0..512).prop_map(Value::new),
        any::<u32>().prop_map(Value::from_u32),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_request_id().prop_map(|req| Message::SnReq { req }),
        (arb_request_id(), any::<u64>()).prop_map(|(req, seq)| Message::SnAck { req, seq }),
        (arb_request_id(), arb_timestamp(), arb_value())
            .prop_map(|(req, ts, value)| Message::Write { req, ts, value }),
        arb_request_id().prop_map(|req| Message::WriteAck { req }),
        arb_request_id().prop_map(|req| Message::Read { req }),
        (
            arb_request_id(),
            arb_timestamp(),
            arb_value(),
            any::<bool>(),
            any::<u32>()
        )
            .prop_map(|(req, ts, value, durable, grant)| Message::ReadAck {
                req,
                ts,
                value,
                durable,
                grant,
            }),
    ]
}

proptest! {
    /// Lexicographic order: seq strictly dominates, pid breaks ties.
    #[test]
    fn timestamp_order_is_lexicographic(a in arb_timestamp(), b in arb_timestamp()) {
        let expected = (a.seq, a.pid).cmp(&(b.seq, b.pid));
        prop_assert_eq!(a.cmp(&b), expected);
    }

    /// The order is total and antisymmetric.
    #[test]
    fn timestamp_order_is_total(a in arb_timestamp(), b in arb_timestamp()) {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(a, b),
        }
    }

    /// `next` always produces a strictly larger tag regardless of pid.
    #[test]
    fn next_strictly_increases(t in arb_timestamp(), pid in arb_process_id()) {
        prop_assume!(t.seq < u64::MAX);
        prop_assert!(t < t.next(pid));
    }

    /// `next_after_recoveries` dominates `next` by exactly `rec`.
    #[test]
    fn recovery_bump_dominates(t in arb_timestamp(), pid in arb_process_id(), rec in 0u64..1000) {
        prop_assume!(t.seq < u64::MAX - rec - 1);
        let plain = t.next(pid);
        let bumped = t.next_after_recoveries(pid, rec);
        prop_assert_eq!(bumped.seq, plain.seq + rec);
        prop_assert!(bumped >= plain);
    }

    /// Every message survives an encode/decode roundtrip unchanged.
    #[test]
    fn message_codec_roundtrips(msg in arb_message()) {
        let bytes = encode_message(&msg);
        let back = decode_message(&bytes).expect("well-formed encoding must decode");
        prop_assert_eq!(back, msg);
    }

    /// Decoding arbitrary bytes never panics — it either yields a message
    /// or a clean error (transports feed raw datagrams straight in).
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_message(&bytes);
    }

    /// Encodings are canonical: distinct messages have distinct encodings.
    #[test]
    fn encoding_is_injective(a in arb_message(), b in arb_message()) {
        if a != b {
            prop_assert_ne!(encode_message(&a), encode_message(&b));
        }
    }
}
