//! Register payloads.

use bytes::Bytes;

/// An opaque register payload.
///
/// The paper's experiments write 4-byte integers (Fig. 6 top) and payloads
/// up to the 64 KB UDP datagram limit (Fig. 6 bottom); `Value` wraps
/// [`Bytes`] so cloning a value while fanning a write out to `n` replicas
/// is a cheap reference-count bump.
///
/// The initial register content ⊥ is represented by [`Value::bottom`] — an
/// empty payload flagged as unwritten, so it is distinguishable from a
/// deliberately written empty byte string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Value {
    bytes: Bytes,
    bottom: bool,
}

impl Value {
    /// The unwritten value ⊥ every register starts with (Fig. 4 line 2).
    pub fn bottom() -> Self {
        Value {
            bytes: Bytes::new(),
            bottom: true,
        }
    }

    /// Wraps a payload.
    pub fn new(bytes: impl Into<Bytes>) -> Self {
        Value {
            bytes: bytes.into(),
            bottom: false,
        }
    }

    /// Convenience constructor for the 4-byte integer payloads used by the
    /// paper's first experiment.
    pub fn from_u32(v: u32) -> Self {
        Value::new(v.to_be_bytes().to_vec())
    }

    /// Convenience constructor for 8-byte integer payloads.
    pub fn from_u64(v: u64) -> Self {
        Value::new(v.to_be_bytes().to_vec())
    }

    /// Attempts to reinterpret the payload as the `u32` it was created
    /// from. Returns `None` for ⊥ or payloads of a different length.
    pub fn as_u32(&self) -> Option<u32> {
        if self.bottom {
            return None;
        }
        let arr: [u8; 4] = self.bytes.as_ref().try_into().ok()?;
        Some(u32::from_be_bytes(arr))
    }

    /// Attempts to reinterpret the payload as the `u64` it was created from.
    pub fn as_u64(&self) -> Option<u64> {
        if self.bottom {
            return None;
        }
        let arr: [u8; 8] = self.bytes.as_ref().try_into().ok()?;
        Some(u64::from_be_bytes(arr))
    }

    /// Whether this is the unwritten initial value ⊥.
    pub fn is_bottom(&self) -> bool {
        self.bottom
    }

    /// The raw payload bytes (empty for ⊥).
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Payload length in bytes (0 for ⊥).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the payload is empty (true for ⊥ and for written empty
    /// strings alike).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl Default for Value {
    /// The default value is ⊥, matching register initialisation.
    fn default() -> Self {
        Value::bottom()
    }
}

impl From<&[u8]> for Value {
    fn from(b: &[u8]) -> Self {
        Value::new(b.to_vec())
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::new(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::new(s.as_bytes().to_vec())
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.bottom {
            write!(f, "⊥")
        } else if let Some(v) = self.as_u32() {
            write!(f, "{v}")
        } else if let Ok(s) = std::str::from_utf8(&self.bytes) {
            write!(f, "{s:?}")
        } else {
            write!(f, "<{} bytes>", self.bytes.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_is_distinct_from_written_empty() {
        let bot = Value::bottom();
        let empty = Value::new(Vec::new());
        assert!(bot.is_bottom());
        assert!(!empty.is_bottom());
        assert_ne!(bot, empty);
        assert!(bot.is_empty() && empty.is_empty());
    }

    #[test]
    fn u32_roundtrip() {
        let v = Value::from_u32(0xDEAD_BEEF);
        assert_eq!(v.len(), 4);
        assert_eq!(v.as_u32(), Some(0xDEAD_BEEF));
        assert_eq!(v.as_u64(), None);
    }

    #[test]
    fn u64_roundtrip() {
        let v = Value::from_u64(42);
        assert_eq!(v.as_u64(), Some(42));
        assert_eq!(v.as_u32(), None);
    }

    #[test]
    fn bottom_has_no_integer_view() {
        assert_eq!(Value::bottom().as_u32(), None);
        assert_eq!(Value::bottom().as_u64(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::bottom().to_string(), "⊥");
        assert_eq!(Value::from_u32(7).to_string(), "7");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn conversions() {
        let a: Value = b"abc"[..].into();
        let b: Value = vec![97, 98, 99].into();
        let c: Value = "abc".into();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(Value::default(), Value::bottom());
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let v = Value::new(vec![0u8; 65536]);
        let w = v.clone();
        assert_eq!(v, w);
        assert_eq!(w.len(), 65536);
    }
}
