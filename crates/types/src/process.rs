//! Process identifiers.

/// Identifier of one of the `n` static processes participating in the
/// emulation.
///
/// The paper's model (§II) has a static set of processes; ids double as the
/// tie-breaking component of [`Timestamp`](crate::Timestamp)s, so their
/// ordering is semantically meaningful: two concurrent writes with the same
/// sequence number are ordered by writer id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u16);

impl ProcessId {
    /// Returns the raw id.
    pub fn as_u16(self) -> u16 {
        self.0
    }

    /// Returns the id as a `usize`, convenient for indexing per-process
    /// tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Enumerates the ids `0..n` of a cluster of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u16::MAX`.
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> {
        assert!(n <= u16::MAX as usize, "cluster size {n} exceeds u16::MAX");
        (0..n as u16).map(ProcessId)
    }
}

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u16> for ProcessId {
    fn from(v: u16) -> Self {
        ProcessId(v)
    }
}

/// Returns the majority threshold ⌈(n+1)/2⌉ used by every quorum round in
/// the paper's algorithms (Fig. 4 lines 9/15/34/38, Fig. 5 lines 9/14).
///
/// # Examples
///
/// ```
/// assert_eq!(rmem_types::process::majority(3), 2);
/// assert_eq!(rmem_types::process::majority(4), 3);
/// assert_eq!(rmem_types::process::majority(5), 3);
/// assert_eq!(rmem_types::process::majority(9), 5);
/// ```
pub fn majority(n: usize) -> usize {
    n / 2 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_thresholds() {
        assert_eq!(majority(1), 1);
        assert_eq!(majority(2), 2);
        assert_eq!(majority(3), 2);
        assert_eq!(majority(5), 3);
        assert_eq!(majority(7), 4);
        assert_eq!(majority(9), 5);
        // Two majorities always intersect.
        for n in 1..=64 {
            assert!(2 * majority(n) > n, "majorities must intersect for n={n}");
        }
    }

    #[test]
    fn all_enumerates_in_order() {
        let ids: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(
            ids,
            vec![ProcessId(0), ProcessId(1), ProcessId(2), ProcessId(3)]
        );
    }

    #[test]
    fn display_format() {
        assert_eq!(ProcessId(7).to_string(), "p7");
    }

    #[test]
    fn index_and_from() {
        let p: ProcessId = 9u16.into();
        assert_eq!(p.index(), 9);
        assert_eq!(p.as_u16(), 9);
    }
}
