//! Error types shared across the workspace.

/// Failure to decode a wire message or a stable-storage record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the expected field.
    UnexpectedEof {
        /// What was being decoded.
        context: &'static str,
    },
    /// An enum discriminant byte had no known mapping.
    BadTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending discriminant.
        tag: u8,
    },
    /// A declared length prefix exceeds the remaining buffer or a sanity
    /// bound.
    BadLength {
        /// What was being decoded.
        context: &'static str,
        /// The declared length.
        len: usize,
    },
    /// Trailing bytes remained after a complete decode where none were
    /// expected.
    TrailingBytes {
        /// How many bytes remained.
        remaining: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof { context } => {
                write!(f, "unexpected end of buffer while decoding {context}")
            }
            DecodeError::BadTag { context, tag } => {
                write!(
                    f,
                    "unknown discriminant {tag:#04x} while decoding {context}"
                )
            }
            DecodeError::BadLength { context, len } => {
                write!(f, "implausible length {len} while decoding {context}")
            }
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete decode")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DecodeError::UnexpectedEof { context: "Message" };
        assert!(e.to_string().contains("unexpected end"));
        let e = DecodeError::BadTag {
            context: "Message",
            tag: 0xff,
        };
        assert!(e.to_string().contains("0xff"));
        let e = DecodeError::BadLength {
            context: "Value",
            len: 1 << 40,
        };
        assert!(e.to_string().contains("implausible"));
        let e = DecodeError::TrailingBytes { remaining: 3 };
        assert!(e.to_string().contains("3 trailing"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_err(DecodeError::TrailingBytes { remaining: 0 });
    }
}
